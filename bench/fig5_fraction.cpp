// Fig. 5 reproduction: the fraction of runs in which request number X was
// sent to a cautious user, for several ABM indirect weights w_I
// (w_D = 1 − w_I) on the Twitter-like dataset, k = 500.
//
// Expected shape (paper): higher w_I both raises the total mass (more
// cautious targets) and shifts it left (cautious users befriended earlier).

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.declare("buckets", "number of request-index buckets (default 20)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 500;  // the paper's Fig. 5 setting
  const std::string dataset = opts.get("dataset", "twitter");
  const auto buckets =
      static_cast<std::uint32_t>(opts.get_int("buckets", 20));

  const std::vector<double> wi_values = {0.1, 0.3, 0.5};
  std::vector<StrategyFactory> strategies;
  for (const double wi : wi_values) {
    const double wd = 1.0 - wi;
    strategies.push_back(
        {"wI=" + util::Table::format(wi, 1),
         [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }});
  }
  const ExperimentResult result =
      run_experiment(bench::make_instance_factory(config, dataset),
                     strategies, bench::experiment_config(config));

  std::vector<std::string> header = {"requests"};
  for (const std::string& name : result.strategy_names) header.push_back(name);
  util::Table table(header);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const std::uint32_t lo = config.budget * b / buckets;
    const std::uint32_t hi = config.budget * (b + 1) / buckets;
    table.row().cell(std::to_string(lo + 1) + "-" + std::to_string(hi));
    for (const TraceAggregator& agg : result.aggregates) {
      util::RunningStat fraction;
      for (std::uint32_t i = lo; i < hi; ++i) {
        fraction.add(agg.cautious_fraction().at(i).mean());
      }
      table.cell(fraction.mean(), 4);
    }
  }
  bench::emit(table,
              "Fig. 5 — fraction of requests sent to cautious users (" +
                  dataset + ", k=" + std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
