// Ablation study of ABM's potential function (design choices called out in
// DESIGN.md):
//
//   * full ABM (w_D = w_I = 0.5)                — the paper's configuration
//   * pure greedy (w_I = 0)                     — prior-work baseline
//   * pure indirect (w_D = 0)                   — threshold-seeking only
//   * no-acceptance-weighting (drop the q(u) factor)
//   * no-proximity (P_I without the 1/(θ−mutual) denominator)
//
// plus a wall-clock comparison of the incremental potential maintenance vs
// the O(n·Σdeg) per-round recomputation (identical decisions, tested).

#include <cstdio>
#include <exception>
#include <iostream>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/lookahead.hpp"
#include "util/timer.hpp"

namespace {

using namespace accu;

/// ABM variant with pieces of the potential disabled; uses the reference
/// (full-recompute) selection loop, which every variant shares so the
/// comparison isolates the scoring rule.
class AblatedAbm final : public Strategy {
 public:
  enum class Mode { kNoAcceptWeight, kNoProximity };

  AblatedAbm(Mode mode, PotentialWeights weights)
      : mode_(mode), weights_(weights) {}

  void reset(const AccuInstance& instance, util::Rng&) override {
    instance_ = &instance;
  }

  NodeId select(const AttackerView& view, util::Rng&) override {
    NodeId best = kInvalidNode;
    double best_value = 0.0;
    for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
      if (view.is_requested(u)) continue;
      const double value = score(view, u);
      if (best == kInvalidNode || value > best_value) {
        best = u;
        best_value = value;
      }
    }
    return best;
  }

  [[nodiscard]] std::string name() const override {
    return mode_ == Mode::kNoAcceptWeight ? "ABM-noQ" : "ABM-noProximity";
  }

 private:
  double score(const AttackerView& view, NodeId u) const {
    const double direct = AbmStrategy::direct_gain(view, u);
    double indirect = 0.0;
    if (mode_ == Mode::kNoProximity) {
      // P_I without threshold-proximity: every not-yet-befriendable
      // cautious neighbor counts its full upgrade gain.
      const AccuInstance& instance = view.instance();
      if (!instance.is_cautious(u)) {
        for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
          const NodeId v = nb.node;
          if (!instance.is_cautious(v) || view.is_requested(v)) continue;
          if (view.mutual_friends(v) >= instance.threshold(v)) continue;
          const double belief = view.edge_belief(nb.edge);
          if (belief <= 0.0) continue;
          indirect += belief * instance.benefits().upgrade_gain(v);
        }
      }
    } else {
      indirect = AbmStrategy::indirect_gain(view, u);
    }
    const double value =
        weights_.direct * direct + weights_.indirect * indirect;
    if (mode_ == Mode::kNoAcceptWeight) {
      // Still refuse to burn requests on cautious users that would reject.
      const double q = AbmStrategy::effective_accept_prob(view, u);
      return q > 0.0 ? value : 0.0;
    }
    return AbmStrategy::effective_accept_prob(view, u) * value;
  }

  Mode mode_;
  PotentialWeights weights_;
  const AccuInstance* instance_ = nullptr;
};

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to ablate on (default twitter)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  if (!opts.has("samples")) config.samples = 2;
  const std::string dataset = opts.get("dataset", "twitter");

  const std::vector<StrategyFactory> variants = {
      {"ABM(0.5,0.5)",
       [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"pure greedy (wI=0)",
       [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
      {"pure indirect (wD=0)",
       [] { return std::make_unique<AbmStrategy>(0.0, 1.0); }},
      {"no q(u) factor",
       [] {
         return std::make_unique<AblatedAbm>(
             AblatedAbm::Mode::kNoAcceptWeight, PotentialWeights{0.5, 0.5});
       }},
      {"no 1/(θ−mutual) proximity",
       [] {
         return std::make_unique<AblatedAbm>(AblatedAbm::Mode::kNoProximity,
                                             PotentialWeights{0.5, 0.5});
       }},
      {"lookahead (beam=6, s=3)",
       [] {
         LookaheadStrategy::Config lookahead_config;
         lookahead_config.beam = 6;
         lookahead_config.scenario_samples = 3;
         lookahead_config.weights = {0.5, 0.5};
         return std::make_unique<LookaheadStrategy>(lookahead_config);
       }},
  };
  const ExperimentResult result =
      run_experiment(bench::make_instance_factory(config, dataset), variants,
                     bench::experiment_config(config));
  util::Table table({"variant", "benefit", "±95%", "#cautious friends"});
  for (std::size_t i = 0; i < result.strategy_names.size(); ++i) {
    const TraceAggregator& agg = result.aggregates[i];
    table.row()
        .cell(result.strategy_names[i])
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.cautious_friends().mean(), 2);
  }
  bench::emit(table,
              "Ablation — ABM potential components (" + dataset + ", k=" +
                  std::to_string(config.budget) + ")",
              config.csv_path);

  // Incremental vs reference maintenance: same decisions, different cost.
  {
    const InstanceFactory factory =
        bench::make_instance_factory(config, dataset);
    const AccuInstance instance = factory(0, config.seed);
    util::Rng rng(config.seed);
    const Realization truth = Realization::sample(instance, rng);
    util::Table timing({"maintenance", "benefit", "wall ms"});
    for (const bool incremental : {true, false}) {
      AbmStrategy::Config abm_config;
      abm_config.weights = {0.5, 0.5};
      abm_config.incremental = incremental;
      AbmStrategy strategy(abm_config);
      util::Rng srng(1);
      util::Timer timer;
      const SimulationResult sim =
          simulate(instance, truth, strategy, config.budget, srng);
      timing.row()
          .cell(incremental ? "incremental (dirty-set heap)"
                            : "full recompute per round")
          .cell(sim.total_benefit, 1)
          .cell(timer.milliseconds(), 1);
    }
    bench::emit(timing, "Ablation — potential maintenance cost", "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
