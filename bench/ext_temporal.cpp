// Extension study: attacking a growing network (future-work direction).
//
// A fraction of the users only joins the network while the attack is in
// flight (uniform arrivals over the first `horizon` rounds).  Expected
// shape: mid-growth benefit (the "benefit @ round h/2" column) drops
// sharply as more of the network arrives late — early requests face a
// poorer candidate pool — while the final benefit recovers most of the gap
// given enough rounds; cautious captures decline with the late fraction
// because mutual-friend thresholds complete later.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/temporal/temporal.hpp"
#include "util/stats.hpp"

namespace {

using namespace accu;

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.declare("horizon-factor",
               "arrival horizon as a multiple of k (default 0.5)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  if (!opts.has("samples")) config.samples = 2;
  if (!opts.has("runs")) config.runs = 2;
  if (!opts.has("scale")) {
    // Growth effects only bite when the budget is comparable to the early
    // candidate pool; default to a quarter of the usual bench scale.
    config.scale_facebook *= 0.25;
    config.scale_slashdot *= 0.25;
    config.scale_twitter *= 0.25;
    config.scale_dblp *= 0.25;
  }
  const std::string dataset = opts.get("dataset", "twitter");
  const double horizon_factor = opts.get_double("horizon-factor", 0.5);
  const auto horizon = static_cast<std::uint32_t>(
      horizon_factor * config.budget);
  const auto rounds = config.budget + horizon;  // room to finish

  const InstanceFactory factory =
      bench::make_instance_factory(config, dataset);
  util::Table table({"late fraction", "benefit @ round h/2",
                     "final benefit", "±95%", "cautious friends",
                     "rounds waited"});
  for (const double late : {0.0, 0.25, 0.5, 0.75}) {
    util::RunningStat midway, final_benefit, cautious, waited;
    for (std::uint32_t sample = 0; sample < config.samples; ++sample) {
      util::Rng sample_rng(config.seed ^ (0x51ULL * (sample + 1)));
      const AccuInstance instance = factory(sample, sample_rng());
      for (std::uint32_t r = 0; r < config.runs; ++r) {
        util::Rng run_rng = sample_rng.split(r + 1);
        const Realization truth = Realization::sample(instance, run_rng);
        util::Rng schedule_rng = run_rng.split(5);
        const ArrivalSchedule schedule = ArrivalSchedule::uniform_arrivals(
            instance.num_nodes(), late, horizon, schedule_rng);
        TemporalAbm strategy({config.w_direct, config.w_indirect});
        util::Rng policy_rng = run_rng.split(6);
        const TemporalResult result =
            simulate_temporal(instance, schedule, truth, strategy, rounds,
                              config.budget, policy_rng);
        final_benefit.add(result.total_benefit);
        cautious.add(result.num_cautious_friends);
        // Sample the running benefit mid-growth (round horizon/2), when
        // the candidate-pool handicap is at its largest.
        const std::size_t probe = std::max<std::size_t>(1, horizon / 2) - 1;
        const std::size_t midpoint = std::min<std::size_t>(
            probe, result.trace.empty() ? 0 : result.trace.size() - 1);
        midway.add(result.trace.empty()
                       ? 0.0
                       : result.trace[midpoint].benefit_after);
        std::size_t waits = 0;
        for (const TemporalRequestRecord& record : result.trace) {
          waits += record.target == kInvalidNode;
        }
        waited.add(static_cast<double>(waits));
      }
    }
    table.row()
        .cell(late, 2)
        .cell(midway.mean(), 1)
        .cell(final_benefit.mean(), 1)
        .cell(final_benefit.ci95_halfwidth(), 1)
        .cell(cautious.mean(), 2)
        .cell(waited.mean(), 1);
  }
  bench::emit(table,
              "Extension — growing network (" + dataset + ", k=" +
                  std::to_string(config.budget) + ", arrivals over " +
                  std::to_string(horizon) + " rounds)",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
