// Fig. 3 reproduction: average marginal benefit of every friend request,
// decomposed into benefit collected when the request targeted a cautious
// vs a reckless user, for ABM (w_D = w_I = 0.5) on each dataset.
//
// Expected shape (paper): the cautious component concentrates in a band of
// request indices (the "orange region"); on Slashdot/Twitter that band
// coincides with a dip of the overall marginal below later requests (the
// non-concave segment of Fig. 2).

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("datasets", "comma-separated subset (default: all four)");
  opts.declare("buckets", "number of request-index buckets (default 20)");
  opts.check_unknown();
  const bench::CommonConfig config = bench::read_common_config(opts);
  const auto buckets =
      static_cast<std::uint32_t>(opts.get_int("buckets", 20));

  std::vector<std::string> names;
  {
    const std::string raw =
        opts.get("datasets", "facebook,slashdot,twitter,dblp");
    std::size_t start = 0;
    while (start <= raw.size()) {
      const std::size_t comma = raw.find(',', start);
      const std::size_t end = comma == std::string::npos ? raw.size() : comma;
      if (end > start) names.push_back(raw.substr(start, end - start));
      start = end + 1;
    }
  }

  const double wd = config.w_direct;
  const double wi = config.w_indirect;
  const std::vector<StrategyFactory> abm_only = {
      {"ABM", [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }}};

  for (const std::string& dataset : names) {
    const ExperimentResult result =
        run_experiment(bench::make_instance_factory(config, dataset),
                       abm_only, bench::experiment_config(config));
    const TraceAggregator& agg = result.aggregates.front();
    util::Table table({"requests", "avg marginal", "from cautious",
                       "from reckless", "frac→cautious"});
    for (std::uint32_t b = 0; b < buckets; ++b) {
      const std::uint32_t lo = config.budget * b / buckets;
      const std::uint32_t hi = config.budget * (b + 1) / buckets;
      util::RunningStat all, cautious, reckless, fraction;
      for (std::uint32_t i = lo; i < hi; ++i) {
        all.add(agg.marginal().at(i).mean());
        cautious.add(agg.marginal_cautious().at(i).mean());
        reckless.add(agg.marginal_reckless().at(i).mean());
        fraction.add(agg.cautious_fraction().at(i).mean());
      }
      table.row()
          .cell(std::to_string(lo + 1) + "-" + std::to_string(hi))
          .cell(all.mean(), 2)
          .cell(cautious.mean(), 2)
          .cell(reckless.mean(), 2)
          .cell(fraction.mean(), 3);
    }
    bench::emit(table, "Fig. 3 — marginal benefit split (" + dataset + ")",
                config.csv_path.empty()
                    ? ""
                    : config.csv_path + "." + dataset + ".csv");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
