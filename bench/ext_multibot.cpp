// Extension study: multi-bot coalitions (cf. paper reference [5]).
//
// Splits a fixed total budget k across m round-robin bots with shared
// observations but per-bot friendships.  Expected shape: interaction
// rounds drop as ⌈k/m⌉, total benefit stays roughly flat on the reckless
// mass, while the number of captured cautious users falls with m — each
// bot must independently accumulate θ mutual friends, so splitting the
// budget dilutes threshold progress.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/multibot/multibot.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  if (!opts.has("samples")) config.samples = 2;
  const std::string dataset = opts.get("dataset", "twitter");
  const InstanceFactory factory =
      bench::make_instance_factory(config, dataset);

  util::Table table({"#bots", "rounds (avg)", "benefit", "±95%",
                     "#cautious friends", "requests used"});
  for (const BotId bots : {1u, 2u, 4u, 8u}) {
    util::RunningStat benefit, cautious, rounds, used;
    for (std::uint32_t sample = 0; sample < config.samples; ++sample) {
      util::Rng sample_rng(config.seed ^ (0x9e37ULL * (sample + 1)));
      const AccuInstance instance = factory(sample, sample_rng());
      for (std::uint32_t r = 0; r < config.runs; ++r) {
        util::Rng run_rng = sample_rng.split(r + 1);
        const MultiBotRealization truth =
            MultiBotRealization::sample(instance, bots, run_rng);
        MultiBotAbm coalition({config.w_direct, config.w_indirect});
        util::Rng policy_rng = run_rng.split(99);
        const MultiBotResult result = simulate_multibot(
            instance, truth, coalition, config.budget, bots, policy_rng);
        benefit.add(result.total_benefit);
        cautious.add(result.num_cautious_friends);
        rounds.add(result.rounds);
        used.add(static_cast<double>(result.trace.size()));
      }
    }
    table.row()
        .cell_int(bots)
        .cell(rounds.mean(), 1)
        .cell(benefit.mean(), 1)
        .cell(benefit.ci95_halfwidth(), 1)
        .cell(cautious.mean(), 2)
        .cell(used.mean(), 1);
  }
  bench::emit(table,
              "Extension — multi-bot coalition, fixed total budget (" +
                  dataset + ", k=" + std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
