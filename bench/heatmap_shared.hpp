// Shared implementation of the Fig. 6 / Fig. 7 heat maps: sweep the
// cautious users' friend benefit B_f and the threshold fraction
// (θ_v = frac·deg(v)) on one dataset and report either total benefit
// (Fig. 6) or the number of cautious friends (Fig. 7) per grid cell.

#pragma once

namespace accu::bench {

enum class HeatmapMetric { kBenefit, kCautiousFriends };

/// Entry point used by the two heat-map binaries.
int run_heatmap(int argc, char** argv, HeatmapMetric metric);

}  // namespace accu::bench
