// Fig. 7 reproduction — see heatmap_shared.cpp.
//
// Expected shape (paper): the number of cautious friends grows with higher
// cautious B_f and lower thresholds.

#include "heatmap_shared.hpp"

int main(int argc, char** argv) {
  return accu::bench::run_heatmap(
      argc, argv, accu::bench::HeatmapMetric::kCautiousFriends);
}
