#include "heatmap_shared.hpp"

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"

namespace accu::bench {

namespace {

int run(int argc, char** argv, HeatmapMetric metric) {
  using namespace accu;
  util::Options opts(argc, argv);
  declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.declare("bf-values", "unused placeholder (grid is fixed: 20..100)");
  opts.check_unknown();
  CommonConfig config = read_common_config(opts);
  if (!opts.has("k")) config.budget = 500;    // paper: k = 500
  if (!opts.has("samples")) config.samples = 2;  // grid is 30 cells
  if (!opts.has("runs")) config.runs = 2;
  const std::string dataset = opts.get("dataset", "twitter");

  const std::vector<double> bf_values = {20, 40, 60, 80, 100};
  const std::vector<double> theta_fractions = {0.1, 0.2, 0.3, 0.4, 0.5};

  std::vector<std::string> header = {"B_f(Vc) \\ θ·deg"};
  for (const double t : theta_fractions) {
    header.push_back(util::Table::format(t, 1));
  }
  util::Table table(header);

  const double wd = config.w_direct;
  const double wi = config.w_indirect;
  const std::vector<StrategyFactory> abm = {
      {"ABM", [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }}};

  for (const double bf : bf_values) {
    table.row().cell(bf, 0);
    for (const double theta : theta_fractions) {
      CommonConfig cell_config = config;
      cell_config.cautious_bf = bf;
      cell_config.theta_fraction = theta;
      // Decorrelate cells so a lucky sample network doesn't streak a row.
      cell_config.seed = config.seed + static_cast<std::uint64_t>(bf * 100) +
                         static_cast<std::uint64_t>(theta * 10);
      const ExperimentResult result = run_experiment(
          make_instance_factory(cell_config, dataset), abm,
          experiment_config(cell_config));
      const TraceAggregator& agg = result.aggregates.front();
      const double value = metric == HeatmapMetric::kBenefit
                               ? agg.total_benefit().mean()
                               : agg.cautious_friends().mean();
      table.cell(value, metric == HeatmapMetric::kBenefit ? 0 : 1);
    }
  }
  const std::string title =
      metric == HeatmapMetric::kBenefit
          ? "Fig. 6 — benefit heat map (" + dataset +
                ", k=" + std::to_string(config.budget) + ", wD=wI=0.5)"
          : "Fig. 7 — #cautious-friends heat map (" + dataset +
                ", k=" + std::to_string(config.budget) + ", wD=wI=0.5)";
  emit(table, title, config.csv_path);
  return 0;
}

}  // namespace

int run_heatmap(int argc, char** argv, HeatmapMetric metric) {
  try {
    return run(argc, argv, metric);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace accu::bench
