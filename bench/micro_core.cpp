// Google-Benchmark microbenchmarks for the hot paths: potential evaluation,
// observation updates, realization sampling, PageRank, generators, and a
// full ABM attack.  These are engineering benchmarks (not paper figures);
// they guard the complexity claims in DESIGN.md §7.
//
// Besides the google-benchmark suite, the binary has a second mode:
//
//   micro_core --json [path]
//
// runs the sweep-cell workload twice — once allocating everything fresh per
// cell (the pre-engine behaviour) and once through a reused SimWorkspace +
// persistent strategy (what run_experiment does per worker since PR 3) —
// counting every operator-new call via the replaced global allocator — then
// times every hot kernel of the simulation stack (realization sampling,
// observation update, scalar potential, batched rescore, full ABM round,
// isolated deferred-revelation drain), re-times the score_simd kernels
// under every ISA table the host supports, and writes the numbers as JSON
// (default BENCH_micro_core.json).  The repo-root BENCH_micro_core.json is
// the committed per-PR snapshot of these numbers; tools/ci.sh gates pooled
// allocs/cell against bench/micro_core_allocs.baseline and the rest of the
// keys against the committed snapshot via tools/accu_bench_diff, so
// neither the O(1)-allocations-per-cell property nor a kernel speedup can
// silently regress.

// GCC cannot see that the replaced operator new below is malloc-backed and
// flags every inlined new/delete pair as mismatched; the pairing is correct
// by construction (new -> malloc, delete -> free), so silence the false
// positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/score_simd.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/pagerank.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global allocator with a malloc-backed one
// that counts every allocation.  The relaxed atomic adds ~1ns per call, far
// below the noise floor of anything measured here.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace accu;

const AccuInstance& twitter_instance() {
  static const AccuInstance instance = [] {
    util::Rng rng(7);
    datasets::DatasetConfig config;
    config.scale = 0.03;  // ~2.4k nodes, mean degree ~44
    return datasets::make_dataset("twitter", config, rng);
  }();
  return instance;
}

void BM_RealizationSample(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Realization::sample(instance, rng));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      instance.graph().num_edges());
}
BENCHMARK(BM_RealizationSample);

void BM_PotentialEvaluation(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  const AttackerView view(instance);
  const AbmStrategy abm(0.5, 0.5);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abm.potential(view, u));
    u = (u + 1) % instance.num_nodes();
  }
}
BENCHMARK(BM_PotentialEvaluation);

void BM_ObservationUpdate(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(2);
  const Realization truth = Realization::sample(instance, rng);
  for (auto _ : state) {
    state.PauseTiming();
    AttackerView view(instance);
    state.ResumeTiming();
    for (NodeId v = 0; v < 64; ++v) view.record_acceptance(v, truth);
    benchmark::DoNotOptimize(view.current_benefit());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ObservationUpdate);

void BM_BatchedRescore(benchmark::State& state) {
  // The flat full-population rescore (core/score.hpp) that BatchedABM and
  // lookahead ranking run per round, through the pooled prepare + ranged
  // path the strategies actually use; items = candidates scored.
  const AccuInstance& instance = twitter_instance();
  const AttackerView view(instance);
  ScorePack pack;
  pack.build(instance);
  const PotentialWeights weights{0.5, 0.5};
  ScoreBatchScratch scratch;
  std::vector<double> scores(instance.num_nodes());
  for (auto _ : state) {
    score_batch_all(pack, view, weights, scratch, nullptr, scores.data());
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          instance.num_nodes());
}
BENCHMARK(BM_BatchedRescore);

void BM_SimulateAbm(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    AbmStrategy abm(0.5, 0.5);
    util::Rng srng(4);
    benchmark::DoNotOptimize(
        simulate(instance, truth, abm, budget, srng).total_benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          budget);
}
BENCHMARK(BM_SimulateAbm)->Arg(50)->Arg(200);

void BM_SimulateAbmPooled(benchmark::State& state) {
  // The workspace path run_experiment uses per worker: persistent strategy,
  // pooled view/truth/trace, zero steady-state allocations.
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  SimWorkspace ws;
  AbmStrategy abm(0.5, 0.5);
  SimulationResult out;
  for (auto _ : state) {
    util::Rng srng(4);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, budget, srng, view, ws, out);
    benchmark::DoNotOptimize(out.total_benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          budget);
}
BENCHMARK(BM_SimulateAbmPooled)->Arg(50)->Arg(200);

void BM_SimulateAbmReference(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    AbmStrategy::Config config;
    config.weights = {0.5, 0.5};
    config.incremental = false;
    AbmStrategy abm(config);
    util::Rng srng(4);
    benchmark::DoNotOptimize(
        simulate(instance, truth, abm, budget, srng).total_benefit);
  }
}
BENCHMARK(BM_SimulateAbmReference)->Arg(50);

void BM_SimulateRandom(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(5);
  const Realization truth = Realization::sample(instance, rng);
  for (auto _ : state) {
    RandomStrategy random;
    util::Rng srng(6);
    benchmark::DoNotOptimize(
        simulate(instance, truth, random, 200, srng).total_benefit);
  }
}
BENCHMARK(BM_SimulateRandom);

void BM_PageRank(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(instance.graph()));
  }
}
BENCHMARK(BM_PageRank);

void BM_GenerateFacebookLike(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(8);
    benchmark::DoNotOptimize(
        datasets::make_topology("facebook", 0.25, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateFacebookLike);

void BM_GenerateDblpLike(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(9);
    benchmark::DoNotOptimize(
        datasets::make_topology("dblp", 0.01, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateDblpLike);

void BM_CsrBuild(benchmark::State& state) {
  util::Rng rng(10);
  const graph::GraphBuilder builder =
      graph::barabasi_albert(5000, 10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build().num_edges());
  }
}
BENCHMARK(BM_CsrBuild);

// ---------------------------------------------------------------------------
// --json mode: the sweep-cell workload, fresh vs pooled, with alloc counts.
// ---------------------------------------------------------------------------

struct CellWorkloadResult {
  double cells_per_sec = 0.0;
  double allocs_per_cell = 0.0;
};

/// One sweep cell, old-style: every object constructed from scratch —
/// exactly what run_experiment did per (sample, run, strategy) before the
/// workspace refactor.
double run_cell_fresh(const AccuInstance& instance, std::uint64_t cell,
                      std::uint32_t budget) {
  util::Rng truth_rng(cell + 1);
  const Realization truth = Realization::sample(instance, truth_rng);
  AbmStrategy abm(0.5, 0.5);
  util::Rng srng(cell + 101);
  return simulate(instance, truth, abm, budget, srng).total_benefit;
}

CellWorkloadResult measure_fresh(const AccuInstance& instance,
                                 std::uint64_t cells, std::uint32_t budget) {
  double sink = 0.0;
  for (std::uint64_t c = 0; c < 8; ++c) {  // warmup (cache parity)
    sink += run_cell_fresh(instance, c, budget);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < cells; ++c) {
    sink += run_cell_fresh(instance, c, budget);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(sink);
  return {static_cast<double>(cells) / elapsed.count(),
          static_cast<double>(allocs) / static_cast<double>(cells)};
}

CellWorkloadResult measure_pooled(const AccuInstance& instance,
                                  std::uint64_t cells, std::uint32_t budget) {
  SimWorkspace ws;
  AbmStrategy abm(0.5, 0.5);
  SimulationResult out;
  double sink = 0.0;
  auto run_cell = [&](std::uint64_t cell) {
    util::Rng truth_rng(cell + 1);
    const Realization& truth = ws.sample_truth(instance, truth_rng);
    util::Rng srng(cell + 101);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, budget, srng, view, ws, out);
    return out.total_benefit;
  };
  for (std::uint64_t c = 0; c < 8; ++c) {  // warmup: grow the pools
    sink += run_cell(c);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < cells; ++c) {
    sink += run_cell(c);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(sink);
  return {static_cast<double>(cells) / elapsed.count(),
          static_cast<double>(allocs) / static_cast<double>(cells)};
}

/// Wall-clock of `iters` calls to `body`, after `warmup` unmeasured calls.
template <typename F>
double measure_seconds(std::uint64_t warmup, std::uint64_t iters, F&& body) {
  for (std::uint64_t i = 0; i < warmup; ++i) body(i);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Per-op nanoseconds for every hot kernel of the simulation stack, on the
/// same twitter-0.03 instance as the cell workload.  These are the numbers
/// the per-PR BENCH_micro_core.json snapshots track over time
/// (tools/accu_bench_diff compares a fresh run against the committed
/// snapshot in CI).
struct KernelTimings {
  double realization_sample_ns = 0.0;   // per pooled full resample
  double observation_update_ns = 0.0;   // per accepted request folded in
  double potential_scalar_ns = 0.0;     // per scalar potential() call
  double batched_rescore_ns = 0.0;      // per candidate, prepare + ranged
  double abm_round_ns = 0.0;            // per round of a pooled ABM attack
  double deferred_delivery_ns = 0.0;    // per delivered revelation (drain
                                        // only, delayed:5 queue of 64)
};

/// Pooled full-population rescore (prepare + ranged through reused
/// scratch — the exact path BatchedABM / lookahead ranking run per round).
/// Returns ns per candidate scored.
double measure_rescore_ns(const AccuInstance& instance) {
  const NodeId n = instance.num_nodes();
  const AttackerView view(instance);
  ScorePack pack;
  pack.build(instance);
  const PotentialWeights weights{0.5, 0.5};
  ScoreBatchScratch scratch;
  std::vector<double> scores(n);
  const std::uint64_t iters = 400;
  const double s = measure_seconds(8, iters, [&](std::uint64_t) {
    score_batch_all(pack, view, weights, scratch, nullptr, scores.data());
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  });
  return s * 1e9 / static_cast<double>(iters * n);
}

/// Pooled realization resample (the sweep truth path).  Returns ns per
/// full resample call.
double measure_resample_ns(const AccuInstance& instance) {
  util::Rng rng(11);
  Realization truth = Realization::sample(instance, rng);
  const std::uint64_t iters = 200;
  const double s = measure_seconds(
      8, iters, [&](std::uint64_t) { truth.resample(instance, rng); });
  return s * 1e9 / static_cast<double>(iters);
}

KernelTimings measure_kernels(const AccuInstance& instance) {
  KernelTimings t;
  const NodeId n = instance.num_nodes();

  t.realization_sample_ns = measure_resample_ns(instance);
  {  // Observation update: 64 acceptances folded into a reused view.
    util::Rng rng(12);
    const Realization truth = Realization::sample(instance, rng);
    AttackerView view(instance);
    const std::uint64_t iters = 100;
    double sink = 0.0;
    const double s = measure_seconds(4, iters, [&](std::uint64_t) {
      view.reset(instance);
      for (NodeId v = 0; v < 64; ++v) view.record_acceptance(v, truth);
      sink += view.current_benefit();
    });
    benchmark::DoNotOptimize(sink);
    t.observation_update_ns = s * 1e9 / static_cast<double>(iters * 64);
  }
  {  // Scalar potential (the reference kernel) on a fresh view.
    const AttackerView view(instance);
    const AbmStrategy abm(0.5, 0.5);
    const std::uint64_t iters = 400000;
    double sink = 0.0;
    const double s = measure_seconds(1000, iters, [&](std::uint64_t i) {
      sink += abm.potential(view, static_cast<NodeId>(i % n));
    });
    benchmark::DoNotOptimize(sink);
    t.potential_scalar_ns = s * 1e9 / static_cast<double>(iters);
  }
  t.batched_rescore_ns = measure_rescore_ns(instance);
  {  // Full ABM round through the pooled engine path.
    util::Rng rng(13);
    const Realization truth = Realization::sample(instance, rng);
    const std::uint32_t budget = 50;
    SimWorkspace ws;
    AbmStrategy abm(0.5, 0.5);
    SimulationResult out;
    const std::uint64_t iters = 50;
    double sink = 0.0;
    const double s = measure_seconds(4, iters, [&](std::uint64_t) {
      util::Rng srng(14);
      AttackerView& view = ws.reset_view(instance);
      simulate_into(instance, truth, abm, budget, srng, view, ws, out);
      sink += out.total_benefit;
    });
    benchmark::DoNotOptimize(sink);
    t.abm_round_ns = s * 1e9 / static_cast<double>(iters * budget);
  }
  {  // Isolated deferred-revelation drain (core/feedback.hpp).  Queue 64
     // acceptances under delayed:5, advance the clock past every due round,
     // then time *only* the deliver_next_revelation loop — the setup
     // (reset, arm, record) runs off the clock, so this is the per-delivery
     // cost of landing a queued neighborhood revelation, not the cost of a
     // whole delayed round.
    util::Rng rng(13);
    const Realization truth = Realization::sample(instance, rng);
    const NodeId accepted = 64;
    AttackerView view(instance);
    AttackerView::AcceptanceEffects effects;
    const std::uint64_t warmup = 4;
    const std::uint64_t iters = 200;
    double drain_seconds = 0.0;
    for (std::uint64_t i = 0; i < warmup + iters; ++i) {
      view.reset(instance);
      view.arm_feedback(FeedbackModel{FeedbackKind::kDelayed, 5});
      for (NodeId v = 0; v < accepted; ++v) {
        view.set_feedback_round(v);
        view.record_acceptance(v, truth, effects);
      }
      view.set_feedback_round(accepted + 5);
      const auto start = std::chrono::steady_clock::now();
      while (view.has_due_revelation()) {
        benchmark::DoNotOptimize(view.deliver_next_revelation(truth, effects));
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (i >= warmup) drain_seconds += elapsed.count();
    }
    t.deferred_delivery_ns =
        drain_seconds * 1e9 / static_cast<double>(iters * accepted);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Per-ISA kernel timings: the three raw score_simd kernels plus the two
// composite paths built on them, re-measured under each supported kernel
// table.  All tables are bit-identical by contract (score_simd.hpp), so
// these rows differ only in speed.
// ---------------------------------------------------------------------------

struct IsaKernelTimings {
  const char* isa = "";
  double row_gather_mul_ns = 0.0;     // per slot, 4096-slot synthetic row
  double row_sum_ns = 0.0;            // per slot, 4096-slot synthetic row
  double bernoulli_pack_ns = 0.0;     // per draw, 32768-draw batch
  double batched_rescore_ns = 0.0;    // per candidate (prepare + ranged)
  double realization_sample_ns = 0.0; // per pooled full resample
};

IsaKernelTimings measure_isa_kernels(const AccuInstance& instance,
                                     simd::Isa isa) {
  simd::select_isa(isa);
  const simd::ScoreKernels& k = simd::kernels();
  IsaKernelTimings t;
  t.isa = simd::isa_name(isa);

  const std::uint32_t slots = 4096;
  util::Rng rng(21);
  std::vector<double> values(slots);
  std::vector<double> table(slots);
  std::vector<NodeId> nodes(slots);
  for (std::uint32_t s = 0; s < slots; ++s) {
    values[s] = static_cast<double>(rng() >> 11) * 0x1p-53;
    table[s] = static_cast<double>(rng() >> 11) * 0x1p-53;
    nodes[s] = static_cast<NodeId>(rng() % slots);
  }
  {
    double sink = 0.0;
    const std::uint64_t iters = 20000;
    const double s = measure_seconds(500, iters, [&](std::uint64_t) {
      sink += k.row_gather_mul(values.data(), nodes.data(), table.data(), 0,
                               slots);
    });
    benchmark::DoNotOptimize(sink);
    t.row_gather_mul_ns = s * 1e9 / static_cast<double>(iters * slots);
  }
  {
    double sink = 0.0;
    const std::uint64_t iters = 40000;
    const double s = measure_seconds(500, iters, [&](std::uint64_t) {
      sink += k.row_sum(values.data(), 0, slots);
    });
    benchmark::DoNotOptimize(sink);
    t.row_sum_ns = s * 1e9 / static_cast<double>(iters * slots);
  }
  {
    const std::size_t draws = 32768;
    std::vector<std::uint64_t> raw(draws);
    std::vector<std::uint64_t> thr(draws);
    std::vector<std::uint64_t> out((draws + 63) / 64);
    for (std::size_t i = 0; i < draws; ++i) {
      raw[i] = rng();
      thr[i] = rng() >> 11;
    }
    const std::uint64_t iters = 4000;
    const double s = measure_seconds(100, iters, [&](std::uint64_t) {
      k.bernoulli_pack(raw.data(), thr.data(), draws, out.data());
      benchmark::DoNotOptimize(out.data());
      benchmark::ClobberMemory();
    });
    t.bernoulli_pack_ns = s * 1e9 / static_cast<double>(iters * draws);
  }
  t.batched_rescore_ns = measure_rescore_ns(instance);
  t.realization_sample_ns = measure_resample_ns(instance);
  return t;
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char line[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  out += line;
}

int run_json_mode(const char* path) {
  const AccuInstance& instance = twitter_instance();
  const std::uint64_t cells = 64;
  const std::uint32_t budget = 50;
  const CellWorkloadResult fresh = measure_fresh(instance, cells, budget);
  const CellWorkloadResult pooled = measure_pooled(instance, cells, budget);
  const double reduction =
      fresh.allocs_per_cell /
      (pooled.allocs_per_cell > 0.0 ? pooled.allocs_per_cell : 1.0);

  // Headline kernels run under the automatic (best supported) table — the
  // same one run_experiment picks by default.
  simd::select_auto();
  const KernelTimings kernels = measure_kernels(instance);
  const char* active = simd::isa_name(simd::active_isa());

  // Then each supported table in turn, scalar first (the oracle row).
  std::vector<IsaKernelTimings> per_isa;
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::isa_supported(isa)) {
      per_isa.push_back(measure_isa_kernels(instance, isa));
    }
  }
  simd::select_auto();

  std::string json;
  json += "{\n";
  json += "  \"workload\": \"twitter-0.03 ABM sweep cell\",\n";
  append_fmt(json, "  \"cells\": %llu,\n",
             static_cast<unsigned long long>(cells));
  append_fmt(json, "  \"budget\": %u,\n", budget);
  append_fmt(json, "  \"fresh_cells_per_sec\": %.1f,\n", fresh.cells_per_sec);
  append_fmt(json, "  \"fresh_allocs_per_cell\": %.2f,\n",
             fresh.allocs_per_cell);
  append_fmt(json, "  \"pooled_cells_per_sec\": %.1f,\n",
             pooled.cells_per_sec);
  append_fmt(json, "  \"pooled_allocs_per_cell\": %.2f,\n",
             pooled.allocs_per_cell);
  append_fmt(json, "  \"alloc_reduction_factor\": %.1f,\n", reduction);
  json += "  \"kernels\": {\n";
  append_fmt(json, "    \"realization_sample_ns\": %.1f,\n",
             kernels.realization_sample_ns);
  append_fmt(json, "    \"observation_update_ns\": %.1f,\n",
             kernels.observation_update_ns);
  append_fmt(json, "    \"potential_scalar_ns\": %.1f,\n",
             kernels.potential_scalar_ns);
  append_fmt(json, "    \"batched_rescore_ns_per_candidate\": %.2f,\n",
             kernels.batched_rescore_ns);
  append_fmt(json, "    \"abm_round_ns\": %.1f,\n", kernels.abm_round_ns);
  append_fmt(json, "    \"deferred_delivery_ns\": %.1f\n",
             kernels.deferred_delivery_ns);
  json += "  },\n";
  json += "  \"simd\": {\n";
  append_fmt(json, "    \"active\": \"%s\",\n", active);
  for (std::size_t i = 0; i < per_isa.size(); ++i) {
    const IsaKernelTimings& t = per_isa[i];
    append_fmt(json, "    \"%s\": {\n", t.isa);
    append_fmt(json, "      \"row_gather_mul_ns\": %.3f,\n",
               t.row_gather_mul_ns);
    append_fmt(json, "      \"row_sum_ns\": %.3f,\n", t.row_sum_ns);
    append_fmt(json, "      \"bernoulli_pack_ns\": %.3f,\n",
               t.bernoulli_pack_ns);
    append_fmt(json, "      \"batched_rescore_ns_per_candidate\": %.2f,\n",
               t.batched_rescore_ns);
    append_fmt(json, "      \"realization_sample_ns\": %.1f\n",
               t.realization_sample_ns);
    json += (i + 1 < per_isa.size()) ? "    },\n" : "    }\n";
  }
  json += "  }\n";
  json += "}\n";

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_core: cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::fputs(json.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          i + 1 < argc ? argv[i + 1] : "BENCH_micro_core.json";
      return run_json_mode(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
