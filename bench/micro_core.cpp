// Google-Benchmark microbenchmarks for the hot paths: potential evaluation,
// observation updates, realization sampling, PageRank, generators, and a
// full ABM attack.  These are engineering benchmarks (not paper figures);
// they guard the complexity claims in DESIGN.md §7.
//
// Besides the google-benchmark suite, the binary has a second mode:
//
//   micro_core --json [path]
//
// runs the sweep-cell workload twice — once allocating everything fresh per
// cell (the pre-engine behaviour) and once through a reused SimWorkspace +
// persistent strategy (what run_experiment does per worker since PR 3) —
// counting every operator-new call via the replaced global allocator — then
// times every hot kernel of the simulation stack (realization sampling,
// observation update, scalar potential, batched rescore, full ABM round),
// and writes the numbers as JSON (default BENCH_micro_core.json).  The
// repo-root BENCH_micro_core.json is the committed per-PR snapshot of these
// numbers; tools/ci.sh gates pooled allocs/cell against
// bench/micro_core_allocs.baseline so the O(1)-allocations-per-cell
// property cannot silently regress.

// GCC cannot see that the replaced operator new below is malloc-backed and
// flags every inlined new/delete pair as mismatched; the pairing is correct
// by construction (new -> malloc, delete -> free), so silence the false
// positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/pagerank.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global allocator with a malloc-backed one
// that counts every allocation.  The relaxed atomic adds ~1ns per call, far
// below the noise floor of anything measured here.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace accu;

const AccuInstance& twitter_instance() {
  static const AccuInstance instance = [] {
    util::Rng rng(7);
    datasets::DatasetConfig config;
    config.scale = 0.03;  // ~2.4k nodes, mean degree ~44
    return datasets::make_dataset("twitter", config, rng);
  }();
  return instance;
}

void BM_RealizationSample(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Realization::sample(instance, rng));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      instance.graph().num_edges());
}
BENCHMARK(BM_RealizationSample);

void BM_PotentialEvaluation(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  const AttackerView view(instance);
  const AbmStrategy abm(0.5, 0.5);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abm.potential(view, u));
    u = (u + 1) % instance.num_nodes();
  }
}
BENCHMARK(BM_PotentialEvaluation);

void BM_ObservationUpdate(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(2);
  const Realization truth = Realization::sample(instance, rng);
  for (auto _ : state) {
    state.PauseTiming();
    AttackerView view(instance);
    state.ResumeTiming();
    for (NodeId v = 0; v < 64; ++v) view.record_acceptance(v, truth);
    benchmark::DoNotOptimize(view.current_benefit());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ObservationUpdate);

void BM_BatchedRescore(benchmark::State& state) {
  // The flat full-population rescore (core/score.hpp) that BatchedABM and
  // lookahead ranking run per round; items = candidates scored.
  const AccuInstance& instance = twitter_instance();
  const AttackerView view(instance);
  ScorePack pack;
  pack.build(instance);
  const PotentialWeights weights{0.5, 0.5};
  std::vector<double> scores(instance.num_nodes());
  for (auto _ : state) {
    score_batch(pack, view, weights, 0, instance.num_nodes(), scores.data());
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          instance.num_nodes());
}
BENCHMARK(BM_BatchedRescore);

void BM_SimulateAbm(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    AbmStrategy abm(0.5, 0.5);
    util::Rng srng(4);
    benchmark::DoNotOptimize(
        simulate(instance, truth, abm, budget, srng).total_benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          budget);
}
BENCHMARK(BM_SimulateAbm)->Arg(50)->Arg(200);

void BM_SimulateAbmPooled(benchmark::State& state) {
  // The workspace path run_experiment uses per worker: persistent strategy,
  // pooled view/truth/trace, zero steady-state allocations.
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  SimWorkspace ws;
  AbmStrategy abm(0.5, 0.5);
  SimulationResult out;
  for (auto _ : state) {
    util::Rng srng(4);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, budget, srng, view, ws, out);
    benchmark::DoNotOptimize(out.total_benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          budget);
}
BENCHMARK(BM_SimulateAbmPooled)->Arg(50)->Arg(200);

void BM_SimulateAbmReference(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    AbmStrategy::Config config;
    config.weights = {0.5, 0.5};
    config.incremental = false;
    AbmStrategy abm(config);
    util::Rng srng(4);
    benchmark::DoNotOptimize(
        simulate(instance, truth, abm, budget, srng).total_benefit);
  }
}
BENCHMARK(BM_SimulateAbmReference)->Arg(50);

void BM_SimulateRandom(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(5);
  const Realization truth = Realization::sample(instance, rng);
  for (auto _ : state) {
    RandomStrategy random;
    util::Rng srng(6);
    benchmark::DoNotOptimize(
        simulate(instance, truth, random, 200, srng).total_benefit);
  }
}
BENCHMARK(BM_SimulateRandom);

void BM_PageRank(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(instance.graph()));
  }
}
BENCHMARK(BM_PageRank);

void BM_GenerateFacebookLike(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(8);
    benchmark::DoNotOptimize(
        datasets::make_topology("facebook", 0.25, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateFacebookLike);

void BM_GenerateDblpLike(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(9);
    benchmark::DoNotOptimize(
        datasets::make_topology("dblp", 0.01, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateDblpLike);

void BM_CsrBuild(benchmark::State& state) {
  util::Rng rng(10);
  const graph::GraphBuilder builder =
      graph::barabasi_albert(5000, 10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build().num_edges());
  }
}
BENCHMARK(BM_CsrBuild);

// ---------------------------------------------------------------------------
// --json mode: the sweep-cell workload, fresh vs pooled, with alloc counts.
// ---------------------------------------------------------------------------

struct CellWorkloadResult {
  double cells_per_sec = 0.0;
  double allocs_per_cell = 0.0;
};

/// One sweep cell, old-style: every object constructed from scratch —
/// exactly what run_experiment did per (sample, run, strategy) before the
/// workspace refactor.
double run_cell_fresh(const AccuInstance& instance, std::uint64_t cell,
                      std::uint32_t budget) {
  util::Rng truth_rng(cell + 1);
  const Realization truth = Realization::sample(instance, truth_rng);
  AbmStrategy abm(0.5, 0.5);
  util::Rng srng(cell + 101);
  return simulate(instance, truth, abm, budget, srng).total_benefit;
}

CellWorkloadResult measure_fresh(const AccuInstance& instance,
                                 std::uint64_t cells, std::uint32_t budget) {
  double sink = 0.0;
  for (std::uint64_t c = 0; c < 8; ++c) {  // warmup (cache parity)
    sink += run_cell_fresh(instance, c, budget);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < cells; ++c) {
    sink += run_cell_fresh(instance, c, budget);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(sink);
  return {static_cast<double>(cells) / elapsed.count(),
          static_cast<double>(allocs) / static_cast<double>(cells)};
}

CellWorkloadResult measure_pooled(const AccuInstance& instance,
                                  std::uint64_t cells, std::uint32_t budget) {
  SimWorkspace ws;
  AbmStrategy abm(0.5, 0.5);
  SimulationResult out;
  double sink = 0.0;
  auto run_cell = [&](std::uint64_t cell) {
    util::Rng truth_rng(cell + 1);
    const Realization& truth = ws.sample_truth(instance, truth_rng);
    util::Rng srng(cell + 101);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, budget, srng, view, ws, out);
    return out.total_benefit;
  };
  for (std::uint64_t c = 0; c < 8; ++c) {  // warmup: grow the pools
    sink += run_cell(c);
  }
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < cells; ++c) {
    sink += run_cell(c);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(sink);
  return {static_cast<double>(cells) / elapsed.count(),
          static_cast<double>(allocs) / static_cast<double>(cells)};
}

/// Wall-clock of `iters` calls to `body`, after `warmup` unmeasured calls.
template <typename F>
double measure_seconds(std::uint64_t warmup, std::uint64_t iters, F&& body) {
  for (std::uint64_t i = 0; i < warmup; ++i) body(i);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Per-op nanoseconds for every hot kernel of the simulation stack, on the
/// same twitter-0.03 instance as the cell workload.  These are the numbers
/// the per-PR BENCH_micro_core.json snapshots track over time.
struct KernelTimings {
  double realization_sample_ns = 0.0;   // per edge+node resample
  double observation_update_ns = 0.0;   // per accepted request folded in
  double potential_scalar_ns = 0.0;     // per scalar potential() call
  double batched_rescore_ns = 0.0;      // per candidate in score_batch
  double abm_round_ns = 0.0;            // per round of a pooled ABM attack
  double deferred_delivery_ns = 0.0;    // per round, ABM under delayed:5
};

KernelTimings measure_kernels(const AccuInstance& instance) {
  KernelTimings t;
  const NodeId n = instance.num_nodes();

  {  // Realization sampling (pooled resample — the sweep path).
    util::Rng rng(11);
    Realization truth = Realization::sample(instance, rng);
    const std::uint64_t iters = 200;
    const double s = measure_seconds(
        8, iters, [&](std::uint64_t) { truth.resample(instance, rng); });
    t.realization_sample_ns = s * 1e9 / static_cast<double>(iters);
  }
  {  // Observation update: 64 acceptances folded into a reused view.
    util::Rng rng(12);
    const Realization truth = Realization::sample(instance, rng);
    AttackerView view(instance);
    const std::uint64_t iters = 100;
    double sink = 0.0;
    const double s = measure_seconds(4, iters, [&](std::uint64_t) {
      view.reset(instance);
      for (NodeId v = 0; v < 64; ++v) view.record_acceptance(v, truth);
      sink += view.current_benefit();
    });
    benchmark::DoNotOptimize(sink);
    t.observation_update_ns = s * 1e9 / static_cast<double>(iters * 64);
  }
  {  // Scalar potential (the reference kernel) on a fresh view.
    const AttackerView view(instance);
    const AbmStrategy abm(0.5, 0.5);
    const std::uint64_t iters = 400000;
    double sink = 0.0;
    const double s = measure_seconds(1000, iters, [&](std::uint64_t i) {
      sink += abm.potential(view, static_cast<NodeId>(i % n));
    });
    benchmark::DoNotOptimize(sink);
    t.potential_scalar_ns = s * 1e9 / static_cast<double>(iters);
  }
  {  // Batched rescore over the whole population.
    const AttackerView view(instance);
    ScorePack pack;
    pack.build(instance);
    const PotentialWeights weights{0.5, 0.5};
    std::vector<double> scores(n);
    const std::uint64_t iters = 400;
    const double s = measure_seconds(8, iters, [&](std::uint64_t) {
      score_batch(pack, view, weights, 0, n, scores.data());
      benchmark::DoNotOptimize(scores.data());
      benchmark::ClobberMemory();
    });
    t.batched_rescore_ns = s * 1e9 / static_cast<double>(iters * n);
  }
  {  // Full ABM round through the pooled engine path.
    util::Rng rng(13);
    const Realization truth = Realization::sample(instance, rng);
    const std::uint32_t budget = 50;
    SimWorkspace ws;
    AbmStrategy abm(0.5, 0.5);
    SimulationResult out;
    const std::uint64_t iters = 50;
    double sink = 0.0;
    const double s = measure_seconds(4, iters, [&](std::uint64_t) {
      util::Rng srng(14);
      AttackerView& view = ws.reset_view(instance);
      simulate_into(instance, truth, abm, budget, srng, view, ws, out);
      sink += out.total_benefit;
    });
    benchmark::DoNotOptimize(sink);
    t.abm_round_ns = s * 1e9 / static_cast<double>(iters * budget);
  }
  {  // The same pooled ABM attack under delayed-by-5 feedback: the delta vs
     // abm_round_ns is the cost of the pending-revelation queue plus the
     // round-boundary delivery drain (core/feedback.hpp).
    util::Rng rng(13);
    const Realization truth = Realization::sample(instance, rng);
    const std::uint32_t budget = 50;
    const FeedbackModel delayed{FeedbackKind::kDelayed, 5};
    SimWorkspace ws;
    AbmStrategy abm(0.5, 0.5);
    SimulationResult out;
    const std::uint64_t iters = 50;
    double sink = 0.0;
    const double s = measure_seconds(4, iters, [&](std::uint64_t) {
      util::Rng srng(14);
      AttackerView& view = ws.reset_view(instance);
      simulate_into(instance, truth, abm, budget, srng, view, ws, out,
                    nullptr, delayed);
      sink += out.total_benefit;
    });
    benchmark::DoNotOptimize(sink);
    t.deferred_delivery_ns = s * 1e9 / static_cast<double>(iters * budget);
  }
  return t;
}

int run_json_mode(const char* path) {
  const AccuInstance& instance = twitter_instance();
  const std::uint64_t cells = 64;
  const std::uint32_t budget = 50;
  const CellWorkloadResult fresh = measure_fresh(instance, cells, budget);
  const CellWorkloadResult pooled = measure_pooled(instance, cells, budget);
  const double reduction =
      fresh.allocs_per_cell /
      (pooled.allocs_per_cell > 0.0 ? pooled.allocs_per_cell : 1.0);
  const KernelTimings kernels = measure_kernels(instance);

  char json[2048];
  std::snprintf(
      json, sizeof json,
      "{\n"
      "  \"workload\": \"twitter-0.03 ABM sweep cell\",\n"
      "  \"cells\": %llu,\n"
      "  \"budget\": %u,\n"
      "  \"fresh_cells_per_sec\": %.1f,\n"
      "  \"fresh_allocs_per_cell\": %.2f,\n"
      "  \"pooled_cells_per_sec\": %.1f,\n"
      "  \"pooled_allocs_per_cell\": %.2f,\n"
      "  \"alloc_reduction_factor\": %.1f,\n"
      "  \"kernels\": {\n"
      "    \"realization_sample_ns\": %.1f,\n"
      "    \"observation_update_ns\": %.1f,\n"
      "    \"potential_scalar_ns\": %.1f,\n"
      "    \"batched_rescore_ns_per_candidate\": %.2f,\n"
      "    \"abm_round_ns\": %.1f,\n"
      "    \"deferred_delivery_ns\": %.1f\n"
      "  }\n"
      "}\n",
      static_cast<unsigned long long>(cells), budget, fresh.cells_per_sec,
      fresh.allocs_per_cell, pooled.cells_per_sec, pooled.allocs_per_cell,
      reduction, kernels.realization_sample_ns, kernels.observation_update_ns,
      kernels.potential_scalar_ns, kernels.batched_rescore_ns,
      kernels.abm_round_ns, kernels.deferred_delivery_ns);

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_core: cannot write %s\n", path);
    return 1;
  }
  std::fputs(json, out);
  std::fclose(out);
  std::fputs(json, stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          i + 1 < argc ? argv[i + 1] : "BENCH_micro_core.json";
      return run_json_mode(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
