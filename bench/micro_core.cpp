// Google-Benchmark microbenchmarks for the hot paths: potential evaluation,
// observation updates, realization sampling, PageRank, generators, and a
// full ABM attack.  These are engineering benchmarks (not paper figures);
// they guard the complexity claims in DESIGN.md §7.

#include <benchmark/benchmark.h>

#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/pagerank.hpp"

namespace {

using namespace accu;

const AccuInstance& twitter_instance() {
  static const AccuInstance instance = [] {
    util::Rng rng(7);
    datasets::DatasetConfig config;
    config.scale = 0.03;  // ~2.4k nodes, mean degree ~44
    return datasets::make_dataset("twitter", config, rng);
  }();
  return instance;
}

void BM_RealizationSample(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Realization::sample(instance, rng));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      instance.graph().num_edges());
}
BENCHMARK(BM_RealizationSample);

void BM_PotentialEvaluation(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  const AttackerView view(instance);
  const AbmStrategy abm(0.5, 0.5);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abm.potential(view, u));
    u = (u + 1) % instance.num_nodes();
  }
}
BENCHMARK(BM_PotentialEvaluation);

void BM_ObservationUpdate(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(2);
  const Realization truth = Realization::sample(instance, rng);
  for (auto _ : state) {
    state.PauseTiming();
    AttackerView view(instance);
    state.ResumeTiming();
    for (NodeId v = 0; v < 64; ++v) view.record_acceptance(v, truth);
    benchmark::DoNotOptimize(view.current_benefit());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ObservationUpdate);

void BM_SimulateAbm(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    AbmStrategy abm(0.5, 0.5);
    util::Rng srng(4);
    benchmark::DoNotOptimize(
        simulate(instance, truth, abm, budget, srng).total_benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          budget);
}
BENCHMARK(BM_SimulateAbm)->Arg(50)->Arg(200);

void BM_SimulateAbmReference(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    AbmStrategy::Config config;
    config.weights = {0.5, 0.5};
    config.incremental = false;
    AbmStrategy abm(config);
    util::Rng srng(4);
    benchmark::DoNotOptimize(
        simulate(instance, truth, abm, budget, srng).total_benefit);
  }
}
BENCHMARK(BM_SimulateAbmReference)->Arg(50);

void BM_SimulateRandom(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  util::Rng rng(5);
  const Realization truth = Realization::sample(instance, rng);
  for (auto _ : state) {
    RandomStrategy random;
    util::Rng srng(6);
    benchmark::DoNotOptimize(
        simulate(instance, truth, random, 200, srng).total_benefit);
  }
}
BENCHMARK(BM_SimulateRandom);

void BM_PageRank(benchmark::State& state) {
  const AccuInstance& instance = twitter_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(instance.graph()));
  }
}
BENCHMARK(BM_PageRank);

void BM_GenerateFacebookLike(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(8);
    benchmark::DoNotOptimize(
        datasets::make_topology("facebook", 0.25, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateFacebookLike);

void BM_GenerateDblpLike(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(9);
    benchmark::DoNotOptimize(
        datasets::make_topology("dblp", 0.01, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateDblpLike);

void BM_CsrBuild(benchmark::State& state) {
  util::Rng rng(10);
  const graph::GraphBuilder builder =
      graph::barabasi_albert(5000, 10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build().num_edges());
  }
}
BENCHMARK(BM_CsrBuild);

}  // namespace

BENCHMARK_MAIN();
