// Fig. 1 / §III-B reproduction: the two-user witness showing that the ACCU
// benefit function is not adaptive submodular, and that the adaptive total
// primal curvature of prior work is unbounded on it (so the curvature
// ratio 1 − (1 − 1/(δk))^k collapses to 0).

#include <cmath>
#include <cstdio>
#include <exception>
#include <iostream>

#include "core/theory/exact.hpp"
#include "core/theory/ratios.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  opts.declare("bf", "B_f of the cautious user v1 (default 5)")
      .declare("bfof", "B_fof of the cautious user v1 (default 1)");
  opts.check_unknown();
  const double bf = opts.get_double("bf", 5.0);
  const double bfof = opts.get_double("bfof", 1.0);

  // v0: reckless, q = 1.  v1: cautious, θ = 1.  Certain edge (v0, v1).
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  const std::vector<UserClass> classes = {UserClass::kReckless,
                                          UserClass::kCautious};
  const AccuInstance instance(b.build(), classes, {1.0, 0.0}, {1, 1},
                              BenefitModel({2.0, bf}, {1.0, bfof}));
  const auto worlds = enumerate_realizations(instance);

  AttackerView omega1(instance);  // ω1 = ∅
  const double delta1 = exact_marginal_gain(omega1, 1, worlds);

  AttackerView omega2(instance);  // ω2 = {v0 accepted, edge observed}
  omega2.record_acceptance(0, worlds.front().first);
  const double delta2 = exact_marginal_gain(omega2, 1, worlds);

  util::Table table({"partial realization", "Δ(v1|ω)", "comment"});
  table.row().cell("ω1 = ∅").cell(delta1, 3).cell(
      "v1 rejects: no mutual friends yet");
  table.row().cell("ω2 = {v2 accepted}").cell(delta2, 3).cell(
      "v1 accepts: B_f − B_fof");
  std::cout << "\n== Fig. 1 — non-submodularity witness ==\n";
  table.print(std::cout);
  std::cout << "Δ(v1|ω2) > Δ(v1|ω1) with ω1 ⊆ ω2 ⇒ adaptive submodularity "
               "fails.\n";
  const double gamma = total_primal_curvature(delta2, delta1);
  std::cout << "adaptive total primal curvature Γ(v1 | ω2, ω1) = "
            << (std::isinf(gamma) ? "∞ (unbounded)"
                                  : util::Table::format(gamma, 3))
            << "\n";
  std::cout << "curvature ratio with δ=10, k=20 (paper's generalized-model "
               "example): "
            << util::Table::format(curvature_ratio(10.0, 20), 3) << "\n";
  // The paper's own alternative: adaptive submodular ratio of this witness.
  const double lambda = adaptive_submodular_ratio(instance);
  std::cout << "adaptive submodular ratio λ = "
            << util::Table::format(lambda, 4)
            << " ⇒ Theorem 1 greedy guarantee 1 − e^{−λ} = "
            << util::Table::format(theorem1_ratio(lambda, 2, 2), 4) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
