// §III-B numerics: on a family of random enumerable instances, compute the
// adaptive submodular ratio λ, the Theorem 1 guarantee 1 − e^{−λ}, the
// exact value of the adaptive greedy (ABM with w_I = 0) and of the optimal
// adaptive policy, and report how tight the bound is in practice.  Also
// prints the curvature-ratio table (1 − (1 − 1/(δk))^k) the paper uses to
// motivate abandoning curvature for ACCU.

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>

#include "core/strategies/abm.hpp"
#include "core/theory/exact.hpp"
#include "core/theory/ratios.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace accu;

AccuInstance random_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::GraphBuilder b = graph::erdos_renyi(6, 0.45, rng);
  while (b.num_edges() < 4 || b.num_edges() > 8) {
    util::Rng retry(rng());
    b = graph::erdos_renyi(6, 0.45, retry);
  }
  const Graph g = b.build();
  std::vector<UserClass> classes(6, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(6, 1);
  for (NodeId v = 0; v < 6; ++v) {
    if (g.degree(v) >= 2) {
      classes[v] = UserClass::kCautious;
      thresholds[v] = 2;
      break;
    }
  }
  std::vector<double> q(6, 1.0);
  std::uint32_t free_coins = 0;
  for (NodeId v = 0; v < 6 && free_coins < 3; ++v) {
    if (classes[v] == UserClass::kReckless) {
      q[v] = 0.25 + 0.5 * rng.uniform();
      ++free_coins;
    }
  }
  for (NodeId v = 0; v < 6; ++v) {
    if (classes[v] == UserClass::kCautious) q[v] = 0.0;
  }
  return AccuInstance(g, classes, q, thresholds,
                      BenefitModel::paper_default(classes, 2.0, 9.0, 1.0));
}

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  opts.declare("instances", "number of random instances (default 8)")
      .declare("k", "budget (default 3)")
      .declare("seed", "base seed (default 2019)");
  opts.check_unknown();
  const auto count = static_cast<std::uint64_t>(opts.get_int("instances", 8));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 3));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 2019));

  util::Table table({"instance", "λ", "bound 1−e^{−λ}", "greedy",
                     "opt adaptive", "opt non-adaptive", "greedy/opt",
                     "bound holds"});
  for (std::uint64_t i = 0; i < count; ++i) {
    const AccuInstance instance = random_instance(seed + i);
    const auto worlds = enumerate_realizations(instance, 12);
    const double lambda = adaptive_submodular_ratio(instance, 12);
    const double bound = theorem1_ratio(lambda, k, k);
    const double greedy = exact_policy_value(
        instance, [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }, k,
        worlds);
    const double optimal = optimal_adaptive_value(instance, k, worlds);
    const double nonadaptive = optimal_nonadaptive_value(instance, k, worlds);
    const double achieved = optimal > 0 ? greedy / optimal : 1.0;
    table.row()
        .cell_int(static_cast<long long>(i))
        .cell(lambda, 4)
        .cell(bound, 4)
        .cell(greedy, 3)
        .cell(optimal, 3)
        .cell(nonadaptive, 3)
        .cell(achieved, 4)
        .cell(achieved + 1e-9 >= bound ? "yes" : "NO");
  }
  std::cout << "\n== Theorem 1 in practice (exact greedy vs exact optimal, "
               "k="
            << k << ") ==\n";
  table.print(std::cout);

  util::Table curvature({"δ", "k", "curvature ratio 1−(1−1/(δk))^k"});
  for (const double delta : {2.0, 5.0, 10.0, 100.0, 1e6}) {
    curvature.row().cell(delta, 0).cell_int(20).cell(
        curvature_ratio(delta, 20), 5);
  }
  std::cout << "\n== Curvature-based ratio of prior work (degenerates as "
               "δ→∞; paper example δ=10,k=20 ⇒ 0.095) ==\n";
  curvature.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
