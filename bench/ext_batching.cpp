// Extension study: batched requests (cf. paper reference [4]).
//
// Sends requests in batches of b computed from stale information; larger
// batches cut interaction rounds (real-world latency) but lose adaptivity.
// Expected shape: benefit decreases gently in b while rounds drop as ⌈k/b⌉;
// the cautious-friend count suffers most, since threshold-seeking depends
// on observing which mutual friends materialized.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/batched.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  if (!opts.has("samples")) config.samples = 2;
  const std::string dataset = opts.get("dataset", "twitter");

  std::vector<StrategyFactory> strategies = {
      {"sequential ABM",
       [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }}};
  for (const std::uint32_t b : {5u, 20u, 50u, 150u}) {
    strategies.push_back({"batch b=" + std::to_string(b), [b] {
                            return std::make_unique<BatchedAbmStrategy>(
                                PotentialWeights{0.5, 0.5}, b);
                          }});
  }
  const ExperimentResult result =
      run_experiment(bench::make_instance_factory(config, dataset),
                     strategies, bench::experiment_config(config));

  util::Table table({"policy", "rounds", "benefit", "±95%",
                     "#cautious friends"});
  for (std::size_t i = 0; i < result.strategy_names.size(); ++i) {
    const TraceAggregator& agg = result.aggregates[i];
    // Rounds: sequential = k; batch = ceil(k / b).
    std::uint32_t rounds = config.budget;
    if (i > 0) {
      const std::uint32_t b[] = {5, 20, 50, 150};
      rounds = (config.budget + b[i - 1] - 1) / b[i - 1];
    }
    table.row()
        .cell(result.strategy_names[i])
        .cell_int(rounds)
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.cautious_friends().mean(), 2);
  }
  bench::emit(table,
              "Extension — batched requests: adaptivity vs latency (" +
                  dataset + ", k=" + std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
