// Shared plumbing for the figure/table reproduction binaries: common CLI
// options, dataset-backed instance factories, the paper's strategy roster,
// and output helpers.  Each bench binary reproduces one table or figure of
// the paper (see DESIGN.md §5) and prints the series the paper plots, plus
// optional CSV for external plotting.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "datasets/datasets.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace accu::bench {

/// Options shared by every experiment binary.
struct CommonConfig {
  double scale_facebook = 1.0;    // paper-sized: 4,039 nodes
  double scale_slashdot = 0.10;   // ~7.7k of 77k nodes
  double scale_twitter = 0.08;    // ~6.5k of 81k nodes
  double scale_dblp = 0.025;      // ~7.9k of 317k nodes
  std::uint32_t budget = 200;
  std::uint32_t samples = 3;
  std::uint32_t runs = 3;
  std::uint64_t seed = 20190729;
  double cautious_bf = 50.0;      // B_f for cautious users (paper: 50)
  double theta_fraction = 0.3;    // θ_v = 0.3 · deg(v) (paper)
  std::uint32_t num_cautious = 100;
  double w_direct = 0.5;
  double w_indirect = 0.5;
  std::string csv_path;           // when set, write CSV next to the table
  bool verbose = false;
  std::uint32_t threads = 0;      // experiment workers; 0 = hardware
  // Supervision knobs, forwarded into ExperimentConfig: a per-cell
  // wall-clock deadline (0 = none), deterministic re-runs for cells that
  // blow it, and an optional checkpoint file so a killed study resumes.
  std::uint32_t deadline_ms = 0;
  std::uint32_t max_cell_retries = 0;
  std::string checkpoint_path;
};

/// Declares the shared options on `opts`; call before check_unknown().
void declare_common_options(util::Options& opts);

/// Reads the shared options (already declared) into a config; honours an
/// `--options=FILE` response file for defaults.
[[nodiscard]] CommonConfig read_common_config(util::Options& opts);

/// Scale multiplier for a dataset under this config.
[[nodiscard]] double dataset_scale(const CommonConfig& config,
                                   const std::string& dataset);

/// An InstanceFactory for one paper dataset under this config.  Each sample
/// index gets an independent network, as in the paper's 100-sample design.
[[nodiscard]] InstanceFactory make_instance_factory(
    const CommonConfig& config, const std::string& dataset);

/// The paper's four-strategy roster (ABM with the config's weights,
/// MaxDegree, PageRank, Random).
[[nodiscard]] std::vector<StrategyFactory> paper_strategies(
    const CommonConfig& config);

/// An ExperimentConfig carrying the shared knobs.
[[nodiscard]] ExperimentConfig experiment_config(const CommonConfig& config);

/// Prints the table to stdout and, when `csv_path` is non-empty, writes the
/// CSV file as well (logging the path).
void emit(const util::Table& table, const std::string& title,
          const std::string& csv_path);

}  // namespace accu::bench
