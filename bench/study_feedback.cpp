// Feedback-model study beyond the paper: how much of the adaptive
// attack's advantage survives when the platform restricts what the
// attacker observes.  Sweeps the FeedbackModel axis (full / myopic /
// delayed-by-d / batched-every-b) × budget and reports the empirical
// adaptivity gap — E[f | restricted feedback] / E[f | full feedback]
// under common random numbers, so only the feedback model differs
// between the paired runs.  full is the paper's setting (gap = 1 by
// construction); myopic is the fully-feedback-starved floor.
//
// Also prints a per-trial benefit-ratio histogram for each restricted
// model at the largest budget, and `--json=FILE` snapshots the gap
// surface for BENCH_feedback.json.

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/feedback.hpp"
#include "core/strategies/abm.hpp"
#include "core/theory/estimator.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace {

using namespace accu;

/// One paired (restricted, full) benefit sample per trial, common random
/// numbers — the per-trial view empirical_adaptivity_gap aggregates away.
struct PairedTrials {
  std::vector<double> restricted;
  std::vector<double> full;

  [[nodiscard]] double gap() const {
    double r = 0.0, f = 0.0;
    for (const double x : restricted) r += x;
    for (const double x : full) f += x;
    return f == 0.0 ? 1.0 : r / f;
  }
};

PairedTrials paired_trials(const AccuInstance& instance,
                           const FeedbackModel& feedback,
                           std::uint32_t budget, std::size_t trials,
                           double w_direct, double w_indirect,
                           util::Rng& rng) {
  PairedTrials out;
  out.restricted.reserve(trials);
  out.full.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    const Realization truth = Realization::sample(instance, rng);
    util::Rng restricted_rng = rng.split(2 * t + 1);
    util::Rng full_rng = restricted_rng;
    AbmStrategy restricted(w_direct, w_indirect);
    out.restricted.push_back(simulate(instance, truth, restricted, budget,
                                      restricted_rng, /*cancel=*/nullptr,
                                      feedback)
                                 .total_benefit);
    AbmStrategy full(w_direct, w_indirect);
    out.full.push_back(
        simulate(instance, truth, full, budget, full_rng).total_benefit);
  }
  return out;
}

/// Console histogram of per-trial benefit ratios.  The axis title names
/// the model *with its delay parameter* so delayed:4 and delayed:16 runs
/// are distinguishable in captured logs.
void print_ratio_histogram(const FeedbackModel& feedback,
                           const PairedTrials& trials) {
  util::Histogram hist(0.0, 1.25, 10);
  for (std::size_t t = 0; t < trials.restricted.size(); ++t) {
    if (trials.full[t] == 0.0) continue;
    hist.add(trials.restricted[t] / trials.full[t]);
  }
  std::printf("\n  per-trial benefit ratio under %s "
              "(x: f[%s]/f[full], y: trial fraction)\n",
              feedback.spec().c_str(), feedback.spec().c_str());
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const int bar = static_cast<int>(hist.fraction(b) * 40.0 + 0.5);
    std::printf("  [%5.2f, %5.2f) %-40.*s %zu\n", hist.bin_lo(b),
                hist.bin_hi(b), bar,
                "tttttttttttttttttttttttttttttttttttttttt", hist.count(b));
  }
}

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default facebook)");
  opts.declare("trials", "paired (restricted, full) trials per cell");
  opts.declare("json", "write a JSON snapshot to this path");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  const std::string dataset = opts.get("dataset", "facebook");
  const auto trials =
      static_cast<std::size_t>(opts.get_int("trials", 8));

  const std::vector<FeedbackModel> models = {
      FeedbackModel{},
      FeedbackModel{FeedbackKind::kMyopic, 0},
      FeedbackModel{FeedbackKind::kDelayed, 1},
      FeedbackModel{FeedbackKind::kDelayed, 4},
      FeedbackModel{FeedbackKind::kDelayed, 16},
      FeedbackModel{FeedbackKind::kBatched, 4},
      FeedbackModel{FeedbackKind::kBatched, 16},
  };
  std::vector<std::uint32_t> budgets;
  for (std::uint32_t k = config.budget / 8; k <= config.budget; k *= 2) {
    if (k > 0) budgets.push_back(k);
  }
  if (budgets.empty()) budgets.push_back(config.budget);

  util::Rng rng(config.seed);
  const AccuInstance instance =
      bench::make_instance_factory(config, dataset)(0, config.seed);

  util::Table table({"feedback", "k", "gap", "restricted", "full"});
  std::vector<PairedTrials> at_max_budget(models.size());
  std::string json = "{\n  \"workload\": \"" + dataset + "-" +
                     util::Table::format(bench::dataset_scale(config, dataset),
                                         2) +
                     " ABM, k<=" + std::to_string(config.budget) +
                     ", cautious=" + std::to_string(config.num_cautious) +
                     ", trials=" + std::to_string(trials) +
                     "\",\n  \"adaptivity_gap\": {\n";
  for (std::size_t m = 0; m < models.size(); ++m) {
    const FeedbackModel& feedback = models[m];
    json += "    \"" + feedback.spec() + "\": {";
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const std::uint32_t k = budgets[b];
      util::Rng cell_rng = rng.split(1000 * m + k);
      const PairedTrials paired =
          paired_trials(instance, feedback, k, trials, config.w_direct,
                        config.w_indirect, cell_rng);
      double restricted = 0.0, full = 0.0;
      for (const double x : paired.restricted) restricted += x;
      for (const double x : paired.full) full += x;
      table.row()
          .cell(feedback.spec())
          .cell_int(k)
          .cell(paired.gap(), 4)
          .cell(restricted / static_cast<double>(trials), 1)
          .cell(full / static_cast<double>(trials), 1);
      char cell[64];
      std::snprintf(cell, sizeof cell, "%s\"k_%u\": %.4f", b ? ", " : "", k,
                    paired.gap());
      json += cell;
      if (k == budgets.back()) at_max_budget[m] = paired;
    }
    json += m + 1 < models.size() ? "},\n" : "}\n";
  }
  json += "  }\n}\n";

  bench::emit(table,
              "Study — feedback model × budget adaptivity gap (" + dataset +
                  ", " + std::to_string(trials) + " paired trials)",
              config.csv_path);
  for (std::size_t m = 0; m < models.size(); ++m) {
    if (models[m].is_full()) continue;
    print_ratio_histogram(models[m], at_max_budget[m]);
  }

  if (opts.has("json")) {
    std::ofstream os(opts.get("json", ""));
    if (!os) throw IoError("cannot open --json file");
    os << json;
    std::printf("\nwrote %s\n", opts.get("json", "").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
