// Robustness study beyond the paper: how platform unreliability degrades
// the adaptive attack, and how much a retry policy buys back.  Sweeps the
// total fault rate × {no retry, fixed, exponential backoff} and reports the
// ABM's benefit, its advantage over the fault-blind write-off behaviour,
// and the fault accounting (retries spent, rounds lost to suspension,
// targets abandoned).  The paper's reliable platform is the 0.00 row.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default facebook)");
  opts.declare("suspension-rounds",
               "rounds lost per rate-limit suspension (default 3)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("samples")) config.samples = 2;
  const std::string dataset = opts.get("dataset", "facebook");
  const auto suspension =
      static_cast<std::uint32_t>(opts.get_int("suspension-rounds", 3));

  const double wd = config.w_direct;
  const double wi = config.w_indirect;
  const std::vector<StrategyFactory> strategies = {
      {"ABM", [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }},
  };
  const struct {
    const char* label;
    util::RetryPolicy policy;
  } retries[] = {
      {"none", util::RetryPolicy::none()},
      {"fixed", util::RetryPolicy::fixed(3)},
      {"exp", util::RetryPolicy::exponential_jitter(3)},
  };

  util::Table table({"fault rate", "retry", "benefit", "±95%",
                     "vs none %", "retries", "suspended", "abandoned"});
  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    double none_benefit = 0.0;
    for (const auto& retry : retries) {
      if (rate == 0.0 && retry.policy.kind != util::RetryKind::kNone) {
        continue;  // retries are a no-op on a reliable platform
      }
      ExperimentConfig cell = bench::experiment_config(config);
      cell.faults = FaultConfig::uniform(rate, suspension);
      cell.retry = retry.policy;
      const ExperimentResult result = run_experiment(
          bench::make_instance_factory(config, dataset), strategies, cell);
      const TraceAggregator& abm = result.by_name("ABM");
      const double benefit = abm.total_benefit().mean();
      if (retry.policy.kind == util::RetryKind::kNone) none_benefit = benefit;
      const double gain = none_benefit > 0.0
                              ? 100.0 * (benefit / none_benefit - 1.0)
                              : 0.0;
      table.row()
          .cell(rate, 2)
          .cell(retry.label)
          .cell(benefit, 1)
          .cell(abm.total_benefit().ci95_halfwidth(), 1)
          .cell(gain, 2)
          .cell(abm.retries().mean(), 1)
          .cell(abm.suspended_rounds().mean(), 1)
          .cell(abm.abandoned_targets().mean(), 1);
    }
  }
  bench::emit(table,
              "Study — platform faults × retry policy (" + dataset +
                  ", k=" + std::to_string(config.budget) + ", w=" +
                  std::to_string(suspension) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
