// Engineering study: what the serve daemon costs on top of the raw sweep.
//
// Three measurements, each against the same compare-kind job:
//
//   * submission latency — the atomic spool write (temp + fsync + rename +
//     directory fsync) a client pays per `accu serve submit`;
//   * scheduler overhead per cell — wall-clock of a daemon-run job
//     (journal, forked workers, per-cell checkpoint fsyncs, merge, report)
//     versus the identical run_experiment call in-process;
//   * throughput scaling — daemon cells/second at 1, 2, and 4 workers,
//     per durability mode (strict fsync-per-cell vs grouped commit).
//
// The durability axis is the point: strict mode's per-cell fsync is the
// serve throughput ceiling — worker processes gain nothing because their
// fsyncs serialize on the same device write queue (workers_2 ≈ workers_1
// in BENCH_serve.json history).  Grouped commit amortizes that fsync over
// group-cells, so it both lifts single-worker throughput and restores
// worker scaling.
//
// `--json=FILE` snapshots the numbers for BENCH_serve.json.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/instance_io.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "util/exit_codes.hpp"
#include "util/timer.hpp"

namespace {

using namespace accu;
namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string path =
      (fs::temp_directory_path() / name).string();
  std::error_code ec;
  fs::remove_all(path, ec);
  return path;
}

/// Runs one daemon session over a single submitted job; returns seconds.
double time_daemon_run(const std::string& root, const serve::JobSpec& spec,
                       std::uint32_t workers) {
  fs::create_directories(root + "/spool");
  serve::submit_job(root + "/spool", spec, "bench");
  serve::ServeConfig config;
  config.root = root;
  config.workers = workers;
  config.poll_ms = 5;
  config.exit_when_idle = true;
  const util::Timer timer;
  const int code = serve::run_daemon(config);
  const double seconds = timer.seconds();
  if (code != util::exit_code::kOk) {
    throw IoError("daemon run exited " + std::to_string(code));
  }
  return seconds;
}

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  opts.declare("scale", "facebook dataset scale (default 0.03)")
      .declare("k", "request budget per attack (default 8)")
      .declare("runs", "repetitions = grid cells (default 96)")
      .declare("seed", "master seed")
      .declare("submits", "spool writes for the latency probe (default 64)")
      .declare("durability",
               "daemon axis: strict | grouped | both (default both)")
      .declare("group-cells", "grouped mode: fsync every N cells (default 64)")
      .declare("group-ms", "grouped mode: fsync at least every T ms "
                           "(default 100)")
      .declare("json", "write a JSON snapshot to this path");
  opts.check_unknown();
  const double scale = opts.get_double("scale", 0.03);
  const auto budget = static_cast<std::uint32_t>(opts.get_int("k", 8));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs", 96));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto submits =
      static_cast<std::uint32_t>(opts.get_int("submits", 64));

  // One fixed instance shared by every probe.
  const std::string net_path = fresh_dir("accu_study_serve_net");
  {
    util::Rng rng(seed);
    datasets::DatasetConfig config;
    config.scale = scale;
    config.num_cautious = 10;
    write_instance_file(datasets::make_dataset("facebook", config, rng),
                        net_path);
  }
  serve::JobSpec spec;
  spec.kind = "compare";
  spec.instance = net_path;
  spec.budget = budget;
  spec.runs = runs;
  spec.seed = seed;
  spec.threads = 1;

  // --- submission latency --------------------------------------------------
  const std::string spool = fresh_dir("accu_study_serve_spool");
  fs::create_directories(spool);
  double submit_total_ms = 0.0, submit_max_ms = 0.0;
  for (std::uint32_t i = 0; i < submits; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "probe%04u", i);
    const util::Timer timer;
    serve::submit_job(spool, spec, name);
    const double ms = timer.milliseconds();
    submit_total_ms += ms;
    if (ms > submit_max_ms) submit_max_ms = ms;
  }
  const double submit_mean_ms = submit_total_ms / submits;

  // --- direct baseline -----------------------------------------------------
  const util::Timer direct_timer;
  const ExperimentResult direct = run_experiment(
      serve::job_instance_factory(spec), serve::compare_roster(),
      serve::shard_config(spec, 0, 1, ""));
  const double direct_s = direct_timer.seconds();
  if (!direct.failures.empty()) throw IoError("baseline sweep failed");
  const double cells = static_cast<double>(runs);

  // --- daemon runs: durability × workers -----------------------------------
  const std::string axis = opts.get("durability", "both");
  std::vector<std::string> modes;
  if (axis == "both") {
    modes = {"strict", "grouped"};
  } else {
    (void)util::DurabilityPolicy::parse_mode(axis);  // reject typos early
    modes = {axis};
  }
  const std::vector<std::uint32_t> worker_counts = {1, 2, 4};
  // seconds[mode][i] for worker_counts[i]
  std::vector<std::vector<double>> seconds;
  for (const std::string& mode : modes) {
    serve::JobSpec mode_spec = spec;
    mode_spec.durability = mode;
    mode_spec.group_cells =
        static_cast<std::uint32_t>(opts.get_int("group-cells", 64));
    mode_spec.group_ms =
        static_cast<std::uint32_t>(opts.get_int("group-ms", 100));
    std::vector<double> per_workers;
    for (const std::uint32_t workers : worker_counts) {
      char dir[64];
      std::snprintf(dir, sizeof dir, "accu_study_serve_%s_w%u",
                    mode.c_str(), workers);
      per_workers.push_back(time_daemon_run(fresh_dir(dir), mode_spec,
                                            workers));
    }
    seconds.push_back(std::move(per_workers));
  }
  const double overhead_ms_per_cell =
      (seconds[0][0] - direct_s) * 1000.0 / cells;

  util::Table table({"probe", "value"});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", submit_mean_ms);
  table.row().cell("submit mean ms").cell(buf);
  std::snprintf(buf, sizeof buf, "%.3f", submit_max_ms);
  table.row().cell("submit max ms").cell(buf);
  std::snprintf(buf, sizeof buf, "%.1f", cells / direct_s);
  table.row().cell("direct cells/s").cell(buf);
  std::snprintf(buf, sizeof buf, "%.3f", overhead_ms_per_cell);
  table.row().cell("serve overhead ms/cell (" + modes[0] + ", 1 worker)")
      .cell(buf);
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%.1f", cells / seconds[m][i]);
      char label[56];
      std::snprintf(label, sizeof label, "serve cells/s (%s) @ %u worker(s)",
                    modes[m].c_str(), worker_counts[i]);
      table.row().cell(label).cell(buf);
    }
  }
  if (modes.size() == 2) {
    std::snprintf(buf, sizeof buf, "%.2fx",
                  seconds[0][0] / seconds[1][0]);
    table.row().cell("grouped speedup @ 1 worker").cell(buf);
  }
  bench::emit(table,
              "Study — serve daemon overhead (facebook scale " +
                  std::to_string(scale) + ", " + std::to_string(runs) +
                  " cells)",
              "");

  if (opts.has("json")) {
    std::ofstream os(opts.get("json", ""));
    if (!os) throw IoError("cannot open --json file");
    char head[512];
    std::snprintf(
        head, sizeof head,
        "{\n"
        "  \"workload\": \"facebook-%.3g compare roster, k=%u, %u cells\",\n"
        "  \"submit_latency_mean_ms\": %.3f,\n"
        "  \"submit_latency_max_ms\": %.3f,\n"
        "  \"direct_cells_per_sec\": %.1f,\n"
        "  \"serve_overhead_ms_per_cell\": %.3f,\n"
        "  \"serve_cells_per_sec\": {\n",
        scale, budget, runs, submit_mean_ms, submit_max_ms,
        cells / direct_s, overhead_ms_per_cell);
    os << head;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      char block[256];
      std::snprintf(block, sizeof block,
                    "    \"%s\": {\n"
                    "      \"workers_1\": %.1f,\n"
                    "      \"workers_2\": %.1f,\n"
                    "      \"workers_4\": %.1f\n"
                    "    }%s\n",
                    modes[m].c_str(), cells / seconds[m][0],
                    cells / seconds[m][1], cells / seconds[m][2],
                    m + 1 < modes.size() ? "," : "");
      os << block;
    }
    os << "  }";
    if (modes.size() == 2) {
      char speedup[128];
      std::snprintf(speedup, sizeof speedup,
                    ",\n  \"grouped_speedup_workers_1\": %.2f",
                    seconds[0][0] / seconds[1][0]);
      os << speedup;
    }
    os << "\n}\n";
    std::printf("JSON snapshot written to %s\n",
                opts.get("json", "").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "study_serve: %s\n", e.what());
    return 1;
  }
}
