// Sensitivity study beyond the paper: how the *number* of cautious users
// shapes the problem.  The paper fixes |V_C| = 100; this sweep varies it
// and reports the ABM-vs-pure-greedy gap — the empirical value of the
// indirect (threshold-seeking) term as the non-submodular part of the
// objective grows — plus how many cautious prizes each policy collects.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  if (!opts.has("samples")) config.samples = 2;
  // Defaults where threshold-seeking is worth paying for: valuable prizes
  // and the near-optimal indirect weight from the Fig. 4 sweep.
  if (!opts.has("cautious-bf")) config.cautious_bf = 100.0;
  if (!opts.has("wi")) {
    config.w_indirect = 0.3;
    config.w_direct = 0.7;
  }
  const std::string dataset = opts.get("dataset", "twitter");

  const double wd = config.w_direct;
  const double wi = config.w_indirect;
  const std::vector<StrategyFactory> strategies = {
      {"ABM", [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }},
      {"Greedy", [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
  };
  util::Table table({"#cautious", "ABM benefit", "Greedy benefit",
                     "ABM advantage %", "ABM cautious", "Greedy cautious"});
  for (const std::uint32_t count : {0u, 50u, 100u, 200u, 400u}) {
    bench::CommonConfig cell = config;
    cell.num_cautious = count;
    cell.seed = config.seed + count;  // decorrelate rows
    const ExperimentResult result =
        run_experiment(bench::make_instance_factory(cell, dataset),
                       strategies, bench::experiment_config(cell));
    const TraceAggregator& abm = result.by_name("ABM");
    const TraceAggregator& greedy = result.by_name("Greedy");
    const double advantage =
        greedy.total_benefit().mean() > 0.0
            ? 100.0 * (abm.total_benefit().mean() /
                           greedy.total_benefit().mean() -
                       1.0)
            : 0.0;
    table.row()
        .cell_int(count)
        .cell(abm.total_benefit().mean(), 1)
        .cell(greedy.total_benefit().mean(), 1)
        .cell(advantage, 2)
        .cell(abm.cautious_friends().mean(), 2)
        .cell(greedy.cautious_friends().mean(), 2);
  }
  bench::emit(table,
              "Study — cautious-user density (" + dataset + ", k=" +
                  std::to_string(config.budget) + ", B_f(Vc)=" +
                  util::Table::format(config.cautious_bf, 0) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
