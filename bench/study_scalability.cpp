// Engineering study: runtime scaling of the full attack pipeline.
//
// Sweeps the network scale and reports wall time per component (dataset
// generation, PageRank, one full ABM attack with incremental vs reference
// potential maintenance).  Backs the complexity claims of DESIGN.md §7:
// the incremental maintenance turns ABM's per-request cost from O(Σdeg)
// into (amortized) the size of the 2-hop dirty neighbourhood.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"
#include "graph/pagerank.hpp"
#include "util/timer.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to scale (default twitter)");
  opts.declare("max-scale", "largest scale in the sweep (default 0.32)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  const std::string dataset = opts.get("dataset", "twitter");
  const double max_scale = opts.get_double("max-scale", 0.32);

  util::Table table({"scale", "nodes", "edges", "generate ms", "pagerank ms",
                     "ABM ms (incremental)", "ABM ms (reference)",
                     "benefit"});
  for (double scale = 0.02; scale <= max_scale + 1e-9; scale *= 2.0) {
    datasets::DatasetConfig dataset_config;
    dataset_config.scale = scale;
    dataset_config.num_cautious = config.num_cautious;
    util::Rng rng(config.seed);
    util::Timer generate_timer;
    const AccuInstance instance =
        datasets::make_dataset(dataset, dataset_config, rng);
    const double generate_ms = generate_timer.milliseconds();

    util::Timer pagerank_timer;
    const auto scores = graph::pagerank(instance.graph());
    const double pagerank_ms = pagerank_timer.milliseconds();
    (void)scores;

    const Realization truth = Realization::sample(instance, rng);
    double benefit = 0.0;
    double incremental_ms = 0.0, reference_ms = 0.0;
    for (const bool incremental : {true, false}) {
      AbmStrategy::Config abm_config;
      abm_config.weights = {config.w_direct, config.w_indirect};
      abm_config.incremental = incremental;
      AbmStrategy strategy(abm_config);
      util::Rng srng(1);
      util::Timer attack_timer;
      const SimulationResult result =
          simulate(instance, truth, strategy, config.budget, srng);
      (incremental ? incremental_ms : reference_ms) =
          attack_timer.milliseconds();
      benefit = result.total_benefit;
    }
    table.row()
        .cell(scale, 2)
        .cell_int(instance.num_nodes())
        .cell_int(instance.graph().num_edges())
        .cell(generate_ms, 1)
        .cell(pagerank_ms, 1)
        .cell(incremental_ms, 1)
        .cell(reference_ms, 1)
        .cell(benefit, 1);
  }
  bench::emit(table,
              "Study — runtime scaling (" + dataset + ", k=" +
                  std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
