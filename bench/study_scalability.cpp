// Engineering study: runtime scaling of the full attack pipeline.
//
// Sweeps the network scale and reports wall time per component (dataset
// generation, PageRank, one full ABM attack with incremental vs reference
// potential maintenance).  Backs the complexity claims of DESIGN.md §7:
// the incremental maintenance turns ABM's per-request cost from O(Σdeg)
// into (amortized) the size of the 2-hop dirty neighbourhood.
//
// `--sweep` switches to the sweep-throughput mode (DESIGN.md §12): the
// full samples × runs × policies grid runs through run_experiment, with
// `--shard=i/n` restricting this invocation to one shard of the task grid
// and `--checkpoint` making each shard resumable.  Per-shard wall time and
// cells/s quantify the scale-out; the shard checkpoints recombine
// bit-identically with accu_merge.
//
// `--load-latency` switches to the instance-load study (DESIGN.md §17):
// each scale is written as both the text format and the binary .accui
// format, then re-loaded from each — text parse vs zero-parse mmap — and
// the table reports bytes on disk and best-of-three load times.  A pinned
// snapshot of this mode lives at bench/study_scalability_load.snapshot.

#include <cstdio>
#include <exception>
#include <filesystem>

#include "bench_common.hpp"
#include "core/instance_format.hpp"
#include "core/instance_io.hpp"
#include "core/strategies/abm.hpp"
#include "graph/pagerank.hpp"
#include "util/timer.hpp"

namespace {

/// Sweep-throughput mode: one (possibly sharded) run_experiment grid.
int run_sweep_mode(const accu::util::Options& opts,
                   accu::bench::CommonConfig& config,
                   const std::string& dataset) {
  using namespace accu;
  ExperimentConfig exp = bench::experiment_config(config);
  if (opts.has("shard")) {
    const auto shard = parse_shard_spec(opts.get("shard", ""));
    exp.shard_index = shard.first;
    exp.shard_count = shard.second;
  }
  util::Timer timer;
  const ExperimentResult result =
      run_experiment(bench::make_instance_factory(config, dataset),
                     bench::paper_strategies(config), exp);
  const double seconds = timer.seconds();

  util::Table table({"policy", "benefit", "±95%", "cells"});
  for (std::size_t s = 0; s < result.strategy_names.size(); ++s) {
    const TraceAggregator& agg = result.aggregates[s];
    table.row()
        .cell(result.strategy_names[s])
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell_int(static_cast<long long>(agg.total_benefit().count()));
  }
  const std::size_t tasks =
      static_cast<std::size_t>(exp.samples) * exp.runs;
  std::size_t owned = 0;
  for (std::size_t task = 0; task < tasks; ++task) {
    owned += task % exp.shard_count == exp.shard_index;
  }
  bench::emit(table,
              "Study — sweep throughput (" + dataset + ", shard " +
                  std::to_string(exp.shard_index) + "/" +
                  std::to_string(exp.shard_count) + ")",
              config.csv_path);
  std::printf("shard %u/%u: %zu of %zu cells in %.2fs (%.1f cells/s)\n",
              exp.shard_index, exp.shard_count, owned, tasks, seconds,
              seconds > 0 ? static_cast<double>(owned) / seconds : 0.0);
  if (!result.failures.empty()) {
    std::fprintf(stderr, "warning: %zu cells failed\n",
                 result.failures.size());
    return 1;
  }
  return 0;
}

/// Instance-load study: text parse vs binary mmap load per scale.
int run_load_mode(accu::bench::CommonConfig& config,
                  const std::string& dataset, double max_scale) {
  using namespace accu;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "accu_load_study").string();
  std::filesystem::create_directories(dir);
  util::Table table({"scale", "nodes", "edges", "text bytes", "accui bytes",
                     "text parse ms", "mmap load ms", "speedup"});
  for (double scale = 0.02; scale <= max_scale + 1e-9; scale *= 2.0) {
    datasets::DatasetConfig dataset_config;
    dataset_config.scale = scale;
    dataset_config.num_cautious = config.num_cautious;
    util::Rng rng(config.seed);
    const AccuInstance instance =
        datasets::make_dataset(dataset, dataset_config, rng);
    const std::string text_path = dir + "/inst.accu";
    const std::string bin_path = dir + "/inst.accui";
    write_instance_file(instance, text_path);
    write_instance_binary_file(instance, bin_path);
    // Best of three: the first load pays the page-cache warm-up for both
    // formats, so the minimum isolates the parse-vs-mmap difference.
    double text_ms = 0.0, bin_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer text_timer;
      const AccuInstance from_text = read_instance_file(text_path);
      const double t = text_timer.milliseconds();
      if (rep == 0 || t < text_ms) text_ms = t;
      util::Timer bin_timer;
      const AccuInstance from_bin = read_instance_binary_file(bin_path);
      const double b = bin_timer.milliseconds();
      if (rep == 0 || b < bin_ms) bin_ms = b;
      if (from_text.num_nodes() != from_bin.num_nodes() ||
          from_text.graph().num_edges() != from_bin.graph().num_edges()) {
        std::fprintf(stderr, "error: format loads disagree at scale %.2f\n",
                     scale);
        return 1;
      }
    }
    table.row()
        .cell(scale, 2)
        .cell_int(instance.num_nodes())
        .cell_int(instance.graph().num_edges())
        .cell_int(static_cast<long long>(
            std::filesystem::file_size(text_path)))
        .cell_int(static_cast<long long>(
            std::filesystem::file_size(bin_path)))
        .cell(text_ms, 2)
        .cell(bin_ms, 2)
        .cell(bin_ms > 0 ? text_ms / bin_ms : 0.0, 1);
  }
  std::filesystem::remove_all(dir);
  bench::emit(table, "Study — instance load latency (" + dataset + ")",
              config.csv_path);
  return 0;
}

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to scale (default twitter)");
  opts.declare("max-scale", "largest scale in the sweep (default 0.32)");
  opts.declare("sweep",
               "sweep-throughput mode: run the samples × runs × policies "
               "grid through run_experiment (honours --samples/--runs/"
               "--threads/--checkpoint)");
  opts.declare("shard",
               "run one shard i/n of the sweep grid (with --sweep); merge "
               "the per-shard checkpoints with accu_merge");
  opts.declare("load-latency",
               "instance-load mode: write each scale as text and binary "
               ".accui, report parse vs mmap load times");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (opts.get_bool("sweep", false)) {
    if (!opts.has("k")) config.budget = 50;
    return run_sweep_mode(opts, config,
                          opts.get("dataset", "twitter"));
  }
  if (opts.get_bool("load-latency", false)) {
    return run_load_mode(config, opts.get("dataset", "twitter"),
                         opts.get_double("max-scale", 0.32));
  }
  if (!opts.has("k")) config.budget = 300;
  const std::string dataset = opts.get("dataset", "twitter");
  const double max_scale = opts.get_double("max-scale", 0.32);

  util::Table table({"scale", "nodes", "edges", "generate ms", "pagerank ms",
                     "ABM ms (incremental)", "ABM ms (reference)",
                     "benefit"});
  for (double scale = 0.02; scale <= max_scale + 1e-9; scale *= 2.0) {
    datasets::DatasetConfig dataset_config;
    dataset_config.scale = scale;
    dataset_config.num_cautious = config.num_cautious;
    util::Rng rng(config.seed);
    util::Timer generate_timer;
    const AccuInstance instance =
        datasets::make_dataset(dataset, dataset_config, rng);
    const double generate_ms = generate_timer.milliseconds();

    util::Timer pagerank_timer;
    const auto scores = graph::pagerank(instance.graph());
    const double pagerank_ms = pagerank_timer.milliseconds();
    (void)scores;

    const Realization truth = Realization::sample(instance, rng);
    double benefit = 0.0;
    double incremental_ms = 0.0, reference_ms = 0.0;
    for (const bool incremental : {true, false}) {
      AbmStrategy::Config abm_config;
      abm_config.weights = {config.w_direct, config.w_indirect};
      abm_config.incremental = incremental;
      AbmStrategy strategy(abm_config);
      util::Rng srng(1);
      util::Timer attack_timer;
      const SimulationResult result =
          simulate(instance, truth, strategy, config.budget, srng);
      (incremental ? incremental_ms : reference_ms) =
          attack_timer.milliseconds();
      benefit = result.total_benefit;
    }
    table.row()
        .cell(scale, 2)
        .cell_int(instance.num_nodes())
        .cell_int(instance.graph().num_edges())
        .cell(generate_ms, 1)
        .cell(pagerank_ms, 1)
        .cell(incremental_ms, 1)
        .cell(reference_ms, 1)
        .cell(benefit, 1);
  }
  bench::emit(table,
              "Study — runtime scaling (" + dataset + ", k=" +
                  std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
