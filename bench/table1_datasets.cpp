// Table I reproduction: statistics of the four datasets.
//
// Prints, for each dataset, the paper's snapshot size next to the synthetic
// substitute generated at the bench scale, plus the structural properties
// the substitution is calibrated on (mean degree, clustering, the
// degree-[10,100] cautious-eligibility pool).

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.check_unknown();
  const bench::CommonConfig config = bench::read_common_config(opts);

  util::Table table({"Network", "Kind", "Paper nodes", "Paper edges",
                     "Gen nodes", "Gen edges", "Mean deg (paper)",
                     "Mean deg (gen)", "Clustering", "Deg∈[10,100] frac"});
  for (const datasets::DatasetSpec& spec : datasets::paper_datasets()) {
    util::Rng rng(config.seed);
    const Graph g = datasets::make_topology(
        spec.name, bench::dataset_scale(config, spec.name), rng);
    const graph::DegreeStats stats = graph::degree_stats(g);
    util::Rng crng(config.seed + 1);
    const double clustering = graph::clustering_coefficient(g, 2000, crng);
    const double paper_mean = 2.0 * static_cast<double>(spec.paper_edges) /
                              static_cast<double>(spec.paper_nodes);
    table.row()
        .cell(spec.name)
        .cell(spec.kind)
        .cell_int(spec.paper_nodes)
        .cell_int(static_cast<long long>(spec.paper_edges))
        .cell_int(g.num_nodes())
        .cell_int(g.num_edges())
        .cell(paper_mean, 1)
        .cell(stats.mean, 1)
        .cell(clustering, 3)
        .cell(graph::degree_window_fraction(g, 10, 100), 3);
  }
  bench::emit(table, "Table I — dataset statistics (paper vs generated)",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
