#include "bench_common.hpp"

#include <fstream>
#include <iostream>

#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "util/log.hpp"

namespace accu::bench {

void declare_common_options(util::Options& opts) {
  opts.declare("scale", "global node-count scale multiplier (default: "
                        "per-dataset bench scale; 1.0 = paper-sized)")
      .declare("k", "friend-request budget per attack")
      .declare("samples", "sample networks per dataset (paper: 100)")
      .declare("runs", "repetitions per network (paper: 30)")
      .declare("seed", "master random seed")
      .declare("cautious-bf", "B_f for cautious users (paper: 50)")
      .declare("theta", "θ as a fraction of degree (paper: 0.3)")
      .declare("cautious", "number of cautious users (paper: 100)")
      .declare("wd", "ABM direct weight w_D (paper default 0.5)")
      .declare("wi", "ABM indirect weight w_I (paper default 0.5)")
      .declare("csv", "also write results as CSV to this path")
      .declare("verbose", "log sweep progress")
      .declare("threads", "experiment worker threads (0 = hardware)")
      .declare("deadline-ms",
               "wall-clock budget per (sample, run) cell in ms; 0 = none")
      .declare("max-cell-retries",
               "re-run a deadline-cancelled cell up to this many times")
      .declare("checkpoint",
               "checkpoint file: completed cells append here and a killed "
               "study resumes bit-identically")
      .declare("options", "load option defaults from a response file");
}

CommonConfig read_common_config(util::Options& opts) {
  if (opts.has("options")) {
    opts.load_defaults_file(opts.get("options", ""));
  }
  CommonConfig config;
  if (opts.has("scale")) {
    const double s = opts.get_double("scale", 1.0);
    // A global multiplier rescales every dataset relative to paper size.
    config.scale_facebook = s;
    config.scale_slashdot = s;
    config.scale_twitter = s;
    config.scale_dblp = s;
  }
  config.budget =
      static_cast<std::uint32_t>(opts.get_int("k", config.budget));
  config.samples =
      static_cast<std::uint32_t>(opts.get_int("samples", config.samples));
  config.runs = static_cast<std::uint32_t>(opts.get_int("runs", config.runs));
  config.seed = static_cast<std::uint64_t>(
      opts.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.cautious_bf = opts.get_double("cautious-bf", config.cautious_bf);
  config.theta_fraction = opts.get_double("theta", config.theta_fraction);
  config.num_cautious = static_cast<std::uint32_t>(
      opts.get_int("cautious", config.num_cautious));
  config.w_direct = opts.get_double("wd", config.w_direct);
  config.w_indirect = opts.get_double("wi", config.w_indirect);
  config.csv_path = opts.get("csv", "");
  config.verbose = opts.get_bool("verbose", false);
  config.threads =
      static_cast<std::uint32_t>(opts.get_int("threads", config.threads));
  config.deadline_ms = static_cast<std::uint32_t>(
      opts.get_int("deadline-ms", config.deadline_ms));
  config.max_cell_retries = static_cast<std::uint32_t>(
      opts.get_int("max-cell-retries", config.max_cell_retries));
  config.checkpoint_path = opts.get("checkpoint", "");
  if (config.verbose) util::set_log_level(util::LogLevel::kInfo);
  return config;
}

double dataset_scale(const CommonConfig& config, const std::string& dataset) {
  if (dataset == "facebook") return config.scale_facebook;
  if (dataset == "slashdot") return config.scale_slashdot;
  if (dataset == "twitter") return config.scale_twitter;
  if (dataset == "dblp") return config.scale_dblp;
  throw InvalidArgument("unknown dataset: " + dataset);
}

InstanceFactory make_instance_factory(const CommonConfig& config,
                                      const std::string& dataset) {
  datasets::DatasetConfig dataset_config;
  dataset_config.scale = dataset_scale(config, dataset);
  dataset_config.num_cautious = config.num_cautious;
  dataset_config.cautious_friend_benefit = config.cautious_bf;
  dataset_config.threshold_fraction = config.theta_fraction;
  return [dataset, dataset_config](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (sample + 1)));
    return datasets::make_dataset(dataset, dataset_config, rng);
  };
}

std::vector<StrategyFactory> paper_strategies(const CommonConfig& config) {
  const double wd = config.w_direct;
  const double wi = config.w_indirect;
  return {
      {"ABM", [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }},
      {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }},
      {"PageRank", [] { return std::make_unique<PageRankStrategy>(); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

ExperimentConfig experiment_config(const CommonConfig& config) {
  ExperimentConfig out;
  out.budget = config.budget;
  out.samples = config.samples;
  out.runs = config.runs;
  out.seed = config.seed;
  out.threads = config.threads;
  out.cell_deadline_ms = config.deadline_ms;
  out.max_cell_retries = config.max_cell_retries;
  out.checkpoint_path = config.checkpoint_path;
  return out;
}

void emit(const util::Table& table, const std::string& title,
          const std::string& csv_path) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    if (!os) throw IoError("cannot open CSV output: " + csv_path);
    table.write_csv(os);
    std::cout << "(csv written to " << csv_path << ")\n";
  }
}

}  // namespace accu::bench
