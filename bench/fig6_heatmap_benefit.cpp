// Fig. 6 reproduction — see heatmap_shared.cpp.
//
// Expected shape (paper): benefit grows with higher cautious B_f and lower
// thresholds, except at B_f = 20 where *raising* the threshold can help
// (over-investing in cheap cautious users hurts).

#include "heatmap_shared.hpp"

int main(int argc, char** argv) {
  return accu::bench::run_heatmap(argc, argv,
                                  accu::bench::HeatmapMetric::kBenefit);
}
