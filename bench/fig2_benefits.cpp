// Fig. 2 reproduction: amount of benefit obtained vs number of friend
// requests, for ABM / MaxDegree / PageRank / Random on all four datasets.
//
// Paper settings: B_f = 50 for cautious users, θ_v = 0.3·deg(v),
// w_D = w_I = 0.5.  Expected shape (paper): ABM clearly on top, Random at
// the bottom, PageRank slightly above MaxDegree; ABM's curve shows a
// convex segment on Slashdot/Twitter where it invests in cautious users.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("datasets", "comma-separated subset (default: all four)");
  opts.check_unknown();
  const bench::CommonConfig config = bench::read_common_config(opts);

  std::vector<std::string> names;
  {
    const std::string raw =
        opts.get("datasets", "facebook,slashdot,twitter,dblp");
    std::size_t start = 0;
    while (start <= raw.size()) {
      const std::size_t comma = raw.find(',', start);
      const std::size_t end = comma == std::string::npos ? raw.size() : comma;
      if (end > start) names.push_back(raw.substr(start, end - start));
      start = end + 1;
    }
  }

  // Report the curves at 10 evenly spaced checkpoints, like the figure's
  // x-axis ticks.
  const std::uint32_t checkpoints = 10;
  for (const std::string& dataset : names) {
    const ExperimentResult result =
        run_experiment(bench::make_instance_factory(config, dataset),
                       bench::paper_strategies(config),
                       bench::experiment_config(config));
    std::vector<std::string> header = {"k"};
    for (const std::string& name : result.strategy_names) {
      header.push_back(name);
      header.push_back(name + " ±95%");
    }
    util::Table table(header);
    for (std::uint32_t c = 1; c <= checkpoints; ++c) {
      const std::uint32_t k = config.budget * c / checkpoints;
      table.row().cell_int(k);
      for (const TraceAggregator& agg : result.aggregates) {
        const auto& cell = agg.cumulative_benefit().at(k - 1);
        table.cell(cell.mean(), 1).cell(cell.ci95_halfwidth(), 1);
      }
    }
    bench::emit(table,
                "Fig. 2 — benefit vs #requests (" + dataset + ", B_f(Vc)=" +
                    util::Table::format(config.cautious_bf, 0) + ", θ=" +
                    util::Table::format(config.theta_fraction, 2) +
                    "·deg, wD=wI=0.5)",
                config.csv_path.empty() ? ""
                                        : config.csv_path + "." + dataset +
                                              ".csv");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
