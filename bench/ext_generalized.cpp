// Extension study: the generalized cautious model (paper §III-B).
//
// Cautious users accept with probability q1 below threshold and q2 at or
// above it.  For q1 > 0 the adaptive total primal curvature is bounded by
// δ = max q2/q1, so the prior-work guarantee 1 − (1 − 1/(δk))^k applies
// again; as q1 → 0 the model converges to the paper's deterministic
// threshold model and the guarantee collapses — while ABM's realized
// performance degrades only mildly, which is the paper's argument for the
// adaptive-submodular-ratio analysis.

#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"
#include "core/theory/ratios.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 300;
  if (!opts.has("samples")) config.samples = 2;
  const std::string dataset = opts.get("dataset", "twitter");

  util::Table table({"q1", "q2", "δ=q2/q1", "curvature bound (k)",
                     "ABM benefit", "±95%", "#cautious friends"});
  for (const double q1 : {0.0, 0.02, 0.05, 0.1, 0.25}) {
    const double q2 = 1.0;
    datasets::DatasetConfig dataset_config;
    dataset_config.scale = bench::dataset_scale(config, dataset);
    dataset_config.num_cautious = config.num_cautious;
    dataset_config.cautious_friend_benefit = config.cautious_bf;
    dataset_config.threshold_fraction = config.theta_fraction;
    dataset_config.cautious_below_prob = q1;
    dataset_config.cautious_above_prob = q2;
    const InstanceFactory factory = [dataset, dataset_config](
                                        std::uint32_t sample,
                                        std::uint64_t seed) {
      util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (sample + 1)));
      return datasets::make_dataset(dataset, dataset_config, rng);
    };
    const std::vector<StrategyFactory> abm = {
        {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }}};
    const ExperimentResult result =
        run_experiment(factory, abm, bench::experiment_config(config));
    const TraceAggregator& agg = result.aggregates.front();
    const double delta = q1 > 0.0 ? q2 / q1
                                  : std::numeric_limits<double>::infinity();
    table.row()
        .cell(q1, 2)
        .cell(q2, 2)
        .cell(std::isinf(delta) ? "∞" : util::Table::format(delta, 1))
        .cell(std::isinf(delta)
                  ? "0 (unbounded δ)"
                  : util::Table::format(curvature_ratio(delta, config.budget),
                                        4))
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.cautious_friends().mean(), 2);
  }
  bench::emit(table,
              "Extension — generalized cautious model q1→q2 (" + dataset +
                  ", k=" + std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
