// Fig. 4 reproduction: total benefit and number of cautious friends on the
// Twitter-like dataset as a function of the ABM indirect weight w_I
// (w_D = 1 − w_I), k = 500.
//
// Expected shape (paper): the cautious-friend count grows monotonically
// with w_I while the benefit peaks at an interior w_I (0.2 in the paper)
// and degrades on both sides — w_I = 0 is the pure greedy of earlier
// adaptive-crawling papers.

#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "core/strategies/abm.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  bench::declare_common_options(opts);
  opts.declare("dataset", "dataset to sweep (default twitter)");
  opts.declare("wi-max", "largest w_I (default 0.6)");
  opts.declare("wi-step", "sweep step (default 0.1)");
  opts.check_unknown();
  bench::CommonConfig config = bench::read_common_config(opts);
  if (!opts.has("k")) config.budget = 500;  // the paper's Fig. 4 setting
  const std::string dataset = opts.get("dataset", "twitter");
  const double wi_max = opts.get_double("wi-max", 0.6);
  const double wi_step = opts.get_double("wi-step", 0.1);

  util::Table table({"w_I", "w_D", "benefit", "±95%", "#cautious friends",
                     "accepted"});
  for (double wi = 0.0; wi <= wi_max + 1e-9; wi += wi_step) {
    const double wd = 1.0 - wi;
    const std::vector<StrategyFactory> abm = {
        {"ABM", [wd, wi] { return std::make_unique<AbmStrategy>(wd, wi); }}};
    const ExperimentResult result =
        run_experiment(bench::make_instance_factory(config, dataset), abm,
                       bench::experiment_config(config));
    const TraceAggregator& agg = result.aggregates.front();
    table.row()
        .cell(wi, 1)
        .cell(wd, 1)
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.cautious_friends().mean(), 2)
        .cell(agg.accepted_requests().mean(), 1);
  }
  bench::emit(table,
              "Fig. 4 — benefit & #cautious friends vs w_I (" + dataset +
                  ", k=" + std::to_string(config.budget) + ")",
              config.csv_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
