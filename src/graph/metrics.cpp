#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"

namespace accu::graph {

std::vector<std::uint64_t> degree_distribution(const Graph& g) {
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  std::vector<std::uint64_t> counts(
      g.num_nodes() == 0 ? 1 : max_degree + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++counts[g.degree(v)];
  return counts;
}

std::vector<double> degree_ccdf(const Graph& g) {
  const std::vector<std::uint64_t> counts = degree_distribution(g);
  std::vector<double> ccdf(counts.size() + 1, 0.0);
  if (g.num_nodes() == 0) return ccdf;
  std::uint64_t at_least = 0;
  for (std::size_t d = counts.size(); d-- > 0;) {
    at_least += counts[d];
    ccdf[d] = static_cast<double>(at_least) /
              static_cast<double>(g.num_nodes());
  }
  return ccdf;
}

double degree_assortativity(const Graph& g) {
  // Pearson correlation of (deg(u), deg(v)) over all edges, both
  // orientations (the standard Newman r).
  if (g.num_edges() < 2) return 0.0;
  double sum_x = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  const double m2 = 2.0 * static_cast<double>(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeEndpoints ep = g.endpoints(e);
    const double du = g.degree(ep.lo);
    const double dv = g.degree(ep.hi);
    sum_x += du + dv;
    sum_xx += du * du + dv * dv;
    sum_xy += 2.0 * du * dv;
  }
  const double mean = sum_x / m2;
  const double var = sum_xx / m2 - mean * mean;
  if (var <= 1e-15) return 0.0;  // regular graph: undefined, report 0
  const double cov = sum_xy / m2 - mean * mean;
  return cov / var;
}

std::uint32_t diameter_lower_bound(const Graph& g, std::uint32_t sweeps,
                                   util::Rng& rng) {
  if (g.num_nodes() == 0) return 0;
  std::uint32_t best = 0;
  for (std::uint32_t s = 0; s < sweeps; ++s) {
    const auto start = static_cast<NodeId>(rng.index(g.num_nodes()));
    const std::vector<std::uint32_t> first = bfs_distances(g, start);
    NodeId farthest = start;
    std::uint32_t farthest_distance = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (first[v] != kUnreachable && first[v] > farthest_distance) {
        farthest_distance = first[v];
        farthest = v;
      }
    }
    const std::vector<std::uint32_t> second = bfs_distances(g, farthest);
    for (const std::uint32_t d : second) {
      if (d != kUnreachable) best = std::max(best, d);
    }
  }
  return best;
}

std::vector<std::size_t> component_sizes(const Graph& g) {
  const Components comps = connected_components(g);
  std::vector<std::size_t> sizes(comps.count, 0);
  for (const std::uint32_t label : comps.label) ++sizes[label];
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}

}  // namespace accu::graph
