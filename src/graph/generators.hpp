// Random-network generators.
//
// The paper evaluates on four SNAP snapshots (Facebook, Slashdot, Twitter,
// DBLP — Table I).  Those files cannot be shipped here, so the dataset
// factory (src/datasets) substitutes synthetic networks whose *relevant*
// structure matches each snapshot: size, mean degree, degree-tail shape and
// clustering.  This header provides the generator zoo the factory draws
// from; each generator is also a public API usable on its own.
//
// All generators return a GraphBuilder (edges with probability 1) so the
// caller can assign edge-existence probabilities — the paper draws them
// uniformly from [0,1) — before building the immutable Graph.  All are
// deterministic given the Rng stream.

#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace accu::graph {

/// G(n, p) via geometric skip-sampling; O(n + m) expected.
[[nodiscard]] GraphBuilder erdos_renyi(NodeId n, double p, util::Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` distinct existing nodes with probability proportional
/// to degree (repeated-endpoint urn).  Produces the heavy-tailed degree
/// distribution (γ≈3) typical of the Slashdot/Twitter snapshots.
[[nodiscard]] GraphBuilder barabasi_albert(NodeId n,
                                           std::uint32_t edges_per_node,
                                           util::Rng& rng);

/// Holme–Kim "powerlaw cluster" model: BA attachment where each attachment
/// step is followed, with probability `triad_prob`, by a triad-closure step
/// linking to a random neighbor of the just-linked node.  Keeps the BA tail
/// while raising clustering — a good stand-in for the Facebook ego network.
[[nodiscard]] GraphBuilder holme_kim(NodeId n, std::uint32_t edges_per_node,
                                     double triad_prob, util::Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side rewired with probability `beta`.  Requires 2k < n - 1.
[[nodiscard]] GraphBuilder watts_strogatz(NodeId n, std::uint32_t k,
                                          double beta, util::Rng& rng);

/// Configuration-model graph with power-law degrees: each node draws a
/// target degree from a discrete power law P(d) ∝ d^-gamma on
/// [min_degree, max_degree], stubs are matched uniformly, and self-loops /
/// duplicate edges are discarded (erased configuration model).
[[nodiscard]] GraphBuilder powerlaw_configuration(NodeId n, double gamma,
                                                  std::uint32_t min_degree,
                                                  std::uint32_t max_degree,
                                                  util::Rng& rng);

/// Forest-fire model (Leskovec et al.): each new node picks a random
/// ambassador, links to it, then "burns" through the ambassador's
/// neighborhood recursively — at each burned node a geometric number of
/// yet-unburned neighbors with mean `forward_prob / (1 − forward_prob)` is
/// burned and linked.  Produces the shrinking-diameter, densifying shape of
/// real evolving OSNs; useful as an alternative substrate for the
/// sensitivity studies.  Requires forward_prob in [0, 1).
[[nodiscard]] GraphBuilder forest_fire(NodeId n, double forward_prob,
                                       util::Rng& rng);

/// Overlapping-community (affiliation) graph: every node joins
/// `memberships_per_node` communities chosen uniformly among
/// round(n * memberships_per_node / mean_community_size) communities, and
/// members of a community are pairwise linked with probability
/// `intra_prob`.  Mimics the dense-clique collaboration structure of the
/// DBLP snapshot.
[[nodiscard]] GraphBuilder community_affiliation(
    NodeId n, double mean_community_size,
    std::uint32_t memberships_per_node, double intra_prob, util::Rng& rng);

}  // namespace accu::graph
