// Structural network metrics beyond the basics in algorithms.hpp.
//
// Used to characterize the synthetic dataset substitutes against the SNAP
// snapshots they stand in for (Table I reproduction / DESIGN.md §4) and
// exposed as public API for downstream network analysis:
//
//   * degree distribution and its complementary CDF,
//   * degree assortativity (Pearson correlation over edges — social
//     networks are assortative, collaboration networks strongly so),
//   * a diameter lower bound by the classic double-sweep BFS,
//   * connected-component size distribution.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace accu::graph {

/// counts[d] = number of nodes with degree d (length max_degree + 1).
[[nodiscard]] std::vector<std::uint64_t> degree_distribution(const Graph& g);

/// ccdf[d] = fraction of nodes with degree >= d (length max_degree + 2,
/// ccdf[0] = 1, final entry 0); the straight line of this on log-log axes
/// is the usual power-law diagnostic.
[[nodiscard]] std::vector<double> degree_ccdf(const Graph& g);

/// Pearson degree–degree correlation over edges; in [-1, 1], 0 for an
/// empty/degenerate graph (fewer than 2 edges or constant degrees).
[[nodiscard]] double degree_assortativity(const Graph& g);

/// Lower bound on the diameter via double-sweep: BFS from `sweeps` random
/// seeds, each followed by a BFS from the farthest node found.  Exact on
/// trees; a strong lower bound in practice.
[[nodiscard]] std::uint32_t diameter_lower_bound(const Graph& g,
                                                 std::uint32_t sweeps,
                                                 util::Rng& rng);

/// Sizes of all connected components, descending.
[[nodiscard]] std::vector<std::size_t> component_sizes(const Graph& g);

}  // namespace accu::graph
