// GraphViz DOT export.
//
// Small-graph visualization for papers/notebooks: the full probabilistic
// network, or an attack snapshot with per-node roles (attacker's friends,
// FOFs, cautious users) supplied as label/style callbacks.  Intended for
// graphs small enough to lay out (≤ a few hundred nodes); the writer
// itself streams and has no size limit.

#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace accu::graph {

struct DotOptions {
  /// Graph name in the `graph <name> { ... }` header.
  std::string name = "accu";
  /// Emit edge labels with the existence probabilities.
  bool edge_probabilities = false;
  /// Optional per-node attribute string (e.g. "color=red,shape=box");
  /// empty result = no attributes.
  std::function<std::string(NodeId)> node_attributes;
  /// Optional per-edge attribute string; runs after the probability label.
  std::function<std::string(EdgeId)> edge_attributes;
};

/// Writes an undirected DOT graph.
void write_dot(const Graph& g, std::ostream& os, const DotOptions& options = {});
void write_dot_file(const Graph& g, const std::string& path,
                    const DotOptions& options = {});

}  // namespace accu::graph
