#include "graph/dot.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace accu::graph {

void write_dot(const Graph& g, std::ostream& os, const DotOptions& options) {
  os << "graph " << (options.name.empty() ? "accu" : options.name) << " {\n";
  os << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    if (options.node_attributes) {
      const std::string attrs = options.node_attributes(v);
      if (!attrs.empty()) os << " [" << attrs << "]";
    }
    os << ";\n";
  }
  char prob[48];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeEndpoints ep = g.endpoints(e);
    os << "  n" << ep.lo << " -- n" << ep.hi;
    std::string attrs;
    if (options.edge_probabilities) {
      std::snprintf(prob, sizeof prob, "label=\"%.2f\"", g.edge_prob(e));
      attrs = prob;
    }
    if (options.edge_attributes) {
      const std::string extra = options.edge_attributes(e);
      if (!extra.empty()) {
        if (!attrs.empty()) attrs += ',';
        attrs += extra;
      }
    }
    if (!attrs.empty()) os << " [" << attrs << "]";
    os << ";\n";
  }
  os << "}\n";
}

void write_dot_file(const Graph& g, const std::string& path,
                    const DotOptions& options) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for writing: " + path);
  write_dot(g, os, options);
  os.flush();
  if (!os) throw IoError("write failed: " + path);
}

}  // namespace accu::graph
