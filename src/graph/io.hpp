// Plain-text edge-list serialization.
//
// Format (SNAP-compatible superset):
//   # accu-graph nodes=<n> edges=<m>        (header, written by us)
//   # any other comment line                (ignored on read)
//   u v [p]                                 (one edge per line; p defaults 1)
//
// Reading a raw SNAP edge list (no header, no probabilities) works too: the
// node count is inferred as max id + 1 and duplicate/self-loop lines are
// skipped, matching how the paper's datasets are normally ingested.

#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace accu::graph {

/// Writes the graph with header and per-edge probabilities (full precision).
void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Reads an edge list.  Throws IoError on malformed lines or bad
/// probabilities.  Duplicate edges and self-loops are tolerated (first
/// occurrence wins / line skipped) because public snapshots contain them.
[[nodiscard]] Graph read_edge_list(std::istream& is);
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

}  // namespace accu::graph
