#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace accu::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  ACCU_ASSERT(source < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Neighbor& n : g.neighbors(u)) {
      if (dist[n.node] == kUnreachable) {
        dist[n.node] = dist[u] + 1;
        queue.push_back(n.node);
      }
    }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), kUnreachable);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (out.label[start] != kUnreachable) continue;
    const std::uint32_t id = out.count++;
    out.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Neighbor& n : g.neighbors(u)) {
        if (out.label[n.node] == kUnreachable) {
          out.label[n.node] = id;
          stack.push_back(n.node);
        }
      }
    }
  }
  return out;
}

std::vector<NodeId> largest_component(const Graph& g) {
  const Components comps = connected_components(g);
  if (comps.count == 0) return {};
  std::vector<std::size_t> size(comps.count, 0);
  for (const std::uint32_t label : comps.label) ++size[label];
  const std::uint32_t best = static_cast<std::uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(size[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (comps.label[v] == best) nodes.push_back(v);
  }
  return nodes;
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes) {
  ACCU_ASSERT_MSG(std::is_sorted(nodes.begin(), nodes.end()) &&
                      std::adjacent_find(nodes.begin(), nodes.end()) ==
                          nodes.end(),
                  "induced_subgraph expects sorted unique node ids");
  std::vector<NodeId> new_id(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ACCU_ASSERT(nodes[i] < g.num_nodes());
    new_id[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (const NodeId old_u : nodes) {
    for (const Neighbor& n : g.neighbors(old_u)) {
      if (n.node > old_u && new_id[n.node] != kInvalidNode) {
        builder.add_edge(new_id[old_u], new_id[n.node], g.edge_prob(n.edge));
      }
    }
  }
  return {builder.build(), nodes};
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const NodeId n = g.num_nodes();
  if (n == 0) return stats;
  std::vector<std::uint32_t> degrees(n);
  for (NodeId v = 0; v < n; ++v) degrees[v] = g.degree(v);
  stats.min = *std::min_element(degrees.begin(), degrees.end());
  stats.max = *std::max_element(degrees.begin(), degrees.end());
  stats.mean = 2.0 * static_cast<double>(g.num_edges()) /
               static_cast<double>(n);
  std::sort(degrees.begin(), degrees.end());
  if (n % 2 == 1) {
    stats.median = degrees[n / 2];
  } else {
    stats.median =
        (static_cast<double>(degrees[n / 2 - 1]) + degrees[n / 2]) / 2.0;
  }
  return stats;
}

double degree_window_fraction(const Graph& g, std::uint32_t lo,
                              std::uint32_t hi) {
  if (g.num_nodes() == 0) return 0.0;
  std::size_t hits = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t d = g.degree(v);
    if (d >= lo && d <= hi) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(g.num_nodes());
}

std::uint64_t triangles_at(const Graph& g, NodeId v) {
  std::uint64_t triangles = 0;
  const auto adj = g.neighbors(v);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (std::size_t j = i + 1; j < adj.size(); ++j) {
      if (g.has_edge(adj[i].node, adj[j].node)) ++triangles;
    }
  }
  return triangles;
}

double clustering_coefficient(const Graph& g, std::size_t samples,
                              util::Rng& rng) {
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 2) eligible.push_back(v);
  }
  if (eligible.empty()) return 0.0;
  if (samples < eligible.size()) {
    // Sample a subset (without replacement) to bound cost on large graphs.
    const auto picks =
        rng.sample_without_replacement(eligible.size(), samples);
    std::vector<NodeId> subset;
    subset.reserve(samples);
    for (const std::size_t i : picks) subset.push_back(eligible[i]);
    eligible = std::move(subset);
  }
  double sum = 0.0;
  for (const NodeId v : eligible) {
    const double d = g.degree(v);
    const double wedges = d * (d - 1.0) / 2.0;
    sum += static_cast<double>(triangles_at(g, v)) / wedges;
  }
  return sum / static_cast<double>(eligible.size());
}

std::vector<std::uint32_t> core_numbers(const Graph& g) {
  // Batagelj–Zaveršnik bucket peeling, O(V + E).
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Counting sort of nodes by degree.
  std::vector<std::size_t> bin(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[degree[v] + 1];
  std::partial_sum(bin.begin(), bin.end(), bin.begin());
  std::vector<NodeId> order(n);
  std::vector<std::size_t> pos(n);
  {
    std::vector<std::size_t> cursor(bin.begin(), bin.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      order[pos[v]] = v;
    }
  }
  std::vector<std::uint32_t> core(degree);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    for (const Neighbor& nb : g.neighbors(v)) {
      const NodeId u = nb.node;
      if (core[u] > core[v]) {
        // Move u one bucket down: swap it with the first node of its bucket.
        const std::uint32_t du = core[u];
        const std::size_t first = bin[du];
        const NodeId head = order[first];
        if (head != u) {
          std::swap(order[pos[u]], order[first]);
          std::swap(pos[u], pos[head]);
        }
        ++bin[du];
        --core[u];
      }
    }
  }
  return core;
}

}  // namespace accu::graph
