#include "graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace accu::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# accu-graph nodes=" << g.num_nodes() << " edges=" << g.num_edges()
     << '\n';
  char buf[96];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeEndpoints ep = g.endpoints(e);
    std::snprintf(buf, sizeof buf, "%u %u %.17g\n", ep.lo, ep.hi,
                  g.edge_prob(e));
    os << buf;
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for writing: " + path);
  write_edge_list(g, os);
  os.flush();
  if (!os) throw IoError("write failed: " + path);
}

Graph read_edge_list(std::istream& is) {
  struct RawEdge {
    NodeId u, v;
    double p;
  };
  std::vector<RawEdge> edges;
  NodeId declared_nodes = 0;
  bool have_declared = false;
  NodeId max_id = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto pos = line.find("nodes=");
      if (pos != std::string::npos) {
        declared_nodes =
            static_cast<NodeId>(std::strtoul(line.c_str() + pos + 6,
                                             nullptr, 10));
        have_declared = true;
      }
      continue;
    }
    std::istringstream ls(line);
    unsigned long u = 0, v = 0;
    double p = 1.0;
    if (!(ls >> u >> v)) {
      throw IoError("malformed edge at line " + std::to_string(line_no));
    }
    ls >> p;  // optional third column
    if (!(p >= 0.0 && p <= 1.0)) {
      throw IoError("probability outside [0,1] at line " +
                    std::to_string(line_no));
    }
    if (u == v) continue;  // tolerate self-loops in public snapshots
    const auto un = static_cast<NodeId>(u);
    const auto vn = static_cast<NodeId>(v);
    edges.push_back({un, vn, p});
    max_id = std::max({max_id, un, vn});
  }
  const NodeId n = have_declared
                       ? declared_nodes
                       : (edges.empty() ? 0 : max_id + 1);
  if (have_declared && !edges.empty() && max_id >= n) {
    throw IoError("edge endpoint exceeds declared node count");
  }
  GraphBuilder builder(n);
  for (const RawEdge& e : edges) {
    builder.try_add_edge(e.u, e.v, e.p);  // first occurrence wins
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  return read_edge_list(is);
}

}  // namespace accu::graph
