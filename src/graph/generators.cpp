#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace accu::graph {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw InvalidArgument(message);
}

}  // namespace

GraphBuilder erdos_renyi(NodeId n, double p, util::Rng& rng) {
  require(p >= 0.0 && p <= 1.0, "erdos_renyi: p outside [0,1]");
  GraphBuilder builder(n);
  if (n < 2 || p == 0.0) return builder;
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
    }
    return builder;
  }
  // Skip-sampling over the lexicographic enumeration of all pairs (u,v),
  // u < v: draw the gap to the next present edge geometrically.
  const auto total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t pos = rng.geometric_skips(p);
  while (pos < total) {
    // Invert pair index -> (u, v).  Row u starts at offset
    // u*n - u*(u+1)/2 and holds n-1-u pairs.
    const auto fpos = static_cast<double>(pos);
    const auto fn = static_cast<double>(n);
    auto u = static_cast<std::uint64_t>(
        fn - 0.5 - std::sqrt((fn - 0.5) * (fn - 0.5) - 2.0 * fpos));
    // Guard against floating-point rounding of the row inversion.
    auto row_start = [&](std::uint64_t r) {
      return r * n - r * (r + 1) / 2;
    };
    while (u > 0 && row_start(u) > pos) --u;
    while (row_start(u + 1) <= pos) ++u;
    const std::uint64_t v = u + 1 + (pos - row_start(u));
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    pos += 1 + rng.geometric_skips(p);
  }
  return builder;
}

GraphBuilder barabasi_albert(NodeId n, std::uint32_t edges_per_node,
                             util::Rng& rng) {
  require(edges_per_node >= 1, "barabasi_albert: edges_per_node must be >=1");
  require(n > edges_per_node, "barabasi_albert: need n > edges_per_node");
  GraphBuilder builder(n);
  // Urn of endpoints: every endpoint of every edge appears once, so a
  // uniform draw lands on a node with probability proportional to degree.
  std::vector<NodeId> urn;
  urn.reserve(2ull * n * edges_per_node);
  // Seed: a star on the first edges_per_node+1 nodes gives every early node
  // nonzero degree.
  for (NodeId v = 1; v <= edges_per_node; ++v) {
    builder.add_edge(0, v);
    urn.push_back(0);
    urn.push_back(v);
  }
  std::vector<NodeId> targets;
  for (NodeId v = edges_per_node + 1; v < n; ++v) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      const NodeId candidate = urn[rng.index(urn.size())];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (const NodeId t : targets) {
      builder.add_edge(v, t);
      urn.push_back(v);
      urn.push_back(t);
    }
  }
  return builder;
}

GraphBuilder holme_kim(NodeId n, std::uint32_t edges_per_node,
                       double triad_prob, util::Rng& rng) {
  require(edges_per_node >= 1, "holme_kim: edges_per_node must be >= 1");
  require(n > edges_per_node, "holme_kim: need n > edges_per_node");
  require(triad_prob >= 0.0 && triad_prob <= 1.0,
          "holme_kim: triad_prob outside [0,1]");
  GraphBuilder builder(n);
  std::vector<NodeId> urn;
  std::vector<std::vector<NodeId>> adj(n);
  auto link = [&](NodeId a, NodeId b) {
    if (builder.try_add_edge(a, b)) {
      urn.push_back(a);
      urn.push_back(b);
      adj[a].push_back(b);
      adj[b].push_back(a);
      return true;
    }
    return false;
  };
  for (NodeId v = 1; v <= edges_per_node; ++v) link(0, v);
  for (NodeId v = edges_per_node + 1; v < n; ++v) {
    NodeId last_target = kInvalidNode;
    std::uint32_t formed = 0;
    // Guard against pathological rejection loops on tiny graphs.
    std::uint32_t attempts = 0;
    const std::uint32_t max_attempts = 50 * (edges_per_node + 1);
    while (formed < edges_per_node && attempts < max_attempts) {
      ++attempts;
      NodeId target = kInvalidNode;
      if (last_target != kInvalidNode && rng.bernoulli(triad_prob) &&
          !adj[last_target].empty()) {
        // Triad closure: link to a random neighbor of the last PA target.
        target = adj[last_target][rng.index(adj[last_target].size())];
        if (target == v || builder.has_edge(v, target)) {
          // Fall back to preferential attachment below.
          target = kInvalidNode;
        }
      }
      if (target == kInvalidNode) {
        target = urn[rng.index(urn.size())];
        if (target == v || builder.has_edge(v, target)) continue;
      }
      if (link(v, target)) {
        ++formed;
        last_target = target;
      }
    }
    // Extremely unlikely fallback: connect to the lowest-id free node so
    // the graph stays connected.
    if (formed == 0) {
      for (NodeId u = 0; u < v; ++u) {
        if (link(v, u)) break;
      }
    }
  }
  return builder;
}

GraphBuilder watts_strogatz(NodeId n, std::uint32_t k, double beta,
                            util::Rng& rng) {
  require(n >= 3, "watts_strogatz: need at least 3 nodes");
  require(k >= 1 && 2ull * k < n, "watts_strogatz: need 1 <= k and 2k < n");
  require(beta >= 0.0 && beta <= 1.0, "watts_strogatz: beta outside [0,1]");
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire: pick a uniform non-self target not already linked.
        // Bounded retry keeps determinism; fall back to the lattice edge.
        NodeId candidate = v;
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto draw = static_cast<NodeId>(rng.index(n));
          if (draw != u && !builder.has_edge(u, draw)) {
            candidate = draw;
            break;
          }
        }
        v = candidate;
      }
      if (u != v) builder.try_add_edge(u, v);
    }
  }
  return builder;
}

GraphBuilder powerlaw_configuration(NodeId n, double gamma,
                                    std::uint32_t min_degree,
                                    std::uint32_t max_degree,
                                    util::Rng& rng) {
  require(n >= 2, "powerlaw_configuration: need at least 2 nodes");
  require(gamma > 1.0, "powerlaw_configuration: gamma must exceed 1");
  require(min_degree >= 1 && min_degree <= max_degree,
          "powerlaw_configuration: bad degree bounds");
  require(max_degree < n, "powerlaw_configuration: max_degree must be < n");
  // Discrete power-law CDF on [min_degree, max_degree].
  std::vector<double> cdf;
  cdf.reserve(max_degree - min_degree + 1);
  double mass = 0.0;
  for (std::uint32_t d = min_degree; d <= max_degree; ++d) {
    mass += std::pow(static_cast<double>(d), -gamma);
    cdf.push_back(mass);
  }
  for (double& c : cdf) c /= mass;

  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto offset =
        static_cast<std::uint32_t>(std::distance(cdf.begin(), it));
    const std::uint32_t d = min_degree + std::min<std::uint32_t>(
                                             offset, max_degree - min_degree);
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.push_back(static_cast<NodeId>(rng.index(n)));
  rng.shuffle(stubs);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId a = stubs[i];
    const NodeId b = stubs[i + 1];
    if (a == b) continue;                 // erase self-loops
    builder.try_add_edge(a, b);           // erase multi-edges
  }
  return builder;
}

GraphBuilder forest_fire(NodeId n, double forward_prob, util::Rng& rng) {
  require(n >= 2, "forest_fire: need at least 2 nodes");
  require(forward_prob >= 0.0 && forward_prob < 1.0,
          "forest_fire: forward_prob must be in [0, 1)");
  GraphBuilder builder(n);
  std::vector<std::vector<NodeId>> adj(n);
  auto link = [&](NodeId a, NodeId b) {
    if (builder.try_add_edge(a, b)) {
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
  };
  std::vector<bool> burned(n, false);
  std::vector<NodeId> frontier, burn_list;
  for (NodeId v = 1; v < n; ++v) {
    const auto ambassador = static_cast<NodeId>(rng.index(v));
    // Burn outward from the ambassador.
    burn_list.clear();
    frontier.clear();
    burned[ambassador] = true;
    burn_list.push_back(ambassador);
    frontier.push_back(ambassador);
    while (!frontier.empty()) {
      const NodeId w = frontier.back();
      frontier.pop_back();
      // Number of fresh neighbors to burn: geometric with mean p/(1-p).
      std::uint64_t quota =
          forward_prob > 0.0 ? rng.geometric_skips(1.0 - forward_prob) : 0;
      for (const NodeId nb : adj[w]) {
        if (quota == 0) break;
        if (burned[nb]) continue;
        burned[nb] = true;
        burn_list.push_back(nb);
        frontier.push_back(nb);
        --quota;
      }
    }
    for (const NodeId target : burn_list) {
      link(v, target);
      burned[target] = false;  // reset for the next arrival
    }
  }
  return builder;
}

GraphBuilder community_affiliation(NodeId n, double mean_community_size,
                                   std::uint32_t memberships_per_node,
                                   double intra_prob, util::Rng& rng) {
  require(mean_community_size >= 2.0,
          "community_affiliation: mean size must be >= 2");
  require(memberships_per_node >= 1,
          "community_affiliation: memberships must be >= 1");
  require(intra_prob >= 0.0 && intra_prob <= 1.0,
          "community_affiliation: intra_prob outside [0,1]");
  const auto num_communities = static_cast<std::uint32_t>(std::max(
      1.0, std::round(static_cast<double>(n) * memberships_per_node /
                      mean_community_size)));
  std::vector<std::vector<NodeId>> members(num_communities);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < memberships_per_node; ++i) {
      members[rng.index(num_communities)].push_back(v);
    }
  }
  GraphBuilder builder(n);
  for (auto& community : members) {
    std::sort(community.begin(), community.end());
    community.erase(std::unique(community.begin(), community.end()),
                    community.end());
    for (std::size_t i = 0; i < community.size(); ++i) {
      for (std::size_t j = i + 1; j < community.size(); ++j) {
        if (rng.bernoulli(intra_prob)) {
          builder.try_add_edge(community[i], community[j]);
        }
      }
    }
  }
  return builder;
}

}  // namespace accu::graph
