// Classic graph algorithms on the CSR substrate.
//
// These serve three roles in the reproduction: validating generated
// networks (connectivity, degree laws, clustering — Table I), supporting
// dataset construction (largest-component extraction, k-core), and giving
// tests an independent reference implementation to check the simulator's
// incremental bookkeeping against.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace accu::graph {

/// BFS hop distances from `source`; unreachable nodes get kUnreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId source);

/// Connected-component labels in [0, #components); label order follows the
/// smallest node id in each component.
struct Components {
  std::vector<std::uint32_t> label;  // per node
  std::uint32_t count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

/// Nodes of the largest connected component (ties broken by lowest label),
/// in increasing node-id order.
[[nodiscard]] std::vector<NodeId> largest_component(const Graph& g);

/// Rebuilds the subgraph induced by `nodes` (which must be sorted and
/// unique), relabeling them 0..nodes.size()-1 and keeping edge
/// probabilities.  Returns the graph and the old-id mapping.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> original_id;  // new id -> old id
};
[[nodiscard]] InducedSubgraph induced_subgraph(
    const Graph& g, const std::vector<NodeId>& nodes);

/// Summary degree statistics used by the Table I reproduction.
struct DegreeStats {
  double mean = 0.0;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double median = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Fraction of nodes with degree in the inclusive window [lo, hi].
[[nodiscard]] double degree_window_fraction(const Graph& g, std::uint32_t lo,
                                            std::uint32_t hi);

/// Average local clustering coefficient, estimated on `samples` random
/// nodes of degree >= 2 (exact when samples >= #eligible nodes).
[[nodiscard]] double clustering_coefficient(const Graph& g,
                                            std::size_t samples,
                                            util::Rng& rng);

/// Core number of every node (standard peeling algorithm).
[[nodiscard]] std::vector<std::uint32_t> core_numbers(const Graph& g);

/// Exact triangle count incident to node `v` (neighbors that are mutually
/// adjacent); reference implementation for clustering tests.
[[nodiscard]] std::uint64_t triangles_at(const Graph& g, NodeId v);

}  // namespace accu::graph
