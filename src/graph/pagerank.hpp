// Weighted PageRank by power iteration.
//
// The paper's PageRank baseline (§IV-A) ranks users by their score on the
// attacker's prior network.  Edges carry existence probabilities, so the
// natural transition weights are those probabilities: the random surfer
// follows edge (u,v) with weight p_uv relative to u's total incident mass.
// With all probabilities equal this degenerates to classic unweighted
// PageRank, which the tests verify.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace accu::graph {

struct PageRankOptions {
  double damping = 0.85;
  std::size_t max_iterations = 100;
  /// L1 change threshold for early convergence.
  double tolerance = 1e-10;
  /// Use edge probabilities as transition weights (true) or treat every
  /// potential edge as weight-1 (false).
  bool weighted = true;
};

/// Returns per-node scores summing to 1 (up to rounding).  Nodes whose
/// incident probability mass is zero are treated as dangling: their rank is
/// redistributed uniformly, as in the standard formulation.
[[nodiscard]] std::vector<double> pagerank(const Graph& g,
                                           const PageRankOptions& options = {});

}  // namespace accu::graph
