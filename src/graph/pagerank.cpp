#include "graph/pagerank.hpp"

#include <cmath>

namespace accu::graph {

std::vector<double> pagerank(const Graph& g, const PageRankOptions& options) {
  const NodeId n = g.num_nodes();
  if (n == 0) return {};
  ACCU_ASSERT(options.damping >= 0.0 && options.damping < 1.0);

  // Out-mass per node under the chosen weighting.
  std::vector<double> out_mass(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double mass = 0.0;
    for (const Neighbor& nb : g.neighbors(v)) {
      mass += options.weighted ? g.edge_prob(nb.edge) : 1.0;
    }
    out_mass[v] = mass;
  }

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (out_mass[v] <= 0.0) dangling += rank[v];
    }
    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * dangling * uniform;
    for (NodeId v = 0; v < n; ++v) next[v] = base;
    for (NodeId v = 0; v < n; ++v) {
      if (out_mass[v] <= 0.0) continue;
      const double share = options.damping * rank[v] / out_mass[v];
      for (const Neighbor& nb : g.neighbors(v)) {
        const double w = options.weighted ? g.edge_prob(nb.edge) : 1.0;
        next[nb.node] += share * w;
      }
    }
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace accu::graph
