// Immutable undirected graph with per-edge existence probabilities.
//
// This is the network substrate of the reproduction: the paper models an OSN
// as G = (V, E, p) where E is the set of *potential* friendships and
// p : E -> [0,1] gives each edge's existence probability (§II-A).  The
// attacker's prior knowledge is exactly this object; ground-truth networks
// are sampled from it (core/realization.hpp).
//
// Storage is compressed sparse rows (CSR) with sorted adjacency, so
// neighborhood scans are cache-friendly and `find_edge` is a binary search.
// Each undirected edge has a single EdgeId shared by both directions, which
// lets per-edge observation state live in flat arrays indexed by EdgeId.
//
// Graphs are built through GraphBuilder (which validates and deduplicates)
// and never mutated afterwards; every policy/simulator structure keeps a
// `const Graph&`.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace accu::graph {

/// Node index in [0, num_nodes).
using NodeId = std::uint32_t;
/// Undirected edge index in [0, num_edges); shared by both directions.
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One adjacency entry: the neighbor and the undirected edge reaching it.
struct Neighbor {
  NodeId node;
  EdgeId edge;
};

/// Endpoints of an undirected edge, normalized so `lo < hi`.
struct EdgeEndpoints {
  NodeId lo;
  NodeId hi;
};

class GraphBuilder;

class Graph {
 public:
  /// Empty graph (0 nodes); useful as a default-constructed placeholder.
  Graph() = default;

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(endpoints_.size());
  }

  [[nodiscard]] ACCU_ALWAYS_INLINE std::uint32_t degree(NodeId v) const {
    ACCU_ASSERT(v < num_nodes());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Adjacency of `v`, sorted by neighbor id.
  [[nodiscard]] ACCU_ALWAYS_INLINE std::span<const Neighbor> neighbors(
      NodeId v) const {
    ACCU_ASSERT(v < num_nodes());
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Existence probability of edge `e` (the paper's p_uv).
  [[nodiscard]] ACCU_ALWAYS_INLINE double edge_prob(EdgeId e) const {
    ACCU_ASSERT(e < num_edges());
    return probs_[e];
  }

  [[nodiscard]] EdgeEndpoints endpoints(EdgeId e) const {
    ACCU_ASSERT(e < num_edges());
    return endpoints_[e];
  }

  /// Binary-searches `u`'s adjacency for `v`; O(log deg(u)).
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v).has_value();
  }

  /// Sum of incident edge probabilities — the attacker's *expected* degree
  /// of `v` under the prior; used by the MaxDegree baseline.
  [[nodiscard]] double expected_degree(NodeId v) const;

  /// Total probability mass of all edges (expected edge count).
  [[nodiscard]] double expected_num_edges() const;

  // --- raw CSR views + trusted-load factory (binary instance format) ------

  /// Raw CSR arrays, exposed for serialization (core/instance_format):
  /// row offsets into `raw_adjacency` (size n+1), one Neighbor per
  /// direction (size 2m, sorted per row), per-edge priors and normalized
  /// endpoints in EdgeId order.
  [[nodiscard]] std::span<const std::size_t> raw_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const Neighbor> raw_adjacency() const noexcept {
    return adjacency_;
  }
  [[nodiscard]] std::span<const double> raw_probs() const noexcept {
    return probs_;
  }
  [[nodiscard]] std::span<const EdgeEndpoints> raw_endpoints()
      const noexcept {
    return endpoints_;
  }

  /// Adopts pre-built CSR arrays after a single linear validation pass —
  /// the zero-parse load path of the binary instance format.  Checks, in
  /// O(V + E) with no hashing or sorting: offsets start at 0, are
  /// monotonic, stay within adjacency.size() == 2·endpoints.size() (each
  /// row is bounds-checked before it is scanned) and end there; every
  /// row is strictly ascending by neighbor id (which excludes duplicate
  /// edges and self-loops); every slot's edge id is in range and its
  /// endpoints entry matches the slot's (row, neighbor) pair — which,
  /// with strict sortedness, forces each edge to appear exactly once per
  /// direction; endpoints are normalized (lo < hi) and probabilities lie
  /// in [0,1].  Throws InvalidArgument naming the first violation.
  [[nodiscard]] static Graph from_csr(NodeId num_nodes,
                                      std::vector<std::size_t> offsets,
                                      std::vector<Neighbor> adjacency,
                                      std::vector<double> probs,
                                      std::vector<EdgeEndpoints> endpoints);

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;    // size num_nodes + 1
  std::vector<Neighbor> adjacency_;     // size 2 * num_edges, sorted per row
  std::vector<double> probs_;           // size num_edges
  std::vector<EdgeEndpoints> endpoints_;  // size num_edges, lo < hi
};

/// Accumulates edges, validates them, and produces an immutable Graph.
///
/// Duplicate undirected edges and self-loops are rejected (generators that
/// may propose duplicates use `try_add_edge`).  Edge probabilities default
/// to 1 (a certain edge) and can be reassigned in bulk before `build`, which
/// is how the dataset factory applies the paper's uniform-[0,1) priors
/// without regenerating topology.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes);

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return us_.size(); }

  /// Adds edge (u,v) with probability `p`.  Throws InvalidArgument on
  /// out-of-range endpoints, self-loops, p outside [0,1], or duplicates.
  void add_edge(NodeId u, NodeId v, double p = 1.0);

  /// Adds the edge unless it already exists; returns whether it was added.
  bool try_add_edge(NodeId u, NodeId v, double p = 1.0);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Endpoints of the i-th added edge (insertion order).
  [[nodiscard]] EdgeEndpoints edge_at(std::size_t i) const;

  /// Overwrites the probability of the i-th added edge.
  void set_prob(std::size_t i, double p);

  /// Assigns every edge an independent probability uniform in [lo, hi)
  /// — the paper's §IV-A edge-probability protocol with [lo,hi) = [0,1).
  template <typename RngT>
  void assign_uniform_probs(RngT& rng, double lo = 0.0, double hi = 1.0) {
    for (auto& p : ps_) p = rng.uniform(lo, hi);
  }

  /// Finalizes into CSR form.  The builder may be reused afterwards (its
  /// edge list is left intact).
  [[nodiscard]] Graph build() const;

 private:
  [[nodiscard]] static std::uint64_t key(NodeId u, NodeId v) noexcept;

  NodeId num_nodes_;
  std::vector<NodeId> us_, vs_;
  std::vector<double> ps_;
  // Packed (lo,hi) keys of existing edges for O(1) duplicate detection.
  // (definition in graph.cpp keeps <unordered_set> out of this header)
  struct EdgeSet;
  std::shared_ptr<EdgeSet> edge_set_;
};

}  // namespace accu::graph
