#include "graph/graph.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace accu::graph {

std::optional<EdgeId> Graph::find_edge(NodeId u, NodeId v) const {
  ACCU_ASSERT(u < num_nodes() && v < num_nodes());
  // Search the smaller adjacency row.
  if (degree(v) < degree(u)) std::swap(u, v);
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const Neighbor& n, NodeId target) { return n.node < target; });
  if (it != adj.end() && it->node == v) return it->edge;
  return std::nullopt;
}

double Graph::expected_degree(NodeId v) const {
  double sum = 0.0;
  for (const Neighbor& n : neighbors(v)) sum += probs_[n.edge];
  return sum;
}

double Graph::expected_num_edges() const {
  double sum = 0.0;
  for (const double p : probs_) sum += p;
  return sum;
}

struct GraphBuilder::EdgeSet {
  std::unordered_set<std::uint64_t> keys;
};

GraphBuilder::GraphBuilder(NodeId num_nodes)
    : num_nodes_(num_nodes), edge_set_(std::make_shared<EdgeSet>()) {
  if (num_nodes == kInvalidNode) {
    throw InvalidArgument("GraphBuilder: node count out of range");
  }
}

std::uint64_t GraphBuilder::key(NodeId u, NodeId v) noexcept {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, double p) {
  if (!try_add_edge(u, v, p)) {
    throw InvalidArgument("GraphBuilder: duplicate edge (" +
                          std::to_string(u) + "," + std::to_string(v) + ")");
  }
}

bool GraphBuilder::try_add_edge(NodeId u, NodeId v, double p) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw InvalidArgument("GraphBuilder: endpoint out of range");
  }
  if (u == v) {
    throw InvalidArgument("GraphBuilder: self-loop on node " +
                          std::to_string(u));
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("GraphBuilder: edge probability outside [0,1]");
  }
  if (!edge_set_->keys.insert(key(u, v)).second) return false;
  us_.push_back(std::min(u, v));
  vs_.push_back(std::max(u, v));
  ps_.push_back(p);
  return true;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  return edge_set_->keys.contains(key(u, v));
}

EdgeEndpoints GraphBuilder::edge_at(std::size_t i) const {
  ACCU_ASSERT(i < us_.size());
  return {us_[i], vs_[i]};
}

void GraphBuilder::set_prob(std::size_t i, double p) {
  ACCU_ASSERT(i < ps_.size());
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("GraphBuilder: edge probability outside [0,1]");
  }
  ps_[i] = p;
}

Graph GraphBuilder::build() const {
  Graph g;
  const std::size_t m = us_.size();
  g.offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  g.probs_ = ps_;
  g.endpoints_.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    g.endpoints_[e] = {us_[e], vs_[e]};
    ++g.offsets_[us_[e] + 1];
    ++g.offsets_[vs_[e] + 1];
  }
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.adjacency_.resize(2 * m);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const auto eid = static_cast<EdgeId>(e);
    g.adjacency_[cursor[us_[e]]++] = {vs_[e], eid};
    g.adjacency_[cursor[vs_[e]]++] = {us_[e], eid};
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }
  return g;
}

}  // namespace accu::graph
