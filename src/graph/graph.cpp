#include "graph/graph.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace accu::graph {

std::optional<EdgeId> Graph::find_edge(NodeId u, NodeId v) const {
  ACCU_ASSERT(u < num_nodes() && v < num_nodes());
  // Search the smaller adjacency row.
  if (degree(v) < degree(u)) std::swap(u, v);
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const Neighbor& n, NodeId target) { return n.node < target; });
  if (it != adj.end() && it->node == v) return it->edge;
  return std::nullopt;
}

double Graph::expected_degree(NodeId v) const {
  double sum = 0.0;
  for (const Neighbor& n : neighbors(v)) sum += probs_[n.edge];
  return sum;
}

double Graph::expected_num_edges() const {
  double sum = 0.0;
  for (const double p : probs_) sum += p;
  return sum;
}

Graph Graph::from_csr(NodeId num_nodes, std::vector<std::size_t> offsets,
                      std::vector<Neighbor> adjacency,
                      std::vector<double> probs,
                      std::vector<EdgeEndpoints> endpoints) {
  const auto fail = [](const std::string& what) {
    throw InvalidArgument("Graph::from_csr: " + what);
  };
  if (num_nodes == kInvalidNode) fail("node count out of range");
  if (offsets.size() != static_cast<std::size_t>(num_nodes) + 1) {
    fail("offsets size " + std::to_string(offsets.size()) + " != n+1 = " +
         std::to_string(static_cast<std::size_t>(num_nodes) + 1));
  }
  const std::size_t m = endpoints.size();
  if (m >= static_cast<std::size_t>(kInvalidEdge)) fail("edge count overflow");
  if (probs.size() != m) {
    fail("probs size " + std::to_string(probs.size()) + " != m = " +
         std::to_string(m));
  }
  if (adjacency.size() != 2 * m) {
    fail("adjacency size " + std::to_string(adjacency.size()) +
         " != 2m = " + std::to_string(2 * m));
  }
  if (offsets.front() != 0 || offsets.back() != 2 * m) {
    fail("offsets must start at 0 and end at 2m");
  }
  for (std::size_t e = 0; e < m; ++e) {
    const auto [lo, hi] = endpoints[e];
    if (!(lo < hi && hi < num_nodes)) {
      fail("edge " + std::to_string(e) + " endpoints (" + std::to_string(lo) +
           "," + std::to_string(hi) + ") not normalized in-range");
    }
    if (!(probs[e] >= 0.0 && probs[e] <= 1.0)) {
      fail("edge " + std::to_string(e) + " probability outside [0,1]");
    }
  }
  // One linear sweep establishes everything else.  Per row: offsets
  // monotonic, neighbors strictly ascending (no duplicates), no self-loops,
  // edge ids in range, and each slot's endpoints entry equal to its own
  // (row, neighbor) pair.  Since endpoints[e] pins exactly one (lo,hi) and
  // strict sortedness forbids repeating a pair within a row, edge e can
  // label at most the slot lo->hi and the slot hi->lo — at most twice over
  // the whole adjacency.  With sum(row lengths) == 2m slots total and m
  // distinct edges that "at most twice" is forced to "exactly twice", so no
  // per-edge counter array is needed.
  for (NodeId u = 0; u < num_nodes; ++u) {
    const std::size_t begin = offsets[u];
    const std::size_t end = offsets[u + 1];
    if (begin > end) {
      fail("offsets not monotonic at node " + std::to_string(u));
    }
    // Bound the row *before* indexing it: pairwise monotonicity alone lets
    // offsets like [0, huge, 2m] send the inner loop far past adjacency.
    if (end > adjacency.size()) {
      fail("offsets exceed 2m at node " + std::to_string(u));
    }
    NodeId prev = kInvalidNode;
    for (std::size_t s = begin; s < end; ++s) {
      const auto [v, e] = adjacency[s];
      if (v == u) fail("self-loop on node " + std::to_string(u));
      if (v >= num_nodes) {
        fail("neighbor out of range in row " + std::to_string(u));
      }
      if (prev != kInvalidNode && v <= prev) {
        fail("row " + std::to_string(u) +
             " not strictly ascending (duplicate or unsorted neighbor " +
             std::to_string(v) + ")");
      }
      prev = v;
      if (e >= m) {
        fail("edge id " + std::to_string(e) + " out of range in row " +
             std::to_string(u));
      }
      if (endpoints[e].lo != std::min(u, v) ||
          endpoints[e].hi != std::max(u, v)) {
        fail("slot (" + std::to_string(u) + "," + std::to_string(v) +
             ") disagrees with endpoints of edge " + std::to_string(e));
      }
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.probs_ = std::move(probs);
  g.endpoints_ = std::move(endpoints);
  return g;
}

struct GraphBuilder::EdgeSet {
  std::unordered_set<std::uint64_t> keys;
};

GraphBuilder::GraphBuilder(NodeId num_nodes)
    : num_nodes_(num_nodes), edge_set_(std::make_shared<EdgeSet>()) {
  if (num_nodes == kInvalidNode) {
    throw InvalidArgument("GraphBuilder: node count out of range");
  }
}

std::uint64_t GraphBuilder::key(NodeId u, NodeId v) noexcept {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, double p) {
  if (!try_add_edge(u, v, p)) {
    throw InvalidArgument("GraphBuilder: duplicate edge (" +
                          std::to_string(u) + "," + std::to_string(v) + ")");
  }
}

bool GraphBuilder::try_add_edge(NodeId u, NodeId v, double p) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw InvalidArgument("GraphBuilder: endpoint out of range");
  }
  if (u == v) {
    throw InvalidArgument("GraphBuilder: self-loop on node " +
                          std::to_string(u));
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("GraphBuilder: edge probability outside [0,1]");
  }
  if (!edge_set_->keys.insert(key(u, v)).second) return false;
  us_.push_back(std::min(u, v));
  vs_.push_back(std::max(u, v));
  ps_.push_back(p);
  return true;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  return edge_set_->keys.contains(key(u, v));
}

EdgeEndpoints GraphBuilder::edge_at(std::size_t i) const {
  ACCU_ASSERT(i < us_.size());
  return {us_[i], vs_[i]};
}

void GraphBuilder::set_prob(std::size_t i, double p) {
  ACCU_ASSERT(i < ps_.size());
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("GraphBuilder: edge probability outside [0,1]");
  }
  ps_[i] = p;
}

Graph GraphBuilder::build() const {
  Graph g;
  const std::size_t m = us_.size();
  g.offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  g.probs_ = ps_;
  g.endpoints_.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    g.endpoints_[e] = {us_[e], vs_[e]};
    ++g.offsets_[us_[e] + 1];
    ++g.offsets_[vs_[e] + 1];
  }
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.adjacency_.resize(2 * m);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const auto eid = static_cast<EdgeId>(e);
    g.adjacency_[cursor[us_[e]]++] = {vs_[e], eid};
    g.adjacency_[cursor[vs_[e]]++] = {us_[e], eid};
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }
  return g;
}

}  // namespace accu::graph
