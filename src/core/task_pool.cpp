#include "core/task_pool.hpp"

namespace accu {

TaskPool::TaskPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  if (threads_ > 1) {
    workers_.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

TaskPool::~TaskPool() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

void TaskPool::claim_loop() noexcept {
  for (std::size_t i; (i = next_.fetch_add(1, std::memory_order_relaxed)) < n_;) {
    fn_(ctx_, i);
  }
}

void TaskPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    claim_loop();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) cv_done_.notify_one();
    }
  }
}

void TaskPool::run_raw(std::size_t n, TaskFn fn, void* ctx) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    n_ = n;
    fn_ = fn;
    ctx_ = ctx;
    next_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++generation_;
  }
  cv_work_.notify_all();
  claim_loop();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return pending_workers_ == 0; });
}

}  // namespace accu
