// The adaptive attack simulator (paper §II-B / Algorithm 1's outer loop).
//
// A Strategy repeatedly picks the next user to befriend from the attacker's
// current knowledge; the simulator resolves acceptance against the hidden
// ground-truth realization —
//
//   * reckless u accepts iff its realization coin came up accept,
//   * cautious v accepts iff the *realized* mutual-friend count has
//     reached θ_v (deterministic, §II-A) —
//
// then reveals the accepted user's neighborhood to the view and records a
// per-request trace entry.  The trace carries everything Figures 2-7 of the
// paper aggregate: cumulative benefit, per-request marginal, the target's
// class, and the acceptance outcome.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/observation.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace accu {

/// One friend request in a simulation trace.
struct RequestRecord {
  NodeId target = kInvalidNode;
  bool accepted = false;
  /// Whether the target is a cautious user (drives Fig. 3/5 splits).
  bool cautious_target = false;
  /// Eq.-(1) benefit after this request; the marginal gain is
  /// `benefit_after - benefit_before`.
  double benefit_before = 0.0;
  double benefit_after = 0.0;

  [[nodiscard]] double marginal() const noexcept {
    return benefit_after - benefit_before;
  }
};

/// Outcome of one simulated attack.
struct SimulationResult {
  std::vector<RequestRecord> trace;
  double total_benefit = 0.0;
  std::uint32_t num_accepted = 0;
  std::uint32_t num_cautious_friends = 0;
  std::vector<NodeId> friends;
};

/// An adaptive befriending policy (the paper's π).
///
/// Policies observe only the AttackerView — never the realization — so any
/// implementation is automatically a legal adaptive strategy.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Called once at simulation start, before any request.
  virtual void reset(const AccuInstance& instance, util::Rng& rng) {
    (void)instance;
    (void)rng;
  }

  /// Picks the next user to request (must be un-requested), or
  /// kInvalidNode to stop early (no useful candidate left).
  virtual NodeId select(const AttackerView& view, util::Rng& rng) = 0;

  /// Notified after the outcome of the previous selection is folded into
  /// the view.  `effects` is non-null iff the request was accepted.
  virtual void observe(NodeId target, bool accepted,
                       const AttackerView& view,
                       const AttackerView::AcceptanceEffects* effects) {
    (void)target;
    (void)accepted;
    (void)view;
    (void)effects;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Runs `strategy` for at most `budget` requests against the given ground
/// truth.  `rng` drives only the strategy's own randomness (tie-breaking,
/// the Random baseline); all environment randomness lives in `truth`.
[[nodiscard]] SimulationResult simulate(const AccuInstance& instance,
                                        const Realization& truth,
                                        Strategy& strategy,
                                        std::uint32_t budget,
                                        util::Rng& rng);

/// As `simulate`, but also exposes the final view (integration tests and
/// the examples' reporting use it).
[[nodiscard]] SimulationResult simulate_with_view(const AccuInstance& instance,
                                                  const Realization& truth,
                                                  Strategy& strategy,
                                                  std::uint32_t budget,
                                                  util::Rng& rng,
                                                  AttackerView& view_out);

}  // namespace accu
