// The adaptive attack simulator (paper §II-B / Algorithm 1's outer loop).
//
// A Strategy repeatedly picks the next user to befriend from the attacker's
// current knowledge; the simulator resolves acceptance against the hidden
// ground-truth realization —
//
//   * reckless u accepts iff its realization coin came up accept,
//   * cautious v accepts iff the *realized* mutual-friend count has
//     reached θ_v (deterministic, §II-A) —
//
// then reveals the accepted user's neighborhood to the view and records a
// per-request trace entry.  The trace carries everything Figures 2-7 of the
// paper aggregate: cumulative benefit, per-request marginal, the target's
// class, and the acceptance outcome.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/instance.hpp"
#include "core/observation.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace accu {

class ScorePack;  // core/score.hpp
class TaskPool;   // core/task_pool.hpp

/// One simulated round: a friend request, or (under the fault layer) a
/// round lost to a rate-limit suspension (`fault == kSuspensionStall`,
/// `target == kInvalidNode`).  Stall rounds stay in the trace so request
/// index i always means "round i" — curves from faulted and pristine runs
/// aggregate index-aligned.
struct RequestRecord {
  NodeId target = kInvalidNode;
  bool accepted = false;
  /// Whether the target is a cautious user (drives Fig. 3/5 splits).
  bool cautious_target = false;
  /// Eq.-(1) benefit after this request; the marginal gain is
  /// `benefit_after - benefit_before`.
  double benefit_before = 0.0;
  double benefit_after = 0.0;
  /// Platform fault injected on this round (kNone on a reliable platform).
  FaultKind fault = FaultKind::kNone;
  /// How many earlier attempts at this same target faulted (0 = first try).
  std::uint32_t attempt = 0;

  [[nodiscard]] double marginal() const noexcept {
    return benefit_after - benefit_before;
  }
};

/// Outcome of one simulated attack.
struct SimulationResult {
  std::vector<RequestRecord> trace;
  double total_benefit = 0.0;
  std::uint32_t num_accepted = 0;
  std::uint32_t num_cautious_friends = 0;
  std::vector<NodeId> friends;
  // --- robustness accounting (all zero on a reliable platform) ----------
  /// Requests that hit a fault (drop/timeout/transient/rate-limit).
  std::uint32_t num_faulted = 0;
  /// Attempts that re-requested a previously faulted target.
  std::uint32_t num_retries = 0;
  /// Rounds lost to rate-limit suspensions (budget kept ticking).
  std::uint32_t rounds_suspended = 0;
  /// Faulted targets written off as rejected (retries exhausted, or the
  /// strategy is not fault-aware).
  std::uint32_t num_abandoned = 0;

  /// Back to the default-constructed state, keeping vector capacity so a
  /// result object can be reused across simulations allocation-free.
  void clear() noexcept {
    trace.clear();
    total_benefit = 0.0;
    num_accepted = 0;
    num_cautious_friends = 0;
    friends.clear();
    num_faulted = 0;
    num_retries = 0;
    rounds_suspended = 0;
    num_abandoned = 0;
  }
};

/// An adaptive befriending policy (the paper's π).
///
/// Policies observe only the AttackerView — never the realization — so any
/// implementation is automatically a legal adaptive strategy.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Called once at simulation start, before any request.
  virtual void reset(const AccuInstance& instance, util::Rng& rng) {
    (void)instance;
    (void)rng;
  }

  /// Picks the next user to request (must be un-requested), or
  /// kInvalidNode to stop early (no useful candidate left).
  virtual NodeId select(const AttackerView& view, util::Rng& rng) = 0;

  /// Notified after the outcome of the previous selection is folded into
  /// the view.  `effects` is non-null iff the request was accepted.  Under
  /// a deferred FeedbackModel an accepted request's effects carry only the
  /// acceptance itself (empty new_fof/mutual_increased) — the neighborhood
  /// deltas arrive later through observe_revelation.
  virtual void observe(NodeId target, bool accepted,
                       const AttackerView& view,
                       const AttackerView::AcceptanceEffects* effects) {
    (void)target;
    (void)accepted;
    (void)view;
    (void)effects;
  }

  /// Notified when a queued neighborhood revelation lands (deferred
  /// FeedbackModel only; never called under full feedback).  `source` is
  /// the previously-accepted node whose neighborhood just became visible;
  /// `effects` carries the observed-state deltas (new_fof /
  /// mutual_increased; was_fof is meaningless here).  The default is a
  /// no-op: strategies that rescore from the view pick the new information
  /// up automatically, only incremental-cache strategies (ABM) must react.
  virtual void observe_revelation(NodeId source, const AttackerView& view,
                                  const AttackerView::AcceptanceEffects&
                                      effects) {
    (void)source;
    (void)view;
    (void)effects;
  }

  /// Fault-feedback hook: a strategy that implements FaultObserver (e.g.
  /// the RetryingStrategy decorator) overrides this to return itself, so
  /// the faulted environment can consult it without RTTI.  The default is
  /// "not fault-aware": every faulted request is abandoned.
  [[nodiscard]] virtual FaultObserver* as_fault_observer() { return nullptr; }

  /// Score-pack pooling (core/score.hpp).  A strategy that scores through
  /// the flat SoA kernels returns true here; the engine entry points then
  /// offer the workspace-pooled pack for the upcoming instance via
  /// adopt_score_pack immediately before reset(), saving a per-simulation
  /// rebuild.  An adopted pack is valid only for the simulation whose
  /// reset() follows; strategies without an offer build their own.
  [[nodiscard]] virtual bool wants_score_pack() const { return false; }
  virtual void adopt_score_pack(const ScorePack& pack) { (void)pack; }

  /// Intra-cell parallelism (core/task_pool.hpp).  The engine entry points
  /// offer the workspace-pooled task pool immediately before reset();
  /// strategies with parallel-friendly inner loops (lookahead branch
  /// evaluation, batched rescore chunks) may keep the pointer for the
  /// simulation whose reset() follows and fan independent tasks across it.
  /// Results must be trace-identical for any pool width — see the
  /// determinism contract in task_pool.hpp.  Default: ignore (sequential).
  virtual void adopt_task_pool(TaskPool* pool) { (void)pool; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Runs `strategy` for at most `budget` requests against the given ground
/// truth.  `rng` drives only the strategy's own randomness (tie-breaking,
/// the Random baseline); all environment randomness lives in `truth`.
///
/// Cancellation: when `cancel` is non-null it is polled between rounds; a
/// fired token unwinds with util::CancelledError *before* the next request,
/// so no partial trace ever escapes — the caller sees either a complete
/// result or the exception.  Polling consumes no randomness: passing a
/// token that never fires leaves every outcome byte-identical.
///
/// Feedback: `feedback` selects the revelation model (core/feedback.hpp).
/// The default (full) is the paper's semantics and the status-quo code
/// path; non-full models defer neighborhood revelations per DESIGN.md §15.
/// Trace benefits always measure the realized attack state, so results are
/// comparable across models.
[[nodiscard]] SimulationResult simulate(
    const AccuInstance& instance, const Realization& truth,
    Strategy& strategy, std::uint32_t budget, util::Rng& rng,
    const util::CancelToken* cancel = nullptr,
    const FeedbackModel& feedback = {});

/// As `simulate`, but also exposes the final view (integration tests and
/// the examples' reporting use it).
[[nodiscard]] SimulationResult simulate_with_view(
    const AccuInstance& instance, const Realization& truth,
    Strategy& strategy, std::uint32_t budget, util::Rng& rng,
    AttackerView& view_out, const util::CancelToken* cancel = nullptr,
    const FeedbackModel& feedback = {});

/// As `simulate`, but runs against an unreliable platform: each request
/// attempt may fault per `faults` (core/faults.hpp).  The budget counts
/// *rounds* — delivered requests, faulted requests, and suspension stalls
/// all consume one each.  Fault handling:
///
///   * If the strategy implements FaultObserver (e.g. RetryingStrategy),
///     it is asked whether to keep the target pending for a retry or
///     abandon it.
///   * Otherwise every faulted target is abandoned: recorded as rejected
///     in the view (no information gained) and surfaced to the strategy
///     through the normal observe() path — any Strategy degrades
///     gracefully without modification.
///
/// With an all-zero FaultConfig this produces byte-identical traces to
/// `simulate` for every strategy (a regression test enforces this).
[[nodiscard]] SimulationResult simulate_with_faults(
    const AccuInstance& instance, const Realization& truth,
    Strategy& strategy, std::uint32_t budget, util::Rng& rng,
    FaultModel& faults, const util::CancelToken* cancel = nullptr,
    const FeedbackModel& feedback = {});

/// As `simulate_with_faults`, but exposes the final view.
[[nodiscard]] SimulationResult simulate_with_faults(
    const AccuInstance& instance, const Realization& truth,
    Strategy& strategy, std::uint32_t budget, util::Rng& rng,
    FaultModel& faults, AttackerView& view_out,
    const util::CancelToken* cancel = nullptr,
    const FeedbackModel& feedback = {});

}  // namespace accu
