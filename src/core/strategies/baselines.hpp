// The paper's comparison baselines (§IV-A, "Algorithms for Comparison").
//
//   * MaxDegree — iteratively request the highest-degree remaining user.
//     Degrees are *expected* degrees under the attacker's prior (the sum of
//     incident edge probabilities), since true degrees are not observable.
//   * PageRank — request users in decreasing PageRank score, computed once
//     on the prior network with edge probabilities as transition weights.
//   * Random — uniform among un-requested users (the paper averages this
//     over many runs; the experiment harness does the same).
//
// MaxDegree and PageRank are static orders: their information never changes
// with observations, which is exactly why ABM beats them in the paper.

#pragma once

#include <vector>

#include "core/simulator.hpp"

namespace accu {

class RandomStrategy final : public Strategy {
 public:
  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  // Shuffled node order; a cursor walks it skipping requested nodes, so a
  // full simulation stays O(n) regardless of budget.
  std::vector<NodeId> order_;
  std::size_t cursor_ = 0;
};

/// Shared implementation for score-ordered static baselines.
class StaticOrderStrategy : public Strategy {
 public:
  void reset(const AccuInstance& instance, util::Rng& rng) final;
  NodeId select(const AttackerView& view, util::Rng& rng) final;

 protected:
  /// Per-node score; higher is requested earlier.  Ties break by node id.
  [[nodiscard]] virtual std::vector<double> scores(
      const AccuInstance& instance) const = 0;

 private:
  std::vector<NodeId> order_;
  std::size_t cursor_ = 0;
};

class MaxDegreeStrategy final : public StaticOrderStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "MaxDegree"; }

 protected:
  [[nodiscard]] std::vector<double> scores(
      const AccuInstance& instance) const override;
};

class PageRankStrategy final : public StaticOrderStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "PageRank"; }

 protected:
  [[nodiscard]] std::vector<double> scores(
      const AccuInstance& instance) const override;
};

}  // namespace accu
