#include "core/strategies/lookahead.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/strategies/abm.hpp"

namespace accu {

LookaheadStrategy::LookaheadStrategy() : LookaheadStrategy(Config{}) {}

LookaheadStrategy::LookaheadStrategy(Config config) : config_(config) {
  if (config.beam == 0 || config.scenario_samples == 0) {
    throw InvalidArgument(
        "LookaheadStrategy: beam and scenario_samples must be >= 1");
  }
  if (!(config.weights.direct >= 0.0) || !(config.weights.indirect >= 0.0)) {
    throw InvalidArgument("LookaheadStrategy: weights must be non-negative");
  }
}

std::string LookaheadStrategy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "Lookahead(beam=%u,samples=%u)",
                config_.beam, config_.scenario_samples);
  return buf;
}

void LookaheadStrategy::adopt_score_pack(const ScorePack& pack) {
  adopted_pack_ = &pack;
  adopt_fresh_ = true;
}

void LookaheadStrategy::reset(const AccuInstance& instance, util::Rng&) {
  instance_ = &instance;
  if (!adopt_fresh_ || adopted_pack_ == nullptr ||
      !adopted_pack_->built_for(instance)) {
    adopted_pack_ = nullptr;  // stale handover — never dereference it
  }
  adopt_fresh_ = false;
}

const ScorePack* LookaheadStrategy::current_pack() {
  if (!config_.flat_scoring) return nullptr;
  if (adopted_pack_ != nullptr) return adopted_pack_;
  if (!own_pack_.built_for(*instance_)) own_pack_.build(*instance_);
  return &own_pack_;
}

double LookaheadStrategy::step_score(const AttackerView& view,
                                     NodeId u) const {
  const double q = AbmStrategy::effective_accept_prob(view, u);
  if (q <= 0.0) return 0.0;
  double value = config_.weights.direct * AbmStrategy::direct_gain(view, u);
  if (config_.weights.indirect > 0.0) {
    value += config_.weights.indirect * AbmStrategy::indirect_gain(view, u);
  }
  return q * value;
}

double LookaheadStrategy::best_step_score(const AttackerView& view) {
  const NodeId n = instance_->num_nodes();
  double best = 0.0;
  if (const ScorePack* pack = current_pack()) {
    scores_.resize(n);
    score_batch(*pack, view, config_.weights, 0, n, scores_.data());
    for (NodeId v = 0; v < n; ++v) {
      if (view.is_requested(v)) continue;
      best = std::max(best, scores_[v]);
    }
    return best;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (view.is_requested(v)) continue;
    best = std::max(best, step_score(view, v));
  }
  return best;
}

NodeId LookaheadStrategy::select(const AttackerView& view, util::Rng& rng) {
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  const Graph& g = instance_->graph();

  // Stage 1: rank candidates by the myopic score.
  ranked_.clear();
  if (const ScorePack* pack = current_pack()) {
    const NodeId n = instance_->num_nodes();
    scores_.resize(n);
    score_batch(*pack, view, config_.weights, 0, n, scores_.data());
    for (NodeId u = 0; u < n; ++u) {
      if (view.is_requested(u)) continue;
      ranked_.emplace_back(scores_[u], u);
    }
  } else {
    for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
      if (view.is_requested(u)) continue;
      ranked_.emplace_back(step_score(view, u), u);
    }
  }
  if (ranked_.empty()) return kInvalidNode;
  const std::size_t beam =
      std::min<std::size_t>(config_.beam, ranked_.size());
  std::partial_sort(ranked_.begin(),
                    ranked_.begin() + static_cast<std::ptrdiff_t>(beam),
                    ranked_.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });

  // Pooled branch scratch: copy-assignment reuses the vectors' capacity.
  auto branch_copy = [this](const AttackerView& source) -> AttackerView& {
    if (!branch_view_.has_value()) {
      branch_view_.emplace(source);
    } else {
      *branch_view_ = source;
    }
    return *branch_view_;
  };

  // Stage 2: approximate V(u) = Δ(u) + E[ best next Δ ] over the beam.
  NodeId best = ranked_.front().second;
  double best_value = -1.0;
  scenario_edges_.assign(g.num_edges(), false);
  scenario_coins_.assign(instance_->num_nodes(), true);
  for (std::size_t c = 0; c < beam; ++c) {
    const NodeId u = ranked_[c].second;
    const double q = AbmStrategy::effective_accept_prob(view, u);
    double value = ranked_[c].first;
    // Rejection branch: one deterministic continuation.
    if (q < 1.0) {
      AttackerView& rejected = branch_copy(view);
      rejected.record_rejection(u);
      value += (1.0 - q) * best_step_score(rejected);
    }
    // Acceptance branch: sample u's revealed neighborhood.
    if (q > 0.0) {
      double continuation = 0.0;
      for (std::uint32_t s = 0; s < config_.scenario_samples; ++s) {
        for (const graph::Neighbor& nb : g.neighbors(u)) {
          switch (view.edge_state(nb.edge)) {
            case EdgeState::kPresent:
              scenario_edges_[nb.edge] = true;
              break;
            case EdgeState::kAbsent:
              scenario_edges_[nb.edge] = false;
              break;
            case EdgeState::kUnknown:
              scenario_edges_[nb.edge] =
                  rng.bernoulli(g.edge_prob(nb.edge));
              break;
          }
        }
        if (!scenario_.has_value()) {
          scenario_.emplace(scenario_edges_, scenario_coins_);
        } else {
          scenario_->assign(scenario_edges_, scenario_coins_);
        }
        AttackerView& accepted = branch_copy(view);
        accepted.record_acceptance(u, *scenario_);
        continuation += best_step_score(accepted);
      }
      value += q * continuation /
               static_cast<double>(config_.scenario_samples);
    }
    if (value > best_value) {
      best_value = value;
      best = u;
    }
  }
  return best;
}

}  // namespace accu
