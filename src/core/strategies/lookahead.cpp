#include "core/strategies/lookahead.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/strategies/abm.hpp"
#include "core/task_pool.hpp"

namespace accu {

LookaheadStrategy::LookaheadStrategy() : LookaheadStrategy(Config{}) {}

LookaheadStrategy::LookaheadStrategy(Config config) : config_(config) {
  if (config.beam == 0 || config.scenario_samples == 0) {
    throw InvalidArgument(
        "LookaheadStrategy: beam and scenario_samples must be >= 1");
  }
  if (!(config.weights.direct >= 0.0) || !(config.weights.indirect >= 0.0)) {
    throw InvalidArgument("LookaheadStrategy: weights must be non-negative");
  }
}

std::string LookaheadStrategy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "Lookahead(beam=%u,samples=%u)",
                config_.beam, config_.scenario_samples);
  return buf;
}

void LookaheadStrategy::adopt_score_pack(const ScorePack& pack) {
  adopted_pack_ = &pack;
  adopt_fresh_ = true;
}

void LookaheadStrategy::adopt_task_pool(TaskPool* pool) {
  task_pool_ = pool;
  pool_fresh_ = true;
}

void LookaheadStrategy::reset(const AccuInstance& instance, util::Rng&) {
  instance_ = &instance;
  if (!adopt_fresh_ || adopted_pack_ == nullptr ||
      !adopted_pack_->built_for(instance)) {
    adopted_pack_ = nullptr;  // stale handover — never dereference it
  }
  adopt_fresh_ = false;
  if (!pool_fresh_) task_pool_ = nullptr;  // same staleness rule as the pack
  pool_fresh_ = false;
}

const ScorePack* LookaheadStrategy::current_pack() {
  if (!config_.flat_scoring) return nullptr;
  if (adopted_pack_ != nullptr) return adopted_pack_;
  if (!own_pack_.built_for(*instance_)) own_pack_.build(*instance_);
  return &own_pack_;
}

double LookaheadStrategy::step_score(const AttackerView& view,
                                     NodeId u) const {
  const double q = AbmStrategy::effective_accept_prob(view, u);
  if (q <= 0.0) return 0.0;
  double value = config_.weights.direct * AbmStrategy::direct_gain(view, u);
  if (config_.weights.indirect > 0.0) {
    value += config_.weights.indirect * AbmStrategy::indirect_gain(view, u);
  }
  return q * value;
}

double LookaheadStrategy::best_step_score(const ScorePack* pack,
                                          const AttackerView& view,
                                          BranchScratch& s) const {
  const NodeId n = instance_->num_nodes();
  double best = 0.0;
  if (pack != nullptr) {
    s.scores.resize(n);
    score_batch_prepare(*pack, view, config_.weights.indirect > 0.0, s.batch);
    score_batch_ranged(*pack, view, config_.weights, s.batch, 0, n,
                       s.scores.data());
    for (NodeId v = 0; v < n; ++v) {
      if (view.is_requested(v)) continue;
      best = std::max(best, s.scores[v]);
    }
    return best;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (view.is_requested(v)) continue;
    best = std::max(best, step_score(view, v));
  }
  return best;
}

double LookaheadStrategy::evaluate_candidate(const ScorePack* pack,
                                             const AttackerView& view,
                                             NodeId u, double first_step,
                                             const std::uint8_t* draws,
                                             BranchScratch& s) const {
  const Graph& g = instance_->graph();
  const double q = AbmStrategy::effective_accept_prob(view, u);
  double value = first_step;
  // Slot-private branch view: copy-assignment reuses its capacity.
  const auto branch_copy = [&s](const AttackerView& source) -> AttackerView& {
    if (!s.branch_view.has_value()) {
      s.branch_view.emplace(source);
    } else {
      *s.branch_view = source;
    }
    return *s.branch_view;
  };
  // Rejection branch: one deterministic continuation.
  if (q < 1.0) {
    AttackerView& rejected = branch_copy(view);
    rejected.record_rejection(u);
    value += (1.0 - q) * best_step_score(pack, rejected, s);
  }
  // Acceptance branch: replay the pre-drawn scenarios of u's revealed
  // neighborhood.  record_acceptance reads only u's incident edge bits, so
  // the slot-fresh (vs candidate-shared) scenario storage cannot change a
  // value.
  if (q > 0.0) {
    s.scenario_edges.assign(g.num_edges(), false);
    s.scenario_coins.assign(instance_->num_nodes(), true);
    double continuation = 0.0;
    std::size_t d = 0;
    for (std::uint32_t smp = 0; smp < config_.scenario_samples; ++smp) {
      for (const graph::Neighbor& nb : g.neighbors(u)) {
        switch (view.edge_state(nb.edge)) {
          case EdgeState::kPresent:
            s.scenario_edges.set(nb.edge, true);
            break;
          case EdgeState::kAbsent:
            s.scenario_edges.set(nb.edge, false);
            break;
          case EdgeState::kUnknown:
            s.scenario_edges.set(nb.edge, draws[d++] != 0);
            break;
        }
      }
      if (!s.scenario.has_value()) {
        s.scenario = Realization::from_bits(s.scenario_edges, s.scenario_coins);
      } else {
        s.scenario->assign(s.scenario_edges, s.scenario_coins);
      }
      AttackerView& accepted = branch_copy(view);
      accepted.record_acceptance(u, *s.scenario);
      continuation += best_step_score(pack, accepted, s);
    }
    value += q * continuation / static_cast<double>(config_.scenario_samples);
  }
  return value;
}

NodeId LookaheadStrategy::select(const AttackerView& view, util::Rng& rng) {
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  const Graph& g = instance_->graph();
  const ScorePack* pack = current_pack();  // resolved before any fan-out

  // Stage 1: rank candidates by the myopic score (chunked across the
  // intra-cell pool when one was offered; chunking is value-invariant).
  ranked_.clear();
  if (pack != nullptr) {
    const NodeId n = instance_->num_nodes();
    scores_.resize(n);
    score_batch_all(*pack, view, config_.weights, batch_scratch_, task_pool_,
                    scores_.data());
    for (NodeId u = 0; u < n; ++u) {
      if (view.is_requested(u)) continue;
      ranked_.emplace_back(scores_[u], u);
    }
  } else {
    for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
      if (view.is_requested(u)) continue;
      ranked_.emplace_back(step_score(view, u), u);
    }
  }
  if (ranked_.empty()) return kInvalidNode;
  const std::size_t beam =
      std::min<std::size_t>(config_.beam, ranked_.size());
  std::partial_sort(ranked_.begin(),
                    ranked_.begin() + static_cast<std::ptrdiff_t>(beam),
                    ranked_.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });

  // Stage 2 pre-pass: draw every scenario coin on the calling thread, in
  // the exact nested order the sequential evaluation consumes them —
  // candidate-major, sample-major, CSR neighbor order.  This pins the RNG
  // stream (and therefore the whole trace) regardless of pool width.
  draws_.clear();
  draw_offsets_.resize(beam + 1);
  for (std::size_t c = 0; c < beam; ++c) {
    draw_offsets_[c] = draws_.size();
    const NodeId u = ranked_[c].second;
    if (AbmStrategy::effective_accept_prob(view, u) <= 0.0) continue;
    for (std::uint32_t smp = 0; smp < config_.scenario_samples; ++smp) {
      for (const graph::Neighbor& nb : g.neighbors(u)) {
        if (view.edge_state(nb.edge) == EdgeState::kUnknown) {
          draws_.push_back(rng.bernoulli(g.edge_prob(nb.edge)) ? 1 : 0);
        }
      }
    }
  }
  draw_offsets_[beam] = draws_.size();

  // Stage 2: approximate V(u) = Δ(u) + E[ best next Δ ] over the beam, one
  // task per candidate in its own scratch slot; combine in candidate order
  // after the join, which keeps the selection identical for any pool width.
  if (branch_scratch_.size() < beam) branch_scratch_.resize(beam);
  values_.resize(beam);
  const auto evaluate = [&](std::size_t c) {
    values_[c] = evaluate_candidate(pack, view, ranked_[c].second,
                                    ranked_[c].first,
                                    draws_.data() + draw_offsets_[c],
                                    branch_scratch_[c]);
  };
  if (task_pool_ != nullptr && task_pool_->threads() > 1 && beam > 1) {
    task_pool_->run(beam, evaluate);
  } else {
    for (std::size_t c = 0; c < beam; ++c) evaluate(c);
  }

  NodeId best = ranked_.front().second;
  double best_value = -1.0;
  for (std::size_t c = 0; c < beam; ++c) {
    if (values_[c] > best_value) {
      best_value = values_[c];
      best = ranked_[c].second;
    }
  }
  return best;
}

}  // namespace accu
