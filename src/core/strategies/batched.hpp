// Batched adaptive crawling (extension; cf. the paper's reference [4],
// "Adaptive reconnaissance attacks with near-optimal parallel batching",
// ICDCS 2017).
//
// Instead of observing after every request, the attacker commits to a
// *batch* of b targets computed from the current knowledge, sends them all,
// and only then folds the outcomes in.  Larger batches finish an attack in
// ⌈k/b⌉ interaction rounds (much faster in the real world, where a friend
// request takes days to be answered) at the price of staler information —
// the trade-off the batching paper studies and `bench/ablation_batching`
// reproduces in the ACCU setting.
//
// The batch is chosen by ABM's potential function, so `batch_size = 1`
// reproduces the sequential ABM decision-for-decision (tested), and
// `batch_size >= k` degenerates to a fully non-adaptive plan.

#pragma once

#include <vector>

#include "core/score.hpp"
#include "core/simulator.hpp"
#include "core/types.hpp"

namespace accu {

class BatchedAbmStrategy final : public Strategy {
 public:
  /// `flat_scoring` selects the SoA batched-rescore kernel (score_batch);
  /// false keeps the scalar AbmStrategy scorer — bit-identical decisions
  /// either way (pinned by tests), the flag exists for the oracle tests and
  /// A/B benchmarks.
  BatchedAbmStrategy(PotentialWeights weights, std::uint32_t batch_size,
                     bool flat_scoring = true);

  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  [[nodiscard]] bool wants_score_pack() const override {
    return flat_scoring_;
  }
  void adopt_score_pack(const ScorePack& pack) override;
  void adopt_task_pool(TaskPool* pool) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint32_t batch_size() const noexcept {
    return batch_size_;
  }
  /// Interaction rounds used so far (batches started).
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }

 private:
  /// Scores every un-requested user against the *current* view and queues
  /// the top `batch_size_` of them.
  void fill_batch(const AttackerView& view);

  /// The SoA pack for the current instance (adopted from the workspace or
  /// built locally); nullptr when flat scoring is off.
  [[nodiscard]] const ScorePack* current_pack();

  PotentialWeights weights_;
  std::uint32_t batch_size_;
  bool flat_scoring_;
  const AccuInstance* instance_ = nullptr;
  std::vector<NodeId> batch_;  // pending targets, best first
  std::size_t cursor_ = 0;
  std::uint32_t rounds_ = 0;
  // Scoring scratch, pooled across fill_batch calls and resets.
  std::vector<std::pair<double, NodeId>> scored_;
  std::vector<double> scores_;
  ScoreBatchScratch batch_scratch_;
  ScorePack own_pack_;
  const ScorePack* adopted_pack_ = nullptr;
  bool adopt_fresh_ = false;
  // The engine-offered intra-cell pool; rescore chunks fan across it.
  // Chunking never changes a value, so decisions are pool-width-invariant.
  TaskPool* task_pool_ = nullptr;
  bool pool_fresh_ = false;
};

}  // namespace accu
