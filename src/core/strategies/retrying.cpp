#include "core/strategies/retrying.hpp"

#include <algorithm>

namespace accu {

RetryingStrategy::RetryingStrategy(std::unique_ptr<Strategy> inner,
                                   util::RetryPolicy policy,
                                   std::uint64_t seed)
    : inner_(std::move(inner)), policy_(policy), seed_(seed), rng_(seed) {
  ACCU_ASSERT_MSG(inner_ != nullptr, "RetryingStrategy needs an inner policy");
}

void RetryingStrategy::reset(const AccuInstance& instance, util::Rng& rng) {
  round_ = 0;
  pending_.clear();
  failed_attempts_.assign(instance.num_nodes(), 0);
  rng_.reseed(seed_);
  inner_->reset(instance, rng);
}

NodeId RetryingStrategy::select(const AttackerView& view, util::Rng& rng) {
  ++round_;
  // A due retry preempts the inner policy.  Deterministic order: earliest
  // due round first, ties to the smaller node id.
  const auto best_pending = [this](bool only_due) {
    auto best = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (only_due && it->due_round > round_) continue;
      if (best == pending_.end() || it->due_round < best->due_round ||
          (it->due_round == best->due_round && it->target < best->target)) {
        best = it;
      }
    }
    return best == pending_.end() ? kInvalidNode : best->target;
  };
  const NodeId due = best_pending(/*only_due=*/true);
  if (due != kInvalidNode) return due;
  const NodeId choice = inner_->select(view, rng);
  if (choice != kInvalidNode) return choice;
  // Inner policy ran out of candidates: flush not-yet-due retries rather
  // than stopping — waiting would waste the remaining budget anyway.
  return best_pending(/*only_due=*/false);
}

void RetryingStrategy::observe(NodeId target, bool accepted,
                               const AttackerView& view,
                               const AttackerView::AcceptanceEffects* effects) {
  // A genuine outcome (or an abandonment surfaced as a rejection) settles
  // the target for good.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [target](const PendingRetry& p) {
                                  return p.target == target;
                                }),
                 pending_.end());
  inner_->observe(target, accepted, view, effects);
}

FaultResponse RetryingStrategy::observe_fault(NodeId target,
                                              FaultFeedback feedback,
                                              const AttackerView& view) {
  (void)feedback;  // no-response / transient / rate-limit are all retryable
  (void)view;
  ACCU_ASSERT(target < failed_attempts_.size());
  const std::uint32_t failures = ++failed_attempts_[target];
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [target](const PendingRetry& p) {
                                  return p.target == target;
                                }),
                 pending_.end());
  if (!policy_.should_retry(failures)) return FaultResponse::kAbandon;
  pending_.push_back({target, round_ + policy_.delay(failures, rng_)});
  return FaultResponse::kRetryLater;
}

std::string RetryingStrategy::name() const {
  return inner_->name() + "+retry(" + policy_.name() + ")";
}

}  // namespace accu
