// Adaptive Benefit Maximization (ABM) — the paper's Algorithm 1.
//
// Every round, ABM requests the un-requested user maximizing the potential
//
//     P(u|ω) = q(u) · ( w_D · P_D(u|ω) + w_I · P_I(u|ω) )
//
// where, under the current observations ω,
//
//     P_D(u|ω) = B_f(u) − 1_FOF(u)·B_fof(u)
//                + Σ_{v ∈ N(u)\N(s)}  p̂_uv · (1 − 1_FOF(v)) · B_fof(v)
//
// is the expected *direct* gain of u accepting (u upgrades to friend, u's
// believed neighbors become friends-of-friends), and
//
//     P_I(u|ω) = Σ_{v ∈ N(u) ∩ V_C,  θ_v > |N(s) ∩ N(v)|}
//                    p̂_uv · (B_f(v) − B_fof(v)) / (θ_v − |N(s) ∩ N(v)|)
//
// is the *indirect* gain of moving u's cautious neighbors closer to their
// acceptance thresholds.  p̂_uv is the attacker's current edge belief
// (prior p_uv, or 0/1 once observed); q(u) is q_u for reckless users and
// the deterministic acceptance indicator for cautious users.
//
// With w_D = 1, w_I = 0 the potential equals the exact expected marginal
// gain Δ(u|ω), so ABM reduces to the classic adaptive greedy analyzed by
// Theorem 1 (and used by prior adaptive-crawling work) — a property the
// tests verify by brute-force expectation.
//
// Complexity.  A naive implementation recomputes all n potentials (O(Σdeg))
// every round.  ABM instead maintains a versioned max-heap of cached
// potentials and, after each accepted request, re-evaluates only the nodes
// whose potential can actually have changed:
//
//   * graph neighbors of the new friend (edge beliefs resolved, the friend
//     left their P_D sums, their own FOF flag / mutual counts moved),
//   * graph neighbors of nodes that just entered FOF (the (1−1_FOF(v))
//     factor vanished), and
//   * graph neighbors of cautious users whose mutual count grew (their
//     P_I denominators shrank).
//
// A property test pins the incremental policy to the O(n·Σdeg) reference
// (`Config::incremental = false`) choice-for-choice.

#pragma once

#include <vector>

#include "core/simulator.hpp"

namespace accu {

class AbmStrategy final : public Strategy {
 public:
  struct Config {
    PotentialWeights weights{};
    /// When false, recompute every candidate's potential each round
    /// (reference implementation used by tests/ablation benches).
    bool incremental = true;
  };

  /// Default configuration: the paper's w_D = w_I = 0.5, incremental.
  AbmStrategy();
  explicit AbmStrategy(Config config);
  /// Convenience: ABM with the given w_D / w_I and incremental updates.
  AbmStrategy(double w_direct, double w_indirect);

  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  void observe(NodeId target, bool accepted, const AttackerView& view,
               const AttackerView::AcceptanceEffects* effects) override;
  [[nodiscard]] std::string name() const override;

  // --- potential function (exposed for tests / ablations) ----------------

  /// q(u): q_u for reckless users, the 0/1 threshold indicator for
  /// cautious users.
  [[nodiscard]] static double effective_accept_prob(const AttackerView& view,
                                                    NodeId u);
  /// P_D(u|ω).
  [[nodiscard]] static double direct_gain(const AttackerView& view, NodeId u);
  /// P_I(u|ω).
  [[nodiscard]] static double indirect_gain(const AttackerView& view,
                                            NodeId u);
  /// P(u|ω) under this strategy's weights.
  [[nodiscard]] double potential(const AttackerView& view, NodeId u) const;

  [[nodiscard]] const PotentialWeights& weights() const noexcept {
    return config_.weights;
  }

 private:
  struct HeapEntry {
    double value;
    NodeId node;
    std::uint32_t version;
    // Max-heap: higher potential first, ties to the smaller node id so the
    // incremental and reference modes pick identically.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) noexcept {
      if (a.value != b.value) return a.value < b.value;
      return a.node > b.node;
    }
  };

  /// Recomputes u's potential, bumps its version and pushes a fresh entry.
  void refresh(const AttackerView& view, NodeId u);

  /// Scores every node against `view` and heapifies — deferred from
  /// reset() to the first select() so the initial potentials come from the
  /// simulation's own (blank) view instead of a temporary one.
  void seed_heap(const AttackerView& view);

  void heap_push(HeapEntry entry);

  NodeId select_incremental(const AttackerView& view);
  NodeId select_reference(const AttackerView& view) const;

  Config config_;
  const AccuInstance* instance_ = nullptr;
  std::vector<std::uint32_t> version_;
  // Explicit max-heap (std::push_heap/pop_heap over a vector, ordering
  // identical to std::priority_queue) so reset() can keep its capacity.
  std::vector<HeapEntry> heap_;
  bool heap_seeded_ = false;
  // Per-round dedup stamp for dirty marking.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t round_ = 0;
};

/// The classic adaptive greedy of earlier adaptive-crawling papers
/// ([2],[3],[6] in the paper): ABM with w_D = 1, w_I = 0.
[[nodiscard]] AbmStrategy make_classic_greedy();

}  // namespace accu
