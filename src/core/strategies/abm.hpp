// Adaptive Benefit Maximization (ABM) — the paper's Algorithm 1.
//
// Every round, ABM requests the un-requested user maximizing the potential
//
//     P(u|ω) = q(u) · ( w_D · P_D(u|ω) + w_I · P_I(u|ω) )
//
// where, under the current observations ω,
//
//     P_D(u|ω) = B_f(u) − 1_FOF(u)·B_fof(u)
//                + Σ_{v ∈ N(u)\N(s)}  p̂_uv · (1 − 1_FOF(v)) · B_fof(v)
//
// is the expected *direct* gain of u accepting (u upgrades to friend, u's
// believed neighbors become friends-of-friends), and
//
//     P_I(u|ω) = Σ_{v ∈ N(u) ∩ V_C,  θ_v > |N(s) ∩ N(v)|}
//                    p̂_uv · (B_f(v) − B_fof(v)) / (θ_v − |N(s) ∩ N(v)|)
//
// is the *indirect* gain of moving u's cautious neighbors closer to their
// acceptance thresholds.  p̂_uv is the attacker's current edge belief
// (prior p_uv, or 0/1 once observed); q(u) is q_u for reckless users and
// the deterministic acceptance indicator for cautious users.
//
// With w_D = 1, w_I = 0 the potential equals the exact expected marginal
// gain Δ(u|ω), so ABM reduces to the classic adaptive greedy analyzed by
// Theorem 1 (and used by prior adaptive-crawling work) — a property the
// tests verify by brute-force expectation.
//
// Complexity.  A naive implementation recomputes all n potentials (O(Σdeg))
// every round.  ABM instead keeps a versioned max-heap of cached potentials
// over the incremental ScoreEngine (core/score.hpp): acceptance effects
// apply O(1) deltas per affected CSR slot, nodes whose potential may have
// *increased* are re-scored eagerly, and everything else carries a dirty
// bit and is re-summed lazily only if it surfaces at the heap top.  Stale
// heap entries are upper bounds, so the lazy pop loop returns exactly the
// argmax the eager policy would — see DESIGN.md §11 for the argument.
// The heap itself is compacted in place whenever stale entries outnumber
// live candidates 4:1, bounding its size over arbitrarily long runs.
//
// A property test pins the incremental policy to the O(n·Σdeg) scalar
// reference (`Config::incremental = false`) trace-for-trace, bit-exactly.

#pragma once

#include <vector>

#include "core/score.hpp"
#include "core/simulator.hpp"

namespace accu {

class AbmStrategy final : public Strategy {
 public:
  struct Config {
    PotentialWeights weights{};
    /// When false, recompute every candidate's potential each round
    /// (reference implementation used by tests/ablation benches).
    bool incremental = true;
  };

  /// Default configuration: the paper's w_D = w_I = 0.5, incremental.
  AbmStrategy();
  explicit AbmStrategy(Config config);
  /// Convenience: ABM with the given w_D / w_I and incremental updates.
  AbmStrategy(double w_direct, double w_indirect);

  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  void observe(NodeId target, bool accepted, const AttackerView& view,
               const AttackerView::AcceptanceEffects* effects) override;
  void observe_revelation(NodeId source, const AttackerView& view,
                          const AttackerView::AcceptanceEffects& effects)
      override;
  [[nodiscard]] bool wants_score_pack() const override {
    return config_.incremental;
  }
  void adopt_score_pack(const ScorePack& pack) override;
  [[nodiscard]] std::string name() const override;

  /// Current size of the selection heap, stale entries included (exposed
  /// for the heap-compaction regression test).
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

  // --- potential function (exposed for tests / ablations) ----------------

  /// q(u): q_u for reckless users, the 0/1 threshold indicator for
  /// cautious users.
  [[nodiscard]] static double effective_accept_prob(const AttackerView& view,
                                                    NodeId u);
  /// P_D(u|ω).
  [[nodiscard]] static double direct_gain(const AttackerView& view, NodeId u);
  /// P_I(u|ω).
  [[nodiscard]] static double indirect_gain(const AttackerView& view,
                                            NodeId u);
  /// P(u|ω) under this strategy's weights.
  [[nodiscard]] double potential(const AttackerView& view, NodeId u) const;

  [[nodiscard]] const PotentialWeights& weights() const noexcept {
    return config_.weights;
  }

 private:
  struct HeapEntry {
    double value;
    NodeId node;
    std::uint32_t version;
    // Max-heap: higher potential first, ties to the smaller node id so the
    // incremental and reference modes pick identically.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) noexcept {
      if (a.value != b.value) return a.value < b.value;
      return a.node > b.node;
    }
  };

  /// Recomputes u's engine score, bumps its version and pushes an entry.
  void refresh(NodeId u);

  /// Scores every un-requested node from the engine state and heapifies —
  /// deferred from reset() to the first select() so a strategy that is
  /// reset but never run pays nothing.
  void seed_heap();

  void heap_push(HeapEntry entry);

  /// Drops stale/requested entries in place once they outnumber live
  /// candidates 4:1 (the heap stays O(live) over arbitrarily long runs;
  /// re-heapifying never changes pop order — the comparator is total).
  void maybe_compact(const AttackerView& view);

  NodeId select_incremental(const AttackerView& view);
  NodeId select_reference(const AttackerView& view) const;

  Config config_;
  const AccuInstance* instance_ = nullptr;
  std::vector<std::uint32_t> version_;
  // Explicit max-heap (std::push_heap/pop_heap over a vector, ordering
  // identical to std::priority_queue) so reset() can keep its capacity.
  std::vector<HeapEntry> heap_;
  bool heap_seeded_ = false;
  // Incremental scoring state (config_.incremental only).  `own_pack_` is
  // the fallback when no workspace pack was adopted for this simulation;
  // `adopted_pack_` is only dereferenced when `adopt_fresh_` says the
  // pointer was handed over for the simulation being reset right now.
  ScoreEngine engine_;
  ScorePack own_pack_;
  const ScorePack* adopted_pack_ = nullptr;
  bool adopt_fresh_ = false;
};

/// The classic adaptive greedy of earlier adaptive-crawling papers
/// ([2],[3],[6] in the paper): ABM with w_D = 1, w_I = 0.
[[nodiscard]] AbmStrategy make_classic_greedy();

}  // namespace accu
