#include "core/strategies/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "graph/pagerank.hpp"

namespace accu {

void RandomStrategy::reset(const AccuInstance& instance, util::Rng& rng) {
  order_.resize(instance.num_nodes());
  std::iota(order_.begin(), order_.end(), NodeId{0});
  rng.shuffle(order_);
  cursor_ = 0;
}

NodeId RandomStrategy::select(const AttackerView& view, util::Rng& rng) {
  (void)rng;  // all randomness was spent in reset()
  while (cursor_ < order_.size() && view.is_requested(order_[cursor_])) {
    ++cursor_;
  }
  return cursor_ < order_.size() ? order_[cursor_++] : kInvalidNode;
}

void StaticOrderStrategy::reset(const AccuInstance& instance,
                                util::Rng& rng) {
  (void)rng;
  const std::vector<double> score = scores(instance);
  ACCU_ASSERT(score.size() == instance.num_nodes());
  order_.resize(instance.num_nodes());
  std::iota(order_.begin(), order_.end(), NodeId{0});
  std::stable_sort(order_.begin(), order_.end(),
                   [&](NodeId a, NodeId b) { return score[a] > score[b]; });
  cursor_ = 0;
}

NodeId StaticOrderStrategy::select(const AttackerView& view, util::Rng& rng) {
  (void)rng;
  while (cursor_ < order_.size() && view.is_requested(order_[cursor_])) {
    ++cursor_;
  }
  return cursor_ < order_.size() ? order_[cursor_++] : kInvalidNode;
}

std::vector<double> MaxDegreeStrategy::scores(
    const AccuInstance& instance) const {
  std::vector<double> score(instance.num_nodes());
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    score[v] = instance.graph().expected_degree(v);
  }
  return score;
}

std::vector<double> PageRankStrategy::scores(
    const AccuInstance& instance) const {
  return graph::pagerank(instance.graph());
}

}  // namespace accu
