#include "core/strategies/oracle.hpp"

namespace accu {

ClairvoyantGreedyStrategy::ClairvoyantGreedyStrategy(const Realization& truth)
    : truth_(&truth) {}

void ClairvoyantGreedyStrategy::reset(const AccuInstance& instance,
                                      util::Rng&) {
  ACCU_ASSERT(truth_->num_edges() == instance.graph().num_edges());
  instance_ = &instance;
}

double ClairvoyantGreedyStrategy::realized_gain(const AttackerView& view,
                                                NodeId u) const {
  const AccuInstance& instance = *instance_;
  // Would u accept right now?
  if (instance.is_cautious(u)) {
    const bool reached = view.cautious_would_accept(u);
    const bool accepts = reached ? truth_->cautious_above_accepts(u)
                                 : truth_->cautious_below_accepts(u);
    if (!accepts) return 0.0;
  } else if (!truth_->reckless_accepts(u)) {
    return 0.0;
  }
  const BenefitModel& benefits = instance.benefits();
  double gain = benefits.friend_benefit(u);
  if (view.is_fof(u)) gain -= benefits.fof_benefit(u);
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const NodeId v = nb.node;
    if (!truth_->edge_present(nb.edge)) continue;
    if (view.is_friend(v) || view.is_fof(v)) continue;
    gain += benefits.fof_benefit(v);  // v becomes FOF for sure
  }
  return gain;
}

NodeId ClairvoyantGreedyStrategy::select(const AttackerView& view,
                                         util::Rng&) {
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  NodeId best = kInvalidNode;
  double best_value = 0.0;
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    if (view.is_requested(u)) continue;
    const double value = realized_gain(view, u);
    if (best == kInvalidNode || value > best_value) {
      best = u;
      best_value = value;
    }
  }
  return best;
}

}  // namespace accu
