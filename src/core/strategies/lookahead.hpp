// One-step lookahead planning (extension).
//
// The adaptive greedy underlying ABM is myopic: it scores a request only by
// its own expected gain (plus ABM's heuristic threshold credit).  This
// policy approximates the *two-step* expectimax value instead:
//
//   V(u|ω) ≈ Δ(u|ω) + E_outcome [ max_v Δ(v | ω ∪ outcome(u)) ]
//
// evaluated for the `beam` strongest candidates by Δ; the expectation over
// u's outcome (acceptance coin + revealed incident edges) is estimated from
// `scenario_samples` Monte Carlo scenarios applied to a scratch copy of the
// attacker view.  With beam → n and samples → ∞ this converges to the true
// depth-2 expectimax; the defaults keep it polynomial but noticeably more
// expensive than ABM, which is the trade-off the ablation bench shows.
//
// The inner max uses the exact marginal Δ(v) = q(v)·P_D(v) (and optionally
// ABM's indirect credit), so with beam = 1 the policy degenerates to the
// classic greedy.

#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/score.hpp"
#include "core/simulator.hpp"

namespace accu {

class LookaheadStrategy final : public Strategy {
 public:
  struct Config {
    /// Candidates (by first-step marginal) receiving full lookahead.
    std::uint32_t beam = 8;
    /// Monte Carlo scenarios per candidate outcome expectation.
    std::uint32_t scenario_samples = 4;
    /// Weights for the step scores; the paper-faithful marginal is
    /// (direct = 1, indirect = 0), but ABM's threshold credit composes.
    PotentialWeights weights{1.0, 0.0};
    /// Score through the SoA batched kernel (score_batch) instead of the
    /// scalar AbmStrategy statics.  Bit-identical decisions either way
    /// (pinned by tests); the flag exists for the oracle tests and A/B
    /// benchmarks.
    bool flat_scoring = true;
  };

  LookaheadStrategy();
  explicit LookaheadStrategy(Config config);

  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  [[nodiscard]] bool wants_score_pack() const override {
    return config_.flat_scoring;
  }
  void adopt_score_pack(const ScorePack& pack) override;
  void adopt_task_pool(TaskPool* pool) override;
  [[nodiscard]] std::string name() const override;

 private:
  /// Private per-candidate branch scratch: slot c serves beam candidate c,
  /// so the pool's tasks write disjoint state.  Pooled across select calls
  /// — copy-assignment into the view/realization reuses their capacity.
  struct BranchScratch {
    std::optional<AttackerView> branch_view;
    util::BitVec scenario_edges;
    util::BitVec scenario_coins;
    std::optional<Realization> scenario;
    std::vector<double> scores;
    ScoreBatchScratch batch;
  };

  /// One-step score q(u)·(w_D·P_D + w_I·P_I).
  [[nodiscard]] double step_score(const AttackerView& view, NodeId u) const;
  /// Best one-step score over all un-requested users of `view` (including
  /// the hypothetical branch views, where the SoA pack stays valid — the
  /// scoring invariant survives record_acceptance on a copy).
  [[nodiscard]] double best_step_score(const ScorePack* pack,
                                       const AttackerView& view,
                                       BranchScratch& s) const;

  /// The two-step value of candidate u: the rejection continuation plus the
  /// Monte Carlo acceptance continuation over `draws` (the candidate's
  /// pre-drawn scenario coins, one per unknown incident edge per sample).
  /// Pure function of its arguments and `s` — safe to fan across the pool.
  [[nodiscard]] double evaluate_candidate(const ScorePack* pack,
                                          const AttackerView& view, NodeId u,
                                          double first_step,
                                          const std::uint8_t* draws,
                                          BranchScratch& s) const;

  /// The SoA pack for the current instance (adopted from the workspace or
  /// built locally); nullptr when flat scoring is off.
  [[nodiscard]] const ScorePack* current_pack();

  Config config_;
  const AccuInstance* instance_ = nullptr;
  // Per-select scratch, pooled across calls and resets.
  std::vector<std::pair<double, NodeId>> ranked_;
  std::vector<double> scores_;
  ScoreBatchScratch batch_scratch_;
  std::vector<BranchScratch> branch_scratch_;  // one slot per beam candidate
  std::vector<double> values_;                 // per-candidate results
  std::vector<std::uint8_t> draws_;            // pre-drawn scenario coins
  std::vector<std::size_t> draw_offsets_;      // per-candidate draw spans
  ScorePack own_pack_;
  const ScorePack* adopted_pack_ = nullptr;
  bool adopt_fresh_ = false;
  // The engine-offered intra-cell pool; beam candidates fan across it.
  TaskPool* task_pool_ = nullptr;
  bool pool_fresh_ = false;
};

}  // namespace accu
