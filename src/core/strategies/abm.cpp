#include "core/strategies/abm.hpp"

#include <algorithm>
#include <cstdio>

namespace accu {

AbmStrategy::AbmStrategy() : AbmStrategy(Config{}) {}

AbmStrategy::AbmStrategy(Config config) : config_(config) {
  if (!(config_.weights.direct >= 0.0) || !(config_.weights.indirect >= 0.0)) {
    throw InvalidArgument("AbmStrategy: weights must be non-negative");
  }
}

AbmStrategy::AbmStrategy(double w_direct, double w_indirect)
    : AbmStrategy(Config{{w_direct, w_indirect}, /*incremental=*/true}) {}

std::string AbmStrategy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ABM(wD=%.2f,wI=%.2f)",
                config_.weights.direct, config_.weights.indirect);
  return buf;
}

double AbmStrategy::effective_accept_prob(const AttackerView& view,
                                          NodeId u) {
  const AccuInstance& instance = view.instance();
  if (instance.is_cautious(u)) {
    // q2 once the threshold is reached, q1 below it; the deterministic
    // model's (q1, q2) = (0, 1) reduces this to the 0/1 indicator.
    return instance.cautious_accept_prob(u, view.cautious_would_accept(u));
  }
  return instance.accept_prob(u);
}

double AbmStrategy::direct_gain(const AttackerView& view, NodeId u) {
  const AccuInstance& instance = view.instance();
  const BenefitModel& benefits = instance.benefits();
  double gain = benefits.friend_benefit(u);
  if (view.is_fof(u)) gain -= benefits.fof_benefit(u);
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const NodeId v = nb.node;
    if (view.is_friend(v)) continue;  // v ∈ N(s): already harvested as friend
    if (view.is_fof(v)) continue;     // (1 − 1_FOF(v)) = 0
    const double belief = view.edge_belief(nb.edge);
    if (belief <= 0.0) continue;      // observed absent
    gain += belief * benefits.fof_benefit(v);
  }
  return gain;
}

double AbmStrategy::indirect_gain(const AttackerView& view, NodeId u) {
  const AccuInstance& instance = view.instance();
  // Cautious users have no cautious neighbors (model assumption), so their
  // indirect gain is identically zero — the paper notes this explicitly.
  if (instance.is_cautious(u)) return 0.0;
  const BenefitModel& benefits = instance.benefits();
  double gain = 0.0;
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const NodeId v = nb.node;
    if (!instance.is_cautious(v)) continue;
    // A cautious user that was already requested is either a friend
    // (threshold met — no indirect value left) or permanently rejected.
    if (view.is_requested(v)) continue;
    const std::uint32_t theta = instance.threshold(v);
    const std::uint32_t mutual = view.mutual_friends(v);
    if (mutual >= theta) continue;  // paper condition: θ_v > |N(s) ∩ N(v)|
    const double belief = view.edge_belief(nb.edge);
    if (belief <= 0.0) continue;
    gain += belief * benefits.upgrade_gain(v) /
            static_cast<double>(theta - mutual);
  }
  return gain;
}

double AbmStrategy::potential(const AttackerView& view, NodeId u) const {
  const double q = effective_accept_prob(view, u);
  if (q <= 0.0) return 0.0;  // skip the scans for hopeless candidates
  double value = config_.weights.direct * direct_gain(view, u);
  if (config_.weights.indirect > 0.0) {
    value += config_.weights.indirect * indirect_gain(view, u);
  }
  return q * value;
}

void AbmStrategy::reset(const AccuInstance& instance, util::Rng& rng) {
  (void)rng;
  instance_ = &instance;
  if (!config_.incremental) return;
  version_.assign(instance.num_nodes(), 0);
  stamp_.assign(instance.num_nodes(), 0);
  round_ = 0;
  heap_.clear();  // keeps capacity for the next seed_heap
  heap_seeded_ = false;
}

void AbmStrategy::seed_heap(const AttackerView& view) {
  heap_seeded_ = true;
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    heap_push(HeapEntry{potential(view, u), u, 0});
  }
}

void AbmStrategy::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end());
}

void AbmStrategy::refresh(const AttackerView& view, NodeId u) {
  ++version_[u];
  heap_push(HeapEntry{potential(view, u), u, version_[u]});
}

NodeId AbmStrategy::select_incremental(const AttackerView& view) {
  if (!heap_seeded_) seed_heap(view);
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (top.version != version_[top.node] || view.is_requested(top.node)) {
      // Stale entry (superseded or already requested).
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      continue;
    }
    return top.node;
  }
  return kInvalidNode;
}

NodeId AbmStrategy::select_reference(const AttackerView& view) const {
  NodeId best = kInvalidNode;
  double best_value = 0.0;
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    if (view.is_requested(u)) continue;
    const double value = potential(view, u);
    if (best == kInvalidNode || value > best_value) {
      best = u;
      best_value = value;
    }
  }
  return best;
}

NodeId AbmStrategy::select(const AttackerView& view, util::Rng& rng) {
  (void)rng;  // deterministic: ties break to the smallest node id
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  return config_.incremental ? select_incremental(view)
                             : select_reference(view);
}

void AbmStrategy::observe(NodeId target, bool accepted,
                          const AttackerView& view,
                          const AttackerView::AcceptanceEffects* effects) {
  if (!config_.incremental) return;
  // The target's entries are stale either way: it can never be selected
  // again (select_incremental also checks is_requested as a belt).
  ++version_[target];
  const Graph& g = instance_->graph();
  ++round_;
  auto mark = [&](NodeId u) {
    if (stamp_[u] == round_) return;
    stamp_[u] = round_;
    if (!view.is_requested(u)) refresh(view, u);
  };
  if (!accepted) {
    // A rejection reveals nothing (§II-B) — but a rejected *cautious*
    // target can never be befriended anymore, so it leaves its neighbors'
    // P_I sums.  (Reachable only under the generalized q1 > 0 model, where
    // ABM may gamble on below-threshold cautious users.)
    if (instance_->is_cautious(target)) {
      for (const graph::Neighbor& nb : g.neighbors(target)) mark(nb.node);
    }
    return;
  }

  ACCU_ASSERT(effects != nullptr);
  // (1) Neighbors of the new friend: edge beliefs resolved; the friend left
  //     their P_D sums; FOF flags and mutual counts among them moved.
  for (const graph::Neighbor& nb : g.neighbors(target)) mark(nb.node);
  // (2) Neighbors of nodes that newly entered FOF: their (1−1_FOF) factor
  //     for that node vanished.
  for (const NodeId w : effects->new_fof) {
    for (const graph::Neighbor& nb : g.neighbors(w)) mark(nb.node);
  }
  // (3) Neighbors of cautious users whose mutual count grew: their P_I
  //     denominators (and possibly the q(u) indicator) changed.
  for (const NodeId v : effects->mutual_increased) {
    if (!instance_->is_cautious(v)) continue;
    for (const graph::Neighbor& nb : g.neighbors(v)) mark(nb.node);
  }
}

AbmStrategy make_classic_greedy() {
  return AbmStrategy(AbmStrategy::Config{{1.0, 0.0}, /*incremental=*/true});
}

}  // namespace accu
