#include "core/strategies/abm.hpp"

#include <algorithm>
#include <cstdio>

namespace accu {

AbmStrategy::AbmStrategy() : AbmStrategy(Config{}) {}

AbmStrategy::AbmStrategy(Config config) : config_(config) {
  if (!(config_.weights.direct >= 0.0) || !(config_.weights.indirect >= 0.0)) {
    throw InvalidArgument("AbmStrategy: weights must be non-negative");
  }
}

AbmStrategy::AbmStrategy(double w_direct, double w_indirect)
    : AbmStrategy(Config{{w_direct, w_indirect}, /*incremental=*/true}) {}

std::string AbmStrategy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ABM(wD=%.2f,wI=%.2f)",
                config_.weights.direct, config_.weights.indirect);
  return buf;
}

double AbmStrategy::effective_accept_prob(const AttackerView& view,
                                          NodeId u) {
  const AccuInstance& instance = view.instance();
  if (instance.is_cautious(u)) {
    // q2 once the threshold is reached, q1 below it; the deterministic
    // model's (q1, q2) = (0, 1) reduces this to the 0/1 indicator.
    return instance.cautious_accept_prob(u, view.cautious_would_accept(u));
  }
  return instance.accept_prob(u);
}

// The two row reductions below ARE the scalar reference for the canonical
// reduction order (score_simd.hpp): four stride-4 lane accumulators indexed
// by the neighbor's *slot position* — the position counter advances on
// skipped neighbors too, so a skip lands on the same lane as the exact
// +0.0 the SoA kernels add for that slot — combined as (l0+l2)+(l1+l3).
// score_batch and ScoreEngine reproduce these doubles bit for bit.

double AbmStrategy::direct_gain(const AttackerView& view, NodeId u) {
  const AccuInstance& instance = view.instance();
  const BenefitModel& benefits = instance.benefits();
  double head = benefits.friend_benefit(u);
  if (view.is_fof(u)) head -= benefits.fof_benefit(u);
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::uint32_t pos = 0;
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const std::uint32_t lane = (pos++) & 3;
    const NodeId v = nb.node;
    if (view.is_friend(v)) continue;  // v ∈ N(s): already harvested as friend
    if (view.is_fof(v)) continue;     // (1 − 1_FOF(v)) = 0
    const double belief = view.edge_belief(nb.edge);
    if (belief <= 0.0) continue;      // observed absent
    lanes[lane] += belief * benefits.fof_benefit(v);
  }
  return head + ((lanes[0] + lanes[2]) + (lanes[1] + lanes[3]));
}

double AbmStrategy::indirect_gain(const AttackerView& view, NodeId u) {
  const AccuInstance& instance = view.instance();
  // Cautious users have no cautious neighbors (model assumption), so their
  // indirect gain is identically zero — the paper notes this explicitly.
  if (instance.is_cautious(u)) return 0.0;
  const BenefitModel& benefits = instance.benefits();
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::uint32_t pos = 0;
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const std::uint32_t lane = (pos++) & 3;
    const NodeId v = nb.node;
    if (!instance.is_cautious(v)) continue;
    // A cautious user that was already requested is either a friend
    // (threshold met — no indirect value left) or permanently rejected.
    if (view.is_requested(v)) continue;
    const std::uint32_t theta = instance.threshold(v);
    const std::uint32_t mutual = view.mutual_friends(v);
    if (mutual >= theta) continue;  // paper condition: θ_v > |N(s) ∩ N(v)|
    const double belief = view.edge_belief(nb.edge);
    if (belief <= 0.0) continue;
    // Reciprocal form — numerator · (1/gap) — shared with the SoA kernels.
    lanes[lane] += (belief * benefits.upgrade_gain(v)) *
                   (1.0 / static_cast<double>(theta - mutual));
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double AbmStrategy::potential(const AttackerView& view, NodeId u) const {
  const double q = effective_accept_prob(view, u);
  if (q <= 0.0) return 0.0;  // skip the scans for hopeless candidates
  double value = config_.weights.direct * direct_gain(view, u);
  if (config_.weights.indirect > 0.0) {
    value += config_.weights.indirect * indirect_gain(view, u);
  }
  return q * value;
}

void AbmStrategy::adopt_score_pack(const ScorePack& pack) {
  adopted_pack_ = &pack;
  adopt_fresh_ = true;
}

void AbmStrategy::reset(const AccuInstance& instance, util::Rng& rng) {
  (void)rng;
  instance_ = &instance;
  if (!config_.incremental) return;
  // Use the workspace's pooled pack only when it was handed over for *this*
  // simulation (a stale pointer from an earlier workspace may dangle).
  const ScorePack* pack = nullptr;
  if (adopt_fresh_ && adopted_pack_ != nullptr &&
      adopted_pack_->built_for(instance)) {
    pack = adopted_pack_;
  }
  adopt_fresh_ = false;
  adopted_pack_ = pack;
  if (pack == nullptr) {
    if (!own_pack_.built_for(instance)) own_pack_.build(instance);
    pack = &own_pack_;
  }
  engine_.reset(*pack, config_.weights);
  version_.assign(instance.num_nodes(), 0);
  heap_.clear();  // keeps capacity for the next seed_heap
  heap_seeded_ = false;
}

void AbmStrategy::seed_heap() {
  heap_seeded_ = true;
  heap_.clear();
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    if (engine_.is_requested(u)) continue;  // pre-seed abandons (fault layer)
    engine_.consume_dirty(u);
    heap_.push_back(HeapEntry{engine_.score(u), u, version_[u]});
  }
  // make_heap instead of n push_heaps: pop order is unaffected (the
  // comparator is a strict total order — (value, node) pairs are unique).
  std::make_heap(heap_.begin(), heap_.end());
}

void AbmStrategy::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end());
}

void AbmStrategy::refresh(NodeId u) {
  engine_.consume_dirty(u);
  ++version_[u];
  heap_push(HeapEntry{engine_.score(u), u, version_[u]});
}

void AbmStrategy::maybe_compact(const AttackerView& view) {
  constexpr std::size_t kSlack = 16;  // don't thrash tiny/near-exhausted heaps
  const std::size_t live =
      instance_->num_nodes() - view.num_requests();
  if (heap_.size() <= 4 * live + kSlack) return;
  std::erase_if(heap_, [&](const HeapEntry& e) {
    return e.version != version_[e.node] || view.is_requested(e.node);
  });
  std::make_heap(heap_.begin(), heap_.end());
}

NodeId AbmStrategy::select_incremental(const AttackerView& view) {
  if (!heap_seeded_) seed_heap();
  maybe_compact(view);
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (top.version != version_[top.node] || view.is_requested(top.node)) {
      // Stale entry (superseded or already requested).
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      continue;
    }
    if (engine_.consume_dirty(top.node)) {
      // The cached value is an upper bound (only potential-lowering events
      // defer); recompute and re-enter the heap.  Selection stays exactly
      // the eager policy's: see DESIGN.md §11.
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      ++version_[top.node];
      heap_push(HeapEntry{engine_.score(top.node), top.node,
                          version_[top.node]});
      continue;
    }
    return top.node;
  }
  return kInvalidNode;
}

NodeId AbmStrategy::select_reference(const AttackerView& view) const {
  NodeId best = kInvalidNode;
  double best_value = 0.0;
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    if (view.is_requested(u)) continue;
    const double value = potential(view, u);
    if (best == kInvalidNode || value > best_value) {
      best = u;
      best_value = value;
    }
  }
  return best;
}

NodeId AbmStrategy::select(const AttackerView& view, util::Rng& rng) {
  (void)rng;  // deterministic: ties break to the smallest node id
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  return config_.incremental ? select_incremental(view)
                             : select_reference(view);
}

void AbmStrategy::observe(NodeId target, bool accepted,
                          const AttackerView& view,
                          const AttackerView::AcceptanceEffects* effects) {
  (void)view;
  if (!config_.incremental) return;
  // The target's entries are stale either way: it can never be selected
  // again (select_incremental also checks is_requested as a belt).
  ++version_[target];
  if (accepted) {
    ACCU_ASSERT(effects != nullptr);
    engine_.apply_acceptance(target, *effects);
  } else {
    engine_.apply_rejection(target);
  }
  // Nodes whose potential may have *increased* must re-enter the heap now
  // (a stale entry would under-represent them); everything else waits for
  // its dirty bit to surface at the heap top.  Before the first select the
  // heap is empty and seed_heap scores from live engine state anyway.
  if (heap_seeded_) {
    for (const NodeId u : engine_.pending_eager()) refresh(u);
  }
}

void AbmStrategy::observe_revelation(
    NodeId source, const AttackerView& view,
    const AttackerView::AcceptanceEffects& effects) {
  (void)source;
  (void)view;
  if (!config_.incremental) return;  // the reference rescans the view
  // A late revelation is the new_fof/mutual_increased half of an
  // acceptance (the source's own slots were deactivated when its
  // acceptance was observed); fold the deltas and re-push potentials that
  // may have increased, exactly as observe() does.
  engine_.apply_revelation(effects);
  if (heap_seeded_) {
    for (const NodeId u : engine_.pending_eager()) refresh(u);
  }
}

AbmStrategy make_classic_greedy() {
  return AbmStrategy(AbmStrategy::Config{{1.0, 0.0}, /*incremental=*/true});
}

}  // namespace accu
