// Clairvoyant oracle policy — an empirical upper bound.
//
// Unlike every legal adaptive strategy, the oracle is constructed with the
// hidden ground-truth realization and greedily requests the user with the
// highest *actual* marginal benefit (it knows every coin and every edge, so
// it never wastes a request on a rejection and never overestimates FOF
// gains).  It is NOT the optimal adaptive policy (that requires planning,
// see theory/exact.hpp) and not even the optimal offline solution, but it
// upper-bounds every realized greedy trajectory cheaply at any scale,
// which makes it a useful reference line in campaign studies.
//
// The type cannot be built without a realization, so it is impossible to
// pass it off as an adaptive policy by accident.

#pragma once

#include "core/simulator.hpp"

namespace accu {

class ClairvoyantGreedyStrategy final : public Strategy {
 public:
  /// `truth` must outlive the strategy and be the same realization the
  /// simulator runs against (checked via the observation stream).
  explicit ClairvoyantGreedyStrategy(const Realization& truth);

  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override {
    return "ClairvoyantGreedy";
  }

  /// The exact benefit gain of requesting u now under the known truth
  /// (0 when u would reject).  Public for tests.
  [[nodiscard]] double realized_gain(const AttackerView& view, NodeId u) const;

 private:
  const Realization* truth_;
  const AccuInstance* instance_ = nullptr;
};

}  // namespace accu
