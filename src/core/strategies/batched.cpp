#include "core/strategies/batched.hpp"

#include <algorithm>
#include <cstdio>

#include "core/strategies/abm.hpp"

namespace accu {

BatchedAbmStrategy::BatchedAbmStrategy(PotentialWeights weights,
                                       std::uint32_t batch_size,
                                       bool flat_scoring)
    : weights_(weights), batch_size_(batch_size), flat_scoring_(flat_scoring) {
  if (batch_size == 0) {
    throw InvalidArgument("BatchedAbmStrategy: batch size must be >= 1");
  }
  if (!(weights.direct >= 0.0) || !(weights.indirect >= 0.0)) {
    throw InvalidArgument("BatchedAbmStrategy: weights must be non-negative");
  }
}

std::string BatchedAbmStrategy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "BatchedABM(b=%u)", batch_size_);
  return buf;
}

void BatchedAbmStrategy::adopt_score_pack(const ScorePack& pack) {
  adopted_pack_ = &pack;
  adopt_fresh_ = true;
}

void BatchedAbmStrategy::adopt_task_pool(TaskPool* pool) {
  task_pool_ = pool;
  pool_fresh_ = true;
}

void BatchedAbmStrategy::reset(const AccuInstance& instance, util::Rng&) {
  instance_ = &instance;
  batch_.clear();
  cursor_ = 0;
  rounds_ = 0;
  if (!adopt_fresh_ || adopted_pack_ == nullptr ||
      !adopted_pack_->built_for(instance)) {
    adopted_pack_ = nullptr;  // stale handover — never dereference it
  }
  adopt_fresh_ = false;
  if (!pool_fresh_) task_pool_ = nullptr;  // same staleness rule as the pack
  pool_fresh_ = false;
}

const ScorePack* BatchedAbmStrategy::current_pack() {
  if (!flat_scoring_) return nullptr;
  if (adopted_pack_ != nullptr) return adopted_pack_;
  if (!own_pack_.built_for(*instance_)) own_pack_.build(*instance_);
  return &own_pack_;
}

void BatchedAbmStrategy::fill_batch(const AttackerView& view) {
  batch_.clear();
  cursor_ = 0;
  scored_.clear();
  if (const ScorePack* pack = current_pack()) {
    // Batched rescore over the flat arrays, chunked across the intra-cell
    // pool when one was offered; bit-identical values to the scalar scorer
    // below (and for any pool width), so the resulting batch is the same.
    const NodeId n = instance_->num_nodes();
    scores_.resize(n);
    score_batch_all(*pack, view, weights_, batch_scratch_, task_pool_,
                    scores_.data());
    for (NodeId u = 0; u < n; ++u) {
      if (view.is_requested(u)) continue;
      scored_.emplace_back(scores_[u], u);
    }
  } else {
    AbmStrategy::Config config;
    config.weights = weights_;
    const AbmStrategy scorer(config);
    for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
      if (view.is_requested(u)) continue;
      scored_.emplace_back(scorer.potential(view, u), u);
    }
  }
  const std::size_t take =
      std::min<std::size_t>(batch_size_, scored_.size());
  // Best potential first; ties to the smaller id, matching ABM.
  std::partial_sort(scored_.begin(),
                    scored_.begin() + static_cast<std::ptrdiff_t>(take),
                    scored_.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  for (std::size_t i = 0; i < take; ++i) batch_.push_back(scored_[i].second);
  if (!batch_.empty()) ++rounds_;
}

NodeId BatchedAbmStrategy::select(const AttackerView& view, util::Rng&) {
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  // Skip targets that were requested since the batch was planned (cannot
  // happen with the standard simulator, but keeps the policy safe under
  // multi-policy drivers).
  while (cursor_ < batch_.size() && view.is_requested(batch_[cursor_])) {
    ++cursor_;
  }
  if (cursor_ >= batch_.size()) {
    fill_batch(view);
    if (batch_.empty()) return kInvalidNode;
  }
  return batch_[cursor_++];
}

}  // namespace accu
