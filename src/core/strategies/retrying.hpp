// RetryingStrategy — fault-tolerance decorator for any Strategy.
//
// Wraps an inner policy and absorbs the fault feedback of
// `simulate_with_faults`: when a request times out, is dropped, hits a
// transient error, or is rate-limited, the decorator consults its
// RetryPolicy and either schedules a re-request of the same target after a
// backoff delay (measured in attacker actions — the inner policy keeps
// requesting other targets meanwhile) or abandons the target.  Genuine
// accept/reject outcomes are forwarded to the inner policy untouched, so
// every baseline and ABM becomes fault-tolerant without modification.
//
// Determinism: backoff jitter is drawn from the decorator's own generator,
// reseeded from a fixed seed at every reset — never from the strategy RNG
// stream.  A wrapped strategy therefore consumes exactly the same strategy
// randomness as the bare one, and with zero faults the wrap is a perfect
// no-op (byte-identical traces; a regression test enforces this).

#pragma once

#include <memory>
#include <vector>

#include "core/faults.hpp"
#include "core/simulator.hpp"
#include "util/backoff.hpp"

namespace accu {

class RetryingStrategy final : public Strategy, public FaultObserver {
 public:
  RetryingStrategy(std::unique_ptr<Strategy> inner, util::RetryPolicy policy,
                   std::uint64_t seed = 0x5eed'0f41'7000'0001ULL);

  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const AttackerView& view, util::Rng& rng) override;
  void observe(NodeId target, bool accepted, const AttackerView& view,
               const AttackerView::AcceptanceEffects* effects) override;
  // Late revelations (deferred FeedbackModel) carry no fault information —
  // they pass straight through to the wrapped policy.
  void observe_revelation(NodeId source, const AttackerView& view,
                          const AttackerView::AcceptanceEffects& effects)
      override {
    inner_->observe_revelation(source, view, effects);
  }
  FaultResponse observe_fault(NodeId target, FaultFeedback feedback,
                              const AttackerView& view) override;
  [[nodiscard]] FaultObserver* as_fault_observer() override { return this; }
  // Score-pack pooling passes straight through to the wrapped policy.
  [[nodiscard]] bool wants_score_pack() const override {
    return inner_->wants_score_pack();
  }
  void adopt_score_pack(const ScorePack& pack) override {
    inner_->adopt_score_pack(pack);
  }
  [[nodiscard]] std::string name() const override;

  /// Re-keys the backoff-jitter stream; takes effect at the next reset().
  /// Worker pools reuse one decorator across sweep cells and re-key it per
  /// (sample, run, strategy) so reuse stays byte-identical to a fresh wrap.
  void reseed(std::uint64_t seed) noexcept { seed_ = seed; }

  [[nodiscard]] const util::RetryPolicy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] const Strategy& inner() const noexcept { return *inner_; }

 private:
  struct PendingRetry {
    NodeId target = kInvalidNode;
    std::uint64_t due_round = 0;  // retry once round_ reaches this
  };

  std::unique_ptr<Strategy> inner_;
  util::RetryPolicy policy_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::vector<PendingRetry> pending_;
  std::vector<std::uint32_t> failed_attempts_;  // per target
  std::uint64_t round_ = 0;                     // select() calls so far
};

}  // namespace accu
