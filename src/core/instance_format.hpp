// Binary mmap-able instance format (".accui") — the zero-parse sibling of
// the text format in core/instance_io.hpp.
//
// Layout (all fields native-endian; an endian tag rejects foreign files):
//
//   [ 64-byte header ]           magic, version, endian tag, n, m, flags,
//                                footer offset/length, section count, CRC32
//                                of the header's first 60 bytes.
//   [ sections ]                 each 64-byte-aligned, zero-padded to the
//                                next boundary, in the fixed id order below.
//   [ footer ]                   one 32-byte entry per section
//                                {id, crc32, offset, length, reserved=0}
//                                followed by a CRC32 of the entry bytes.
//
// Section ids and element types (sizes derive from (n, m, flags) alone, so
// a writer knows the whole layout — header included — before emitting the
// first byte, and writes the file purely sequentially):
//
//    1 offsets     uint64 [n+1]      CSR row offsets
//    2 adjacency   {u32 node, u32 edge} [2m]   sorted per row
//    3 endpoints   {u32 lo, u32 hi} [m]        normalized, EdgeId order
//    4 probs       double [m]        edge priors p_e
//    5 cautious    uint64 [⌈n/64⌉]   class bitset, LSB-first
//    6 accept      double [n]        q_u
//    7 theta       uint32 [n]        θ_v
//    8 bf          double [n]        friend benefit B_f
//    9 bfof        double [n]        friend-of-friend benefit B_fof
//   10 q_below     double [n]        generalized q1   (flag bit 0 only)
//   11 q_above     double [n]        generalized q2   (flag bit 0 only)
//   12 mirror      uint32 [2m]       ScorePack slot tables (flag bit 1
//   13 d_init      double [2m]       only) — pre-laid-out so the loader
//   14 i_gain      double [2m]       hands them to ScorePack::build as a
//   15 slot_theta  uint32 [2m]       memcpy instead of a per-slot walk
//
// Integrity: every loader check fails with a clean IoError — wrong magic /
// version / endian tag, unknown flag bits (a newer writer's file), header
// or footer or per-section CRC mismatch, and an *exact* file-size equation
// (size == footer_offset + footer_length) that catches torn tails even
// before CRCs run.  Semantic validity (CSR shape, probability ranges, the
// paper's standing assumptions) is re-checked by Graph::from_csr and the
// AccuInstance constructor, and the adopted slot tables get their own
// O(2m) pass (mirror links the twin slot of its edge, slot_theta matches
// the neighbor's class/threshold, i_gain/d_init finite with reckless
// slots exactly zero) — a CRC-valid file still cannot smuggle in a
// malformed instance.
//
// Durability: writers stream through util::AtomicFileWriter (temp + fsync
// + rename + dir fsync via util::IoEnv), so a crash or ENOSPC mid-pack
// never leaves a torn ".accui" behind, and the FaultyFs suite covers the
// write path.  Loading mmaps the file read-only (util::MappedFile); the
// ScorePack slot tables alias the mapping, kept alive by the instance.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "util/atomic_file.hpp"

namespace accu {

namespace instance_format {

inline constexpr unsigned char kMagic[8] = {0xAC, 0xCF, 'A', 'C',
                                            'C',  'U',  'I', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x0A0B0C0Du;
inline constexpr std::uint64_t kSectionAlign = 64;

inline constexpr std::uint64_t kFlagGeneralized = 1ull << 0;
inline constexpr std::uint64_t kFlagPackTables = 1ull << 1;
inline constexpr std::uint64_t kKnownFlags = kFlagGeneralized | kFlagPackTables;

enum SectionId : std::uint32_t {
  kOffsets = 1,
  kAdjacency = 2,
  kEndpoints = 3,
  kProbs = 4,
  kCautious = 5,
  kAccept = 6,
  kTheta = 7,
  kFriendBenefit = 8,
  kFofBenefit = 9,
  kQBelow = 10,
  kQAbove = 11,
  kMirror = 12,
  kDInit = 13,
  kIGain = 14,
  kSlotTheta = 15,
};

struct Header {
  unsigned char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t flags;
  std::uint64_t footer_offset;
  std::uint64_t footer_length;
  std::uint32_t section_count;
  std::uint32_t header_crc;  // CRC32 of the preceding 60 bytes
};
static_assert(sizeof(Header) == 64, "header must pack to one cache line");

struct SectionEntry {
  std::uint32_t id;
  std::uint32_t crc;  // CRC32 of the section's payload bytes (pre-padding)
  std::uint64_t offset;
  std::uint64_t length;
  std::uint64_t reserved;  // must be zero in v1
};
static_assert(sizeof(SectionEntry) == 32, "footer entries must pack");

struct SectionLayout {
  std::uint32_t id;
  std::uint64_t offset;
  std::uint64_t length;  // payload bytes, padding excluded
};

/// The complete byte layout of a file with the given shape.  Every offset,
/// length, and the final file size is a pure function of (n, m, flags) —
/// this is what lets writers stream sequentially and lets the loader
/// cross-check the footer against first principles.  Throws
/// InvalidArgument when n/m exceed the uint32 id / 2m-slot space or flags
/// contain unknown bits.
struct FileLayout {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t flags = 0;
  std::vector<SectionLayout> sections;
  std::uint64_t footer_offset = 0;
  std::uint64_t footer_length = 0;
  std::uint64_t file_size = 0;

  [[nodiscard]] static FileLayout compute(std::uint64_t num_nodes,
                                          std::uint64_t num_edges,
                                          std::uint64_t flags);
};

}  // namespace instance_format

/// Streaming section writer for the binary format — the one emitter shared
/// by the in-memory serializer (write_instance_binary_file) and the
/// out-of-core generators (datasets/stream_gen.hpp), so both produce
/// byte-identical files for identical content.
///
/// Protocol: open(path, n, m, flags), then for every section of the layout
/// in order: begin_section(id), any number of write() calls totalling
/// exactly the section's length, end_section(); finally commit().  The
/// writer enforces the protocol (order, exact lengths, completeness) with
/// InvalidArgument, maintains per-section CRCs, inserts alignment padding,
/// and appends the footer at commit().  All bytes flow through
/// util::AtomicFileWriter: the target path appears only on a successful
/// commit.  Destruction or abort() before commit unlinks the temp file.
class BinaryInstanceWriter {
 public:
  BinaryInstanceWriter() = default;

  /// Computes the layout, opens the temp file and writes the header.
  void open(const std::string& path, std::uint64_t num_nodes,
            std::uint64_t num_edges, std::uint64_t flags);
  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }
  [[nodiscard]] const instance_format::FileLayout& layout() const noexcept {
    return layout_;
  }

  /// Starts the next section; `id` must match the layout's order.
  void begin_section(std::uint32_t id);
  /// Appends payload bytes to the open section (never past its length).
  void write(const void* data, std::size_t len);
  /// Closes the open section: checks the exact length, pads to alignment.
  void end_section();

  /// Appends the footer and atomically publishes the file.
  void commit();
  /// Drops the temp file; the target is untouched.
  void abort() noexcept { out_.abort(); }

 private:
  util::AtomicFileWriter out_;
  instance_format::FileLayout layout_;
  std::vector<std::uint32_t> crcs_;
  std::size_t next_section_ = 0;
  bool in_section_ = false;
  std::uint64_t section_written_ = 0;
  std::uint32_t section_crc_ = 0;
};

/// Serializes an in-memory instance to the binary format (atomic replace).
/// `with_pack_tables` additionally embeds the pre-laid-out ScorePack slot
/// tables (built here with the same ScorePack::build the engines use, so
/// adopted packs are bit-identical to recomputed ones).
void write_instance_binary_file(const AccuInstance& instance,
                                const std::string& path,
                                bool with_pack_tables = true);

/// Loads a binary instance: mmaps the file, verifies header/footer/CRCs,
/// adopts the CSR arrays through Graph::from_csr and re-validates the
/// instance through its constructor.  When the file carries pack tables
/// they are validated against the adopted CSR (see the integrity notes
/// above) and attached to the returned instance (aliasing the mapping, which
/// stays alive as long as any copy of the instance does).  Throws IoError
/// on any structural or integrity violation.
[[nodiscard]] AccuInstance read_instance_binary_file(const std::string& path);

/// True when `path` starts with the binary magic (first byte 0xAC — text
/// instances start with '#' or 'n').  Throws IoError when unreadable.
[[nodiscard]] bool is_binary_instance_file(const std::string& path);

/// Where an instance comes from — the one seam run_experiment, `accu
/// serve`, and the CLI share, so every consumer loads either format.
struct InstanceSource {
  enum class Format : std::uint8_t { kAuto = 0, kText = 1, kBinary = 2 };

  std::string path;
  Format format = Format::kAuto;

  /// Loads the instance; kAuto sniffs the magic byte.
  [[nodiscard]] AccuInstance load() const;
};

/// InstanceSource{path}.load() — auto-detecting convenience loader.
[[nodiscard]] AccuInstance load_instance_auto(const std::string& path);

}  // namespace accu
