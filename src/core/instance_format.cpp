#include "core/instance_format.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/instance_io.hpp"
#include "core/score.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace accu {

namespace instance_format {

namespace {

constexpr std::uint64_t align_up(std::uint64_t x) noexcept {
  return (x + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

}  // namespace

FileLayout FileLayout::compute(std::uint64_t num_nodes,
                               std::uint64_t num_edges, std::uint64_t flags) {
  if ((flags & ~kKnownFlags) != 0) {
    throw InvalidArgument("instance format: unknown flag bits");
  }
  if (num_nodes >= graph::kInvalidNode) {
    throw InvalidArgument("instance format: node count " +
                          std::to_string(num_nodes) +
                          " exceeds the uint32 id space");
  }
  if (num_edges >= (1ull << 31)) {
    throw InvalidArgument("instance format: edge count " +
                          std::to_string(num_edges) +
                          " exceeds the 2m uint32 slot space");
  }
  FileLayout layout;
  layout.num_nodes = num_nodes;
  layout.num_edges = num_edges;
  layout.flags = flags;
  const std::uint64_t slots = 2 * num_edges;
  const std::uint64_t words = (num_nodes + 63) / 64;

  std::uint64_t pos = sizeof(Header);
  const auto add = [&](std::uint32_t id, std::uint64_t bytes) {
    layout.sections.push_back({id, pos, bytes});
    pos = align_up(pos + bytes);
  };
  add(kOffsets, (num_nodes + 1) * 8);
  add(kAdjacency, slots * 8);
  add(kEndpoints, num_edges * 8);
  add(kProbs, num_edges * 8);
  add(kCautious, words * 8);
  add(kAccept, num_nodes * 8);
  add(kTheta, num_nodes * 4);
  add(kFriendBenefit, num_nodes * 8);
  add(kFofBenefit, num_nodes * 8);
  if ((flags & kFlagGeneralized) != 0) {
    add(kQBelow, num_nodes * 8);
    add(kQAbove, num_nodes * 8);
  }
  if ((flags & kFlagPackTables) != 0) {
    add(kMirror, slots * 4);
    add(kDInit, slots * 8);
    add(kIGain, slots * 8);
    add(kSlotTheta, slots * 4);
  }
  layout.footer_offset = pos;
  layout.footer_length = layout.sections.size() * sizeof(SectionEntry) + 4;
  layout.file_size = layout.footer_offset + layout.footer_length;
  return layout;
}

}  // namespace instance_format

// ---------------------------------------------------------------------------
// BinaryInstanceWriter
// ---------------------------------------------------------------------------

namespace fmt = instance_format;

void BinaryInstanceWriter::open(const std::string& path,
                                std::uint64_t num_nodes,
                                std::uint64_t num_edges, std::uint64_t flags) {
  layout_ = fmt::FileLayout::compute(num_nodes, num_edges, flags);
  crcs_.assign(layout_.sections.size(), 0);
  next_section_ = 0;
  in_section_ = false;
  out_.open(path);
  fmt::Header h{};
  std::memcpy(h.magic, fmt::kMagic, sizeof h.magic);
  h.version = fmt::kVersion;
  h.endian = fmt::kEndianTag;
  h.num_nodes = num_nodes;
  h.num_edges = num_edges;
  h.flags = flags;
  h.footer_offset = layout_.footer_offset;
  h.footer_length = layout_.footer_length;
  h.section_count = static_cast<std::uint32_t>(layout_.sections.size());
  h.header_crc = util::crc32(&h, sizeof(fmt::Header) - 4);
  out_.append(&h, sizeof h);
}

void BinaryInstanceWriter::begin_section(std::uint32_t id) {
  if (in_section_) {
    throw InvalidArgument("BinaryInstanceWriter: previous section still open");
  }
  if (next_section_ >= layout_.sections.size()) {
    throw InvalidArgument("BinaryInstanceWriter: all sections already written");
  }
  const std::uint32_t expected = layout_.sections[next_section_].id;
  if (id != expected) {
    throw InvalidArgument("BinaryInstanceWriter: section " +
                          std::to_string(id) + " out of order (expected " +
                          std::to_string(expected) + ")");
  }
  in_section_ = true;
  section_written_ = 0;
  section_crc_ = 0;
}

void BinaryInstanceWriter::write(const void* data, std::size_t len) {
  if (!in_section_) {
    throw InvalidArgument("BinaryInstanceWriter: write outside a section");
  }
  const fmt::SectionLayout& s = layout_.sections[next_section_];
  if (section_written_ + len > s.length) {
    throw InvalidArgument("BinaryInstanceWriter: section " +
                          std::to_string(s.id) + " overflow (expected " +
                          std::to_string(s.length) + " bytes)");
  }
  out_.append(data, len);
  section_crc_ = util::crc32(data, len, section_crc_);
  section_written_ += len;
}

void BinaryInstanceWriter::end_section() {
  if (!in_section_) {
    throw InvalidArgument("BinaryInstanceWriter: no section open");
  }
  const fmt::SectionLayout& s = layout_.sections[next_section_];
  if (section_written_ != s.length) {
    throw InvalidArgument(
        "BinaryInstanceWriter: section " + std::to_string(s.id) +
        " length mismatch (expected " + std::to_string(s.length) +
        " bytes, wrote " + std::to_string(section_written_) + ")");
  }
  crcs_[next_section_] = section_crc_;
  const std::uint64_t end = s.offset + s.length;
  const std::uint64_t next = next_section_ + 1 < layout_.sections.size()
                                 ? layout_.sections[next_section_ + 1].offset
                                 : layout_.footer_offset;
  static constexpr char kZeros[fmt::kSectionAlign] = {};
  out_.append(kZeros, static_cast<std::size_t>(next - end));
  in_section_ = false;
  ++next_section_;
}

void BinaryInstanceWriter::commit() {
  if (in_section_) {
    throw InvalidArgument("BinaryInstanceWriter: commit with a section open");
  }
  if (next_section_ != layout_.sections.size()) {
    throw InvalidArgument("BinaryInstanceWriter: commit after " +
                          std::to_string(next_section_) + " of " +
                          std::to_string(layout_.sections.size()) +
                          " sections");
  }
  std::vector<fmt::SectionEntry> entries(layout_.sections.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const fmt::SectionLayout& s = layout_.sections[i];
    entries[i] = {s.id, crcs_[i], s.offset, s.length, 0};
  }
  const std::size_t entry_bytes = entries.size() * sizeof(fmt::SectionEntry);
  out_.append(entries.data(), entry_bytes);
  const std::uint32_t footer_crc = util::crc32(entries.data(), entry_bytes);
  out_.append(&footer_crc, sizeof footer_crc);
  ACCU_ASSERT(out_.bytes_written() == layout_.file_size);
  out_.commit();
}

// ---------------------------------------------------------------------------
// In-memory serializer
// ---------------------------------------------------------------------------

static_assert(sizeof(graph::Neighbor) == 8, "adjacency entries must pack");
static_assert(sizeof(graph::EdgeEndpoints) == 8, "endpoints must pack");

void write_instance_binary_file(const AccuInstance& instance,
                                const std::string& path,
                                bool with_pack_tables) {
  const Graph& g = instance.graph();
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  std::uint64_t flags = 0;
  if (instance.has_generalized_cautious()) flags |= fmt::kFlagGeneralized;
  if (with_pack_tables) flags |= fmt::kFlagPackTables;

  // The Graph invariants the loader re-validates (no duplicate edges, no
  // self-loops, normalized endpoints) hold here by construction: every
  // Graph comes out of GraphBuilder or Graph::from_csr, both of which
  // enforce them.
  BinaryInstanceWriter w;
  w.open(path, n, m, flags);
  const auto section = [&](std::uint32_t id, const void* data,
                           std::size_t bytes) {
    w.begin_section(id);
    if (bytes > 0) w.write(data, bytes);
    w.end_section();
  };

  {
    // size_t offsets serialize as uint64 regardless of platform width.
    std::vector<std::uint64_t> off(g.raw_offsets().begin(),
                                   g.raw_offsets().end());
    section(fmt::kOffsets, off.data(), off.size() * 8);
  }
  section(fmt::kAdjacency, g.raw_adjacency().data(),
          g.raw_adjacency().size() * 8);
  section(fmt::kEndpoints, g.raw_endpoints().data(), m * 8);
  section(fmt::kProbs, g.raw_probs().data(), m * 8);
  {
    std::vector<std::uint64_t> bits((n + 63) / 64, 0);
    for (NodeId u = 0; u < n; ++u) {
      if (instance.is_cautious(u)) bits[u >> 6] |= 1ull << (u & 63);
    }
    section(fmt::kCautious, bits.data(), bits.size() * 8);
  }
  std::vector<double> col(n);
  for (NodeId u = 0; u < n; ++u) col[u] = instance.accept_prob(u);
  section(fmt::kAccept, col.data(), n * 8);
  {
    std::vector<std::uint32_t> theta(n);
    for (NodeId u = 0; u < n; ++u) theta[u] = instance.threshold(u);
    section(fmt::kTheta, theta.data(), n * 4);
  }
  const BenefitModel& benefits = instance.benefits();
  for (NodeId u = 0; u < n; ++u) col[u] = benefits.friend_benefit(u);
  section(fmt::kFriendBenefit, col.data(), n * 8);
  for (NodeId u = 0; u < n; ++u) col[u] = benefits.fof_benefit(u);
  section(fmt::kFofBenefit, col.data(), n * 8);
  if ((flags & fmt::kFlagGeneralized) != 0) {
    // Same normalization as the text writer: reckless rows carry the
    // deterministic defaults, so text -> binary -> text round-trips
    // byte-identically.
    for (NodeId u = 0; u < n; ++u) {
      col[u] =
          instance.is_cautious(u) ? instance.cautious_accept_prob(u, false)
                                  : 0.0;
    }
    section(fmt::kQBelow, col.data(), n * 8);
    for (NodeId u = 0; u < n; ++u) {
      col[u] = instance.is_cautious(u)
                   ? instance.cautious_accept_prob(u, true)
                   : 1.0;
    }
    section(fmt::kQAbove, col.data(), n * 8);
  }
  if (with_pack_tables) {
    ScorePack pack;
    pack.build(instance);
    const std::size_t slots = pack.num_slots();
    section(fmt::kMirror, pack.mirror_all().data(), slots * 4);
    section(fmt::kDInit, pack.d_init_all().data(), slots * 8);
    section(fmt::kIGain, pack.i_gain_all().data(), slots * 8);
    section(fmt::kSlotTheta, pack.slot_theta_all().data(), slots * 4);
  }
  w.commit();
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw IoError("binary accu-instance " + path + ": " + what);
}

}  // namespace

AccuInstance read_instance_binary_file(const std::string& path) {
  const std::shared_ptr<const util::MappedFile> file =
      util::MappedFile::open(path);
  const std::byte* base = file->data();
  const std::uint64_t size = file->size();
  if (size < sizeof(fmt::Header)) {
    corrupt(path, "file shorter than the 64-byte header");
  }
  fmt::Header h;
  std::memcpy(&h, base, sizeof h);
  if (std::memcmp(h.magic, fmt::kMagic, sizeof h.magic) != 0) {
    corrupt(path, "bad magic (not a binary accu-instance)");
  }
  if (h.endian != fmt::kEndianTag) {
    corrupt(path, "endian tag mismatch (file written on a foreign-endian "
                  "machine)");
  }
  if (h.version != fmt::kVersion) {
    corrupt(path, "unsupported format version " + std::to_string(h.version));
  }
  if (util::crc32(&h, sizeof(fmt::Header) - 4) != h.header_crc) {
    corrupt(path, "header CRC mismatch");
  }
  if ((h.flags & ~fmt::kKnownFlags) != 0) {
    corrupt(path, "unknown flag bits (file from a newer writer)");
  }
  if (h.num_nodes >= graph::kInvalidNode) {
    corrupt(path, "node count " + std::to_string(h.num_nodes) +
                      " exceeds the uint32 id space");
  }
  if (h.num_edges >= (1ull << 31)) {
    corrupt(path, "edge count " + std::to_string(h.num_edges) +
                      " exceeds the 2m uint32 slot space");
  }
  const fmt::FileLayout layout =
      fmt::FileLayout::compute(h.num_nodes, h.num_edges, h.flags);
  if (h.footer_offset != layout.footer_offset ||
      h.footer_length != layout.footer_length ||
      h.section_count != layout.sections.size()) {
    corrupt(path, "header geometry disagrees with (n, m, flags)");
  }
  if (size != layout.file_size) {
    corrupt(path, "truncated or oversized file: expected " +
                      std::to_string(layout.file_size) + " bytes, got " +
                      std::to_string(size));
  }

  const std::size_t count = layout.sections.size();
  std::vector<fmt::SectionEntry> entries(count);
  const std::size_t entry_bytes = count * sizeof(fmt::SectionEntry);
  std::memcpy(entries.data(), base + layout.footer_offset, entry_bytes);
  std::uint32_t footer_crc = 0;
  std::memcpy(&footer_crc, base + layout.footer_offset + entry_bytes, 4);
  if (util::crc32(entries.data(), entry_bytes) != footer_crc) {
    corrupt(path, "footer CRC mismatch");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const fmt::SectionLayout& want = layout.sections[i];
    const fmt::SectionEntry& got = entries[i];
    if (got.id != want.id || got.offset != want.offset ||
        got.length != want.length || got.reserved != 0) {
      corrupt(path, "footer entry " + std::to_string(i) +
                        " disagrees with the layout (section " +
                        std::to_string(want.id) + ")");
    }
    if (util::crc32(base + got.offset, static_cast<std::size_t>(got.length)) !=
        got.crc) {
      corrupt(path, "section " + std::to_string(want.id) + " CRC mismatch");
    }
  }
  const auto sec = [&](std::uint32_t id) -> const std::byte* {
    for (const fmt::SectionLayout& s : layout.sections) {
      if (s.id == id) return base + s.offset;
    }
    corrupt(path, "missing section " + std::to_string(id));
  };

  const auto n = static_cast<NodeId>(h.num_nodes);
  const auto m = static_cast<std::size_t>(h.num_edges);
  const std::size_t slots = 2 * m;

  // memcpy out of the mapping into typed vectors — the aliasing-safe way
  // to read raw file bytes; the big slot tables stay in the mapping and are
  // adopted by reference below.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1);
  {
    std::vector<std::uint64_t> raw(offsets.size());
    std::memcpy(raw.data(), sec(fmt::kOffsets), raw.size() * 8);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] > slots) corrupt(path, "row offset out of range");
      offsets[i] = static_cast<std::size_t>(raw[i]);
    }
  }
  std::vector<graph::Neighbor> adjacency(slots);
  if (slots > 0) std::memcpy(adjacency.data(), sec(fmt::kAdjacency), slots * 8);
  std::vector<graph::EdgeEndpoints> endpoints(m);
  if (m > 0) std::memcpy(endpoints.data(), sec(fmt::kEndpoints), m * 8);
  std::vector<double> probs(m);
  if (m > 0) std::memcpy(probs.data(), sec(fmt::kProbs), m * 8);

  std::vector<UserClass> classes(n, UserClass::kReckless);
  {
    std::vector<std::uint64_t> bits((static_cast<std::size_t>(n) + 63) / 64);
    if (!bits.empty()) {
      std::memcpy(bits.data(), sec(fmt::kCautious), bits.size() * 8);
    }
    for (NodeId u = 0; u < n; ++u) {
      if ((bits[u >> 6] >> (u & 63)) & 1u) classes[u] = UserClass::kCautious;
    }
  }
  std::vector<double> accept(n), bf(n), bfof(n);
  std::vector<std::uint32_t> theta(n);
  if (n > 0) {
    std::memcpy(accept.data(), sec(fmt::kAccept), n * 8ull);
    std::memcpy(theta.data(), sec(fmt::kTheta), n * 4ull);
    std::memcpy(bf.data(), sec(fmt::kFriendBenefit), n * 8ull);
    std::memcpy(bfof.data(), sec(fmt::kFofBenefit), n * 8ull);
  }
  GeneralizedCautiousParams cautious{std::vector<double>(n, 0.0),
                                     std::vector<double>(n, 1.0)};
  if ((h.flags & fmt::kFlagGeneralized) != 0 && n > 0) {
    std::memcpy(cautious.below.data(), sec(fmt::kQBelow), n * 8ull);
    std::memcpy(cautious.above.data(), sec(fmt::kQAbove), n * 8ull);
  }

  try {
    Graph g = Graph::from_csr(n, std::move(offsets), std::move(adjacency),
                              std::move(probs), std::move(endpoints));
    AccuInstance instance(std::move(g), std::move(classes), std::move(accept),
                          std::move(theta),
                          BenefitModel(std::move(bf), std::move(bfof)),
                          std::move(cautious));
    if ((h.flags & fmt::kFlagPackTables) != 0) {
      // CRCs prove the tables arrived intact, not that they are *right*: a
      // crafted or buggy-writer file can be CRC-consistent and still carry
      // tables that break the engine (ScoreEngine writes through
      // contrib[mirror[s]] unchecked, and reset() forms 1/slot_theta[s]).
      // One O(2m) pass re-establishes the structural invariants against the
      // CSR that Graph::from_csr just validated; the d_init/i_gain payloads
      // are additionally required to be finite (reckless slots exactly
      // zero — the invariant the P_I gathers rely on).
      const std::span<const graph::Neighbor> adj =
          instance.graph().raw_adjacency();
      const std::byte* mirror_bytes = sec(fmt::kMirror);
      const std::byte* d_init_bytes = sec(fmt::kDInit);
      const std::byte* i_gain_bytes = sec(fmt::kIGain);
      const std::byte* slot_theta_bytes = sec(fmt::kSlotTheta);
      const auto u32_at = [](const std::byte* p, std::size_t i) {
        std::uint32_t v;
        std::memcpy(&v, p + i * 4, 4);
        return v;
      };
      const auto f64_at = [](const std::byte* p, std::size_t i) {
        double v;
        std::memcpy(&v, p + i * 8, 8);
        return v;
      };
      for (std::size_t s = 0; s < slots; ++s) {
        // from_csr proved each edge labels exactly two adjacency slots, so
        // "a different slot of my own edge" pins the unique twin — and once
        // every slot passes, mirror[mirror[s]] == s follows for free.
        const std::uint32_t ms = u32_at(mirror_bytes, s);
        if (ms >= slots || ms == s || adj[ms].edge != adj[s].edge) {
          corrupt(path, "pack table mirror[" + std::to_string(s) +
                            "] does not link the twin slot of edge " +
                            std::to_string(adj[s].edge));
        }
        const NodeId v = adj[s].node;
        const bool cautious_v = instance.is_cautious(v);
        const std::uint32_t expected_theta =
            cautious_v ? instance.threshold(v) : 1;
        if (u32_at(slot_theta_bytes, s) != expected_theta) {
          corrupt(path, "pack table slot_theta[" + std::to_string(s) +
                            "] disagrees with neighbor " + std::to_string(v) +
                            "'s class/threshold");
        }
        const double gain = f64_at(i_gain_bytes, s);
        if (!std::isfinite(gain) || (!cautious_v && gain != 0.0)) {
          corrupt(path, "pack table i_gain[" + std::to_string(s) +
                            "] violates the finite/reckless-zero invariant");
        }
        if (!std::isfinite(f64_at(d_init_bytes, s))) {
          corrupt(path,
                  "pack table d_init[" + std::to_string(s) + "] not finite");
        }
      }
      auto tables = std::make_shared<PackTables>();
      tables->owner = std::shared_ptr<const void>(file, file->data());
      tables->num_slots = static_cast<std::uint32_t>(slots);
      tables->mirror = sec(fmt::kMirror);
      tables->d_init = sec(fmt::kDInit);
      tables->i_gain = sec(fmt::kIGain);
      tables->slot_theta = sec(fmt::kSlotTheta);
      instance.attach_pack_tables(std::move(tables));
    }
    return instance;
  } catch (const InvalidArgument& e) {
    corrupt(path, std::string("CRC-valid but semantically invalid: ") +
                      e.what());
  }
}

// ---------------------------------------------------------------------------
// Auto-detection
// ---------------------------------------------------------------------------

bool is_binary_instance_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open for reading: " + path);
  char first = 0;
  if (!is.get(first)) return false;  // empty file: not binary (text reader
                                     // reports "empty input")
  return static_cast<unsigned char>(first) == fmt::kMagic[0];
}

AccuInstance InstanceSource::load() const {
  switch (format) {
    case Format::kText:
      return read_instance_file(path);
    case Format::kBinary:
      return read_instance_binary_file(path);
    case Format::kAuto:
      break;
  }
  return is_binary_instance_file(path) ? read_instance_binary_file(path)
                                       : read_instance_file(path);
}

AccuInstance load_instance_auto(const std::string& path) {
  return InstanceSource{path, InstanceSource::Format::kAuto}.load();
}

}  // namespace accu
