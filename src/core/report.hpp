// Experiment reporting: render an ExperimentResult as a Markdown report or
// as long-format CSV curves.
//
// The bench binaries print console tables; this module produces the
// artifact-friendly formats — a Markdown summary for lab notebooks / CI
// and a tidy CSV (`strategy,request,metric,value`) that any plotting stack
// ingests directly.

#pragma once

#include <iosfwd>
#include <string>

#include "core/experiment.hpp"

namespace accu {

struct ReportOptions {
  /// Free-text heading, e.g. "Fig. 2 — facebook".
  std::string title = "ACCU experiment";
  /// Number of evenly spaced budget checkpoints in the curve table.
  std::size_t checkpoints = 10;
};

/// Markdown: configuration block, per-strategy summary table, and a
/// benefit-curve checkpoint table.
void write_markdown_report(const ExperimentResult& result,
                           const ExperimentConfig& config, std::ostream& os,
                           const ReportOptions& options = {});

/// Long-format CSV of the per-request curves:
/// columns strategy,request,metric,mean,ci95 with metrics
/// cumulative_benefit / marginal / marginal_cautious / marginal_reckless /
/// cautious_fraction.
void write_curves_csv(const ExperimentResult& result, std::ostream& os);

}  // namespace accu
