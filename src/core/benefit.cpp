#include "core/benefit.hpp"

#include <string>

namespace accu {

BenefitModel::BenefitModel(std::vector<double> friend_benefit,
                           std::vector<double> fof_benefit)
    : friend_benefit_(std::move(friend_benefit)),
      fof_benefit_(std::move(fof_benefit)) {
  if (friend_benefit_.size() != fof_benefit_.size()) {
    throw InvalidArgument("BenefitModel: vector sizes differ");
  }
  for (std::size_t u = 0; u < friend_benefit_.size(); ++u) {
    if (!(fof_benefit_[u] >= 0.0)) {
      throw InvalidArgument("BenefitModel: B_fof(" + std::to_string(u) +
                            ") must be >= 0");
    }
    if (!(friend_benefit_[u] >= fof_benefit_[u])) {
      throw InvalidArgument("BenefitModel: B_f(" + std::to_string(u) +
                            ") must be >= B_fof");
    }
  }
}

BenefitModel BenefitModel::uniform(NodeId num_nodes, double friend_benefit,
                                   double fof_benefit) {
  return BenefitModel(std::vector<double>(num_nodes, friend_benefit),
                      std::vector<double>(num_nodes, fof_benefit));
}

BenefitModel BenefitModel::paper_default(
    const std::vector<UserClass>& classes, double reckless_f,
    double cautious_f, double fof) {
  std::vector<double> bf(classes.size());
  for (std::size_t u = 0; u < classes.size(); ++u) {
    bf[u] = classes[u] == UserClass::kCautious ? cautious_f : reckless_f;
  }
  return BenefitModel(std::move(bf),
                      std::vector<double>(classes.size(), fof));
}

BenefitModel BenefitModel::degree_proportional(const Graph& graph,
                                               double base, double alpha,
                                               double fof_fraction) {
  if (!(base > 0.0) || !(alpha >= 0.0)) {
    throw InvalidArgument(
        "degree_proportional: need base > 0 and alpha >= 0");
  }
  if (!(fof_fraction >= 0.0 && fof_fraction < 1.0)) {
    throw InvalidArgument(
        "degree_proportional: fof_fraction must be in [0, 1)");
  }
  const NodeId n = graph.num_nodes();
  std::vector<double> bf(n), bfof(n);
  for (NodeId u = 0; u < n; ++u) {
    bf[u] = base + alpha * graph.expected_degree(u);
    bfof[u] = fof_fraction * bf[u];
  }
  return BenefitModel(std::move(bf), std::move(bfof));
}

bool BenefitModel::has_strict_gap() const noexcept {
  for (std::size_t u = 0; u < friend_benefit_.size(); ++u) {
    if (!(friend_benefit_[u] > fof_benefit_[u])) return false;
  }
  return true;
}

}  // namespace accu
