// Intra-cell task pool: a persistent team of worker threads that evaluates
// independent per-candidate / per-realization tasks of ONE sweep cell
// concurrently (DESIGN.md §16).
//
// Determinism.  The pool only ever runs index-addressed tasks that write to
// disjoint, pre-sized slots; callers combine the slots in index order after
// `run` returns.  Scheduling (which thread claims which index, in what
// order) is free to vary — the combined result cannot, because every task is
// a pure function of its index and its private scratch.  Together with the
// canonical reduction order of the score kernels this makes runs
// trace-identical for any `cell_threads`.
//
// Allocation discipline.  Threads are spawned once at construction and
// parked on a condition variable between cells; `run` itself performs no
// heap allocation (the callable is passed by reference through a void*
// trampoline, never wrapped in std::function), so pooled steady-state
// sweeps stay under the allocs-per-cell CI ceiling.
//
// A pool constructed with `threads <= 1` spawns nothing and runs every task
// inline on the caller — the zero-overhead sequential mode.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace accu {

class TaskPool {
 public:
  /// `threads` = total concurrency including the calling thread; the pool
  /// spawns `threads - 1` workers (none when threads <= 1).
  explicit TaskPool(unsigned threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total concurrency (>= 1).
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Runs `f(i)` for every i in [0, n), the caller participating alongside
  /// the workers; returns once all n tasks completed.  Tasks must be
  /// independent (disjoint writes).  Not reentrant: one `run` at a time.
  template <typename F>
  void run(std::size_t n, F&& f) {
    using Fn = std::remove_reference_t<F>;
    run_raw(
        n,
        [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

 private:
  using TaskFn = void (*)(void* ctx, std::size_t index);

  void run_raw(std::size_t n, TaskFn fn, void* ctx);
  void worker_loop();
  void claim_loop() noexcept;

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per run; wakes parked workers
  std::size_t pending_workers_ = 0;
  bool stop_ = false;

  // Current batch (valid while pending_workers_ > 0 or the caller claims).
  std::atomic<std::size_t> next_{0};
  std::size_t n_ = 0;
  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
};

}  // namespace accu
