// Benefit model (paper §II-A, "Benefit Model").
//
// The attacker harvests B_f(u) from every friend u and B_fof(u) from every
// friend-of-friend.  The model requires B_f(u) >= B_fof(u) >= 0 (a friend
// sees at least what a friend-of-friend sees); the theoretical guarantee
// (Theorem 1) additionally needs the strict gap B_f(u) - B_fof(u) > 0,
// exposed here as `has_strict_gap()`.

#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "util/error.hpp"

namespace accu {

class BenefitModel {
 public:
  /// Per-node benefits; both vectors must have one entry per user and
  /// satisfy B_f(u) >= B_fof(u) >= 0.
  BenefitModel(std::vector<double> friend_benefit,
               std::vector<double> fof_benefit);

  /// Uniform benefits for all users.
  static BenefitModel uniform(NodeId num_nodes, double friend_benefit,
                              double fof_benefit);

  /// The paper's experimental assignment (§IV-A): B_fof(u) = `fof` for all
  /// users, B_f(u) = `reckless_f` for reckless users and `cautious_f` for
  /// cautious users.
  static BenefitModel paper_default(const std::vector<UserClass>& classes,
                                    double reckless_f = 2.0,
                                    double cautious_f = 50.0,
                                    double fof = 1.0);

  /// Extension: information access scales with the user's contact list —
  /// B_f(u) = base + alpha·E[deg(u)] (expected degree under the prior) and
  /// B_fof(u) = fof_fraction·B_f(u).  Requires base > 0, alpha >= 0 and
  /// fof_fraction in [0, 1); the strict gap needed by Corollary 1 holds by
  /// construction.
  static BenefitModel degree_proportional(const Graph& graph, double base,
                                          double alpha, double fof_fraction);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(friend_benefit_.size());
  }

  /// B_f(u): benefit once u is a friend.
  [[nodiscard]] double friend_benefit(NodeId u) const {
    ACCU_ASSERT(u < num_nodes());
    return friend_benefit_[u];
  }

  /// B_fof(u): benefit while u is only a friend-of-friend.
  [[nodiscard]] double fof_benefit(NodeId u) const {
    ACCU_ASSERT(u < num_nodes());
    return fof_benefit_[u];
  }

  /// B_f(u) - B_fof(u): the marginal value of upgrading u from FOF to
  /// friend; appears throughout the potential function and the theory.
  [[nodiscard]] double upgrade_gain(NodeId u) const {
    return friend_benefit(u) - fof_benefit(u);
  }

  /// True iff B_f(u) - B_fof(u) > 0 for every user — the condition under
  /// which Corollary 1 guarantees a positive adaptive submodular ratio.
  [[nodiscard]] bool has_strict_gap() const noexcept;

 private:
  std::vector<double> friend_benefit_;
  std::vector<double> fof_benefit_;
};

}  // namespace accu
