#include "core/faults.hpp"

#include <cmath>
#include <string>

namespace accu {

namespace {

void check_rate(double rate, const char* name) {
  if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
    throw InvalidArgument(std::string("FaultConfig: ") + name +
                          " must be a finite probability in [0,1], got " +
                          std::to_string(rate));
  }
}

}  // namespace

void FaultConfig::validate() const {
  check_rate(drop_rate, "drop_rate");
  check_rate(timeout_rate, "timeout_rate");
  check_rate(transient_rate, "transient_rate");
  check_rate(rate_limit_rate, "rate_limit_rate");
  if (total_rate() > 1.0) {
    throw InvalidArgument(
        "FaultConfig: fault rates must sum to at most 1, got " +
        std::to_string(total_rate()));
  }
}

FaultConfig FaultConfig::uniform(double total,
                                 std::uint32_t suspension_rounds) {
  if (!std::isfinite(total) || total < 0.0 || total > 1.0) {
    throw InvalidArgument(
        "FaultConfig::uniform: total fault rate must be a finite "
        "probability in [0,1], got " +
        std::to_string(total));
  }
  FaultConfig config;
  config.drop_rate = total / 4.0;
  config.timeout_rate = total / 4.0;
  config.transient_rate = total / 4.0;
  config.rate_limit_rate = total / 4.0;
  config.suspension_rounds = suspension_rounds;
  return config;
}

FaultModel::FaultModel(const FaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.validate();
}

FaultKind FaultModel::next() {
  if (config_.total_rate() <= 0.0) return FaultKind::kNone;
  const double u = rng_.uniform();
  double acc = config_.drop_rate;
  if (u < acc) return FaultKind::kDrop;
  acc += config_.timeout_rate;
  if (u < acc) return FaultKind::kTimeout;
  acc += config_.transient_rate;
  if (u < acc) return FaultKind::kTransient;
  acc += config_.rate_limit_rate;
  if (u < acc) return FaultKind::kRateLimit;
  return FaultKind::kNone;
}

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kRateLimit: return "rate-limit";
    case FaultKind::kSuspensionStall: return "suspension-stall";
  }
  return "?";
}

}  // namespace accu
