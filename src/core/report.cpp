#include "core/report.hpp"

#include <ostream>

#include "util/table.hpp"

namespace accu {

void write_markdown_report(const ExperimentResult& result,
                           const ExperimentConfig& config, std::ostream& os,
                           const ReportOptions& options) {
  os << "# " << options.title << "\n\n";
  os << "- budget k = " << config.budget << "\n";
  os << "- sample networks = " << config.samples << ", runs per network = "
     << config.runs << "\n";
  os << "- seed = " << config.seed << "\n";
  // Emitted only under a non-full model so full-feedback reports stay
  // byte-identical to the pre-feedback-axis format.
  if (!config.feedback.is_full()) {
    os << "- feedback = " << config.feedback.spec() << "\n";
  }
  os << "\n";

  os << "## Summary\n\n";
  os << "| policy | benefit | ±95% | accepted | cautious friends |\n";
  os << "|---|---|---|---|---|\n";
  for (std::size_t s = 0; s < result.strategy_names.size(); ++s) {
    const TraceAggregator& agg = result.aggregates[s];
    os << "| " << result.strategy_names[s] << " | "
       << util::Table::format(agg.total_benefit().mean(), 1) << " | "
       << util::Table::format(agg.total_benefit().ci95_halfwidth(), 1)
       << " | " << util::Table::format(agg.accepted_requests().mean(), 1)
       << " | " << util::Table::format(agg.cautious_friends().mean(), 2)
       << " |\n";
  }

  os << "\n## Benefit vs requests\n\n";
  os << "| k |";
  for (const std::string& name : result.strategy_names) {
    os << ' ' << name << " |";
  }
  os << "\n|---|";
  for (std::size_t s = 0; s < result.strategy_names.size(); ++s) os << "---|";
  os << "\n";
  const std::size_t checkpoints =
      options.checkpoints == 0 ? 1 : options.checkpoints;
  std::size_t previous_k = 0;
  for (std::size_t c = 1; c <= checkpoints; ++c) {
    const std::size_t k = static_cast<std::size_t>(config.budget) * c /
                          checkpoints;
    // More checkpoints than budget steps produces repeated k values; one
    // row per distinct k.
    if (k == 0 || k == previous_k) continue;
    previous_k = k;
    os << "| " << k << " |";
    for (const TraceAggregator& agg : result.aggregates) {
      // A series can be shorter than the budget (interrupted sweep whose
      // cells all failed, an empty merge, or aggregates built under a
      // smaller budget): such checkpoints have no samples — say so
      // instead of asserting on an out-of-range index.
      const util::SeriesAccumulator& series = agg.cumulative_benefit();
      if (k <= series.length() && series.at(k - 1).count() > 0) {
        os << ' ' << util::Table::format(series.at(k - 1).mean(), 1)
           << " |";
      } else {
        os << " n/a |";
      }
    }
    os << "\n";
  }
}

namespace {

void emit_metric(std::ostream& os, const std::string& strategy,
                 const char* metric, const util::SeriesAccumulator& series) {
  for (std::size_t i = 0; i < series.length(); ++i) {
    os << util::csv_escape(strategy) << ',' << (i + 1) << ',' << metric << ','
       << util::Table::format(series.at(i).mean(), 6) << ','
       << util::Table::format(series.at(i).ci95_halfwidth(), 6) << '\n';
  }
}

}  // namespace

void write_curves_csv(const ExperimentResult& result, std::ostream& os) {
  os << "strategy,request,metric,mean,ci95\n";
  for (std::size_t s = 0; s < result.strategy_names.size(); ++s) {
    const std::string& name = result.strategy_names[s];
    const TraceAggregator& agg = result.aggregates[s];
    emit_metric(os, name, "cumulative_benefit", agg.cumulative_benefit());
    emit_metric(os, name, "marginal", agg.marginal());
    emit_metric(os, name, "marginal_cautious", agg.marginal_cautious());
    emit_metric(os, name, "marginal_reckless", agg.marginal_reckless());
    emit_metric(os, name, "cautious_fraction", agg.cautious_fraction());
  }
}

}  // namespace accu
