#include "core/feedback.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace accu {
namespace {

constexpr std::array<const char*, 4> kNames = {"full", "myopic", "delayed",
                                               "batched"};

/// Edit distance for the did-you-mean hint on unknown model names — same
/// near-miss policy as util::Options (suggest only distance < 3).
std::size_t levenshtein(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string FeedbackModel::spec() const {
  if (is_full()) return "full";
  switch (kind) {
    case FeedbackKind::kFull:
      return "full";
    case FeedbackKind::kMyopic:
      return "myopic";
    case FeedbackKind::kDelayed:
      return "delayed:" + std::to_string(param);
    case FeedbackKind::kBatched:
      return "batched:" + std::to_string(param);
  }
  return "full";
}

FeedbackModel FeedbackModel::parse(const std::string& spec,
                                   std::uint32_t param) {
  std::string name = spec;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    const std::string tail = spec.substr(colon + 1);
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      throw InvalidArgument("feedback parameter in '" + spec +
                            "' must be a non-negative integer");
    }
    unsigned long long v = 0;
    for (const char c : tail) {
      v = v * 10 + static_cast<unsigned long long>(c - '0');
      if (v > 0xffffffffULL) {
        throw InvalidArgument("feedback parameter in '" + spec +
                              "' is out of range");
      }
    }
    param = static_cast<std::uint32_t>(v);
  }

  FeedbackModel model;
  if (name == "full") {
    model.kind = FeedbackKind::kFull;
  } else if (name == "myopic") {
    model.kind = FeedbackKind::kMyopic;
  } else if (name == "delayed") {
    model.kind = FeedbackKind::kDelayed;
  } else if (name == "batched") {
    model.kind = FeedbackKind::kBatched;
  } else {
    std::string message = "unknown feedback model '" + name +
                          "' (expected full|myopic|delayed|batched)";
    std::string best;
    std::size_t best_distance = 3;  // suggest only near-misses
    for (const char* known : kNames) {
      const std::size_t d = levenshtein(name, known);
      if (d < best_distance) {
        best_distance = d;
        best = known;
      }
    }
    if (!best.empty()) message += " (did you mean '" + best + "'?)";
    throw InvalidArgument(message);
  }

  model.param = param;
  if (model.kind == FeedbackKind::kDelayed && model.param == 0) {
    throw InvalidArgument(
        "feedback model 'delayed' needs --feedback-delay >= 1 "
        "(use --feedback=full for no delay)");
  }
  if (model.kind == FeedbackKind::kBatched && model.param == 0) {
    throw InvalidArgument(
        "feedback model 'batched' needs --feedback-delay >= 1 "
        "(the batch size in rounds; 1 is equivalent to full)");
  }
  if ((model.kind == FeedbackKind::kFull ||
       model.kind == FeedbackKind::kMyopic) &&
      param != 0) {
    throw InvalidArgument("feedback model '" + name +
                          "' does not take a delay parameter");
  }
  return model;
}

}  // namespace accu
