#include "core/theory/exact.hpp"

#include <algorithm>
#include <map>

#include "core/theory/set_benefit.hpp"

namespace accu {

std::vector<std::pair<Realization, double>> enumerate_realizations(
    const AccuInstance& instance, std::uint32_t max_free_bits) {
  ACCU_ASSERT_MSG(!instance.has_generalized_cautious(),
                  "exhaustive theory tools cover the deterministic cautious "
                  "model only");
  const Graph& g = instance.graph();
  std::vector<EdgeId> free_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double p = g.edge_prob(e);
    if (p > 0.0 && p < 1.0) free_edges.push_back(e);
  }
  std::vector<NodeId> free_coins;
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    if (instance.is_cautious(u)) continue;
    const double q = instance.accept_prob(u);
    if (q > 0.0 && q < 1.0) free_coins.push_back(u);
  }
  const std::size_t bits = free_edges.size() + free_coins.size();
  ACCU_ASSERT_MSG(bits <= max_free_bits,
                  "enumerate_realizations: too many free outcomes");

  std::vector<bool> edges(g.num_edges());
  std::vector<bool> coins(instance.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges[e] = g.edge_prob(e) >= 1.0;
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    coins[u] = instance.is_cautious(u) || instance.accept_prob(u) >= 1.0;
  }

  std::vector<std::pair<Realization, double>> worlds;
  worlds.reserve(std::size_t{1} << bits);
  const std::uint64_t count = std::uint64_t{1} << bits;
  for (std::uint64_t w = 0; w < count; ++w) {
    double prob = 1.0;
    for (std::size_t i = 0; i < free_edges.size(); ++i) {
      const bool present = (w >> i) & 1ULL;
      edges[free_edges[i]] = present;
      const double p = g.edge_prob(free_edges[i]);
      prob *= present ? p : (1.0 - p);
    }
    for (std::size_t i = 0; i < free_coins.size(); ++i) {
      const bool accept = (w >> (free_edges.size() + i)) & 1ULL;
      coins[free_coins[i]] = accept;
      const double q = instance.accept_prob(free_coins[i]);
      prob *= accept ? q : (1.0 - q);
    }
    worlds.emplace_back(Realization(edges, coins), prob);
  }
  return worlds;
}

bool consistent_with(const AttackerView& view, const Realization& truth) {
  const AccuInstance& instance = view.instance();
  const Graph& g = instance.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeState state = view.edge_state(e);
    if (state == EdgeState::kUnknown) continue;
    if ((state == EdgeState::kPresent) != truth.edge_present(e)) return false;
  }
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    if (instance.is_cautious(u)) continue;  // deterministic given ω
    const RequestState state = view.request_state(u);
    if (state == RequestState::kAccepted && !truth.reckless_accepts(u)) {
      return false;
    }
    if (state == RequestState::kRejected && truth.reckless_accepts(u)) {
      return false;
    }
  }
  return true;
}

double exact_marginal_gain(
    const AttackerView& view, NodeId u,
    const std::vector<std::pair<Realization, double>>& worlds) {
  const AccuInstance& instance = view.instance();
  ACCU_ASSERT(!view.is_requested(u));
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& [truth, prob] : worlds) {
    if (!consistent_with(view, truth)) continue;
    total += prob;
    const bool accepted = instance.is_cautious(u)
                              ? view.cautious_would_accept(u)
                              : truth.reckless_accepts(u);
    if (!accepted) continue;  // zero marginal in this world
    AttackerView after = view;
    after.record_acceptance(u, truth);
    weighted += prob * (after.current_benefit() - view.current_benefit());
  }
  ACCU_ASSERT_MSG(total > 0.0, "view is inconsistent with every world");
  return weighted / total;
}

double exact_policy_value(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget,
    const std::vector<std::pair<Realization, double>>& worlds) {
  double value = 0.0;
  for (const auto& [truth, prob] : worlds) {
    util::Rng rng(0xACC0'1234);  // policies under test are deterministic
    const std::unique_ptr<Strategy> strategy = make();
    value += prob *
             simulate(instance, truth, *strategy, budget, rng).total_benefit;
  }
  return value;
}

namespace {

/// Recursive optimal value over the information set `consistent` (indices
/// into `worlds`, whose probabilities are renormalized by `total_weight`).
double optimal_rec(const AccuInstance& instance, const AttackerView& view,
                   const std::vector<std::size_t>& consistent,
                   double total_weight,
                   const std::vector<std::pair<Realization, double>>& worlds,
                   std::uint32_t budget) {
  // f(dom(ω), φ) is the same for every consistent φ (friends' edges are all
  // observed), so the stopping value is just the view's benefit.
  double best = view.current_benefit();
  if (budget == 0) return best;

  const Graph& g = instance.graph();
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    if (view.is_requested(u)) continue;
    double value_u = 0.0;
    if (instance.is_cautious(u)) {
      // Deterministic outcome, identical across the information set.
      if (!view.cautious_would_accept(u)) {
        // Rejected in every world: observation-free, budget wasted.
        AttackerView after = view;
        after.record_rejection(u);
        value_u = optimal_rec(instance, after, consistent, total_weight,
                              worlds, budget - 1);
        best = std::max(best, value_u);
        continue;
      }
      // Accepted: branch on the revealed incident edges of u.
      std::map<std::uint64_t, std::vector<std::size_t>> groups;
      for (const std::size_t w : consistent) {
        std::uint64_t sig = 0;
        std::uint32_t bit = 0;
        for (const graph::Neighbor& nb : g.neighbors(u)) {
          ACCU_ASSERT(bit < 64);
          if (worlds[w].first.edge_present(nb.edge)) sig |= 1ULL << bit;
          ++bit;
        }
        groups[sig].push_back(w);
      }
      for (const auto& [sig, members] : groups) {
        (void)sig;
        double weight = 0.0;
        for (const std::size_t w : members) weight += worlds[w].second;
        AttackerView after = view;
        after.record_acceptance(u, worlds[members.front()].first);
        value_u += (weight / total_weight) *
                   optimal_rec(instance, after, members, weight, worlds,
                               budget - 1);
      }
    } else {
      // Reckless: branch on the coin, then on revealed edges if accepted.
      std::vector<std::size_t> rejected;
      std::map<std::uint64_t, std::vector<std::size_t>> accepted;
      for (const std::size_t w : consistent) {
        if (!worlds[w].first.reckless_accepts(u)) {
          rejected.push_back(w);
          continue;
        }
        std::uint64_t sig = 0;
        std::uint32_t bit = 0;
        for (const graph::Neighbor& nb : g.neighbors(u)) {
          ACCU_ASSERT(bit < 64);
          if (worlds[w].first.edge_present(nb.edge)) sig |= 1ULL << bit;
          ++bit;
        }
        accepted[sig].push_back(w);
      }
      if (!rejected.empty()) {
        double weight = 0.0;
        for (const std::size_t w : rejected) weight += worlds[w].second;
        AttackerView after = view;
        after.record_rejection(u);
        value_u += (weight / total_weight) *
                   optimal_rec(instance, after, rejected, weight, worlds,
                               budget - 1);
      }
      for (const auto& [sig, members] : accepted) {
        (void)sig;
        double weight = 0.0;
        for (const std::size_t w : members) weight += worlds[w].second;
        AttackerView after = view;
        after.record_acceptance(u, worlds[members.front()].first);
        value_u += (weight / total_weight) *
                   optimal_rec(instance, after, members, weight, worlds,
                               budget - 1);
      }
    }
    best = std::max(best, value_u);
  }
  return best;
}

}  // namespace

double optimal_nonadaptive_value(
    const AccuInstance& instance, std::uint32_t budget,
    const std::vector<std::pair<Realization, double>>& worlds) {
  const NodeId n = instance.num_nodes();
  ACCU_ASSERT_MSG(n <= 20, "optimal_nonadaptive_value enumerates all C(n,k) "
                           "sets; use tiny instances");
  const std::uint32_t k = std::min<std::uint32_t>(budget, n);
  // Enumerate subsets of size exactly k (monotonicity makes smaller sets
  // dominated) via the classic Gosper's-hack successor.
  double best = 0.0;
  if (k == 0) return best;
  std::uint64_t mask = (std::uint64_t{1} << k) - 1;
  const std::uint64_t limit = std::uint64_t{1} << n;
  std::vector<NodeId> requested;
  while (mask < limit) {
    requested.clear();
    for (NodeId u = 0; u < n; ++u) {
      if ((mask >> u) & 1ULL) requested.push_back(u);
    }
    double value = 0.0;
    for (const auto& [truth, prob] : worlds) {
      value += prob * set_benefit(instance, truth, requested);
    }
    best = std::max(best, value);
    // Next subset with the same popcount.
    const std::uint64_t c = mask & (0 - mask);
    const std::uint64_t r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
  }
  return best;
}

double optimal_adaptive_value(
    const AccuInstance& instance, std::uint32_t budget,
    const std::vector<std::pair<Realization, double>>& worlds) {
  ACCU_ASSERT_MSG(instance.num_nodes() <= 12,
                  "optimal_adaptive_value is exponential; use tiny instances");
  AttackerView view(instance);
  std::vector<std::size_t> consistent(worlds.size());
  double total = 0.0;
  for (std::size_t w = 0; w < worlds.size(); ++w) {
    consistent[w] = w;
    total += worlds[w].second;
  }
  ACCU_ASSERT(total > 0.0);
  return optimal_rec(instance, view, consistent, total, worlds, budget);
}

}  // namespace accu
