// Exact expectations by exhaustive realization enumeration.
//
// For small instances these routines compute, with no sampling error,
//
//   * the full realization distribution (every world and its probability),
//   * the exact conditional marginal gain Δ(u|ω) of Definition 2's setting
//     (used to demonstrate the paper's Fig. 1 non-submodularity witness and
//     to verify that ABM's P_D potential is exactly Δ when w_I = 0),
//   * the exact expected value E[f(π, Φ)] of any deterministic policy, and
//   * the exact value of the *optimal adaptive policy* π* by recursion over
//     information sets — the yardstick in Theorem 1's bound
//     f_avg(greedy) >= (1 − e^{−λ}) · f_avg(π*), which the tests check on
//     enumerable instances.
//
// All routines are exponential and assert small inputs; they are theory
// validation tools, not production paths.

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "core/observation.hpp"
#include "core/simulator.hpp"

namespace accu {

/// Every realization with positive probability, paired with it.  Edges and
/// reckless coins with probability strictly inside (0,1) are free bits;
/// the rest are pinned.  Requires <= `max_free_bits` free outcomes.
[[nodiscard]] std::vector<std::pair<Realization, double>>
enumerate_realizations(const AccuInstance& instance,
                       std::uint32_t max_free_bits = 20);

/// Whether `truth` is consistent (the paper's φ ∼ ω) with everything the
/// view has observed: revealed edge states match, accepted/rejected
/// reckless users' coins match.
[[nodiscard]] bool consistent_with(const AttackerView& view,
                                   const Realization& truth);

/// Exact Δ(u|ω) = E[f(dom(ω) ∪ {u}, Φ) − f(dom(ω), Φ) | Φ ∼ ω], where ω is
/// the given view and the expectation runs over `worlds` (typically
/// enumerate_realizations of the same instance).
[[nodiscard]] double exact_marginal_gain(
    const AttackerView& view, NodeId u,
    const std::vector<std::pair<Realization, double>>& worlds);

/// Exact E[f(π, Φ)] of the deterministic policy produced by `make` (a
/// fresh instance per world), with budget k.
[[nodiscard]] double exact_policy_value(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget,
    const std::vector<std::pair<Realization, double>>& worlds);

/// Exact value of the optimal adaptive policy with budget k, computed by
/// exhaustive recursion over information sets.  Exponential in both the
/// node count and the number of free outcomes; intended for <= ~8 nodes.
[[nodiscard]] double optimal_adaptive_value(
    const AccuInstance& instance, std::uint32_t budget,
    const std::vector<std::pair<Realization, double>>& worlds);

/// Exact value of the optimal *non-adaptive* policy: the best fixed set of
/// at most k users chosen before any observation, evaluated as
/// E[f(S, Φ)] with cautious users requested after the reckless ones (the
/// set semantics of theory/set_benefit.hpp).  The gap
/// optimal_adaptive / optimal_nonadaptive is the adaptivity gain the
/// paper's whole setting is about.  Enumerates all C(n, k) sets.
[[nodiscard]] double optimal_nonadaptive_value(
    const AccuInstance& instance, std::uint32_t budget,
    const std::vector<std::pair<Realization, double>>& worlds);

}  // namespace accu
