#include "core/theory/ratios.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "core/theory/set_benefit.hpp"

namespace accu {

namespace {

constexpr double kEps = 1e-12;

/// f(mask, φ) for every subset mask.
std::vector<double> all_subset_benefits(const AccuInstance& instance,
                                        const Realization& truth) {
  const NodeId n = instance.num_nodes();
  std::vector<double> f(std::size_t{1} << n);
  for (std::uint64_t mask = 0; mask < f.size(); ++mask) {
    f[mask] = set_benefit_mask(instance, truth, mask);
  }
  return f;
}

}  // namespace

double realization_submodular_ratio(const AccuInstance& instance,
                                    const Realization& truth) {
  ACCU_ASSERT_MSG(!instance.has_generalized_cautious(),
                  "the submodular-ratio tools cover the deterministic "
                  "cautious model only");
  const NodeId n = instance.num_nodes();
  if (n == 0) return 1.0;
  ACCU_ASSERT_MSG(n <= 12,
                  "realization_submodular_ratio enumerates 3^n subset pairs;"
                  " use instances with <= 12 nodes");
  const std::vector<double> f = all_subset_benefits(instance, truth);
  const std::uint64_t full = (std::uint64_t{1} << n) - 1;
  double lambda = 1.0;
  for (std::uint64_t s = 0; s <= full; ++s) {
    // Singleton gains over S.
    double gain[12];
    const std::uint64_t comp = full & ~s;
    for (NodeId u = 0; u < n; ++u) {
      if ((comp >> u) & 1ULL) gain[u] = f[s | (1ULL << u)] - f[s];
    }
    // ρ_T(S) and the lhs depend only on T \ S, so it suffices to sweep T
    // over subsets of the complement of S (3^n pairs total).
    for (std::uint64_t t = comp;; t = (t - 1) & comp) {
      if (t != 0) {
        const double rhs = f[s | t] - f[s];
        if (rhs > kEps) {
          double lhs = 0.0;
          for (std::uint64_t bits = t; bits != 0; bits &= bits - 1) {
            const auto u = static_cast<NodeId>(
                std::countr_zero(bits));
            lhs += gain[u];
          }
          lambda = std::min(lambda, lhs / rhs);
        }
      }
      if (t == 0) break;
    }
  }
  return lambda;
}

double adaptive_submodular_ratio(const AccuInstance& instance,
                                 std::uint32_t max_free_bits) {
  const Graph& g = instance.graph();
  // Free binary outcomes: edges and reckless coins whose probability is
  // strictly inside (0,1).  Everything else is pinned.
  std::vector<EdgeId> free_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double p = g.edge_prob(e);
    if (p > 0.0 && p < 1.0) free_edges.push_back(e);
  }
  std::vector<NodeId> free_coins;
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    if (instance.is_cautious(u)) continue;
    const double q = instance.accept_prob(u);
    if (q > 0.0 && q < 1.0) free_coins.push_back(u);
  }
  const std::size_t bits = free_edges.size() + free_coins.size();
  ACCU_ASSERT_MSG(bits <= max_free_bits,
                  "adaptive_submodular_ratio: too many free outcomes to "
                  "enumerate");

  std::vector<bool> edges(g.num_edges());
  std::vector<bool> coins(instance.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges[e] = g.edge_prob(e) >= 1.0;
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    // Cautious users' coins are never read; pin them to accept.
    coins[u] = instance.is_cautious(u) || instance.accept_prob(u) >= 1.0;
  }

  double lambda = 1.0;
  const std::uint64_t worlds = std::uint64_t{1} << bits;
  for (std::uint64_t w = 0; w < worlds; ++w) {
    for (std::size_t i = 0; i < free_edges.size(); ++i) {
      edges[free_edges[i]] = (w >> i) & 1ULL;
    }
    for (std::size_t i = 0; i < free_coins.size(); ++i) {
      coins[free_coins[i]] = (w >> (free_edges.size() + i)) & 1ULL;
    }
    const Realization truth(edges, coins);
    lambda = std::min(lambda,
                      realization_submodular_ratio(instance, truth));
  }
  return lambda;
}

double theorem1_ratio(double lambda, std::uint32_t l, std::uint32_t k) {
  ACCU_ASSERT(k > 0);
  return 1.0 - std::exp(-lambda * static_cast<double>(l) /
                        static_cast<double>(k));
}

double curvature_ratio(double delta, std::uint32_t k) {
  ACCU_ASSERT(delta > 0.0 && k > 0);
  const double base = 1.0 - 1.0 / (delta * static_cast<double>(k));
  return 1.0 - std::pow(base, static_cast<double>(k));
}

double generalized_curvature_delta(const AccuInstance& instance) {
  double delta = 1.0;
  for (const NodeId v : instance.cautious_users()) {
    const double q1 = instance.cautious_accept_prob(v, false);
    const double q2 = instance.cautious_accept_prob(v, true);
    if (q2 <= 0.0) continue;  // never accepts: no curvature contribution
    if (q1 <= 0.0) return std::numeric_limits<double>::infinity();
    delta = std::max(delta, q2 / q1);
  }
  return delta;
}

double total_primal_curvature(double delta_later, double delta_earlier) {
  if (delta_earlier > kEps) return delta_later / delta_earlier;
  if (delta_later > kEps) return std::numeric_limits<double>::infinity();
  return 1.0;  // 0/0: the pair constrains nothing
}

namespace {

/// B'(x) under realization φ relative to the cautious user v_c: the benefit
/// still collectable from x when the adversarial S may pre-demote x to FOF
/// through a neighbor other than v_c.
double b_prime(const AccuInstance& instance, const Realization& truth,
               NodeId x, NodeId v_c) {
  const BenefitModel& benefits = instance.benefits();
  for (const graph::Neighbor& nb : instance.graph().neighbors(x)) {
    if (nb.node != v_c && truth.edge_present(nb.edge)) {
      return benefits.friend_benefit(x) - benefits.fof_benefit(x);
    }
  }
  return benefits.friend_benefit(x);
}

}  // namespace

double lemma4_lambda(const AccuInstance& instance, const Realization& truth) {
  ACCU_ASSERT_MSG(instance.num_cautious() == 1,
                  "Lemma 4 covers exactly one cautious user");
  const NodeId v_c = instance.cautious_users().front();
  const BenefitModel& benefits = instance.benefits();

  std::vector<NodeId> neighbors;
  for (const graph::Neighbor& nb : instance.graph().neighbors(v_c)) {
    if (truth.edge_present(nb.edge)) neighbors.push_back(nb.node);
  }
  if (neighbors.empty()) {
    throw InvalidArgument(
        "lemma4_lambda: the cautious user has no realized neighbors");
  }

  if (neighbors.size() == 1) {
    const double bp = b_prime(instance, truth, neighbors.front(), v_c);
    return bp / (benefits.friend_benefit(v_c) + bp);
  }

  const std::uint32_t theta = instance.threshold(v_c);
  std::vector<double> bp;
  bp.reserve(neighbors.size());
  for (const NodeId u : neighbors) bp.push_back(b_prime(instance, truth, u, v_c));
  std::sort(bp.begin(), bp.end());

  // Eq. (12): x / (B_f(v_c) + x) is increasing in x, so the minimizing U is
  // the θ neighbors with smallest B'.
  double candidate12 = 1.0;
  if (theta <= bp.size()) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < theta; ++i) sum += bp[i];
    candidate12 = sum / (benefits.friend_benefit(v_c) + sum);
  }
  // Eq. (13): v_c is FOF under S (which holds θ−1 >= 1 of its friends).
  const double bp_vc =
      theta > 1 ? benefits.upgrade_gain(v_c) : benefits.friend_benefit(v_c);
  const double candidate13 = bp.front() / (bp_vc + bp.front());

  return std::min(candidate12, candidate13);
}

double independent_cautious_lambda(const AccuInstance& instance,
                                   const Realization& truth) {
  if (instance.num_cautious() == 0) return 1.0;  // Observation 1
  const Graph& g = instance.graph();
  // Precondition: no two cautious users share a realized neighbor.
  std::vector<NodeId> covered(instance.num_nodes(), kInvalidNode);
  for (const NodeId v_c : instance.cautious_users()) {
    for (const graph::Neighbor& nb : g.neighbors(v_c)) {
      if (!truth.edge_present(nb.edge)) continue;
      if (covered[nb.node] != kInvalidNode) {
        throw InvalidArgument(
            "independent_cautious_lambda: cautious users " +
            std::to_string(covered[nb.node]) + " and " + std::to_string(v_c) +
            " share realized neighbor " + std::to_string(nb.node) +
            "; use lemma5_upper_bound instead");
      }
      covered[nb.node] = v_c;
    }
  }
  // Rebuild single-cautious variants and take the minimum Lemma 4 value.
  std::vector<UserClass> classes(instance.num_nodes());
  std::vector<double> q(instance.num_nodes());
  std::vector<std::uint32_t> theta(instance.num_nodes());
  std::vector<double> bf(instance.num_nodes()), bfof(instance.num_nodes());
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    q[u] = instance.accept_prob(u);
    theta[u] = instance.threshold(u);
    bf[u] = instance.benefits().friend_benefit(u);
    bfof[u] = instance.benefits().fof_benefit(u);
  }
  double lambda = 1.0;
  for (const NodeId v_c : instance.cautious_users()) {
    for (NodeId u = 0; u < instance.num_nodes(); ++u) {
      classes[u] = u == v_c ? UserClass::kCautious : UserClass::kReckless;
    }
    const AccuInstance single(instance.graph(), classes, q, theta,
                              BenefitModel(bf, bfof));
    lambda = std::min(lambda, lemma4_lambda(single, truth));
  }
  return lambda;
}

double lemma5_upper_bound(const AccuInstance& instance,
                          const Realization& truth, NodeId shared_friend) {
  const BenefitModel& benefits = instance.benefits();
  double cautious_sum = 0.0;
  std::uint32_t r = 0;
  for (const graph::Neighbor& nb :
       instance.graph().neighbors(shared_friend)) {
    if (!truth.edge_present(nb.edge)) continue;
    const NodeId v = nb.node;
    if (!instance.is_cautious(v)) continue;
    ++r;
    cautious_sum += instance.threshold(v) > 1
                        ? benefits.upgrade_gain(v)
                        : benefits.friend_benefit(v);
  }
  if (r == 0) {
    throw InvalidArgument(
        "lemma5_upper_bound: node shares no realized cautious neighbors");
  }
  const double bf = benefits.friend_benefit(shared_friend);
  return bf / (cautious_sum + bf);
}

}  // namespace accu
