// Monte Carlo estimators for quantities whose exact computation
// (theory/exact.hpp) is exponential.
//
// These scale to the full evaluation networks and are validated against the
// exact enumerations on small instances by the tests:
//
//   * `sampled_marginal_gain` — Δ(u|ω) by sampling the unobserved coins and
//     incident edges of u conditioned on the view; also a second, slower
//     witness of the Δ = q(u)·P_D identity that makes ABM(w_I=0) the exact
//     adaptive greedy.
//   * `sampled_policy_value` — E[f(π, Φ)] of any policy factory by fresh
//     full-realization sampling.

#pragma once

#include <functional>
#include <memory>

#include "core/observation.hpp"
#include "core/simulator.hpp"

namespace accu {

/// Unbiased estimate of Δ(u|ω) with `trials` samples.  Requires u to be
/// un-requested in the view.
[[nodiscard]] double sampled_marginal_gain(const AttackerView& view, NodeId u,
                                           std::size_t trials,
                                           util::Rng& rng);

/// Unbiased estimate of E[f(π, Φ)] over `trials` fresh realizations; `make`
/// builds a fresh policy per trial.
[[nodiscard]] double sampled_policy_value(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget, std::size_t trials, util::Rng& rng);

/// As above, with the policy running under `feedback` (core/feedback.hpp).
/// The value is the *realized* benefit f(π, Φ) — what the attacker truly
/// harvested — even when the model hides part of it from the view.
[[nodiscard]] double sampled_policy_value(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget, std::size_t trials, util::Rng& rng,
    const FeedbackModel& feedback);

/// Empirical adaptivity gap of a feedback model: the ratio
///
///     E[f(π, Φ) | feedback] / E[f(π, Φ) | full]
///
/// estimated with common random numbers (the same realization and policy
/// seed stream feed both runs, so the ratio's variance collapses).  1.0
/// means the restricted feedback costs the policy nothing; the theory
/// (Golovin–Krause adaptive submodularity) bounds how far below 1 a greedy
/// policy can fall.  Returns 1.0 when the full-feedback value is 0.
[[nodiscard]] double empirical_adaptivity_gap(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget, std::size_t trials, util::Rng& rng,
    const FeedbackModel& feedback);

}  // namespace accu
