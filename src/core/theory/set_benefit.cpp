#include "core/theory/set_benefit.hpp"

namespace accu {

std::vector<NodeId> friends_of_set(const AccuInstance& instance,
                                   const Realization& truth,
                                   const std::vector<NodeId>& requested) {
  const Graph& g = instance.graph();
  std::vector<bool> reckless_friend(instance.num_nodes(), false);
  std::vector<NodeId> friends;
  for (const NodeId u : requested) {
    ACCU_ASSERT(u < instance.num_nodes());
    if (!instance.is_cautious(u) && truth.reckless_accepts(u)) {
      reckless_friend[u] = true;
      friends.push_back(u);
    }
  }
  for (const NodeId v : requested) {
    if (!instance.is_cautious(v)) continue;
    std::uint32_t mutual = 0;
    for (const graph::Neighbor& nb : g.neighbors(v)) {
      if (truth.edge_present(nb.edge) && reckless_friend[nb.node]) ++mutual;
    }
    if (mutual >= instance.threshold(v)) friends.push_back(v);
  }
  return friends;
}

double set_benefit(const AccuInstance& instance, const Realization& truth,
                   const std::vector<NodeId>& requested) {
  const Graph& g = instance.graph();
  const BenefitModel& benefits = instance.benefits();
  const std::vector<NodeId> friends =
      friends_of_set(instance, truth, requested);
  std::vector<bool> is_friend(instance.num_nodes(), false);
  double total = 0.0;
  for (const NodeId u : friends) {
    is_friend[u] = true;
    total += benefits.friend_benefit(u);
  }
  std::vector<bool> counted(instance.num_nodes(), false);
  for (const NodeId u : friends) {
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      const NodeId w = nb.node;
      if (!truth.edge_present(nb.edge) || is_friend[w] || counted[w]) {
        continue;
      }
      counted[w] = true;
      total += benefits.fof_benefit(w);
    }
  }
  return total;
}

double set_benefit_mask(const AccuInstance& instance, const Realization& truth,
                        std::uint64_t mask) {
  ACCU_ASSERT(instance.num_nodes() <= 63);
  std::vector<NodeId> requested;
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    if ((mask >> u) & 1ULL) requested.push_back(u);
  }
  return set_benefit(instance, truth, requested);
}

}  // namespace accu
