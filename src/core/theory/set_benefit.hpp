// Set-function view of the benefit under a fixed realization (§III-B).
//
// The paper's ratio analysis treats, for a realization φ, the benefit of a
// *set* A of requested users.  Under a fixed φ the friend set is
//
//   F(A, φ) = { reckless u ∈ A with an accepting coin }
//           ∪ { cautious v ∈ A with |N_φ(v) ∩ F_R| >= θ_v },
//
// where F_R is the reckless part — well-defined without an order because
// cautious users have only reckless neighbors (model assumption), i.e. the
// semantics of "cautious requests are sent once their threshold is met",
// which is how every sensible policy behaves (Lemma 2's argument).
// FOF(A, φ) is then every non-friend with a realized edge to a friend, and
//
//   f(A, φ) = Σ_{u ∈ F} B_f(u) + Σ_{v ∈ FOF} B_fof(v).          (Eq. 1)

#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"

namespace accu {

/// Friends resulting from requesting exactly the set `requested` under φ.
[[nodiscard]] std::vector<NodeId> friends_of_set(
    const AccuInstance& instance, const Realization& truth,
    const std::vector<NodeId>& requested);

/// f(requested, φ) per Eq. (1).
[[nodiscard]] double set_benefit(const AccuInstance& instance,
                                 const Realization& truth,
                                 const std::vector<NodeId>& requested);

/// Subset-mask convenience for exhaustive enumerations: bit u of `mask`
/// marks u ∈ requested.  Only valid for instances with <= 63 nodes.
[[nodiscard]] double set_benefit_mask(const AccuInstance& instance,
                                      const Realization& truth,
                                      std::uint64_t mask);

}  // namespace accu
