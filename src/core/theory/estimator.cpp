#include "core/theory/estimator.hpp"

namespace accu {

double sampled_marginal_gain(const AttackerView& view, NodeId u,
                             std::size_t trials, util::Rng& rng) {
  ACCU_ASSERT(trials > 0);
  ACCU_ASSERT(!view.is_requested(u));
  const AccuInstance& instance = view.instance();
  const BenefitModel& benefits = instance.benefits();

  // Acceptance probability conditioned on the view (cautious acceptance
  // depends only on observed mutual counts; reckless coins are unobserved
  // for un-requested users).
  double accept_prob;
  if (instance.is_cautious(u)) {
    accept_prob =
        instance.cautious_accept_prob(u, view.cautious_would_accept(u));
  } else {
    accept_prob = instance.accept_prob(u);
  }

  // The non-random part of the accepted-case gain.
  double fixed_gain = benefits.friend_benefit(u);
  if (view.is_fof(u)) fixed_gain -= benefits.fof_benefit(u);

  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    if (!rng.bernoulli(accept_prob)) continue;
    double gain = fixed_gain;
    for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
      const NodeId v = nb.node;
      if (view.is_friend(v) || view.is_fof(v)) continue;
      switch (view.edge_state(nb.edge)) {
        case EdgeState::kPresent:
          gain += benefits.fof_benefit(v);
          break;
        case EdgeState::kAbsent:
          break;
        case EdgeState::kUnknown:
          if (rng.bernoulli(instance.graph().edge_prob(nb.edge))) {
            gain += benefits.fof_benefit(v);
          }
          break;
      }
    }
    total += gain;
  }
  return total / static_cast<double>(trials);
}

double sampled_policy_value(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget, std::size_t trials, util::Rng& rng) {
  return sampled_policy_value(instance, make, budget, trials, rng,
                              FeedbackModel{});
}

double sampled_policy_value(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget, std::size_t trials, util::Rng& rng,
    const FeedbackModel& feedback) {
  ACCU_ASSERT(trials > 0);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const Realization truth = Realization::sample(instance, rng);
    const std::unique_ptr<Strategy> strategy = make();
    util::Rng policy_rng = rng.split(t + 1);
    total += simulate(instance, truth, *strategy, budget, policy_rng,
                      /*cancel=*/nullptr, feedback)
                 .total_benefit;
  }
  return total / static_cast<double>(trials);
}

double empirical_adaptivity_gap(
    const AccuInstance& instance,
    const std::function<std::unique_ptr<Strategy>()>& make,
    std::uint32_t budget, std::size_t trials, util::Rng& rng,
    const FeedbackModel& feedback) {
  ACCU_ASSERT(trials > 0);
  double restricted = 0.0;
  double full = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    // Common random numbers: both runs see the same realization and the
    // same policy seed stream, so only the feedback model differs.
    const Realization truth = Realization::sample(instance, rng);
    util::Rng restricted_rng = rng.split(2 * t + 1);
    util::Rng full_rng = restricted_rng;
    const std::unique_ptr<Strategy> under_feedback = make();
    restricted += simulate(instance, truth, *under_feedback, budget,
                           restricted_rng, /*cancel=*/nullptr, feedback)
                      .total_benefit;
    const std::unique_ptr<Strategy> under_full = make();
    full += simulate(instance, truth, *under_full, budget, full_rng)
                .total_benefit;
  }
  if (full == 0.0) return 1.0;
  return restricted / full;
}

}  // namespace accu
