// Submodularity ratios and approximation bounds (paper §III-B).
//
// These are the quantities the paper's theory is built on:
//
//   * RASR λ_φ (Definition 4): the largest scalar such that
//       Σ_{u ∈ T\S} ρ_u(S)  >=  λ_φ · ρ_T(S)      for all S, T ⊆ V
//     under realization φ, with ρ_X(S) = f(X ∪ S, φ) − f(S, φ).
//     Computed here by exhaustive enumeration (small instances only).
//
//   * Adaptive submodular ratio λ (Definition 5): min over realizations of
//     λ_φ; enumerated over all realizations with non-degenerate
//     probability.
//
//   * Theorem 1 ratio 1 − e^{−λ·l/k}: greedy with l requests vs the
//     optimal policy with k.
//
//   * Lemma 4 closed forms for a single cautious user, Lemma 5's upper
//     bound when one friend is shared by r cautious users — both of which
//     the tests validate against the brute-force λ_φ.
//
//   * The adaptive-total-primal-curvature ratio 1 − (1 − 1/(δk))^k from
//     the prior work the paper contrasts against (with the generalized
//     q1→q2 cautious model giving δ = max q2/q1; §III-B's numeric example
//     δ=10, k=20 ⇒ 0.095).

#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/realization.hpp"

namespace accu {

/// Brute-force λ_φ over all subset pairs.  Requires num_nodes <= 12 (the
/// enumeration is 4^n f-evaluations, memoized to 2^n).
/// Returns 1.0 when no pair has ρ_T(S) > 0 (vacuously submodular).
[[nodiscard]] double realization_submodular_ratio(const AccuInstance& instance,
                                                  const Realization& truth);

/// λ = min_φ λ_φ, enumerating every realization over the instance's free
/// coins and edges (those with probability strictly between 0 and 1).
/// Requires the number of free binary outcomes to be <= `max_free_bits`.
[[nodiscard]] double adaptive_submodular_ratio(const AccuInstance& instance,
                                               std::uint32_t max_free_bits = 20);

/// Theorem 1: greedy with l requests achieves at least (1 − e^{−λ·l/k})
/// of the optimal policy's value with k requests.
[[nodiscard]] double theorem1_ratio(double lambda, std::uint32_t l,
                                    std::uint32_t k);

/// The curvature-based ratio of [6],[7]: 1 − (1 − 1/(δk))^k, valid when
/// the total primal curvature is bounded by δ.  Degenerates to 0 as
/// δ → ∞, which is the paper's argument that curvature cannot bound ACCU.
[[nodiscard]] double curvature_ratio(double delta, std::uint32_t k);

/// Adaptive total primal curvature of one (u, ω ⊆ ω') pair:
/// Γ = Δ(u|ω') / Δ(u|ω).  Infinity when Δ(u|ω) = 0 < Δ(u|ω') — the
/// unbounded case the cautious model forces.  Exposed for the Fig. 1 /
/// §III-B demonstrations.
[[nodiscard]] double total_primal_curvature(double delta_later,
                                            double delta_earlier);

/// δ for the generalized cautious model (§III-B): max over cautious users
/// of q2/q1.  Returns +infinity when any q1 = 0 — the deterministic model,
/// for which the curvature ratio collapses to 0 (the paper's motivation
/// for the adaptive submodular ratio).
[[nodiscard]] double generalized_curvature_delta(const AccuInstance& instance);

/// Lemma 4 closed form: λ for an instance with exactly one cautious user
/// v_c, evaluated on realization φ (typically the deterministic
/// `Realization::certain`).  B'(u) follows the paper:
/// B'(u) = B_f(u) − B_fof(u) if u has at least one φ-neighbor besides v_c
/// (so S can pre-demote u to FOF), else B_f(u).
/// Because the lemma minimizes over a *family* of (S,T) candidates, its
/// value always upper-bounds the brute-force λ_φ, with equality when the
/// family contains the global minimizer (the tests exercise both).
[[nodiscard]] double lemma4_lambda(const AccuInstance& instance,
                                   const Realization& truth);

/// Lemma 5: when `shared_friend` is adjacent (under φ) to the cautious
/// users {v_c^i}, λ is at most B_f(u) / (Σ_i B'(v_c^i) + B_f(u)).
[[nodiscard]] double lemma5_upper_bound(const AccuInstance& instance,
                                        const Realization& truth,
                                        NodeId shared_friend);

/// The paper's multi-cautious composition (text after Lemma 4): when the
/// cautious users share no realized common neighbors, λ is estimated as the
/// minimum of the per-user Lemma 4 values, each computed as if that user
/// were the only cautious one.  Throws InvalidArgument when two cautious
/// users do share a realized neighbor (use lemma5_upper_bound then).
[[nodiscard]] double independent_cautious_lambda(const AccuInstance& instance,
                                                 const Realization& truth);

}  // namespace accu
