// The SIMD kernel seam for the score/sampling hot loops (DESIGN.md §16).
//
// Three data-parallel kernels sit under the potential stack and the
// realization sampler:
//
//   row_gather_mul — Σ_s values[s] · table[nodes[s]] over one CSR row: the
//     P_D multiply-mask sum (values = d_init, table = active mask) and the
//     P_I sum (values = i_gain, table = 1/(θ−m) gaps) of `score_batch`.
//   row_sum        — Σ_s values[s] over a contiguous row: the incremental
//     engine's refresh over its per-slot contribution arrays.
//   bernoulli_pack — bits[i] = (raw[i] >> 11) < thr[i], packed 64 per word:
//     the batched Bernoulli compare of `Realization::resample`
//     (see util::Rng::bernoulli_threshold for the exactness proof).
//
// Determinism contract.  Every implementation — portable scalar, AVX2,
// NEON — produces bit-identical doubles, because all of them evaluate the
// *canonical reduction order*: four stride-4 lane accumulators
// (lane = slot position mod 4, each term rounded exactly as written, no
// FMA contraction) combined as (l0 + l2) + (l1 + l3).  The scalar
// reference (AbmStrategy::direct_gain / indirect_gain), the incremental
// ScoreEngine, and score_batch all share this order, so switching ISAs,
// chunking a batch, or changing `cell_threads` never changes a single
// reported bit.  The build enforces `-ffp-contract=off` so `-march=native`
// builds cannot silently fuse the scalar lanes into FMAs.
//
// Runtime dispatch.  A process-wide kernel table selected once (lazily, or
// explicitly via `select_isa` from config/CLI): `auto` resolves to the best
// ISA the CPU supports, overridable by the ACCU_SIMD environment variable
// (scalar|avx2|neon; unknown or unsupported values fall back to auto so a
// stale env var can't crash a run — config/CLI selection, by contrast,
// throws on unsupported ISAs).  The table pointer is atomic; selection is
// meant to happen before worker threads spin up (the experiment harness
// selects in run_experiment, serve workers inherit the descriptor's choice).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "core/types.hpp"

namespace accu::simd {

enum class Isa : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The kernel table of one ISA.  All entries obey the canonical reduction
/// order above; swapping tables never changes results, only speed.
struct ScoreKernels {
  Isa id;
  /// Canonical lane-reduced Σ values[s]·table[nodes[s]] for s in [s0, s1).
  double (*row_gather_mul)(const double* values, const NodeId* nodes,
                           const double* table, std::uint32_t s0,
                           std::uint32_t s1);
  /// Canonical lane-reduced Σ values[s] for s in [s0, s1).
  double (*row_sum)(const double* values, std::uint32_t s0, std::uint32_t s1);
  /// out_words bit i = (raw[i] >> 11) < thr[i], LSB-first, for i in [0, n);
  /// tail bits of the last word are zeroed.
  void (*bernoulli_pack)(const std::uint64_t* raw, const std::uint64_t* thr,
                         std::size_t n, std::uint64_t* out_words);
};

/// Whether this build + CPU can run `isa`'s kernels.
[[nodiscard]] bool isa_supported(Isa isa) noexcept;

/// The fastest supported ISA (kScalar is always supported).
[[nodiscard]] Isa best_isa() noexcept;

/// The ISA of the currently active kernel table.
[[nodiscard]] Isa active_isa() noexcept;

/// Parses "auto" / "scalar" / "avx2" / "neon"; nullopt means auto.
/// Throws InvalidArgument on anything else.  Accepts every ISA name on
/// every platform (a serve descriptor written on an ARM box must parse on
/// x86); support is checked at select time.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view spec);

/// Display name ("scalar", "avx2", "neon").
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Activates `isa`'s kernel table; throws InvalidArgument when unsupported.
void select_isa(Isa isa);

/// Activates the automatic choice: ACCU_SIMD when set to something valid
/// and supported, otherwise best_isa().
void select_auto() noexcept;

/// Convenience: nullopt → select_auto(), value → select_isa(*choice).
void select(std::optional<Isa> choice);

/// The active kernel table (resolved via select_auto on first use).
[[nodiscard]] const ScoreKernels& kernels() noexcept;

}  // namespace accu::simd
