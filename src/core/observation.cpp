#include "core/observation.hpp"

namespace accu {

AttackerView::AttackerView(const AccuInstance& instance)
    : instance_(&instance),
      request_state_(instance.num_nodes(), RequestState::kUnknown),
      edge_state_(instance.graph().num_edges(), EdgeState::kUnknown),
      mutual_(instance.num_nodes(), 0) {}

void AttackerView::reset(const AccuInstance& instance) {
  instance_ = &instance;
  request_state_.assign(instance.num_nodes(), RequestState::kUnknown);
  edge_state_.assign(instance.graph().num_edges(), EdgeState::kUnknown);
  mutual_.assign(instance.num_nodes(), 0);
  friends_.clear();
  num_requests_ = 0;
  num_cautious_friends_ = 0;
  benefit_ = 0.0;
  feedback_ = FeedbackModel{};
  deferred_ = false;
  feedback_round_ = 0;
  pending_.clear();
  next_pending_ = 0;
  true_benefit_ = 0.0;
}

void AttackerView::arm_feedback(const FeedbackModel& model) {
  ACCU_ASSERT_MSG(num_requests_ == 0,
                  "arm_feedback must follow reset, before any request");
  feedback_ = model;
  deferred_ = !model.is_full();
  feedback_round_ = 0;
  pending_.clear();
  next_pending_ = 0;
  true_benefit_ = 0.0;
  if (deferred_) true_mutual_.assign(instance_->num_nodes(), 0);
}

void AttackerView::record_rejection(NodeId v) {
  ACCU_ASSERT_MSG(request_state(v) == RequestState::kUnknown,
                  "each user receives at most one request");
  request_state_[v] = RequestState::kRejected;
  ++num_requests_;
}

AttackerView::AcceptanceEffects AttackerView::record_acceptance(
    NodeId v, const Realization& truth) {
  AcceptanceEffects effects;
  record_acceptance(v, truth, effects);
  return effects;
}

void AttackerView::record_acceptance(NodeId v, const Realization& truth,
                                     AcceptanceEffects& effects) {
  ACCU_ASSERT_MSG(request_state(v) == RequestState::kUnknown,
                  "each user receives at most one request");
  if (deferred_) {
    record_acceptance_deferred(v, truth, effects);
    return;
  }
  const Graph& g = instance_->graph();
  effects.clear();
  effects.was_fof = is_fof(v);

  request_state_[v] = RequestState::kAccepted;
  friends_.push_back(v);
  ++num_requests_;
  if (instance_->is_cautious(v)) ++num_cautious_friends_;

  const BenefitModel& benefits = instance_->benefits();
  benefit_ += benefits.friend_benefit(v);
  if (effects.was_fof) benefit_ -= benefits.fof_benefit(v);

  // Reveal every incident potential edge of v.
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    const bool present = truth.edge_present(nb.edge);
    const EdgeState observed = present ? EdgeState::kPresent
                                       : EdgeState::kAbsent;
    ACCU_ASSERT_MSG(edge_state_[nb.edge] == EdgeState::kUnknown ||
                        edge_state_[nb.edge] == observed,
                    "realization inconsistent with earlier observations");
    edge_state_[nb.edge] = observed;
    if (!present) continue;
    const NodeId w = nb.node;
    const bool entered_fof = mutual_[w] == 0 && !is_friend(w);
    ++mutual_[w];
    if (!is_friend(w)) effects.mutual_increased.push_back(w);
    if (entered_fof) {
      benefit_ += benefits.fof_benefit(w);
      effects.new_fof.push_back(w);
    }
  }
}

void AttackerView::record_acceptance_deferred(NodeId v,
                                              const Realization& truth,
                                              AcceptanceEffects& effects) {
  const Graph& g = instance_->graph();
  const BenefitModel& benefits = instance_->benefits();
  effects.clear();
  effects.was_fof = is_fof(v);  // observed FOF status only
  const bool true_was_fof = true_mutual_[v] > 0 && !is_friend(v);

  // Observed layer: the acceptance itself is platform-confirmed feedback
  // in every model, so the friend set and observed benefit update now; the
  // neighborhood stays dark until delivery (or forever, under myopic).
  request_state_[v] = RequestState::kAccepted;
  friends_.push_back(v);
  ++num_requests_;
  if (instance_->is_cautious(v)) ++num_cautious_friends_;
  benefit_ += benefits.friend_benefit(v);
  if (effects.was_fof) benefit_ -= benefits.fof_benefit(v);

  // True layer: the realized attack state advances immediately — cautious
  // users count their actual mutual friends regardless of what the
  // attacker has crawled.
  true_benefit_ += benefits.friend_benefit(v);
  if (true_was_fof) true_benefit_ -= benefits.fof_benefit(v);
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    if (!truth.edge_present(nb.edge)) continue;
    const NodeId w = nb.node;
    const bool entered_fof = true_mutual_[w] == 0 && !is_friend(w);
    ++true_mutual_[w];
    if (entered_fof) true_benefit_ += benefits.fof_benefit(w);
  }

  // Myopic never reveals the neighborhood; delayed/batched queue it.
  if (feedback_.kind != FeedbackKind::kMyopic) {
    pending_.push_back({v, feedback_.due_round(feedback_round_)});
  }
}

NodeId AttackerView::deliver_next_revelation(const Realization& truth,
                                             AcceptanceEffects& effects) {
  ACCU_ASSERT_MSG(has_due_revelation(), "no revelation is due");
  const NodeId v = pending_[next_pending_].node;
  ++next_pending_;
  if (next_pending_ == pending_.size()) {
    pending_.clear();
    next_pending_ = 0;
  }

  // The exact reveal loop full feedback runs inline at acceptance time,
  // replayed late.  is_friend/mutual_ reads see the observed state as of
  // delivery, so interim acceptances are handled the same way a younger
  // acceptance handles an older friend's already-revealed edges.
  const Graph& g = instance_->graph();
  const BenefitModel& benefits = instance_->benefits();
  effects.clear();
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    const bool present = truth.edge_present(nb.edge);
    const EdgeState observed = present ? EdgeState::kPresent
                                       : EdgeState::kAbsent;
    ACCU_ASSERT_MSG(edge_state_[nb.edge] == EdgeState::kUnknown ||
                        edge_state_[nb.edge] == observed,
                    "realization inconsistent with earlier observations");
    edge_state_[nb.edge] = observed;
    if (!present) continue;
    const NodeId w = nb.node;
    const bool entered_fof = mutual_[w] == 0 && !is_friend(w);
    ++mutual_[w];
    if (!is_friend(w)) effects.mutual_increased.push_back(w);
    if (entered_fof) {
      benefit_ += benefits.fof_benefit(w);
      effects.new_fof.push_back(w);
    }
  }
  return v;
}

double AttackerView::believed_mutual_friends(NodeId v) const {
  const Graph& g = instance_->graph();
  double expected = 0.0;
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    if (!is_friend(nb.node)) continue;
    expected += edge_belief(nb.edge);
  }
  return expected;
}

std::size_t AttackerView::num_observed_edges() const noexcept {
  std::size_t observed = 0;
  for (const EdgeState state : edge_state_) {
    observed += (state != EdgeState::kUnknown);
  }
  return observed;
}

Graph observed_graph(const AttackerView& view) {
  const Graph& g = view.instance().graph();
  graph::GraphBuilder builder(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (view.edge_state(e) != EdgeState::kPresent) continue;
    const graph::EdgeEndpoints ep = g.endpoints(e);
    builder.add_edge(ep.lo, ep.hi, 1.0);
  }
  return builder.build();
}

double AttackerView::recompute_benefit() const {
  const BenefitModel& benefits = instance_->benefits();
  double total = 0.0;
  for (NodeId v = 0; v < instance_->num_nodes(); ++v) {
    if (is_friend(v)) {
      total += benefits.friend_benefit(v);
    } else if (is_fof(v)) {
      total += benefits.fof_benefit(v);
    }
  }
  return total;
}

}  // namespace accu
