#include "core/observation.hpp"

namespace accu {

AttackerView::AttackerView(const AccuInstance& instance)
    : instance_(&instance),
      request_state_(instance.num_nodes(), RequestState::kUnknown),
      edge_state_(instance.graph().num_edges(), EdgeState::kUnknown),
      mutual_(instance.num_nodes(), 0) {}

void AttackerView::reset(const AccuInstance& instance) {
  instance_ = &instance;
  request_state_.assign(instance.num_nodes(), RequestState::kUnknown);
  edge_state_.assign(instance.graph().num_edges(), EdgeState::kUnknown);
  mutual_.assign(instance.num_nodes(), 0);
  friends_.clear();
  num_requests_ = 0;
  num_cautious_friends_ = 0;
  benefit_ = 0.0;
}

void AttackerView::record_rejection(NodeId v) {
  ACCU_ASSERT_MSG(request_state(v) == RequestState::kUnknown,
                  "each user receives at most one request");
  request_state_[v] = RequestState::kRejected;
  ++num_requests_;
}

AttackerView::AcceptanceEffects AttackerView::record_acceptance(
    NodeId v, const Realization& truth) {
  AcceptanceEffects effects;
  record_acceptance(v, truth, effects);
  return effects;
}

void AttackerView::record_acceptance(NodeId v, const Realization& truth,
                                     AcceptanceEffects& effects) {
  ACCU_ASSERT_MSG(request_state(v) == RequestState::kUnknown,
                  "each user receives at most one request");
  const Graph& g = instance_->graph();
  effects.clear();
  effects.was_fof = is_fof(v);

  request_state_[v] = RequestState::kAccepted;
  friends_.push_back(v);
  ++num_requests_;
  if (instance_->is_cautious(v)) ++num_cautious_friends_;

  const BenefitModel& benefits = instance_->benefits();
  benefit_ += benefits.friend_benefit(v);
  if (effects.was_fof) benefit_ -= benefits.fof_benefit(v);

  // Reveal every incident potential edge of v.
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    const bool present = truth.edge_present(nb.edge);
    const EdgeState observed = present ? EdgeState::kPresent
                                       : EdgeState::kAbsent;
    ACCU_ASSERT_MSG(edge_state_[nb.edge] == EdgeState::kUnknown ||
                        edge_state_[nb.edge] == observed,
                    "realization inconsistent with earlier observations");
    edge_state_[nb.edge] = observed;
    if (!present) continue;
    const NodeId w = nb.node;
    const bool entered_fof = mutual_[w] == 0 && !is_friend(w);
    ++mutual_[w];
    if (!is_friend(w)) effects.mutual_increased.push_back(w);
    if (entered_fof) {
      benefit_ += benefits.fof_benefit(w);
      effects.new_fof.push_back(w);
    }
  }
}

std::size_t AttackerView::num_observed_edges() const noexcept {
  std::size_t observed = 0;
  for (const EdgeState state : edge_state_) {
    observed += (state != EdgeState::kUnknown);
  }
  return observed;
}

Graph observed_graph(const AttackerView& view) {
  const Graph& g = view.instance().graph();
  graph::GraphBuilder builder(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (view.edge_state(e) != EdgeState::kPresent) continue;
    const graph::EdgeEndpoints ep = g.endpoints(e);
    builder.add_edge(ep.lo, ep.hi, 1.0);
  }
  return builder.build();
}

double AttackerView::recompute_benefit() const {
  const BenefitModel& benefits = instance_->benefits();
  double total = 0.0;
  for (NodeId v = 0; v < instance_->num_nodes(); ++v) {
    if (is_friend(v)) {
      total += benefits.friend_benefit(v);
    } else if (is_fof(v)) {
      total += benefits.fof_benefit(v);
    }
  }
  return total;
}

}  // namespace accu
