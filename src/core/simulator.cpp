#include "core/simulator.hpp"

namespace accu {

SimulationResult simulate_with_view(const AccuInstance& instance,
                                    const Realization& truth,
                                    Strategy& strategy, std::uint32_t budget,
                                    util::Rng& rng, AttackerView& view) {
  ACCU_ASSERT(truth.num_edges() == instance.graph().num_edges());
  ACCU_ASSERT(truth.num_nodes() == instance.num_nodes());
  SimulationResult result;
  result.trace.reserve(budget);
  strategy.reset(instance, rng);

  while (view.num_requests() < budget) {
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) break;  // strategy stops early
    ACCU_ASSERT_MSG(target < instance.num_nodes(),
                    "strategy selected an out-of-range node");
    ACCU_ASSERT_MSG(!view.is_requested(target),
                    "strategy re-selected an already-requested node");

    RequestRecord record;
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    record.benefit_before = view.current_benefit();

    bool accepted;
    if (instance.is_cautious(target)) {
      // Deterministic threshold model: accept iff θ reached.  Generalized
      // model (§III-B): consult the pre-drawn coin of the active regime
      // (q1 below threshold, q2 at/above) — identical to the deterministic
      // model when q1 = 0, q2 = 1.
      const bool reached = view.cautious_would_accept(target);
      accepted = reached ? truth.cautious_above_accepts(target)
                         : truth.cautious_below_accepts(target);
    } else {
      accepted = truth.reckless_accepts(target);
    }
    record.accepted = accepted;

    if (accepted) {
      const AttackerView::AcceptanceEffects effects =
          view.record_acceptance(target, truth);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, true, view, &effects);
    } else {
      view.record_rejection(target);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, false, view, nullptr);
    }
    result.trace.push_back(record);
  }

  result.total_benefit = view.current_benefit();
  result.num_accepted = static_cast<std::uint32_t>(view.friends().size());
  result.num_cautious_friends = view.num_cautious_friends();
  result.friends = view.friends();
  return result;
}

SimulationResult simulate(const AccuInstance& instance,
                          const Realization& truth, Strategy& strategy,
                          std::uint32_t budget, util::Rng& rng) {
  AttackerView view(instance);
  return simulate_with_view(instance, truth, strategy, budget, rng, view);
}

}  // namespace accu
