// Thin compatibility wrappers over the round engine (core/engine.hpp):
// the select/resolve/reveal/observe loop itself lives there, once, shared
// with the multi-bot and temporal simulators.  These entry points keep the
// original signatures and allocate a transient workspace per call; hot
// callers (the experiment harness, benches) use the `*_into` variants with
// a persistent SimWorkspace instead.

#include "core/simulator.hpp"

#include "core/engine.hpp"

namespace accu {

SimulationResult simulate_with_view(const AccuInstance& instance,
                                    const Realization& truth,
                                    Strategy& strategy, std::uint32_t budget,
                                    util::Rng& rng, AttackerView& view,
                                    const util::CancelToken* cancel,
                                    const FeedbackModel& feedback) {
  SimWorkspace ws;
  SimulationResult result;
  simulate_into(instance, truth, strategy, budget, rng, view, ws, result,
                cancel, feedback);
  return result;
}

SimulationResult simulate(const AccuInstance& instance,
                          const Realization& truth, Strategy& strategy,
                          std::uint32_t budget, util::Rng& rng,
                          const util::CancelToken* cancel,
                          const FeedbackModel& feedback) {
  AttackerView view(instance);
  return simulate_with_view(instance, truth, strategy, budget, rng, view,
                            cancel, feedback);
}

SimulationResult simulate_with_faults(const AccuInstance& instance,
                                      const Realization& truth,
                                      Strategy& strategy, std::uint32_t budget,
                                      util::Rng& rng, FaultModel& faults,
                                      AttackerView& view,
                                      const util::CancelToken* cancel,
                                      const FeedbackModel& feedback) {
  SimWorkspace ws;
  SimulationResult result;
  simulate_with_faults_into(instance, truth, strategy, budget, rng, faults,
                            view, ws, result, cancel, feedback);
  return result;
}

SimulationResult simulate_with_faults(const AccuInstance& instance,
                                      const Realization& truth,
                                      Strategy& strategy, std::uint32_t budget,
                                      util::Rng& rng, FaultModel& faults,
                                      const util::CancelToken* cancel,
                                      const FeedbackModel& feedback) {
  AttackerView view(instance);
  return simulate_with_faults(instance, truth, strategy, budget, rng, faults,
                              view, cancel, feedback);
}

}  // namespace accu
