#include "core/simulator.hpp"

namespace accu {

namespace {

/// Resolves whether `target` accepts the request under the hidden ground
/// truth (shared by the pristine and faulted simulation loops).
bool resolve_acceptance(const AccuInstance& instance, const Realization& truth,
                        const AttackerView& view, NodeId target) {
  if (instance.is_cautious(target)) {
    // Deterministic threshold model: accept iff θ reached.  Generalized
    // model (§III-B): consult the pre-drawn coin of the active regime
    // (q1 below threshold, q2 at/above) — identical to the deterministic
    // model when q1 = 0, q2 = 1.
    const bool reached = view.cautious_would_accept(target);
    return reached ? truth.cautious_above_accepts(target)
                   : truth.cautious_below_accepts(target);
  }
  return truth.reckless_accepts(target);
}

}  // namespace

SimulationResult simulate_with_view(const AccuInstance& instance,
                                    const Realization& truth,
                                    Strategy& strategy, std::uint32_t budget,
                                    util::Rng& rng, AttackerView& view,
                                    const util::CancelToken* cancel) {
  ACCU_ASSERT(truth.num_edges() == instance.graph().num_edges());
  ACCU_ASSERT(truth.num_nodes() == instance.num_nodes());
  SimulationResult result;
  result.trace.reserve(budget);
  strategy.reset(instance, rng);

  while (view.num_requests() < budget) {
    if (cancel != nullptr) cancel->check();
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) break;  // strategy stops early
    ACCU_ASSERT_MSG(target < instance.num_nodes(),
                    "strategy selected an out-of-range node");
    ACCU_ASSERT_MSG(!view.is_requested(target),
                    "strategy re-selected an already-requested node");

    RequestRecord record;
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    record.benefit_before = view.current_benefit();

    const bool accepted = resolve_acceptance(instance, truth, view, target);
    record.accepted = accepted;

    if (accepted) {
      const AttackerView::AcceptanceEffects effects =
          view.record_acceptance(target, truth);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, true, view, &effects);
    } else {
      view.record_rejection(target);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, false, view, nullptr);
    }
    result.trace.push_back(record);
  }

  result.total_benefit = view.current_benefit();
  result.num_accepted = static_cast<std::uint32_t>(view.friends().size());
  result.num_cautious_friends = view.num_cautious_friends();
  result.friends = view.friends();
  return result;
}

SimulationResult simulate(const AccuInstance& instance,
                          const Realization& truth, Strategy& strategy,
                          std::uint32_t budget, util::Rng& rng,
                          const util::CancelToken* cancel) {
  AttackerView view(instance);
  return simulate_with_view(instance, truth, strategy, budget, rng, view,
                            cancel);
}

SimulationResult simulate_with_faults(const AccuInstance& instance,
                                      const Realization& truth,
                                      Strategy& strategy, std::uint32_t budget,
                                      util::Rng& rng, FaultModel& faults,
                                      AttackerView& view,
                                      const util::CancelToken* cancel) {
  ACCU_ASSERT(truth.num_edges() == instance.graph().num_edges());
  ACCU_ASSERT(truth.num_nodes() == instance.num_nodes());
  SimulationResult result;
  result.trace.reserve(budget);
  strategy.reset(instance, rng);
  FaultObserver* fault_observer = dynamic_cast<FaultObserver*>(&strategy);
  // Prior faulted attempts per target, for the trace's retry accounting.
  std::vector<std::uint32_t> attempts(instance.num_nodes(), 0);

  std::uint32_t rounds = 0;  // every round consumes budget
  while (rounds < budget) {
    if (cancel != nullptr) cancel->check();
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) break;  // strategy stops early
    ACCU_ASSERT_MSG(target < instance.num_nodes(),
                    "strategy selected an out-of-range node");
    ACCU_ASSERT_MSG(!view.is_requested(target),
                    "strategy re-selected an already-requested node");

    RequestRecord record;
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    record.benefit_before = view.current_benefit();
    record.attempt = attempts[target];
    if (record.attempt > 0) ++result.num_retries;
    ++rounds;

    const FaultKind fault = faults.next();
    if (fault == FaultKind::kNone) {
      const bool accepted = resolve_acceptance(instance, truth, view, target);
      record.accepted = accepted;
      if (accepted) {
        const AttackerView::AcceptanceEffects effects =
            view.record_acceptance(target, truth);
        record.benefit_after = view.current_benefit();
        strategy.observe(target, true, view, &effects);
      } else {
        view.record_rejection(target);
        record.benefit_after = view.current_benefit();
        strategy.observe(target, false, view, nullptr);
      }
      result.trace.push_back(record);
      continue;
    }

    // Faulted: the platform never processed the request.  The attacker
    // learns nothing about the target; only the fault-aware feedback and
    // the spent round remain.
    ++result.num_faulted;
    ++attempts[target];
    record.fault = fault;
    record.benefit_after = record.benefit_before;

    FaultFeedback feedback = FaultFeedback::kNoResponse;
    if (fault == FaultKind::kTransient) {
      feedback = FaultFeedback::kTransientError;
    } else if (fault == FaultKind::kRateLimit) {
      feedback = FaultFeedback::kRateLimited;
    }
    const FaultResponse response =
        fault_observer != nullptr
            ? fault_observer->observe_fault(target, feedback, view)
            : FaultResponse::kAbandon;
    if (response == FaultResponse::kAbandon) {
      // Write-off: for the attacker's knowledge this is exactly a
      // rejection (no reveal, target never pursued again).
      view.record_rejection(target);
      strategy.observe(target, false, view, nullptr);
      ++result.num_abandoned;
    }
    result.trace.push_back(record);

    if (fault == FaultKind::kRateLimit) {
      // Suspension: the next `w` rounds are lost, budget keeps ticking.
      // Stall rounds stay in the trace (explicit zero marginals) so
      // per-round curve indices remain aligned across runs.
      const std::uint32_t w = faults.config().suspension_rounds;
      for (std::uint32_t i = 0; i < w && rounds < budget; ++i) {
        RequestRecord stall;
        stall.fault = FaultKind::kSuspensionStall;
        stall.benefit_before = view.current_benefit();
        stall.benefit_after = stall.benefit_before;
        result.trace.push_back(stall);
        ++rounds;
        ++result.rounds_suspended;
      }
    }
  }

  result.total_benefit = view.current_benefit();
  result.num_accepted = static_cast<std::uint32_t>(view.friends().size());
  result.num_cautious_friends = view.num_cautious_friends();
  result.friends = view.friends();
  return result;
}

SimulationResult simulate_with_faults(const AccuInstance& instance,
                                      const Realization& truth,
                                      Strategy& strategy, std::uint32_t budget,
                                      util::Rng& rng, FaultModel& faults,
                                      const util::CancelToken* cancel) {
  AttackerView view(instance);
  return simulate_with_faults(instance, truth, strategy, budget, rng, faults,
                              view, cancel);
}

}  // namespace accu
