// Experiment harness implementing the paper's evaluation protocol (§IV-A):
// generate S sample networks per dataset, run every policy R times on each,
// and average — with the refinement that all policies within one
// (sample, run) pair face the *same* ground-truth realization, a paired
// design that tightens the comparisons the paper plots.
//
// Aggregation covers every figure of the paper:
//   * cumulative benefit per request index                      (Fig. 2)
//   * per-request marginal gain, split by target class          (Fig. 3)
//   * totals: benefit, #cautious friends, #accepted             (Fig. 4, 6, 7)
//   * fraction of runs whose i-th request targeted a cautious
//     user                                                      (Fig. 5)
//   * robustness totals under fault injection: faulted requests,
//     retries, rounds lost to suspension, abandoned targets
//
// The harness is crash-safe: worker exceptions are captured per cell and
// reported in ExperimentResult::failures (surviving cells still
// aggregate), and an optional checkpoint file lets a killed sweep resume
// at (sample, run) granularity with bit-identical aggregates.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/simulator.hpp"
#include "util/backoff.hpp"
#include "util/stats.hpp"

namespace accu {

/// Accumulates per-request curves and totals across repeated simulations.
class TraceAggregator {
 public:
  /// Folds one simulation into the aggregate.  Short traces (policy ran out
  /// of candidates) hold their final benefit for the remaining indices so
  /// cumulative curves stay comparable; `budget` fixes that horizon.
  void add(const SimulationResult& result, std::uint32_t budget);

  /// Merges another aggregator (shards of a parallel sweep).  Statistically
  /// exact: means/variances/CIs equal the sequential accumulation.
  void merge(const TraceAggregator& other);

  /// Cumulative Eq.-(1) benefit after request i (0-based).
  [[nodiscard]] const util::SeriesAccumulator& cumulative_benefit() const {
    return cumulative_benefit_;
  }
  /// Marginal gain of request i.
  [[nodiscard]] const util::SeriesAccumulator& marginal() const {
    return marginal_;
  }
  /// Marginal gain of request i when it targeted a cautious user, else 0 —
  /// the paper's Fig. 3 "benefit from cautious users" decomposition.
  [[nodiscard]] const util::SeriesAccumulator& marginal_cautious() const {
    return marginal_cautious_;
  }
  [[nodiscard]] const util::SeriesAccumulator& marginal_reckless() const {
    return marginal_reckless_;
  }
  /// Indicator that request i targeted a cautious user; its mean over runs
  /// is the paper's Fig. 5 fraction.
  [[nodiscard]] const util::SeriesAccumulator& cautious_fraction() const {
    return cautious_fraction_;
  }

  [[nodiscard]] const util::RunningStat& total_benefit() const {
    return total_benefit_;
  }
  [[nodiscard]] const util::RunningStat& cautious_friends() const {
    return cautious_friends_;
  }
  [[nodiscard]] const util::RunningStat& accepted_requests() const {
    return accepted_;
  }

  // --- robustness stats (all zero on a reliable platform) ----------------
  [[nodiscard]] const util::RunningStat& faulted_requests() const {
    return faulted_;
  }
  [[nodiscard]] const util::RunningStat& retries() const { return retries_; }
  [[nodiscard]] const util::RunningStat& suspended_rounds() const {
    return suspended_;
  }
  [[nodiscard]] const util::RunningStat& abandoned_targets() const {
    return abandoned_;
  }

 private:
  util::SeriesAccumulator cumulative_benefit_;
  util::SeriesAccumulator marginal_;
  util::SeriesAccumulator marginal_cautious_;
  util::SeriesAccumulator marginal_reckless_;
  util::SeriesAccumulator cautious_fraction_;
  util::RunningStat total_benefit_;
  util::RunningStat cautious_friends_;
  util::RunningStat accepted_;
  util::RunningStat faulted_;
  util::RunningStat retries_;
  util::RunningStat suspended_;
  util::RunningStat abandoned_;
};

/// Builds a fresh policy instance per simulation (policies are stateful).
struct StrategyFactory {
  std::string name;
  std::function<std::unique_ptr<Strategy>()> make;
};

/// Builds the instance for sample network number `sample` from a derived
/// seed; the factory owns all dataset-level randomness.
using InstanceFactory =
    std::function<AccuInstance(std::uint32_t sample, std::uint64_t seed)>;

struct ExperimentConfig {
  std::uint32_t budget = 100;  ///< k — friend requests per attack
  std::uint32_t samples = 3;   ///< sample networks per dataset (paper: 100)
  std::uint32_t runs = 5;      ///< repetitions per network (paper: 30)
  std::uint64_t seed = 1;      ///< master seed; everything derives from it
  /// Worker threads for the (sample, run) grid.  1 = sequential;
  /// 0 = one per hardware thread.  Every cell's randomness is derived
  /// statelessly from (seed, sample, run, strategy) and shards merge in a
  /// fixed order, so simulation outcomes are identical for any thread
  /// count (aggregate moments agree up to floating-point re-association).
  std::uint32_t threads = 1;
  /// Platform fault injection (core/faults.hpp).  All-zero (the default)
  /// runs the paper's reliable platform through the unchanged `simulate`
  /// path.  Fault streams derive statelessly per (sample, run, strategy),
  /// so faulted sweeps stay thread-count invariant.
  FaultConfig faults{};
  /// When not kNone, every strategy instance is wrapped in a
  /// RetryingStrategy with this policy (jitter seeded per cell).
  util::RetryPolicy retry{};
  /// When non-empty, completed (sample, run) cells are appended to this
  /// file as they finish, and an existing file is loaded first so a killed
  /// sweep resumes where it stopped — with aggregates bit-identical to an
  /// uninterrupted run.  The file must belong to the same experiment
  /// (config fingerprint is checked; mismatch throws IoError).
  std::string checkpoint_path{};
};

/// One (sample, run) cell whose worker threw instead of completing.  The
/// sweep survives: failed cells contribute nothing to the aggregates and
/// are reported here.  `run == kAllRuns` marks a sample whose instance
/// factory failed (all its cells are skipped).
struct CellFailure {
  static constexpr std::uint32_t kAllRuns = 0xffffffffu;
  std::uint32_t sample = 0;
  std::uint32_t run = 0;
  std::string error;
};

struct ExperimentResult {
  std::vector<std::string> strategy_names;
  std::vector<TraceAggregator> aggregates;  // parallel to strategy_names
  std::vector<CellFailure> failures;        // empty on a clean sweep

  [[nodiscard]] const TraceAggregator& by_name(const std::string& name) const;
};

/// Runs the full samples × runs × strategies sweep.
[[nodiscard]] ExperimentResult run_experiment(
    const InstanceFactory& make_instance,
    const std::vector<StrategyFactory>& strategies,
    const ExperimentConfig& config);

}  // namespace accu
