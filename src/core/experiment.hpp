// Experiment harness implementing the paper's evaluation protocol (§IV-A):
// generate S sample networks per dataset, run every policy R times on each,
// and average — with the refinement that all policies within one
// (sample, run) pair face the *same* ground-truth realization, a paired
// design that tightens the comparisons the paper plots.
//
// Aggregation covers every figure of the paper:
//   * cumulative benefit per request index                      (Fig. 2)
//   * per-request marginal gain, split by target class          (Fig. 3)
//   * totals: benefit, #cautious friends, #accepted             (Fig. 4, 6, 7)
//   * fraction of runs whose i-th request targeted a cautious
//     user                                                      (Fig. 5)
//   * robustness totals under fault injection: faulted requests,
//     retries, rounds lost to suspension, abandoned targets
//
// The harness is crash-safe and supervised: worker exceptions are captured
// per cell and reported in ExperimentResult::failures (surviving cells
// still aggregate), a watchdog thread cancels cells that exceed their
// wall-clock deadline (optionally re-running them with a fresh derived
// seed stream), an external interrupt flag (SIGINT/SIGTERM from the CLI)
// stops the sweep at cell granularity with the checkpoint flushed, and the
// crash-consistent checkpoint file (v2: per-cell CRC32 trailers, atomic
// header, per-cell fsync) lets a killed sweep resume at (sample, run)
// granularity with bit-identical aggregates — even after a crash mid-append
// tore the final block.

#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/faults.hpp"
#include "core/score_simd.hpp"
#include "core/simulator.hpp"
#include "util/atomic_file.hpp"
#include "util/backoff.hpp"
#include "util/stats.hpp"

namespace accu {

/// Accumulates per-request curves and totals across repeated simulations.
class TraceAggregator {
 public:
  /// Folds one simulation into the aggregate.  Short traces (policy ran out
  /// of candidates) hold their final benefit for the remaining indices so
  /// cumulative curves stay comparable; `budget` fixes that horizon.
  void add(const SimulationResult& result, std::uint32_t budget);

  /// Merges another aggregator (shards of a parallel sweep).  Statistically
  /// exact: means/variances/CIs equal the sequential accumulation.
  void merge(const TraceAggregator& other);

  /// Cumulative Eq.-(1) benefit after request i (0-based).
  [[nodiscard]] const util::SeriesAccumulator& cumulative_benefit() const {
    return cumulative_benefit_;
  }
  /// Marginal gain of request i.
  [[nodiscard]] const util::SeriesAccumulator& marginal() const {
    return marginal_;
  }
  /// Marginal gain of request i when it targeted a cautious user, else 0 —
  /// the paper's Fig. 3 "benefit from cautious users" decomposition.
  [[nodiscard]] const util::SeriesAccumulator& marginal_cautious() const {
    return marginal_cautious_;
  }
  [[nodiscard]] const util::SeriesAccumulator& marginal_reckless() const {
    return marginal_reckless_;
  }
  /// Indicator that request i targeted a cautious user; its mean over runs
  /// is the paper's Fig. 5 fraction.
  [[nodiscard]] const util::SeriesAccumulator& cautious_fraction() const {
    return cautious_fraction_;
  }

  [[nodiscard]] const util::RunningStat& total_benefit() const {
    return total_benefit_;
  }
  [[nodiscard]] const util::RunningStat& cautious_friends() const {
    return cautious_friends_;
  }
  [[nodiscard]] const util::RunningStat& accepted_requests() const {
    return accepted_;
  }

  // --- robustness stats (all zero on a reliable platform) ----------------
  [[nodiscard]] const util::RunningStat& faulted_requests() const {
    return faulted_;
  }
  [[nodiscard]] const util::RunningStat& retries() const { return retries_; }
  [[nodiscard]] const util::RunningStat& suspended_rounds() const {
    return suspended_;
  }
  [[nodiscard]] const util::RunningStat& abandoned_targets() const {
    return abandoned_;
  }

 private:
  util::SeriesAccumulator cumulative_benefit_;
  util::SeriesAccumulator marginal_;
  util::SeriesAccumulator marginal_cautious_;
  util::SeriesAccumulator marginal_reckless_;
  util::SeriesAccumulator cautious_fraction_;
  util::RunningStat total_benefit_;
  util::RunningStat cautious_friends_;
  util::RunningStat accepted_;
  util::RunningStat faulted_;
  util::RunningStat retries_;
  util::RunningStat suspended_;
  util::RunningStat abandoned_;
};

/// Builds a fresh policy instance per simulation (policies are stateful).
struct StrategyFactory {
  std::string name;
  std::function<std::unique_ptr<Strategy>()> make;
};

/// Builds the instance for sample network number `sample` from a derived
/// seed; the factory owns all dataset-level randomness.
using InstanceFactory =
    std::function<AccuInstance(std::uint32_t sample, std::uint64_t seed)>;

/// Snapshot handed to ExperimentConfig::progress after each completed
/// (sample, run) cell — the hook live dashboards and the serve daemon's
/// per-job status files are built on.
struct ExperimentProgress {
  /// Owned cells finished so far (checkpoint-restored ones included).
  std::size_t cells_done = 0;
  /// Owned cells in this invocation (this shard's share of the grid).
  std::size_t cells_total = 0;
  /// Wall-clock of the just-finished cell in ms; 0 for restored cells.
  double cell_ms = 0.0;
  /// True for the one batched notification covering checkpoint-restored
  /// cells (no simulation ran; cell_ms is meaningless for them).
  bool restored = false;
};

struct ExperimentConfig {
  std::uint32_t budget = 100;  ///< k — friend requests per attack
  std::uint32_t samples = 3;   ///< sample networks per dataset (paper: 100)
  std::uint32_t runs = 5;      ///< repetitions per network (paper: 30)
  std::uint64_t seed = 1;      ///< master seed; everything derives from it
  /// Worker threads for the (sample, run) grid.  1 = sequential;
  /// 0 = one per hardware thread.  Every cell's randomness is derived
  /// statelessly from (seed, sample, run, strategy) and shards merge in a
  /// fixed order, so simulation outcomes are identical for any thread
  /// count (aggregate moments agree up to floating-point re-association).
  std::uint32_t threads = 1;
  /// Intra-cell concurrency (core/task_pool.hpp): each worker's strategies
  /// may fan independent work — lookahead beam candidates, batched-rescore
  /// chunks — across a per-worker pool of this total width (1 = sequential,
  /// 0 = one per hardware thread).  Traces are identical for any width
  /// (the pool's determinism contract), so like `threads` this is not part
  /// of the checkpoint fingerprint.  Total thread count is roughly
  /// threads × cell_threads; prefer raising `threads` first — cell_threads
  /// pays off when a single cell dominates wall-clock (deep lookahead).
  std::uint32_t cell_threads = 1;
  /// SIMD kernel table for the score/sampling hot loops
  /// (core/score_simd.hpp), selected once at sweep start: nullopt = auto
  /// (the best ISA this CPU supports, overridable by ACCU_SIMD); an
  /// explicit ISA throws InvalidArgument when the host cannot run it.
  /// Every table is bit-identical (canonical reduction order), so this is
  /// not part of the checkpoint fingerprint either.
  std::optional<simd::Isa> simd{};
  /// Platform fault injection (core/faults.hpp).  All-zero (the default)
  /// runs the paper's reliable platform through the unchanged `simulate`
  /// path.  Fault streams derive statelessly per (sample, run, strategy),
  /// so faulted sweeps stay thread-count invariant.
  FaultConfig faults{};
  /// When not kNone, every strategy instance is wrapped in a
  /// RetryingStrategy with this policy (jitter seeded per cell).
  util::RetryPolicy retry{};
  /// Feedback model for every simulation of the sweep
  /// (core/feedback.hpp; DESIGN.md §15).  The default full model is the
  /// paper's semantics and leaves every code path — including the
  /// checkpoint bytes and report — untouched.  Non-full models are part of
  /// the checkpoint fingerprint: a resume under a different model is
  /// rejected.
  FeedbackModel feedback{};
  /// When non-empty, completed (sample, run) cells are appended to this
  /// file as they finish, and an existing file is loaded first so a killed
  /// sweep resumes where it stopped — with aggregates bit-identical to an
  /// uninterrupted run.  The file must belong to the same experiment
  /// (config fingerprint is checked; mismatch throws IoError).  Files are
  /// written in the v2 format (per-cell CRC32 trailers, fsync per cell); a
  /// torn or CRC-failing tail is truncated with a warning on load, and v1
  /// files are still readable (upgraded to v2 in place on resume).
  std::string checkpoint_path{};
  /// Checkpoint fsync cadence (util/atomic_file.hpp).  strict (default)
  /// syncs every cell; grouped amortizes the fsync over group_cells /
  /// group_ms with a forced flush on interrupt/deadline drain and at sweep
  /// end.  A crash under grouped loses at most the last uncommitted group,
  /// which simply re-runs on resume (CRC trailers + first-wins dedup keep
  /// the final report bit-identical).  Not part of the checkpoint
  /// fingerprint — like `threads`, a resume may switch modes freely.
  util::DurabilityPolicy durability{};
  /// Wall-clock budget per (sample, run) cell in milliseconds; 0 = none.
  /// A cell that exceeds it is cancelled cooperatively (between simulation
  /// rounds) by the watchdog and recorded in ExperimentResult::failures
  /// with its elapsed time; no partial trace reaches the aggregates.
  std::uint32_t cell_deadline_ms = 0;
  /// How many times a deadline-cancelled cell is re-run before it is given
  /// up as failed.  Each retry derives a fresh policy/fault/retry seed
  /// stream from (seed, sample, run, strategy, attempt) — deterministic
  /// and thread-count invariant, like the fault seeds.  The ground-truth
  /// realization is left untouched so the paired design survives retries.
  std::uint32_t max_cell_retries = 0;
  /// Optional external stop flag, designed to be set from a signal handler
  /// (`volatile std::sig_atomic_t` is the only type a handler may write).
  /// The watchdog polls it; once non-zero, in-flight cells are cancelled,
  /// no new cells start, the checkpoint is already flushed per cell, and
  /// run_experiment returns with ExperimentResult::interrupted set.
  const volatile std::sig_atomic_t* interrupt_flag = nullptr;
  /// Sharded execution: this invocation runs only the (sample, run) cells
  /// whose flat task index `sample * runs + run` satisfies
  /// `task % shard_count == shard_index`.  The stride interleaves runs, so
  /// every shard touches every sample (whenever shard_count <= runs) and
  /// load balances across heterogeneous samples.  Task indices, seeds, and
  /// per-cell outcomes are global — independent machines can each take one
  /// shard (with their own checkpoint files) and merge_shard_checkpoints
  /// recombines them into aggregates bit-identical to an unsharded
  /// sequential sweep.  The default 0/1 is the unsharded grid.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Optional progress observer: invoked once for the block of cells
  /// restored from the checkpoint (if any) and then after every cell that
  /// completes, under an internal mutex — invocations are serialized and
  /// cells_done is monotonic for any worker-thread count.  Keep it cheap;
  /// the sweep blocks while it runs.  Failed/cancelled cells never count.
  std::function<void(const ExperimentProgress&)> progress;
};

/// Parses a `--shard=i/n` spec ("0/4") into {shard_index, shard_count}.
/// Throws InvalidArgument unless 0 <= i < n.
[[nodiscard]] std::pair<std::uint32_t, std::uint32_t> parse_shard_spec(
    const std::string& spec);

/// One (sample, run) cell that did not complete.  The sweep survives:
/// failed cells contribute nothing to the aggregates and are reported
/// here.  `run == kAllRuns` marks a sample whose instance factory failed
/// (all its cells are skipped).
struct CellFailure {
  enum class Kind : std::uint8_t {
    kError = 0,     ///< the worker threw (bug, bad data, ...)
    kDeadline = 1,  ///< exceeded cell_deadline_ms on every allowed attempt
    kCancelled = 2, ///< stopped by the external interrupt flag
  };
  static constexpr std::uint32_t kAllRuns = 0xffffffffu;
  std::uint32_t sample = 0;
  std::uint32_t run = 0;
  Kind kind = Kind::kError;
  /// How many times the cell was attempted (1 = no retries granted).
  std::uint32_t attempts = 1;
  /// Wall-clock spent on the final attempt, for deadline forensics.
  double elapsed_ms = 0.0;
  std::string error;
};

[[nodiscard]] const char* cell_failure_kind_name(
    CellFailure::Kind kind) noexcept;

struct ExperimentResult {
  std::vector<std::string> strategy_names;
  std::vector<TraceAggregator> aggregates;  // parallel to strategy_names
  std::vector<CellFailure> failures;        // empty on a clean sweep
  /// Cells that blew their deadline at least once but were re-run; a cell
  /// counts once no matter how many retries it consumed.  Cells whose last
  /// attempt also failed additionally appear in `failures`.
  std::uint32_t cells_retried = 0;
  /// True when the sweep was stopped by ExperimentConfig::interrupt_flag;
  /// the aggregates cover only the cells that finished (plus checkpointed
  /// ones), and a checkpointed sweep can be resumed to completion.
  bool interrupted = false;

  [[nodiscard]] const TraceAggregator& by_name(const std::string& name) const;
};

/// Runs the full samples × runs × strategies sweep.
[[nodiscard]] ExperimentResult run_experiment(
    const InstanceFactory& make_instance,
    const std::vector<StrategyFactory>& strategies,
    const ExperimentConfig& config);

/// What merging N shard checkpoint files produced (tools/accu_merge and
/// the `accu merge` subcommand; callable directly for tests).
struct ShardMergeOutcome {
  /// Aggregates replayed through TraceAggregator::add in fixed task order
  /// — bit-identical to an unsharded sequential sweep when every cell of
  /// the grid is present.
  ExperimentResult result;
  /// The sweep shape reconstructed from the (matching) headers, with
  /// shard identity reset to the unsharded 0/1.  write_markdown_report
  /// accepts it directly.
  ExperimentConfig config;
  std::size_t cells_merged = 0;     ///< distinct (sample, run) cells found
  std::size_t cells_missing = 0;    ///< grid cells absent from every input
  std::size_t duplicate_cells = 0;  ///< cells present in > 1 input (deduped)
  std::vector<std::size_t> shard_cells;  ///< valid cells per input file
};

/// Combines shard checkpoint files into one result.  Every file must carry
/// the same experiment fingerprint (seed, grid shape, budget, strategy
/// roster, fault/retry config) — shard identities may differ, and files
/// may overlap (duplicated cells are deterministic, so the first copy
/// wins).  Torn or CRC-failing tails are dropped per shard exactly as on
/// resume; the affected cells count as missing, not as errors.  When
/// `merged_output_path` is non-empty, the surviving cells are also written
/// there as one unsharded v2 checkpoint (atomic replace) that
/// run_experiment can resume from.  Throws IoError on unreadable or
/// fingerprint-mismatched inputs, InvalidArgument when `paths` is empty.
[[nodiscard]] ShardMergeOutcome merge_shard_checkpoints(
    const std::vector<std::string>& paths,
    const std::string& merged_output_path = {});

}  // namespace accu
