// Shared vocabulary types of the ACCU core.

#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace accu {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using graph::kInvalidEdge;
using graph::kInvalidNode;

/// The paper partitions users into reckless V_R (probabilistic acceptance
/// with probability q_u) and cautious V_C (deterministic linear-threshold
/// acceptance: accept iff |N(v) ∩ N(s)| >= θ_v).  §II-A.
enum class UserClass : std::uint8_t { kReckless = 0, kCautious = 1 };

/// Friend-request status of a user from the attacker's perspective.
/// `kUnknown` = no request sent yet (the paper's '?').
enum class RequestState : std::uint8_t {
  kUnknown = 0,
  kAccepted = 1,
  kRejected = 2,
};

/// Observation status of a potential edge.  `kUnknown` keeps the prior
/// p_uv; once either endpoint accepts a request its incident edges are
/// revealed as present or absent.
enum class EdgeState : std::uint8_t {
  kUnknown = 0,
  kPresent = 1,
  kAbsent = 2,
};

/// ABM potential-function weights (the paper's w_D, w_I).  §III-A.
/// `direct = 1, indirect = 0` recovers the classic adaptive greedy that
/// Theorem 1 analyzes; the paper's experiments default to 0.5 / 0.5.
struct PotentialWeights {
  double direct = 0.5;
  double indirect = 0.5;
};

}  // namespace accu
