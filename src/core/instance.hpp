// A complete ACCU problem instance (paper Definition 1).
//
// Bundles the probabilistic network G = (V, E, p), the user partition
// V = V_R ∪ V_C, the acceptance parameters (q_u for reckless users, θ_v for
// cautious users) and the benefit model, and validates the paper's standing
// assumptions at construction time:
//
//   * no edges among cautious users          (N(v) ∩ V_C = ∅ for v ∈ V_C);
//   * every cautious threshold is feasible   (|N(v) ∩ V_R| >= θ_v >= 1);
//   * probabilities are in range.
//
// The attacker s is implicit: it starts with no connections, so it is not a
// node of G; its friendships are tracked by AttackerView.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/benefit.hpp"
#include "core/types.hpp"

namespace accu {

/// Pre-laid-out ScorePack slot tables carried alongside an instance loaded
/// from the binary format (core/instance_format.hpp).  The pointers alias
/// the file mapping kept alive by `owner`; ScorePack::build adopts them by
/// memcpy instead of recomputing the per-slot walk.  Untyped (const void*)
/// on purpose: the bytes come straight from a mapped file, and memcpy into
/// typed storage is the aliasing-safe way to read them.
struct PackTables {
  std::shared_ptr<const void> owner;
  std::uint32_t num_slots = 0;
  const void* mirror = nullptr;      // uint32 [num_slots]
  const void* d_init = nullptr;      // double [num_slots]
  const void* i_gain = nullptr;      // double [num_slots]
  const void* slot_theta = nullptr;  // uint32 [num_slots]
};

/// Parameters of the *generalized* cautious acceptance model the paper
/// discusses in §III-B: a cautious user accepts with probability q1 while
/// below its threshold and q2 once the threshold is reached.  The default
/// (q1 = 0, q2 = 1) is the deterministic linear-threshold model of the
/// main text; any q1 > 0 bounds the adaptive total primal curvature by
/// δ = max q2/q1 and re-enables the curvature ratio of prior work.
struct GeneralizedCautiousParams {
  /// Per-node q1; entries for reckless users are ignored.
  std::vector<double> below;
  /// Per-node q2; entries for reckless users are ignored.
  std::vector<double> above;
};

class AccuInstance {
 public:
  /// `accept_prob[u]` is q_u (used when classes[u] is reckless; must still
  /// be in [0,1] everywhere).  `threshold[v]` is θ_v (used when classes[v]
  /// is cautious; ignored otherwise).
  AccuInstance(Graph graph, std::vector<UserClass> classes,
               std::vector<double> accept_prob,
               std::vector<std::uint32_t> threshold, BenefitModel benefits);

  /// As above, with the generalized cautious model.  Requires
  /// 0 <= q1 <= q2 <= 1 per cautious user.
  AccuInstance(Graph graph, std::vector<UserClass> classes,
               std::vector<double> accept_prob,
               std::vector<std::uint32_t> threshold, BenefitModel benefits,
               GeneralizedCautiousParams cautious_params);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const BenefitModel& benefits() const noexcept {
    return benefits_;
  }

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return graph_.num_nodes();
  }

  [[nodiscard]] UserClass user_class(NodeId u) const {
    ACCU_ASSERT(u < num_nodes());
    return classes_[u];
  }
  [[nodiscard]] bool is_cautious(NodeId u) const {
    return user_class(u) == UserClass::kCautious;
  }

  /// q_u — probability that reckless user u accepts a request.
  [[nodiscard]] double accept_prob(NodeId u) const {
    ACCU_ASSERT(u < num_nodes());
    return accept_prob_[u];
  }

  /// θ_v — mutual-friends threshold of cautious user v.
  [[nodiscard]] std::uint32_t threshold(NodeId v) const {
    ACCU_ASSERT(v < num_nodes());
    return threshold_[v];
  }

  [[nodiscard]] std::uint32_t num_cautious() const noexcept {
    return num_cautious_;
  }
  [[nodiscard]] std::uint32_t num_reckless() const noexcept {
    return num_nodes() - num_cautious_;
  }

  /// All cautious users, ascending ids.
  [[nodiscard]] const std::vector<NodeId>& cautious_users() const noexcept {
    return cautious_users_;
  }

  // --- generalized cautious model (§III-B) -------------------------------

  /// True when some cautious user deviates from the deterministic
  /// (q1 = 0, q2 = 1) threshold model.
  [[nodiscard]] bool has_generalized_cautious() const noexcept {
    return generalized_;
  }

  /// Acceptance probability of cautious user v given whether its mutual-
  /// friend count has reached θ_v (q2 when reached, q1 otherwise).
  [[nodiscard]] double cautious_accept_prob(NodeId v,
                                            bool threshold_reached) const {
    ACCU_ASSERT(is_cautious(v));
    return threshold_reached ? cautious_above_[v] : cautious_below_[v];
  }

  /// Process-unique identity of this instance's *contents*: assigned from a
  /// global counter at construction and carried along by copies/moves (which
  /// preserve the contents).  Lets caches keyed on an instance (the score
  /// pack in SimWorkspace) detect address reuse without hashing the data.
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  // --- pre-laid-out score tables (binary instance format) -----------------

  /// Attaches (or, with nullptr, detaches) pre-laid-out ScorePack slot
  /// tables; set by the binary loader so ScorePack::build can memcpy
  /// instead of recomputing.  Copies of the instance share the tables.
  void attach_pack_tables(std::shared_ptr<const PackTables> tables) noexcept {
    pack_tables_ = std::move(tables);
  }

  /// The attached tables, or nullptr when none.
  [[nodiscard]] const PackTables* pack_tables() const noexcept {
    return pack_tables_.get();
  }

 private:
  void validate();

  [[nodiscard]] static std::uint64_t next_uid() noexcept;

  Graph graph_;
  std::vector<UserClass> classes_;
  std::vector<double> accept_prob_;
  std::vector<std::uint32_t> threshold_;
  BenefitModel benefits_;
  std::vector<NodeId> cautious_users_;
  std::uint32_t num_cautious_ = 0;
  // Per-node q1/q2 (meaningful for cautious users only; 0/1 by default).
  std::vector<double> cautious_below_;
  std::vector<double> cautious_above_;
  bool generalized_ = false;
  std::shared_ptr<const PackTables> pack_tables_;
  std::uint64_t uid_ = next_uid();
};

}  // namespace accu
