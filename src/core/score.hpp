// The score engine — flat SoA layout and incremental caches for ABM's
// potential function, the innermost kernel of every simulation
// (P(u|ω) = q(u)·(w_D·P_D + w_I·P_I), paper §III-B).
//
// The scalar implementation in strategies/abm.cpp walks the CSR adjacency
// through per-element accessors (`edge_belief`, `is_fof`, `is_cautious`),
// each carrying an always-on assert and a cold indirection.  This header
// provides the same arithmetic over contiguous arrays, in three layers:
//
//  * ScorePack — the per-instance SoA pack: edge-parallel slot arrays laid
//    out alongside the CSR adjacency (neighbor id, mirror slot, the
//    slot-constant direct/indirect term numerators), per-node benefit /
//    acceptance columns, cautious flags as a bitset, thresholds as flat
//    uint32.  Built once per AccuInstance (identity-checked via
//    AccuInstance::uid) and pooled in SimWorkspace.
//
//  * score_batch — the stateless batched rescore: scores a span of
//    candidate ids against an AttackerView in one pass, reading only the
//    view's flat spans.  The reckless fast path is a branchless
//    multiply-mask loop that GCC/Clang can auto-vectorize.
//
//  * ScoreEngine — the incremental cache driving AbmStrategy: per-slot
//    contribution arrays updated by O(1) signed deltas per acceptance
//    effect, plus per-node dirty bits and an "eager" list (nodes whose
//    potential may have *increased* and must be re-pushed before the next
//    selection; everything else is refreshed lazily when it surfaces at the
//    heap top).  DESIGN.md §11 has the staleness/restore invariants.
//
// Bit-exactness.  Every result is pinned *exactly* (same doubles) to the
// scalar reference, which works because of one structural invariant: an
// edge term that is still live in some potential sum always carries the
// prior p_e — an edge is only ever observed through an accepting endpoint,
// and an accepted endpoint deactivates every term over that edge (the
// friend skip for P_D, the requested skip for P_I).  Deactivated terms are
// stored as exactly 0.0, and adding +0.0 into a non-negative lane
// accumulator is an exact floating-point no-op, so reducing a row in the
// canonical stride-4 lane order (score_simd.hpp) reproduces the scalar
// reference's lanes bit for bit — under any ISA, batch chunking, or thread
// count.  Property tests (tests/score_test.cpp) enforce this across random
// instances, cautious/reckless mixes, mid-simulation states, and every
// supported kernel ISA.
//
// Precondition: views handed to these kernels must have evolved through
// record_acceptance/record_rejection only (every view in this codebase
// does, including lookahead's hypothetical branch views) — that is what
// guarantees the invariant above.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/observation.hpp"
#include "core/types.hpp"

namespace accu {

/// Per-instance structure-of-arrays pack for potential scoring.  Immutable
/// after build(); shared by any number of concurrent readers (the engines /
/// batch kernels keep their own mutable state).
class ScorePack {
 public:
  ScorePack() = default;

  /// (Re)builds the pack for `instance`, reusing array capacity — a pack
  /// pooled in a workspace rebuilds allocation-free once its buffers have
  /// grown to the largest instance seen.
  void build(const AccuInstance& instance);

  /// Whether this pack currently describes `instance` (same object, same
  /// construction — AccuInstance::uid guards against address reuse).
  [[nodiscard]] bool built_for(const AccuInstance& instance) const noexcept {
    return instance_ == &instance && uid_ == instance.uid();
  }
  [[nodiscard]] bool empty() const noexcept { return instance_ == nullptr; }
  [[nodiscard]] const AccuInstance& instance() const {
    ACCU_ASSERT(instance_ != nullptr);
    return *instance_;
  }

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::uint32_t num_slots() const noexcept {
    return row_begin_.empty() ? 0 : row_begin_[num_nodes_];
  }

  // --- per-node columns ---------------------------------------------------

  [[nodiscard]] std::uint32_t row_begin(NodeId u) const {
    return row_begin_[u];
  }
  [[nodiscard]] bool is_cautious(NodeId u) const {
    return (cautious_bits_[u >> 6] >> (u & 63)) & 1u;
  }
  [[nodiscard]] double friend_benefit(NodeId u) const { return friend_b_[u]; }
  [[nodiscard]] double fof_benefit(NodeId u) const { return fof_b_[u]; }
  /// q_u for reckless u (meaningless for cautious users).
  [[nodiscard]] double q_reckless(NodeId u) const { return q_reckless_[u]; }
  /// q1/q2 for cautious u (0/1 under the deterministic model).
  [[nodiscard]] double q_below(NodeId u) const { return q_below_[u]; }
  [[nodiscard]] double q_above(NodeId u) const { return q_above_[u]; }
  /// θ_u for cautious u; 0 for reckless users.
  [[nodiscard]] std::uint32_t theta(NodeId u) const { return theta_[u]; }

  // --- edge-parallel slot arrays (one slot per CSR adjacency entry) -------

  /// Neighbor id of slot s (same order as Graph::neighbors).
  [[nodiscard]] NodeId slot_node(std::uint32_t s) const { return adj_node_[s]; }
  /// The reverse slot: the entry in slot_node(s)'s row pointing back over
  /// the same undirected edge.  mirror(mirror(s)) == s.
  [[nodiscard]] std::uint32_t mirror(std::uint32_t s) const {
    return mirror_[s];
  }
  /// Slot-constant P_D term: p_e · B_fof(slot_node(s)).  The live value of
  /// the term whenever it is active (see the header invariant).
  [[nodiscard]] double d_init(std::uint32_t s) const { return d_init_[s]; }
  /// Slot-constant P_I numerator: p_e · upgrade_gain(v) for cautious
  /// neighbors v, exactly 0.0 otherwise (the scalar code skips those slots;
  /// summing a hard zero matches it bit for bit).
  [[nodiscard]] double i_gain(std::uint32_t s) const { return i_gain_[s]; }
  /// θ of slot s's neighbor (1 for reckless neighbors, never divided by).
  [[nodiscard]] std::uint32_t slot_theta(std::uint32_t s) const {
    return slot_theta_[s];
  }

  [[nodiscard]] std::span<const double> d_init_all() const noexcept {
    return d_init_;
  }
  [[nodiscard]] std::span<const std::uint32_t> mirror_all() const noexcept {
    return mirror_;
  }
  [[nodiscard]] std::span<const double> i_gain_all() const noexcept {
    return i_gain_;
  }
  [[nodiscard]] std::span<const std::uint32_t> slot_theta_all() const noexcept {
    return slot_theta_;
  }
  [[nodiscard]] std::span<const NodeId> slot_nodes_all() const noexcept {
    return adj_node_;
  }
  /// The cautious flags as LSB-first 64-bit words (bit u of word u/64).
  [[nodiscard]] std::span<const std::uint64_t> cautious_words() const noexcept {
    return cautious_bits_;
  }

 private:
  const AccuInstance* instance_ = nullptr;
  std::uint64_t uid_ = 0;
  NodeId num_nodes_ = 0;

  std::vector<std::uint32_t> row_begin_;  // size n+1; CSR offsets as u32
  std::vector<std::uint64_t> cautious_bits_;
  std::vector<double> friend_b_, fof_b_;
  std::vector<double> q_reckless_, q_below_, q_above_;
  std::vector<std::uint32_t> theta_;

  std::vector<NodeId> adj_node_;          // size 2E
  std::vector<std::uint32_t> mirror_;     // size 2E
  std::vector<double> d_init_, i_gain_;   // size 2E
  std::vector<std::uint32_t> slot_theta_; // size 2E
  std::vector<std::uint32_t> edge_slot_;  // size E; build scratch
};

/// Reusable per-node tables for the batched rescore.  Pool this in the
/// owning strategy: after the first few cells the vectors reach the largest
/// instance size seen and `score_batch_prepare` becomes allocation-free.
struct ScoreBatchScratch {
  std::vector<double> active;   // P_D mask per node: 1.0 while the neighbor
                                // term is live, 0.0 once deactivated
  std::vector<double> inv_gap;  // P_I reciprocal gap per node: 1/(θ_v − m_v)
                                // while indirect-live, exactly 0.0 otherwise
};

/// Builds `scratch`'s tables for the view's current state (O(n); the
/// inv_gap pass walks only the cautious bitset words).  `want_indirect`
/// mirrors `weights.indirect > 0` — callers that never read P_I skip the
/// second table.
void score_batch_prepare(const ScorePack& pack, const AttackerView& view,
                         bool want_indirect, ScoreBatchScratch& scratch);

/// Scores candidates [begin, end) into out[u - begin] using tables built by
/// score_batch_prepare on the same (pack, view) state.  Pure read of pack /
/// view / scratch — disjoint ranges may run on different threads, and
/// chunking cannot change a single bit (each candidate's reduction is
/// independent and in the canonical order, see score_simd.hpp).
void score_batch_ranged(const ScorePack& pack, const AttackerView& view,
                        const PotentialWeights& weights,
                        const ScoreBatchScratch& scratch, NodeId begin,
                        NodeId end, double* out);

/// Batched rescore: writes P(u|ω) for every u in [begin, end) into
/// out[u - begin], reading the view's flat spans only.  Already-requested
/// candidates score 0.0 (they are never selectable).  Bit-exact against
/// AbmStrategy's scalar potential() under the same weights.
///
/// Convenience wrapper over prepare + ranged with local scratch; hot paths
/// pool a ScoreBatchScratch and call the split form instead.
void score_batch(const ScorePack& pack, const AttackerView& view,
                 const PotentialWeights& weights, NodeId begin, NodeId end,
                 double* out);

class TaskPool;

/// Full-population rescore through pooled scratch: prepare + ranged over
/// [0, num_nodes) into out.  When `pool` has more than one thread the range
/// is chunked across it — bit-identical to the single-call form because
/// chunking cannot change a candidate's reduction (see score_batch_ranged).
/// `pool` may be nullptr (sequential).
void score_batch_all(const ScorePack& pack, const AttackerView& view,
                     const PotentialWeights& weights, ScoreBatchScratch& scratch,
                     TaskPool* pool, double* out);

/// Incremental potential cache for one running simulation.
///
/// Holds each node's P_D / P_I sums as per-slot contribution arrays (so a
/// delta touches O(1) doubles per affected slot, and a refresh re-sums the
/// row in CSR order — which is what keeps refreshed values bit-identical to
/// a scalar rescan).  Event handlers mirror AttackerView's acceptance
/// effects:
///
///   apply_acceptance(t): t's mirror slots leave every neighbor's P_D and
///     P_I sums; nodes entering FOF leave their neighbors' P_D sums; mutual
///     increases at cautious v either shrink v's neighbors' P_I
///     denominators (potential ↑ — eager) or cross θ_v (q(v) jumps q1→q2 —
///     eager — and v leaves its neighbors' P_I sums).
///   apply_rejection(t): a rejected *cautious* t leaves its neighbors' P_I
///     sums (reachable only under the generalized q1 > 0 model).
///
/// Every other consequence only *lowers* potentials, so affected nodes just
/// get a dirty bit and are recomputed lazily if they ever surface at the
/// selection heap's top — stale heap entries are upper bounds, which keeps
/// lazy selection exactly equal to the eager reference (see DESIGN.md §11).
class ScoreEngine {
 public:
  /// Arms the engine for a fresh simulation over `pack`'s instance (no
  /// requests sent).  `pack` must outlive the engine's use; capacity reuses.
  void reset(const ScorePack& pack, const PotentialWeights& weights);

  /// P(u|ω) for un-requested u under the engine's current event state;
  /// bit-exact vs the scalar reference on the matching view.
  [[nodiscard]] double score(NodeId u) const;

  [[nodiscard]] bool is_requested(NodeId u) const {
    return requested_[u] != 0;
  }

  /// Folds an accepted request into the caches; effects must be the ones
  /// AttackerView::record_acceptance produced for the same event.
  void apply_acceptance(NodeId target,
                        const AttackerView::AcceptanceEffects& effects);
  /// Folds a rejected request into the caches.
  void apply_rejection(NodeId target);

  /// Folds a late neighborhood revelation (deferred FeedbackModel) into
  /// the caches; effects must be the ones
  /// AttackerView::deliver_next_revelation produced.  This is exactly the
  /// new_fof / mutual_increased half of apply_acceptance — the
  /// target-deactivation half already ran at acceptance time (the
  /// acceptance itself is immediate feedback in every model), which is
  /// what keeps the engine's mirrors in lockstep with the *observed* view
  /// and preserves the bit-exactness invariant: an edge is observed and
  /// its terms deactivated in the same delivery event.
  void apply_revelation(const AttackerView::AcceptanceEffects& effects);

  /// Nodes whose potential may have increased in the latest apply_* call;
  /// the caller must re-score these eagerly (heap re-push) before the next
  /// selection.  Valid until the next apply_* call.
  [[nodiscard]] std::span<const NodeId> pending_eager() const noexcept {
    return eager_;
  }

  /// Clears and returns u's dirty bit ("value may have decreased since the
  /// last refresh").
  bool consume_dirty(NodeId u) {
    const bool was = dirty_[u] != 0;
    dirty_[u] = 0;
    return was;
  }

  [[nodiscard]] const ScorePack& pack() const {
    ACCU_ASSERT(pack_ != nullptr);
    return *pack_;
  }

 private:
  void add_eager(NodeId u);
  void mark_dirty(NodeId u) {
    if (requested_[u] == 0) dirty_[u] = 1;
  }

  const ScorePack* pack_ = nullptr;
  PotentialWeights weights_{};
  bool maintain_indirect_ = false;

  // Per-slot live term values: exactly the scalar term while active, 0.0
  // once deactivated.
  std::vector<double> contrib_d_;
  std::vector<double> contrib_i_;

  // Per-node mirrors of the view state the potential reads.
  std::vector<std::uint32_t> mutual_;
  std::vector<std::uint8_t> fof_;
  std::vector<std::uint8_t> requested_;

  std::vector<std::uint8_t> dirty_;
  std::vector<NodeId> eager_;
  std::vector<std::uint32_t> eager_stamp_;  // dedup within one apply_* batch
  std::uint32_t eager_round_ = 0;
};

}  // namespace accu
