#include "core/experiment.hpp"

#include <atomic>
#include <thread>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace accu {

void TraceAggregator::add(const SimulationResult& result,
                          std::uint32_t budget) {
  double running = 0.0;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const RequestRecord& record = result.trace[i];
    running = record.benefit_after;
    cumulative_benefit_.add_at(i, running);
    marginal_.add_at(i, record.marginal());
    if (record.cautious_target) {
      marginal_cautious_.add_at(i, record.marginal());
      marginal_reckless_.add_at(i, 0.0);
      cautious_fraction_.add_at(i, 1.0);
    } else {
      marginal_cautious_.add_at(i, 0.0);
      marginal_reckless_.add_at(i, record.marginal());
      cautious_fraction_.add_at(i, 0.0);
    }
  }
  // Hold the final benefit for unused budget so per-index averages compare
  // policies over the same horizon.
  for (std::size_t i = result.trace.size(); i < budget; ++i) {
    cumulative_benefit_.add_at(i, running);
    marginal_.add_at(i, 0.0);
    marginal_cautious_.add_at(i, 0.0);
    marginal_reckless_.add_at(i, 0.0);
    cautious_fraction_.add_at(i, 0.0);
  }
  total_benefit_.add(result.total_benefit);
  cautious_friends_.add(result.num_cautious_friends);
  accepted_.add(result.num_accepted);
}

void TraceAggregator::merge(const TraceAggregator& other) {
  cumulative_benefit_.merge(other.cumulative_benefit_);
  marginal_.merge(other.marginal_);
  marginal_cautious_.merge(other.marginal_cautious_);
  marginal_reckless_.merge(other.marginal_reckless_);
  cautious_fraction_.merge(other.cautious_fraction_);
  total_benefit_.merge(other.total_benefit_);
  cautious_friends_.merge(other.cautious_friends_);
  accepted_.merge(other.accepted_);
}

const TraceAggregator& ExperimentResult::by_name(
    const std::string& name) const {
  for (std::size_t i = 0; i < strategy_names.size(); ++i) {
    if (strategy_names[i] == name) return aggregates[i];
  }
  throw InvalidArgument("no strategy named '" + name + "' in this result");
}

namespace {

/// Stateless seed derivation so any (sample, run, strategy) cell can be
/// reproduced in isolation and in any execution order.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b = 0, std::uint64_t c = 0) {
  std::uint64_t state = base;
  state ^= 0x9e3779b97f4a7c15ULL * (a + 1);
  (void)util::splitmix64_next(state);
  state ^= 0xbf58476d1ce4e5b9ULL * (b + 1);
  (void)util::splitmix64_next(state);
  state ^= 0x94d049bb133111ebULL * (c + 1);
  return util::splitmix64_next(state);
}

}  // namespace

ExperimentResult run_experiment(const InstanceFactory& make_instance,
                                const std::vector<StrategyFactory>& strategies,
                                const ExperimentConfig& config) {
  ExperimentResult result;
  result.strategy_names.reserve(strategies.size());
  for (const StrategyFactory& factory : strategies) {
    result.strategy_names.push_back(factory.name);
  }
  result.aggregates.resize(strategies.size());

  util::Timer timer;
  // One instance per sample network, generated up front so runs can share
  // it (the factory owns all dataset-level randomness through the seed).
  std::vector<AccuInstance> instances;
  instances.reserve(config.samples);
  for (std::uint32_t sample = 0; sample < config.samples; ++sample) {
    instances.push_back(
        make_instance(sample, derive_seed(config.seed, sample)));
    util::log_info("experiment: sample %u/%u generated (%.1fs elapsed)",
                   sample + 1, config.samples, timer.seconds());
  }

  // Task grid: one (sample, run) cell produces one partial aggregate per
  // strategy; cells are independent and merged in fixed task order below.
  const std::size_t tasks =
      static_cast<std::size_t>(config.samples) * config.runs;
  std::vector<std::vector<TraceAggregator>> partials(
      tasks, std::vector<TraceAggregator>(strategies.size()));

  auto run_task = [&](std::size_t task) {
    const std::uint32_t sample =
        static_cast<std::uint32_t>(task / config.runs);
    const std::uint32_t run = static_cast<std::uint32_t>(task % config.runs);
    const AccuInstance& instance = instances[sample];
    // One ground truth per (sample, run), shared by every policy.
    util::Rng truth_rng(derive_seed(config.seed, sample, run + 1));
    const Realization truth = Realization::sample(instance, truth_rng);
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      util::Rng policy_rng(derive_seed(config.seed, sample, run + 1, s + 1));
      const std::unique_ptr<Strategy> strategy = strategies[s].make();
      const SimulationResult outcome =
          simulate(instance, truth, *strategy, config.budget, policy_rng);
      partials[task][s].add(outcome, config.budget);
    }
  };

  std::uint32_t workers = config.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<std::uint32_t>(
      std::min<std::size_t>(workers, tasks == 0 ? 1 : tasks));

  if (workers <= 1) {
    for (std::size_t task = 0; task < tasks; ++task) run_task(task);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t task = next.fetch_add(1); task < tasks;
             task = next.fetch_add(1)) {
          run_task(task);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  // Deterministic merge order: task-major, strategy-minor.
  for (std::size_t task = 0; task < tasks; ++task) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      result.aggregates[s].merge(partials[task][s]);
    }
  }
  util::log_info("experiment: %zu cells × %zu strategies done in %.1fs",
                 tasks, strategies.size(), timer.seconds());
  return result;
}

}  // namespace accu
