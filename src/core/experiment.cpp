#include "core/experiment.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "core/engine.hpp"
#include "core/strategies/retrying.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace accu {

void TraceAggregator::add(const SimulationResult& result,
                          std::uint32_t budget) {
  double running = 0.0;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const RequestRecord& record = result.trace[i];
    running = record.benefit_after;
    cumulative_benefit_.add_at(i, running);
    marginal_.add_at(i, record.marginal());
    if (record.cautious_target) {
      marginal_cautious_.add_at(i, record.marginal());
      marginal_reckless_.add_at(i, 0.0);
      cautious_fraction_.add_at(i, 1.0);
    } else {
      marginal_cautious_.add_at(i, 0.0);
      marginal_reckless_.add_at(i, record.marginal());
      cautious_fraction_.add_at(i, 0.0);
    }
  }
  // Hold the final benefit for unused budget so per-index averages compare
  // policies over the same horizon.  Suspension-stalled rounds are *not*
  // padding: they sit inside the trace as explicit zero-marginal records,
  // so their indices keep one sample per run like every other round.
  for (std::size_t i = result.trace.size(); i < budget; ++i) {
    cumulative_benefit_.add_at(i, running);
    marginal_.add_at(i, 0.0);
    marginal_cautious_.add_at(i, 0.0);
    marginal_reckless_.add_at(i, 0.0);
    cautious_fraction_.add_at(i, 0.0);
  }
  total_benefit_.add(result.total_benefit);
  cautious_friends_.add(result.num_cautious_friends);
  accepted_.add(result.num_accepted);
  faulted_.add(result.num_faulted);
  retries_.add(result.num_retries);
  suspended_.add(result.rounds_suspended);
  abandoned_.add(result.num_abandoned);
}

void TraceAggregator::merge(const TraceAggregator& other) {
  cumulative_benefit_.merge(other.cumulative_benefit_);
  marginal_.merge(other.marginal_);
  marginal_cautious_.merge(other.marginal_cautious_);
  marginal_reckless_.merge(other.marginal_reckless_);
  cautious_fraction_.merge(other.cautious_fraction_);
  total_benefit_.merge(other.total_benefit_);
  cautious_friends_.merge(other.cautious_friends_);
  accepted_.merge(other.accepted_);
  faulted_.merge(other.faulted_);
  retries_.merge(other.retries_);
  suspended_.merge(other.suspended_);
  abandoned_.merge(other.abandoned_);
}

const char* cell_failure_kind_name(CellFailure::Kind kind) noexcept {
  switch (kind) {
    case CellFailure::Kind::kError: return "error";
    case CellFailure::Kind::kDeadline: return "deadline";
    case CellFailure::Kind::kCancelled: return "cancelled";
  }
  return "?";
}

const TraceAggregator& ExperimentResult::by_name(
    const std::string& name) const {
  for (std::size_t i = 0; i < strategy_names.size(); ++i) {
    if (strategy_names[i] == name) return aggregates[i];
  }
  throw InvalidArgument("no strategy named '" + name + "' in this result");
}

std::pair<std::uint32_t, std::uint32_t> parse_shard_spec(
    const std::string& spec) {
  const std::size_t slash = spec.find('/');
  std::uint32_t index = 0, count = 0;
  bool ok = slash != std::string::npos && slash > 0 &&
            slash + 1 < spec.size();
  if (ok) {
    try {
      std::size_t pos = 0;
      index = static_cast<std::uint32_t>(
          std::stoul(spec.substr(0, slash), &pos));
      ok = pos == slash;
      std::size_t pos2 = 0;
      const std::string tail = spec.substr(slash + 1);
      count = static_cast<std::uint32_t>(std::stoul(tail, &pos2));
      ok = ok && pos2 == tail.size();
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok || count == 0 || index >= count) {
    throw InvalidArgument("bad shard spec '" + spec +
                          "' (expected i/n with 0 <= i < n, e.g. 0/4)");
  }
  return {index, count};
}

namespace {

/// Stateless seed derivation so any (sample, run, strategy) cell can be
/// reproduced in isolation and in any execution order.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b = 0, std::uint64_t c = 0) {
  std::uint64_t state = base;
  state ^= 0x9e3779b97f4a7c15ULL * (a + 1);
  (void)util::splitmix64_next(state);
  state ^= 0xbf58476d1ce4e5b9ULL * (b + 1);
  (void)util::splitmix64_next(state);
  state ^= 0x94d049bb133111ebULL * (c + 1);
  return util::splitmix64_next(state);
}

// Distinct stream salts so fault / retry randomness never collides with
// the truth or policy streams of the same cell.
constexpr std::uint64_t kFaultStreamSalt = 0xfa17fa17fa17fa17ULL;
constexpr std::uint64_t kRetryStreamSalt = 0x5e77bacc0ff5e7ULL;
// Salt for the fresh seed-stream tag of a deadline-retried cell: attempt
// `a` > 0 re-derives policy/fault/retry streams from this base while the
// ground-truth stream stays untouched (the paired design survives).
constexpr std::uint64_t kCellRetrySalt = 0xdead11e0dead11e0ULL;

// ---------------------------------------------------------------------------
// Checkpointing.  Line-oriented, mirroring the instance-io format:
//
//   # accu-checkpoint v2
//   sweep seed <u64> samples <S> runs <R> budget <k> strategies <n>
//   faults <drop> <timeout> <transient> <ratelimit> <w> retry <kind> <max>
//       <base> <cap>                                       (one line)
//   shard <i> <n>                              (optional; absent = 0 1)
//   name <i> <strategy name>                               (n lines)
//   begin <task>
//   t <s> <target> <accepted> <cautious> <fault> <attempt> <benefit_after>
//   m <s> <num_abandoned>
//   end <task>
//   crc <task> <crc32-hex>
//
// One `begin..crc` block per completed (sample, run) cell.  The header is
// written atomically (temp file + fsync + rename); each block is appended
// and fsynced as its cell finishes, so a crash loses at most the in-flight
// cell.  The `crc` trailer covers every byte from `begin` through the
// `end` line: the loader recomputes it and truncates the file at the last
// block that verifies, so a torn or bit-flipped tail costs one cell, not
// the run.  Doubles round-trip exactly (%.17g) and blocks replay through
// TraceAggregator::add in fixed task order, so a resumed sweep's
// aggregates are bit-identical to an uninterrupted one.  v1 files (no CRC
// trailers) are still readable; resuming one rewrites it as v2.
//
// Task indices in `begin`/`end`/`crc` lines are *global* grid indices
// (sample * runs + run) even in a shard's file, so shard files from
// independent machines line up for the merge tool without translation.
// The `shard` line pins the file to one ExperimentConfig shard identity:
// resume rejects a mismatch, while merge accepts any mix of identities
// (it deduplicates by task).  Files written before sharding existed lack
// the line and read as the unsharded 0/1.
// ---------------------------------------------------------------------------

struct CheckpointFingerprint {
  std::uint64_t seed = 0;
  std::uint32_t samples = 0;
  std::uint32_t runs = 0;
  std::uint32_t budget = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::vector<std::string> names;
  FaultConfig faults{};
  util::RetryPolicy retry{};
  FeedbackModel feedback{};
};

CheckpointFingerprint fingerprint_of(const ExperimentConfig& config,
                                     const std::vector<std::string>& names) {
  CheckpointFingerprint fp;
  fp.seed = config.seed;
  fp.samples = config.samples;
  fp.runs = config.runs;
  fp.budget = config.budget;
  fp.shard_index = config.shard_index;
  fp.shard_count = config.shard_count;
  fp.names = names;
  fp.faults = config.faults;
  fp.retry = config.retry;
  fp.feedback = config.feedback;
  return fp;
}

std::string checkpoint_header(const CheckpointFingerprint& fp) {
  std::ostringstream os;
  os << "# accu-checkpoint v2\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "sweep seed %" PRIu64
                " samples %u runs %u budget %u strategies %zu\n",
                fp.seed, fp.samples, fp.runs, fp.budget, fp.names.size());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "faults %.17g %.17g %.17g %.17g %u retry %u %u %u %u\n",
                fp.faults.drop_rate, fp.faults.timeout_rate,
                fp.faults.transient_rate, fp.faults.rate_limit_rate,
                fp.faults.suspension_rounds,
                static_cast<unsigned>(fp.retry.kind), fp.retry.max_retries,
                fp.retry.base_delay, fp.retry.max_delay);
  os << buf;
  os << "shard " << fp.shard_index << ' ' << fp.shard_count << '\n';
  // The feedback line is written only for non-full models so every
  // checkpoint file a full-feedback sweep writes stays byte-identical to
  // the pre-feedback-axis format (and old files read as full).
  if (!fp.feedback.is_full()) {
    os << "feedback " << fp.feedback.spec() << '\n';
  }
  for (std::size_t i = 0; i < fp.names.size(); ++i) {
    os << "name " << i << ' ' << fp.names[i] << '\n';
  }
  return os.str();
}

[[noreturn]] void checkpoint_mismatch(const std::string& path,
                                      const std::string& what) {
  throw IoError("checkpoint " + path +
                " does not match this experiment (" + what +
                "); delete it or pick another path to start fresh");
}

/// Throws checkpoint_mismatch unless `parsed` names the same experiment as
/// `expected`.  Shard identity participates only when `check_shard` — a
/// resume must continue the exact shard, while the merge tool accepts any
/// mix of shard identities over the same sweep.
void check_fingerprint(const std::string& path,
                       const CheckpointFingerprint& parsed,
                       const CheckpointFingerprint& expected,
                       bool check_shard) {
  if (parsed.seed != expected.seed || parsed.samples != expected.samples ||
      parsed.runs != expected.runs || parsed.budget != expected.budget ||
      parsed.names.size() != expected.names.size()) {
    checkpoint_mismatch(path, "different sweep shape or seed");
  }
  const FaultConfig& f = expected.faults;
  const util::RetryPolicy& r = expected.retry;
  if (parsed.faults.drop_rate != f.drop_rate ||
      parsed.faults.timeout_rate != f.timeout_rate ||
      parsed.faults.transient_rate != f.transient_rate ||
      parsed.faults.rate_limit_rate != f.rate_limit_rate ||
      parsed.faults.suspension_rounds != f.suspension_rounds ||
      parsed.retry.kind != r.kind ||
      parsed.retry.max_retries != r.max_retries ||
      parsed.retry.base_delay != r.base_delay ||
      parsed.retry.max_delay != r.max_delay) {
    checkpoint_mismatch(path, "different fault or retry configuration");
  }
  if (parsed.feedback != expected.feedback) {
    checkpoint_mismatch(path, "different feedback model");
  }
  if (parsed.names != expected.names) {
    checkpoint_mismatch(path, "different strategy roster");
  }
  if (check_shard && (parsed.shard_index != expected.shard_index ||
                      parsed.shard_count != expected.shard_count)) {
    checkpoint_mismatch(path, "different shard identity");
  }
}

/// Serializes one completed cell as a v2 block, CRC trailer included.
std::string serialize_cell(std::size_t task,
                           const std::vector<SimulationResult>& outcomes) {
  std::ostringstream block;
  block << "begin " << task << '\n';
  char buf[192];
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    for (const RequestRecord& r : outcomes[s].trace) {
      std::snprintf(buf, sizeof buf, "t %zu %u %d %d %u %u %.17g\n", s,
                    r.target, r.accepted ? 1 : 0, r.cautious_target ? 1 : 0,
                    static_cast<unsigned>(r.fault), r.attempt,
                    r.benefit_after);
      block << buf;
    }
    block << "m " << s << ' ' << outcomes[s].num_abandoned << '\n';
  }
  block << "end " << task << '\n';
  std::string text = block.str();
  std::snprintf(buf, sizeof buf, "crc %zu %08x\n", task,
                util::crc32(text));
  text += buf;
  return text;
}

/// Rebuilds a SimulationResult from checkpointed trace lines.  Only the
/// fields TraceAggregator::add consumes are populated.
SimulationResult replay_result(const std::vector<RequestRecord>& trace,
                               std::uint32_t num_abandoned) {
  SimulationResult result;
  result.trace = trace;
  result.num_abandoned = num_abandoned;
  for (const RequestRecord& r : result.trace) {
    if (r.accepted) {
      ++result.num_accepted;
      if (r.cautious_target) ++result.num_cautious_friends;
    }
    if (r.fault == FaultKind::kSuspensionStall) {
      ++result.rounds_suspended;
    } else if (r.fault != FaultKind::kNone) {
      ++result.num_faulted;
    }
    if (r.attempt > 0) ++result.num_retries;
  }
  if (!result.trace.empty()) {
    result.total_benefit = result.trace.back().benefit_after;
  }
  return result;
}

struct LoadedCheckpoint {
  std::size_t restored = 0;    ///< unique completed cells in the file
  int version = 2;             ///< on-disk format version
  std::uint64_t valid_end = 0; ///< byte offset after the last valid block
  std::uint64_t file_size = 0;
  /// For v1 files: the valid blocks re-serialized as v2 (used to upgrade
  /// the file in place before appending v2 blocks to it).
  std::string upgraded;
};

/// Receives each unique completed cell of a checkpoint file, in file
/// order.  `outcomes` holds one replayed SimulationResult per strategy.
using CellSink =
    std::function<void(std::size_t task,
                       std::vector<SimulationResult>&& outcomes)>;

/// Streams an existing checkpoint: parses the header into `parsed`, calls
/// `check_header` (which may throw to reject the file — at that point
/// `parsed` is complete), then hands every unique valid cell block to
/// `on_cell`.  A torn, malformed, or CRC-failing tail is dropped with a
/// warning (the affected cells simply re-run or count as missing) and
/// `valid_end` tells the caller where to truncate before appending.
LoadedCheckpoint load_checkpoint(const std::string& path,
                                 CheckpointFingerprint& parsed,
                                 const std::function<void()>& check_header,
                                 const CellSink& on_cell) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open checkpoint for reading: " + path);
  LoadedCheckpoint loaded;
  is.seekg(0, std::ios::end);
  loaded.file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);

  std::string line;
  std::uint64_t offset = 0;  // bytes consumed so far
  // getline-based reader that tracks byte offsets exactly (tellg is
  // unusable once eofbit sets on a file whose last line lacks a newline).
  auto read_line = [&]() -> bool {
    if (!std::getline(is, line)) return false;
    offset += line.size() + (is.eof() ? 0u : 1u);
    return true;
  };

  // Header region: the version magic plus the fixed stanzas.  Comment
  // and blank lines are tolerated here only.
  loaded.version = 1;
  auto next_header_line = [&]() -> bool {
    while (read_line()) {
      if (line.rfind("# accu-checkpoint v", 0) == 0) {
        loaded.version = std::atoi(line.c_str() + 19);
        continue;
      }
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  // Sweep-shape line.
  std::size_t nstrategies = 0;
  {
    if (!next_header_line()) {
      throw IoError("checkpoint " + path + ": empty file");
    }
    std::istringstream ls(line);
    std::string kw1, kw2, kw3, kw4, kw5, kw6;
    if (!(ls >> kw1 >> kw2 >> parsed.seed >> kw3 >> parsed.samples >> kw4 >>
          parsed.runs >> kw5 >> parsed.budget >> kw6 >> nstrategies) ||
        kw1 != "sweep" || kw2 != "seed") {
      throw IoError("checkpoint " + path + ": malformed sweep header");
    }
  }
  // Fault/retry fingerprint line.
  {
    if (!next_header_line()) {
      throw IoError("checkpoint " + path + ": missing faults line");
    }
    std::istringstream ls(line);
    std::string kw1, kw2;
    unsigned kind = 0;
    if (!(ls >> kw1 >> parsed.faults.drop_rate >>
          parsed.faults.timeout_rate >> parsed.faults.transient_rate >>
          parsed.faults.rate_limit_rate >> parsed.faults.suspension_rounds >>
          kw2 >> kind >> parsed.retry.max_retries >>
          parsed.retry.base_delay >> parsed.retry.max_delay) ||
        kw1 != "faults" || kw2 != "retry" ||
        kind > static_cast<unsigned>(util::RetryKind::kExponentialJitter)) {
      throw IoError("checkpoint " + path + ": malformed faults line");
    }
    parsed.retry.kind = static_cast<util::RetryKind>(kind);
  }
  // Optional shard-identity line (absent in pre-shard files: 0/1), then
  // the strategy roster.
  bool pending_line = false;  // `line` already holds the next header line
  {
    if (!next_header_line()) {
      throw IoError("checkpoint " + path + ": missing strategy name line");
    }
    if (line.rfind("shard ", 0) == 0) {
      std::istringstream ls(line);
      std::string kw;
      if (!(ls >> kw >> parsed.shard_index >> parsed.shard_count) ||
          parsed.shard_count == 0 ||
          parsed.shard_index >= parsed.shard_count) {
        throw IoError("checkpoint " + path + ": malformed shard line");
      }
    } else {
      parsed.shard_index = 0;
      parsed.shard_count = 1;
      pending_line = true;
    }
  }
  // Optional feedback-model line (absent = full; full-feedback files never
  // write it, so their bytes predate the feedback axis unchanged).
  {
    if (!pending_line && !next_header_line()) {
      throw IoError("checkpoint " + path + ": missing strategy name line");
    }
    if (line.rfind("feedback ", 0) == 0) {
      pending_line = false;
      try {
        parsed.feedback = FeedbackModel::parse(line.substr(9));
      } catch (const InvalidArgument& e) {
        throw IoError("checkpoint " + path + ": malformed feedback line (" +
                      e.what() + ")");
      }
    } else {
      parsed.feedback = FeedbackModel{};
      pending_line = true;
    }
  }
  parsed.names.resize(nstrategies);
  for (std::size_t i = 0; i < nstrategies; ++i) {
    if (!pending_line && !next_header_line()) {
      throw IoError("checkpoint " + path + ": missing strategy name line");
    }
    pending_line = false;
    std::istringstream ls(line);
    std::string kw;
    std::size_t index = 0;
    if (!(ls >> kw >> index) || kw != "name" || index != i) {
      throw IoError("checkpoint " + path + ": malformed strategy name line");
    }
    std::string name;
    std::getline(ls, name);
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    parsed.names[i] = name;
  }
  check_header();
  const std::size_t tasks =
      static_cast<std::size_t>(parsed.samples) * parsed.runs;
  std::vector<bool> seen(tasks, false);
  loaded.valid_end = offset;

  // Cell blocks.  Any anomaly from here on — unknown tag, short block,
  // missing `end`, CRC mismatch — marks a torn tail: everything from the
  // last valid block re-runs (warning below, not an error).
  std::string torn_reason;
  while (read_line()) {
    std::string block_text = line + '\n';  // CRC covers begin..end inclusive
    std::istringstream header(line);
    std::string kw;
    std::size_t task = 0;
    if (!(header >> kw >> task) || kw != "begin" || task >= tasks) {
      torn_reason = "unexpected line where a cell block should begin";
      break;
    }
    std::vector<std::vector<RequestRecord>> traces(nstrategies);
    std::vector<std::uint32_t> abandoned(nstrategies, 0);
    bool complete = false, malformed = false;
    while (read_line()) {
      block_text += line;
      block_text += '\n';
      if (line.rfind("end ", 0) == 0) {
        std::istringstream ls(line);
        std::string end_kw;
        std::size_t end_task = 0;
        complete = (ls >> end_kw >> end_task) && end_task == task;
        break;
      }
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "t") {
        std::size_t s = 0;
        unsigned long target = 0;
        int accepted = 0, cautious = 0;
        unsigned fault = 0;
        std::uint32_t attempt = 0;
        double after = 0.0;
        if (!(ls >> s >> target >> accepted >> cautious >> fault >> attempt >>
              after) ||
            s >= nstrategies ||
            fault > static_cast<unsigned>(FaultKind::kSuspensionStall)) {
          malformed = true;
          break;
        }
        RequestRecord r;
        r.target = static_cast<NodeId>(target);
        r.accepted = accepted != 0;
        r.cautious_target = cautious != 0;
        r.fault = static_cast<FaultKind>(fault);
        r.attempt = attempt;
        r.benefit_before =
            traces[s].empty() ? 0.0 : traces[s].back().benefit_after;
        r.benefit_after = after;
        traces[s].push_back(r);
      } else if (tag == "m") {
        std::size_t s = 0;
        std::uint32_t count = 0;
        if (!(ls >> s >> count) || s >= nstrategies) {
          malformed = true;
          break;
        }
        abandoned[s] = count;
      } else {
        malformed = true;
        break;
      }
    }
    if (!complete || malformed) {
      torn_reason = "truncated or malformed cell block";
      break;
    }
    if (loaded.version >= 2) {
      // The CRC trailer must follow immediately and verify.
      std::size_t crc_task = 0;
      std::string crc_hex;
      bool crc_ok = false;
      if (read_line()) {
        std::istringstream ls(line);
        std::string crc_kw;
        if ((ls >> crc_kw >> crc_task >> crc_hex) && crc_kw == "crc" &&
            crc_task == task) {
          char printed[16];
          std::snprintf(printed, sizeof printed, "%08x",
                        util::crc32(block_text));
          crc_ok = crc_hex == printed;
        }
      }
      if (!crc_ok) {
        torn_reason = "cell block failed its CRC32 check";
        break;
      }
    }
    loaded.valid_end = offset;
    if (seen[task]) continue;  // duplicate block: keep the first
    std::vector<SimulationResult> outcomes(nstrategies);
    for (std::size_t s = 0; s < nstrategies; ++s) {
      outcomes[s] = replay_result(traces[s], abandoned[s]);
    }
    if (loaded.version < 2) {
      loaded.upgraded += serialize_cell(task, outcomes);
    }
    seen[task] = true;
    ++loaded.restored;
    on_cell(task, std::move(outcomes));
  }
  if (!torn_reason.empty() || loaded.valid_end < loaded.file_size) {
    util::log_warn(
        "checkpoint %s: %s at byte %" PRIu64 " — dropping the tail "
        "(%" PRIu64 " bytes); the affected cells will re-run",
        path.c_str(),
        torn_reason.empty() ? "trailing bytes" : torn_reason.c_str(),
        loaded.valid_end, loaded.file_size - loaded.valid_end);
  }
  return loaded;
}

}  // namespace

ExperimentResult run_experiment(const InstanceFactory& make_instance,
                                const std::vector<StrategyFactory>& strategies,
                                const ExperimentConfig& config) {
  config.faults.validate();
  config.durability.validate();
  // Kernel selection happens before any worker spins up (the table pointer
  // is atomic, but selecting mid-sweep would be needless churn).  Explicit
  // unsupported ISAs throw here, before any cell runs.
  simd::select(config.simd);
  if (config.shard_count == 0 ||
      config.shard_index >= config.shard_count) {
    throw InvalidArgument(
        "ExperimentConfig: shard_index " +
        std::to_string(config.shard_index) + " out of range for shard_count " +
        std::to_string(config.shard_count));
  }
  ExperimentResult result;
  result.strategy_names.reserve(strategies.size());
  for (const StrategyFactory& factory : strategies) {
    result.strategy_names.push_back(factory.name);
  }
  result.aggregates.resize(strategies.size());

  util::Timer timer;
  // Task grid: one (sample, run) cell produces one partial aggregate per
  // strategy; cells are independent and merged in fixed task order below.
  // Task indices are global even under sharding, so shard checkpoints from
  // independent machines align for merge_shard_checkpoints.
  const std::size_t tasks =
      static_cast<std::size_t>(config.samples) * config.runs;
  std::vector<std::vector<TraceAggregator>> partials(
      tasks, std::vector<TraceAggregator>(strategies.size()));
  std::vector<bool> done(tasks, false);
  // A shard owns every shard_count-th task (strided, so every shard sees
  // every sample whenever shard_count <= runs).  Foreign tasks are marked
  // done up front: they never run, never aggregate, and checkpoint blocks
  // for them (e.g. in a hand-merged file) are ignored.
  std::size_t owned_tasks = tasks;
  if (config.shard_count > 1) {
    owned_tasks = 0;
    for (std::size_t task = 0; task < tasks; ++task) {
      if (task % config.shard_count == config.shard_index) {
        ++owned_tasks;
      } else {
        done[task] = true;
      }
    }
    util::log_info("experiment: shard %u/%u owns %zu of %zu cells",
                   config.shard_index, config.shard_count, owned_tasks,
                   tasks);
  }

  // Progress accounting: completed owned cells, restored ones included.
  // The mutex both guards the counter and serializes the observer, so
  // callers see monotonic cells_done regardless of the worker count.
  std::mutex progress_mutex;
  std::size_t cells_completed = 0;
  auto report_progress = [&](std::size_t delta, double cell_ms,
                             bool restored_cells) {
    if (!config.progress) return;
    const std::lock_guard<std::mutex> lock(progress_mutex);
    cells_completed += delta;
    ExperimentProgress p;
    p.cells_done = cells_completed;
    p.cells_total = owned_tasks;
    p.cell_ms = cell_ms;
    p.restored = restored_cells;
    config.progress(p);
  };

  // Checkpoint: restore completed cells, then append new ones as they
  // finish.  The header write is atomic (temp + fsync + rename) and
  // appended blocks are fsynced per the durability policy (strict: every
  // cell; grouped: every N cells / T ms plus a forced flush on every stop
  // path), so a crash at any instant leaves a file the loader can resume
  // from — grouped merely widens the re-run window to the last uncommitted
  // group.
  const CheckpointFingerprint fingerprint =
      fingerprint_of(config, result.strategy_names);
  util::GroupCommitAppender checkpoint_out;
  std::mutex checkpoint_mutex;
  if (!config.checkpoint_path.empty()) {
    bool existing = false;
    {
      std::ifstream probe(config.checkpoint_path, std::ios::binary);
      existing = probe.good() &&
                 probe.peek() != std::ifstream::traits_type::eof();
    }
    std::size_t restored = 0;
    if (existing) {
      CheckpointFingerprint parsed;
      LoadedCheckpoint loaded = load_checkpoint(
          config.checkpoint_path, parsed,
          [&] {
            check_fingerprint(config.checkpoint_path, parsed, fingerprint,
                              /*check_shard=*/true);
          },
          [&](std::size_t task, std::vector<SimulationResult>&& outcomes) {
            if (done[task]) return;  // shard-foreign task: ignore
            for (std::size_t s = 0; s < outcomes.size(); ++s) {
              partials[task][s].add(outcomes[s], config.budget);
            }
            done[task] = true;
            ++restored;
          });
      if (loaded.version < 2) {
        // Upgrade in place: the same cells, re-serialized with CRC
        // trailers under a v2 header, swapped in atomically so appended
        // v2 blocks never share a file with an uncrc'd v1 body.
        util::write_file_atomic(config.checkpoint_path,
                                checkpoint_header(fingerprint) +
                                    loaded.upgraded);
        util::log_info("checkpoint %s: upgraded v1 file to v2 (%zu cells)",
                       config.checkpoint_path.c_str(), restored);
      } else if (loaded.valid_end < loaded.file_size) {
        util::truncate_file(config.checkpoint_path, loaded.valid_end);
      }
    } else {
      util::write_file_atomic(config.checkpoint_path,
                              checkpoint_header(fingerprint));
    }
    checkpoint_out.open(config.checkpoint_path, config.durability);
    if (config.durability.mode == util::DurabilityPolicy::Mode::kGrouped) {
      util::log_info(
          "experiment: grouped durability — fsync every %u cells / %u ms "
          "(crash re-runs at most the last uncommitted group)",
          config.durability.group_cells, config.durability.group_ms);
    }
    if (restored > 0) {
      util::log_info("experiment: resumed %zu/%zu cells from %s", restored,
                     owned_tasks, config.checkpoint_path.c_str());
      report_progress(restored, 0.0, /*restored_cells=*/true);
    }
  }

  std::mutex failure_mutex;
  std::atomic<bool> stop{false};         // no new cells may start
  std::atomic<bool> interrupted{false};  // external stop observed
  // First checkpoint-I/O failure (ENOSPC, failed fsync, ...).  Unlike a
  // cell failure, losing the checkpoint stream is fail-stop: recording a
  // CellFailure and carrying on would silently drop durability for every
  // later cell.  The pool drains and the exception is rethrown to the
  // caller, who maps it to a dedicated exit code with a resume hint.
  std::exception_ptr io_failure;
  auto interrupt_requested = [&config]() -> bool {
    return config.interrupt_flag != nullptr && *config.interrupt_flag != 0;
  };

  // One instance per sample network, generated up front so runs can share
  // it (the factory owns all dataset-level randomness through the seed).
  // Samples whose cells are all checkpointed skip generation; a factory
  // that throws fails that sample's cells instead of the whole sweep.
  std::vector<std::optional<AccuInstance>> instances(config.samples);
  for (std::uint32_t sample = 0; sample < config.samples; ++sample) {
    if (interrupt_requested()) {
      interrupted.store(true, std::memory_order_release);
      stop.store(true, std::memory_order_release);
      break;
    }
    bool needed = false;
    for (std::uint32_t run = 0; run < config.runs; ++run) {
      needed |= !done[static_cast<std::size_t>(sample) * config.runs + run];
    }
    if (!needed) continue;
    try {
      instances[sample] =
          make_instance(sample, derive_seed(config.seed, sample));
      util::log_info("experiment: sample %u/%u generated (%.1fs elapsed)",
                     sample + 1, config.samples, timer.seconds());
    } catch (const std::exception& e) {
      result.failures.push_back(
          {sample, CellFailure::kAllRuns, CellFailure::Kind::kError, 1, 0.0,
           std::string("instance factory failed: ") + e.what()});
      util::log_warn("experiment: sample %u instance factory failed: %s",
                     sample, e.what());
    }
  }

  std::uint32_t workers = config.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<std::uint32_t>(
      std::min<std::size_t>(workers, owned_tasks == 0 ? 1 : owned_tasks));

  // Supervision state: one slot per worker holds the live attempt's cancel
  // token behind a mutex, so the watchdog can never cancel a stale token
  // that a later attempt is already reusing.
  struct CellSlot {
    std::mutex mu;
    std::shared_ptr<util::CancelToken> token;  // non-null while running
    std::chrono::steady_clock::time_point started{};
  };
  std::vector<CellSlot> slots(workers);
  std::atomic<std::uint32_t> cells_retried{0};

  // Per-worker reusable state: one SimWorkspace plus one long-lived strategy
  // set per thread, so a cell costs O(1) allocations instead of O(V+E).
  // Strategy::reset restores a fresh-construction state (tested), and the
  // retry decorator is re-keyed per cell, so reuse is byte-identical to the
  // old make-per-cell path.
  struct WorkerState {
    SimWorkspace ws;
    std::vector<std::unique_ptr<Strategy>> strategies;
    std::vector<RetryingStrategy*> retrying;  // non-null when wrapped
    std::vector<SimulationResult> outcomes;
  };
  std::vector<WorkerState> worker_states(workers);
  std::uint32_t cell_threads = config.cell_threads;
  if (cell_threads == 0) cell_threads = std::thread::hardware_concurrency();
  if (cell_threads == 0) cell_threads = 1;
  for (WorkerState& worker : worker_states) {
    worker.ws.set_cell_threads(cell_threads);
  }

  const bool faulty = config.faults.total_rate() > 0.0;
  auto run_task = [&](std::size_t task, CellSlot& slot, WorkerState& worker) {
    if (done[task]) return;
    if (worker.strategies.size() != strategies.size()) {
      worker.strategies.clear();
      worker.strategies.reserve(strategies.size());
      worker.retrying.assign(strategies.size(), nullptr);
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        std::unique_ptr<Strategy> strategy = strategies[s].make();
        if (config.retry.kind != util::RetryKind::kNone) {
          auto wrapped = std::make_unique<RetryingStrategy>(
              std::move(strategy), config.retry);
          worker.retrying[s] = wrapped.get();
          strategy = std::move(wrapped);
        }
        worker.strategies.push_back(std::move(strategy));
      }
      worker.outcomes.resize(strategies.size());
    }
    const std::uint32_t sample =
        static_cast<std::uint32_t>(task / config.runs);
    const std::uint32_t run = static_cast<std::uint32_t>(task % config.runs);
    if (!instances[sample].has_value()) return;  // factory failure, reported
    const AccuInstance& instance = *instances[sample];
    const std::uint32_t max_attempts = config.max_cell_retries + 1;
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      auto token = std::make_shared<util::CancelToken>();
      if (config.cell_deadline_ms > 0) {
        token->set_deadline_after(
            std::chrono::milliseconds(config.cell_deadline_ms));
      }
      {
        const std::lock_guard<std::mutex> lock(slot.mu);
        slot.token = token;
        slot.started = std::chrono::steady_clock::now();
      }
      util::Timer attempt_timer;
      auto release_slot = [&slot] {
        const std::lock_guard<std::mutex> lock(slot.mu);
        slot.token.reset();
      };
      bool cell_done = false;
      try {
        // Retried attempts re-derive the policy/fault/retry streams from a
        // fresh tag; the ground truth below stays on the original stream so
        // every policy still faces the same realization (paired design).
        const std::uint64_t stream_base =
            attempt == 0 ? config.seed
                         : derive_seed(config.seed ^ kCellRetrySalt, attempt);
        // One ground truth per (sample, run), shared by every policy.  The
        // workspace re-draws it into pooled storage, draw-for-draw identical
        // to Realization::sample.
        util::Rng truth_rng(derive_seed(config.seed, sample, run + 1));
        const Realization& truth =
            worker.ws.sample_truth(instance, truth_rng);
        for (std::size_t s = 0; s < strategies.size(); ++s) {
          util::Rng policy_rng(
              derive_seed(stream_base, sample, run + 1, s + 1));
          Strategy& strategy = *worker.strategies[s];
          if (worker.retrying[s] != nullptr) {
            worker.retrying[s]->reseed(derive_seed(
                stream_base ^ kRetryStreamSalt, sample, run + 1, s + 1));
          }
          AttackerView& view = worker.ws.reset_view(instance);
          if (faulty) {
            FaultModel faults(config.faults,
                              derive_seed(stream_base ^ kFaultStreamSalt,
                                          sample, run + 1, s + 1));
            simulate_with_faults_into(instance, truth, strategy,
                                      config.budget, policy_rng, faults, view,
                                      worker.ws, worker.outcomes[s],
                                      token.get(), config.feedback);
          } else {
            simulate_into(instance, truth, strategy, config.budget,
                          policy_rng, view, worker.ws, worker.outcomes[s],
                          token.get(), config.feedback);
          }
          partials[task][s].add(worker.outcomes[s], config.budget);
        }
        release_slot();
        cell_done = true;
      } catch (const util::CancelledError& e) {
        release_slot();
        // A cancelled attempt never leaves a half-aggregated trace behind.
        for (std::size_t s = 0; s < strategies.size(); ++s) {
          partials[task][s] = TraceAggregator();
        }
        const double elapsed = attempt_timer.milliseconds();
        const bool deadline =
            e.reason() == util::CancelReason::kDeadline &&
            !interrupted.load(std::memory_order_acquire);
        if (deadline && attempt + 1 < max_attempts) {
          if (attempt == 0) {
            cells_retried.fetch_add(1, std::memory_order_relaxed);
          }
          util::log_warn(
              "experiment: cell (sample %u, run %u) exceeded its %ums "
              "deadline after %.0fms; retrying with a fresh seed stream "
              "(attempt %u of %u)",
              sample, run, config.cell_deadline_ms, elapsed, attempt + 2,
              max_attempts);
          continue;
        }
        CellFailure failure;
        failure.sample = sample;
        failure.run = run;
        failure.kind = deadline ? CellFailure::Kind::kDeadline
                                : CellFailure::Kind::kCancelled;
        failure.attempts = attempt + 1;
        failure.elapsed_ms = elapsed;
        failure.error = e.what();
        const std::lock_guard<std::mutex> lock(failure_mutex);
        result.failures.push_back(std::move(failure));
        return;
      } catch (const std::exception& e) {
        release_slot();
        // Surface the failure per cell instead of crashing the sweep; wipe
        // any half-filled partials so surviving cells aggregate cleanly.
        for (std::size_t s = 0; s < strategies.size(); ++s) {
          partials[task][s] = TraceAggregator();
        }
        CellFailure failure;
        failure.sample = sample;
        failure.run = run;
        failure.attempts = attempt + 1;
        failure.elapsed_ms = attempt_timer.milliseconds();
        failure.error = e.what();
        const std::lock_guard<std::mutex> lock(failure_mutex);
        result.failures.push_back(std::move(failure));
        return;
      }
      // Deliberately outside the per-cell catch: a checkpoint append that
      // throws (DiskFullError, a poisoned sync) is a durability loss, not
      // a cell failure — it propagates to the pool driver, which stops the
      // sweep and rethrows after the drain.
      if (cell_done) {
        if (checkpoint_out.is_open()) {
          const std::string block = serialize_cell(task, worker.outcomes);
          const std::lock_guard<std::mutex> lock(checkpoint_mutex);
          checkpoint_out.append_record(block);
        }
        report_progress(1, attempt_timer.milliseconds(),
                        /*restored_cells=*/false);
        return;
      }
    }
  };

  // Pool driver: runs one cell, converting a checkpoint-I/O exception into
  // a sweep-wide stop (worker threads must not leak exceptions).
  auto drive_task = [&](std::size_t task, CellSlot& slot,
                        WorkerState& worker) {
    try {
      run_task(task, slot, worker);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (!io_failure) io_failure = std::current_exception();
      stop.store(true, std::memory_order_release);
    }
  };

  // Watchdog: polls the external interrupt flag and the per-slot clocks.
  // An interrupted sweep cancels every in-flight cell and claims no new
  // ones; a cell past its deadline is cancelled (the token's own deadline
  // check backs this up, so supervision works even if the watchdog lags).
  std::atomic<bool> watchdog_exit{false};
  std::thread watchdog;
  const bool supervised =
      config.cell_deadline_ms > 0 || config.interrupt_flag != nullptr;
  if (supervised) {
    watchdog = std::thread([&] {
      const auto deadline =
          std::chrono::milliseconds(config.cell_deadline_ms);
      while (!watchdog_exit.load(std::memory_order_acquire)) {
        if (interrupt_requested()) {
          if (!interrupted.exchange(true, std::memory_order_acq_rel)) {
            stop.store(true, std::memory_order_release);
            util::log_warn(
                "experiment: interrupt received — cancelling in-flight "
                "cells and flushing the checkpoint");
          }
          for (CellSlot& slot : slots) {
            const std::lock_guard<std::mutex> lock(slot.mu);
            if (slot.token) {
              slot.token->cancel(util::CancelReason::kInterrupt);
            }
          }
        }
        if (config.cell_deadline_ms > 0) {
          const auto now = std::chrono::steady_clock::now();
          for (CellSlot& slot : slots) {
            const std::lock_guard<std::mutex> lock(slot.mu);
            if (slot.token && now - slot.started >= deadline) {
              slot.token->cancel(util::CancelReason::kDeadline);
            }
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  if (workers <= 1) {
    for (std::size_t task = 0;
         task < tasks && !stop.load(std::memory_order_acquire); ++task) {
      drive_task(task, slots[0], worker_states[0]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (std::size_t task = next.fetch_add(1); task < tasks;
             task = next.fetch_add(1)) {
          if (stop.load(std::memory_order_acquire)) break;
          drive_task(task, slots[w], worker_states[w]);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }
  if (watchdog.joinable()) {
    watchdog_exit.store(true, std::memory_order_release);
    watchdog.join();
  }
  // Forced flush on every exit path — normal completion, interrupt drain,
  // deadline, failure — so grouped durability never leaves an acknowledged
  // stop with unsynced cells.  A flush failure joins the fail-stop path
  // unless an earlier I/O failure is already recorded.
  if (checkpoint_out.is_open()) {
    try {
      checkpoint_out.flush();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (!io_failure) io_failure = std::current_exception();
    }
    checkpoint_out.close();
  }
  if (io_failure) {
    util::log_warn(
        "experiment: checkpoint I/O failed — stopping the sweep; the "
        "checkpoint on disk is a valid prefix, rerun with the same "
        "--checkpoint to resume once the cause is fixed");
    std::rethrow_exception(io_failure);
  }

  // Deterministic merge order: task-major, strategy-minor.
  for (std::size_t task = 0; task < tasks; ++task) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      result.aggregates[s].merge(partials[task][s]);
    }
  }
  result.cells_retried = cells_retried.load(std::memory_order_relaxed);
  result.interrupted = interrupted.load(std::memory_order_acquire);
  if (result.interrupted) {
    util::log_warn(
        "experiment: sweep interrupted before completion%s",
        config.checkpoint_path.empty()
            ? " (no checkpoint configured: partial results are lost)"
            : "; completed cells are checkpointed — rerun with the same "
              "checkpoint to resume");
  }
  if (!result.failures.empty()) {
    util::log_warn("experiment: %zu of %zu cells failed (see "
                   "ExperimentResult::failures)",
                   result.failures.size(), tasks);
  }
  util::log_info("experiment: %zu cells × %zu strategies done in %.1fs",
                 owned_tasks, strategies.size(), timer.seconds());
  return result;
}

ShardMergeOutcome merge_shard_checkpoints(
    const std::vector<std::string>& paths,
    const std::string& merged_output_path) {
  if (paths.empty()) {
    throw InvalidArgument("merge_shard_checkpoints: no checkpoint files");
  }
  ShardMergeOutcome out;
  out.shard_cells.reserve(paths.size());
  CheckpointFingerprint base;
  bool have_base = false;
  std::size_t tasks = 0;
  // Per-task state, filled first-wins across the inputs: the re-serialized
  // v2 block (for the merged output file) and the per-strategy partial
  // aggregates — the same per-cell partials run_experiment builds, so the
  // final task-major/strategy-minor merge below replays the exact
  // TraceAggregator operation sequence of an unsharded sequential sweep.
  std::vector<std::string> blocks;
  std::vector<std::vector<TraceAggregator>> partials;
  std::vector<bool> have;
  for (const std::string& path : paths) {
    CheckpointFingerprint parsed;
    std::size_t cells_here = 0;
    (void)load_checkpoint(
        path, parsed,
        [&] {
          if (!have_base) {
            base = parsed;
            have_base = true;
            tasks = static_cast<std::size_t>(base.samples) * base.runs;
            blocks.assign(tasks, std::string());
            partials.assign(
                tasks, std::vector<TraceAggregator>(base.names.size()));
            have.assign(tasks, false);
          } else {
            // Same experiment required; shard identities may differ and
            // may overlap (duplicates are deterministic, first copy wins).
            check_fingerprint(path, parsed, base, /*check_shard=*/false);
          }
        },
        [&](std::size_t task, std::vector<SimulationResult>&& outcomes) {
          ++cells_here;
          if (have[task]) {
            ++out.duplicate_cells;
            return;
          }
          have[task] = true;
          for (std::size_t s = 0; s < outcomes.size(); ++s) {
            partials[task][s].add(outcomes[s], base.budget);
          }
          blocks[task] = serialize_cell(task, outcomes);
          ++out.cells_merged;
        });
    out.shard_cells.push_back(cells_here);
  }

  out.config.budget = base.budget;
  out.config.samples = base.samples;
  out.config.runs = base.runs;
  out.config.seed = base.seed;
  out.config.faults = base.faults;
  out.config.retry = base.retry;
  out.config.feedback = base.feedback;
  out.result.strategy_names = base.names;
  out.result.aggregates.resize(base.names.size());
  // Deterministic merge order: task-major, strategy-minor — identical to
  // run_experiment, hence bit-identical aggregates when no cell is missing.
  for (std::size_t task = 0; task < tasks; ++task) {
    if (!have[task]) {
      ++out.cells_missing;
      continue;
    }
    for (std::size_t s = 0; s < base.names.size(); ++s) {
      out.result.aggregates[s].merge(partials[task][s]);
    }
  }
  if (out.cells_missing > 0) {
    util::log_warn(
        "merge: %zu of %zu grid cells missing from the inputs — run the "
        "absent shards (or resume the torn ones) and re-merge",
        out.cells_missing, tasks);
  }
  if (!merged_output_path.empty()) {
    // The merged file is an ordinary unsharded checkpoint: blocks in task
    // order under a shard 0/1 header, resumable by run_experiment (missing
    // cells simply re-run there).
    CheckpointFingerprint merged_fp = base;
    merged_fp.shard_index = 0;
    merged_fp.shard_count = 1;
    std::string text = checkpoint_header(merged_fp);
    for (std::size_t task = 0; task < tasks; ++task) text += blocks[task];
    util::write_file_atomic(merged_output_path, text);
  }
  return out;
}

}  // namespace accu
