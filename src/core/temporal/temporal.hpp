// Temporal ACCU: attacking a *growing* network (future-work extension).
//
// The paper's model crawls a static snapshot.  Real OSNs grow while a
// long-running attack is in flight, which changes the calculus: requests
// spent early commit budget before the most valuable users exist, while
// waiting wastes rounds.  This module adds the minimal temporal semantics
// on top of the core:
//
//   * every user has an arrival round; a potential edge exists once both
//     endpoints have arrived;
//   * one friend request per round (the adaptive loop's natural clock);
//   * only arrived users can be requested, count as friends-of-friends, or
//     contribute benefit;
//   * friend lists stay visible: when a user arrives, its realized edges
//     to *existing friends* of the attacker are revealed immediately (the
//     attacker watches its friends' contact lists), exactly as edges to
//     already-arrived neighbors are revealed at acceptance time.
//
// With an all-zero schedule the semantics — and, as tested, the ABM
// decision sequence — reduce to the static simulator's.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace accu {

/// Per-node arrival rounds.  Round r means: present before the (r+1)-th
/// friend request is chosen; round 0 = present from the start.
class ArrivalSchedule {
 public:
  /// All nodes present from round 0.
  static ArrivalSchedule all_at_start(NodeId num_nodes);

  /// A random fraction `late_fraction` of nodes arrives uniformly over
  /// rounds [1, horizon]; the rest are present from the start.
  static ArrivalSchedule uniform_arrivals(NodeId num_nodes,
                                          double late_fraction,
                                          std::uint32_t horizon,
                                          util::Rng& rng);

  explicit ArrivalSchedule(std::vector<std::uint32_t> arrival_round);

  [[nodiscard]] std::uint32_t arrival_round(NodeId v) const {
    ACCU_ASSERT(v < rounds_.size());
    return rounds_[v];
  }
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(rounds_.size());
  }

 private:
  std::vector<std::uint32_t> rounds_;
};

/// The attacker's knowledge state over a growing network.  Mirrors
/// AttackerView's queries, restricted to arrived users, plus activity.
class TemporalView {
 public:
  /// The schedule and realization are copied (they are plain bit/round
  /// vectors), so temporaries are safe; the instance must outlive the view.
  TemporalView(const AccuInstance& instance, ArrivalSchedule schedule,
               Realization truth);

  /// Advances the clock to `round`, activating arrivals and revealing
  /// their realized edges to current friends.  Monotone.
  void advance_to(std::uint32_t round);

  [[nodiscard]] std::uint32_t current_round() const noexcept {
    return round_;
  }
  [[nodiscard]] bool is_active(NodeId v) const {
    return schedule_.arrival_round(v) <= round_;
  }
  /// True once every user has arrived.
  [[nodiscard]] bool all_arrived() const noexcept {
    return next_arrival_ >= arrival_order_.size();
  }
  [[nodiscard]] bool is_requested(NodeId v) const {
    ACCU_ASSERT(v < requested_.size());
    return requested_[v];
  }
  [[nodiscard]] bool is_friend(NodeId v) const {
    ACCU_ASSERT(v < friend_.size());
    return friend_[v];
  }
  /// FOF among *active* users only.
  [[nodiscard]] bool is_fof(NodeId v) const {
    return is_active(v) && !is_friend(v) && mutual_[v] > 0;
  }
  /// Realized mutual friends (both endpoints active and revealed).
  [[nodiscard]] std::uint32_t mutual_friends(NodeId v) const {
    ACCU_ASSERT(v < mutual_.size());
    return mutual_[v];
  }
  [[nodiscard]] EdgeState edge_state(EdgeId e) const {
    ACCU_ASSERT(e < edge_state_.size());
    return edge_state_[e];
  }
  /// Belief that edge e exists *and is usable now*: 0 for edges with an
  /// inactive endpoint, else prior/observed as in the static model.
  [[nodiscard]] double edge_belief(EdgeId e) const;

  [[nodiscard]] bool cautious_would_accept(NodeId v) const;

  /// Temporal runs are full-feedback only (the temporal entry point never
  /// takes a FeedbackModel), so the platform's test and the attacker's
  /// observed test coincide; resolve_acceptance calls this alias.
  [[nodiscard]] bool true_cautious_would_accept(NodeId v) const {
    return cautious_would_accept(v);
  }

  /// Eq.-(1) benefit over active users.
  [[nodiscard]] double current_benefit() const noexcept { return benefit_; }
  [[nodiscard]] double recompute_benefit() const;
  [[nodiscard]] std::uint32_t num_requests() const noexcept {
    return num_requests_;
  }
  [[nodiscard]] std::uint32_t num_cautious_friends() const noexcept {
    return num_cautious_friends_;
  }

  void record_rejection(NodeId v);
  void record_acceptance(NodeId v);

  [[nodiscard]] const AccuInstance& instance() const noexcept {
    return *instance_;
  }

 private:
  /// Reveals edge e (both endpoints must be active) and folds the
  /// observation into mutual/FOF/benefit bookkeeping.
  void reveal_edge(EdgeId e);

  const AccuInstance* instance_;
  ArrivalSchedule schedule_;
  Realization truth_;
  std::uint32_t round_ = 0;
  std::vector<bool> requested_;
  std::vector<bool> friend_;
  std::vector<EdgeState> edge_state_;
  std::vector<std::uint32_t> mutual_;
  // Nodes sorted by arrival round for O(n) total activation.
  std::vector<NodeId> arrival_order_;
  std::size_t next_arrival_ = 0;
  std::uint32_t num_requests_ = 0;
  std::uint32_t num_cautious_friends_ = 0;
  double benefit_ = 0.0;
};

/// A temporal policy: one request per round from the active candidates.
class TemporalStrategy {
 public:
  virtual ~TemporalStrategy() = default;
  virtual void reset(const AccuInstance& instance, util::Rng& rng) {
    (void)instance;
    (void)rng;
  }
  /// kInvalidNode = wait this round (spend the round, keep the request).
  virtual NodeId select(const TemporalView& view, util::Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// ABM's potential on the temporal view (reference-style recompute).
class TemporalAbm final : public TemporalStrategy {
 public:
  explicit TemporalAbm(PotentialWeights weights);
  void reset(const AccuInstance& instance, util::Rng& rng) override;
  NodeId select(const TemporalView& view, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double potential(const TemporalView& view, NodeId u) const;

 private:
  PotentialWeights weights_;
  const AccuInstance* instance_ = nullptr;
};

struct TemporalRequestRecord {
  std::uint32_t round = 0;
  NodeId target = kInvalidNode;  ///< kInvalidNode = waited
  bool accepted = false;
  bool cautious_target = false;
  double benefit_after = 0.0;
};

struct TemporalResult {
  std::vector<TemporalRequestRecord> trace;
  double total_benefit = 0.0;
  std::uint32_t num_cautious_friends = 0;
  std::uint32_t requests_sent = 0;
};

/// Runs `rounds` rounds (one request opportunity each, budget-capped at
/// `budget` actual requests) against the growing network.
[[nodiscard]] TemporalResult simulate_temporal(
    const AccuInstance& instance, const ArrivalSchedule& schedule,
    const Realization& truth, TemporalStrategy& strategy,
    std::uint32_t rounds, std::uint32_t budget, util::Rng& rng);

}  // namespace accu
