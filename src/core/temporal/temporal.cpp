#include "core/temporal/temporal.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/engine.hpp"

namespace accu {

ArrivalSchedule::ArrivalSchedule(std::vector<std::uint32_t> arrival_round)
    : rounds_(std::move(arrival_round)) {}

ArrivalSchedule ArrivalSchedule::all_at_start(NodeId num_nodes) {
  return ArrivalSchedule(std::vector<std::uint32_t>(num_nodes, 0));
}

ArrivalSchedule ArrivalSchedule::uniform_arrivals(NodeId num_nodes,
                                                  double late_fraction,
                                                  std::uint32_t horizon,
                                                  util::Rng& rng) {
  if (!(late_fraction >= 0.0 && late_fraction <= 1.0)) {
    throw InvalidArgument("uniform_arrivals: late_fraction outside [0,1]");
  }
  if (horizon == 0) {
    throw InvalidArgument("uniform_arrivals: horizon must be >= 1");
  }
  std::vector<std::uint32_t> rounds(num_nodes, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (rng.bernoulli(late_fraction)) {
      rounds[v] =
          1 + static_cast<std::uint32_t>(rng.below(horizon));
    }
  }
  return ArrivalSchedule(std::move(rounds));
}

TemporalView::TemporalView(const AccuInstance& instance,
                           ArrivalSchedule schedule, Realization truth)
    : instance_(&instance),
      schedule_(std::move(schedule)),
      truth_(std::move(truth)),
      requested_(instance.num_nodes(), false),
      friend_(instance.num_nodes(), false),
      edge_state_(instance.graph().num_edges(), EdgeState::kUnknown),
      mutual_(instance.num_nodes(), 0) {
  if (schedule_.num_nodes() != instance.num_nodes()) {
    throw InvalidArgument("TemporalView: schedule size mismatch");
  }
  arrival_order_.resize(instance.num_nodes());
  std::iota(arrival_order_.begin(), arrival_order_.end(), NodeId{0});
  std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                   [&](NodeId a, NodeId b) {
                     return schedule_.arrival_round(a) <
                            schedule_.arrival_round(b);
                   });
  advance_to(0);
}

void TemporalView::reveal_edge(EdgeId e) {
  if (edge_state_[e] != EdgeState::kUnknown) return;
  const bool present = truth_.edge_present(e);
  edge_state_[e] = present ? EdgeState::kPresent : EdgeState::kAbsent;
  if (!present) return;
  const BenefitModel& benefits = instance_->benefits();
  const graph::EdgeEndpoints ep = instance_->graph().endpoints(e);
  auto credit = [&](NodeId friend_side, NodeId other) {
    if (!friend_[friend_side]) return;
    const bool entered_fof =
        mutual_[other] == 0 && !friend_[other] && is_active(other);
    ++mutual_[other];
    if (entered_fof) benefit_ += benefits.fof_benefit(other);
  };
  credit(ep.lo, ep.hi);
  credit(ep.hi, ep.lo);
}

void TemporalView::advance_to(std::uint32_t round) {
  ACCU_ASSERT_MSG(round >= round_, "the clock is monotone");
  round_ = round;
  const Graph& g = instance_->graph();
  while (next_arrival_ < arrival_order_.size()) {
    const NodeId w = arrival_order_[next_arrival_];
    if (schedule_.arrival_round(w) > round_) break;
    ++next_arrival_;
    // The newcomer's realized links to existing friends become visible
    // (friend contact lists are public to the attacker).
    for (const graph::Neighbor& nb : g.neighbors(w)) {
      if (friend_[nb.node]) reveal_edge(nb.edge);
    }
  }
}

double TemporalView::edge_belief(EdgeId e) const {
  const graph::EdgeEndpoints ep = instance_->graph().endpoints(e);
  if (!is_active(ep.lo) || !is_active(ep.hi)) return 0.0;
  switch (edge_state(e)) {
    case EdgeState::kPresent:
      return 1.0;
    case EdgeState::kAbsent:
      return 0.0;
    case EdgeState::kUnknown:
      return instance_->graph().edge_prob(e);
  }
  return 0.0;  // unreachable
}

bool TemporalView::cautious_would_accept(NodeId v) const {
  ACCU_ASSERT(instance_->is_cautious(v));
  return mutual_friends(v) >= instance_->threshold(v);
}

void TemporalView::record_rejection(NodeId v) {
  ACCU_ASSERT_MSG(is_active(v), "cannot request a user that has not arrived");
  ACCU_ASSERT_MSG(!requested_[v], "each user receives at most one request");
  requested_[v] = true;
  ++num_requests_;
}

void TemporalView::record_acceptance(NodeId v) {
  ACCU_ASSERT_MSG(is_active(v), "cannot request a user that has not arrived");
  ACCU_ASSERT_MSG(!requested_[v], "each user receives at most one request");
  requested_[v] = true;
  ++num_requests_;
  const BenefitModel& benefits = instance_->benefits();
  const bool was_fof = mutual_[v] > 0;
  friend_[v] = true;
  if (instance_->is_cautious(v)) ++num_cautious_friends_;
  benefit_ += benefits.friend_benefit(v);
  if (was_fof) benefit_ -= benefits.fof_benefit(v);
  // Reveal the new friend's realized edges to *arrived* users; edges to
  // future users reveal at their arrival (advance_to).
  for (const graph::Neighbor& nb : instance_->graph().neighbors(v)) {
    if (is_active(nb.node)) reveal_edge(nb.edge);
  }
}

double TemporalView::recompute_benefit() const {
  const BenefitModel& benefits = instance_->benefits();
  double total = 0.0;
  for (NodeId v = 0; v < instance_->num_nodes(); ++v) {
    if (friend_[v]) {
      total += benefits.friend_benefit(v);
    } else if (is_fof(v)) {
      total += benefits.fof_benefit(v);
    }
  }
  return total;
}

TemporalAbm::TemporalAbm(PotentialWeights weights) : weights_(weights) {
  if (!(weights.direct >= 0.0) || !(weights.indirect >= 0.0)) {
    throw InvalidArgument("TemporalAbm: weights must be non-negative");
  }
}

std::string TemporalAbm::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "TemporalABM(wD=%.2f,wI=%.2f)",
                weights_.direct, weights_.indirect);
  return buf;
}

void TemporalAbm::reset(const AccuInstance& instance, util::Rng&) {
  instance_ = &instance;
}

double TemporalAbm::potential(const TemporalView& view, NodeId u) const {
  const AccuInstance& instance = view.instance();
  const double q =
      instance.is_cautious(u)
          ? instance.cautious_accept_prob(u, view.cautious_would_accept(u))
          : instance.accept_prob(u);
  if (q <= 0.0) return 0.0;
  const BenefitModel& benefits = instance.benefits();
  double direct = benefits.friend_benefit(u);
  if (view.is_fof(u)) direct -= benefits.fof_benefit(u);
  double indirect = 0.0;
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const NodeId v = nb.node;
    const double belief = view.edge_belief(nb.edge);  // 0 for unarrived v
    if (belief <= 0.0) continue;
    if (!view.is_friend(v) && !view.is_fof(v)) {
      direct += belief * benefits.fof_benefit(v);
    }
    if (weights_.indirect > 0.0 && instance.is_cautious(v) &&
        !view.is_requested(v)) {
      const std::uint32_t theta = instance.threshold(v);
      const std::uint32_t mutual = view.mutual_friends(v);
      if (mutual < theta) {
        indirect += belief * benefits.upgrade_gain(v) /
                    static_cast<double>(theta - mutual);
      }
    }
  }
  if (instance.is_cautious(u)) indirect = 0.0;
  return q * (weights_.direct * direct + weights_.indirect * indirect);
}

NodeId TemporalAbm::select(const TemporalView& view, util::Rng&) {
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  NodeId best = kInvalidNode;
  double best_value = 0.0;
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    if (!view.is_active(u) || view.is_requested(u)) continue;
    const double value = potential(view, u);
    if (best == kInvalidNode || value > best_value) {
      best = u;
      best_value = value;
    }
  }
  // When nothing useful is active but the network is still growing, wait
  // (keep the request for a better round).
  if (best != kInvalidNode && best_value <= 0.0 && !view.all_arrived()) {
    return kInvalidNode;
  }
  return best;
}

TemporalResult simulate_temporal(const AccuInstance& instance,
                                 const ArrivalSchedule& schedule,
                                 const Realization& truth,
                                 TemporalStrategy& strategy,
                                 std::uint32_t rounds, std::uint32_t budget,
                                 util::Rng& rng) {
  TemporalView view(instance, schedule, truth);
  TemporalResult result;
  strategy.reset(instance, rng);
  engine::TemporalEnv env(instance, truth, strategy, rounds, budget, rng,
                          view, result);
  engine::run_rounds(env);
  return result;
}

}  // namespace accu
