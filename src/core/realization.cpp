#include "core/realization.hpp"

namespace accu {

Realization::Realization(std::vector<bool> edge_present,
                         std::vector<bool> accepts)
    : edge_present_(std::move(edge_present)),
      accepts_(std::move(accepts)),
      cautious_below_(accepts_.size(), false),
      cautious_above_(accepts_.size(), true) {}

Realization::Realization(std::vector<bool> edge_present,
                         std::vector<bool> accepts,
                         std::vector<bool> cautious_below_accepts,
                         std::vector<bool> cautious_above_accepts)
    : edge_present_(std::move(edge_present)),
      accepts_(std::move(accepts)),
      cautious_below_(std::move(cautious_below_accepts)),
      cautious_above_(std::move(cautious_above_accepts)) {
  ACCU_ASSERT(cautious_below_.size() == accepts_.size());
  ACCU_ASSERT(cautious_above_.size() == accepts_.size());
}

Realization Realization::sample(const AccuInstance& instance,
                                util::Rng& rng) {
  Realization r;
  r.resample(instance, rng);
  return r;
}

void Realization::resample(const AccuInstance& instance, util::Rng& rng) {
  const Graph& g = instance.graph();
  edge_present_.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edge_present_[e] = rng.bernoulli(g.edge_prob(e));
  }
  accepts_.resize(g.num_nodes());
  cautious_below_.assign(g.num_nodes(), false);
  cautious_above_.assign(g.num_nodes(), true);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // Coins are drawn for every node to keep the realization's shape
    // independent of the partition; coins outside a user's model are never
    // read by the simulator.
    accepts_[u] = rng.bernoulli(instance.accept_prob(u));
    if (instance.is_cautious(u)) {
      cautious_below_[u] =
          rng.bernoulli(instance.cautious_accept_prob(u, false));
      cautious_above_[u] =
          rng.bernoulli(instance.cautious_accept_prob(u, true));
    }
  }
}

void Realization::assign(const std::vector<bool>& edge_present,
                         const std::vector<bool>& accepts) {
  edge_present_ = edge_present;  // copy-assign reuses capacity
  accepts_ = accepts;
  cautious_below_.assign(accepts.size(), false);
  cautious_above_.assign(accepts.size(), true);
}

Realization Realization::certain(const AccuInstance& instance) {
  const NodeId n = instance.graph().num_nodes();
  std::vector<bool> below(n, false);
  std::vector<bool> above(n, true);
  for (NodeId v = 0; v < n; ++v) {
    if (!instance.is_cautious(v)) continue;
    below[v] = instance.cautious_accept_prob(v, false) > 0.0;
    above[v] = instance.cautious_accept_prob(v, true) > 0.0;
  }
  return Realization(std::vector<bool>(instance.graph().num_edges(), true),
                     std::vector<bool>(n, true), std::move(below),
                     std::move(above));
}

std::uint32_t Realization::realized_degree(const Graph& g, NodeId v) const {
  std::uint32_t degree = 0;
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    if (edge_present(nb.edge)) ++degree;
  }
  return degree;
}

Graph realized_graph(const Graph& prior, const Realization& truth) {
  ACCU_ASSERT(truth.num_edges() == prior.num_edges());
  graph::GraphBuilder builder(prior.num_nodes());
  for (EdgeId e = 0; e < prior.num_edges(); ++e) {
    if (!truth.edge_present(e)) continue;
    const graph::EdgeEndpoints ep = prior.endpoints(e);
    builder.add_edge(ep.lo, ep.hi, 1.0);
  }
  return builder.build();
}

double Realization::probability(const AccuInstance& instance) const {
  const Graph& g = instance.graph();
  ACCU_ASSERT(edge_present_.size() == g.num_edges());
  ACCU_ASSERT(accepts_.size() == g.num_nodes());
  double prob = 1.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double p = g.edge_prob(e);
    prob *= edge_present_[e] ? p : (1.0 - p);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (instance.is_cautious(u)) {
      const double q1 = instance.cautious_accept_prob(u, false);
      const double q2 = instance.cautious_accept_prob(u, true);
      prob *= cautious_below_[u] ? q1 : (1.0 - q1);
      prob *= cautious_above_[u] ? q2 : (1.0 - q2);
      continue;
    }
    const double q = instance.accept_prob(u);
    prob *= accepts_[u] ? q : (1.0 - q);
  }
  return prob;
}

}  // namespace accu
