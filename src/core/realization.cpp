#include "core/realization.hpp"

#include <algorithm>

#include "core/score_simd.hpp"

namespace accu {

namespace {

/// OR-copies bits src[src_off .. src_off+n) onto dst[dst_off ..); the
/// destination range must hold zeros (the drawn positions of a draw-plan
/// template do).  Word-at-a-time with a funnel shift once dst is aligned.
void or_bit_range(const std::uint64_t* src, std::size_t src_off,
                  std::uint64_t* dst, std::size_t dst_off, std::size_t n) {
  std::size_t i = 0;
  for (; i < n && ((dst_off + i) & 63) != 0; ++i) {
    const std::size_t s = src_off + i;
    const std::uint64_t bit = (src[s >> 6] >> (s & 63)) & 1u;
    dst[(dst_off + i) >> 6] |= bit << ((dst_off + i) & 63);
  }
  for (; i + 64 <= n; i += 64) {
    const std::size_t s = src_off + i;
    const std::size_t w = s >> 6;
    const unsigned b = static_cast<unsigned>(s & 63);
    std::uint64_t bits = src[w] >> b;
    // When b > 0 the 64 bits span two source words, and i + 64 <= n
    // guarantees word w+1 exists.
    if (b != 0) bits |= src[w + 1] << (64 - b);
    dst[(dst_off + i) >> 6] |= bits;
  }
  for (; i < n; ++i) {
    const std::size_t s = src_off + i;
    const std::uint64_t bit = (src[s >> 6] >> (s & 63)) & 1u;
    dst[(dst_off + i) >> 6] |= bit << ((dst_off + i) & 63);
  }
}

}  // namespace

Realization::Realization(std::vector<bool> edge_present,
                         std::vector<bool> accepts) {
  edge_present_.copy_from(edge_present);
  accepts_.copy_from(accepts);
  cautious_below_.assign(accepts_.size(), false);
  cautious_above_.assign(accepts_.size(), true);
}

Realization::Realization(std::vector<bool> edge_present,
                         std::vector<bool> accepts,
                         std::vector<bool> cautious_below_accepts,
                         std::vector<bool> cautious_above_accepts) {
  edge_present_.copy_from(edge_present);
  accepts_.copy_from(accepts);
  cautious_below_.copy_from(cautious_below_accepts);
  cautious_above_.copy_from(cautious_above_accepts);
  ACCU_ASSERT(cautious_below_.size() == accepts_.size());
  ACCU_ASSERT(cautious_above_.size() == accepts_.size());
}

Realization Realization::from_bits(const util::BitVec& edge_present,
                                   const util::BitVec& accepts) {
  Realization r;
  r.assign(edge_present, accepts);
  return r;
}

Realization Realization::sample(const AccuInstance& instance,
                                util::Rng& rng) {
  Realization r;
  r.resample(instance, rng);
  return r;
}

void Realization::resample_reference(const AccuInstance& instance,
                                     util::Rng& rng) {
  const Graph& g = instance.graph();
  edge_present_.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edge_present_.set(e, rng.bernoulli(g.edge_prob(e)));
  }
  accepts_.resize(g.num_nodes());
  cautious_below_.assign(g.num_nodes(), false);
  cautious_above_.assign(g.num_nodes(), true);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // Coins are drawn for every node to keep the realization's shape
    // independent of the partition; coins outside a user's model are never
    // read by the simulator.
    accepts_.set(u, rng.bernoulli(instance.accept_prob(u)));
    if (instance.is_cautious(u)) {
      cautious_below_.set(
          u, rng.bernoulli(instance.cautious_accept_prob(u, false)));
      cautious_above_.set(
          u, rng.bernoulli(instance.cautious_accept_prob(u, true)));
    }
  }
}

void Realization::DrawPlan::build(const AccuInstance& instance) {
  const Graph& g = instance.graph();
  const NodeId n = g.num_nodes();
  uid = instance.uid();
  thresholds.clear();
  runs.clear();
  tmpl_[0].assign(util::BitVec::num_words(g.num_edges()), 0);
  tmpl_[1].assign(util::BitVec::num_words(n), 0);
  tmpl_[2].assign(util::BitVec::num_words(n), 0);
  tmpl_[3].assign(util::BitVec::num_words(n), ~0ull);  // reference default
  if (const std::size_t tail = n & 63; tail != 0 && !tmpl_[3].empty()) {
    tmpl_[3].back() &= (~0ull) >> (64 - tail);
  }

  // Replays the reference loop's event order, splitting each bernoulli(p)
  // into a deterministic template bit (p ≤ 0 / p ≥ 1 — no draw consumed)
  // or a thresholded draw appended to the schedule.
  const auto event = [&](std::uint8_t array, std::size_t bit, double p) {
    if (p <= 0.0) return;  // template already holds 0
    if (p >= 1.0) {
      tmpl_[array][bit >> 6] |= 1ull << (bit & 63);
      return;
    }
    const std::size_t draw = thresholds.size();
    thresholds.push_back(util::Rng::bernoulli_threshold(p));
    if (!runs.empty()) {
      Run& last = runs.back();
      if (last.array == array && last.dest_begin + last.count == bit) {
        // draw indices are consecutive by construction
        ++last.count;
        return;
      }
    }
    runs.push_back(Run{draw, 1, bit, array});
  };
  const auto clear_tmpl = [&](std::uint8_t array, std::size_t bit) {
    tmpl_[array][bit >> 6] &= ~(1ull << (bit & 63));
  };

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    event(0, e, g.edge_prob(e));
  }
  for (NodeId u = 0; u < n; ++u) {
    event(1, u, instance.accept_prob(u));
    if (instance.is_cautious(u)) {
      // The above-template defaults to 1 (the reference's assign(n, true));
      // a drawn or never-accepting q2 must start from 0.
      event(2, u, instance.cautious_accept_prob(u, false));
      const double q2 = instance.cautious_accept_prob(u, true);
      if (q2 < 1.0) clear_tmpl(3, u);
      event(3, u, q2);
    }
  }
  num_draws = thresholds.size();
}

void Realization::resample(const AccuInstance& instance, util::Rng& rng) {
  const Graph& g = instance.graph();
  if (plan_.uid != instance.uid()) plan_.build(instance);
  const NodeId n = g.num_nodes();
  edge_present_.resize(g.num_edges());
  accepts_.resize(n);
  cautious_below_.resize(n);
  cautious_above_.resize(n);

  // Deterministic outcomes first; drawn positions are zero in the templates
  // so the scatter below can OR the packed bits straight in.
  std::uint64_t* dest[4] = {
      edge_present_.words().data(), accepts_.words().data(),
      cautious_below_.words().data(), cautious_above_.words().data()};
  for (int a = 0; a < 4; ++a) {
    std::copy(plan_.tmpl_[a].begin(), plan_.tmpl_[a].end(), dest[a]);
  }

  raw_.resize(plan_.num_draws);
  packed_.resize(util::BitVec::num_words(plan_.num_draws));
  rng.fill_raw(raw_.data(), plan_.num_draws);  // same stream + end state as
                                               // the reference's draw loop
  simd::kernels().bernoulli_pack(raw_.data(), plan_.thresholds.data(),
                                 plan_.num_draws, packed_.data());
  for (const DrawPlan::Run& run : plan_.runs) {
    or_bit_range(packed_.data(), run.draw_begin, dest[run.array],
                 run.dest_begin, run.count);
  }
}

void Realization::assign(const std::vector<bool>& edge_present,
                         const std::vector<bool>& accepts) {
  edge_present_.copy_from(edge_present);
  accepts_.copy_from(accepts);
  cautious_below_.assign(accepts_.size(), false);
  cautious_above_.assign(accepts_.size(), true);
}

void Realization::assign(const util::BitVec& edge_present,
                         const util::BitVec& accepts) {
  edge_present_.copy_from(edge_present);
  accepts_.copy_from(accepts);
  cautious_below_.assign(accepts_.size(), false);
  cautious_above_.assign(accepts_.size(), true);
}

Realization Realization::certain(const AccuInstance& instance) {
  const NodeId n = instance.graph().num_nodes();
  std::vector<bool> below(n, false);
  std::vector<bool> above(n, true);
  for (NodeId v = 0; v < n; ++v) {
    if (!instance.is_cautious(v)) continue;
    below[v] = instance.cautious_accept_prob(v, false) > 0.0;
    above[v] = instance.cautious_accept_prob(v, true) > 0.0;
  }
  return Realization(std::vector<bool>(instance.graph().num_edges(), true),
                     std::vector<bool>(n, true), std::move(below),
                     std::move(above));
}

std::uint32_t Realization::realized_degree(const Graph& g, NodeId v) const {
  std::uint32_t degree = 0;
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    if (edge_present(nb.edge)) ++degree;
  }
  return degree;
}

Graph realized_graph(const Graph& prior, const Realization& truth) {
  ACCU_ASSERT(truth.num_edges() == prior.num_edges());
  graph::GraphBuilder builder(prior.num_nodes());
  for (EdgeId e = 0; e < prior.num_edges(); ++e) {
    if (!truth.edge_present(e)) continue;
    const graph::EdgeEndpoints ep = prior.endpoints(e);
    builder.add_edge(ep.lo, ep.hi, 1.0);
  }
  return builder.build();
}

double Realization::probability(const AccuInstance& instance) const {
  const Graph& g = instance.graph();
  ACCU_ASSERT(edge_present_.size() == g.num_edges());
  ACCU_ASSERT(accepts_.size() == g.num_nodes());
  double prob = 1.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double p = g.edge_prob(e);
    prob *= edge_present_.get(e) ? p : (1.0 - p);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (instance.is_cautious(u)) {
      const double q1 = instance.cautious_accept_prob(u, false);
      const double q2 = instance.cautious_accept_prob(u, true);
      prob *= cautious_below_.get(u) ? q1 : (1.0 - q1);
      prob *= cautious_above_.get(u) ? q2 : (1.0 - q2);
      continue;
    }
    const double q = instance.accept_prob(u);
    prob *= accepts_.get(u) ? q : (1.0 - q);
  }
  return prob;
}

}  // namespace accu
