// Feedback models — how much of the network a successful friend request
// reveals, and when (DESIGN.md §15).
//
// The paper assumes *full* feedback: the instant u accepts, u's entire
// neighborhood realization becomes visible to the attacker (§II-B).  The
// adaptive-submodularity literature the paper builds on (Golovin & Krause;
// Peng & Chen's myopic feedback; Tong's general feedback models — see
// PAPERS.md) studies the spectrum between that fully-adaptive extreme and
// the non-adaptive one.  FeedbackModel makes the axis a first-class,
// pluggable policy:
//
//  * full     — status quo.  Acceptance reveals the accepted node's whole
//               incident edge realization immediately.
//  * myopic   — only the accepted edge is revealed, never the
//               neighborhood.  Observed mutual-friend counts stay 0, so
//               the attacker must reason with *believed* (prior-weighted)
//               estimates; see AttackerView::believed_mutual_friends.
//  * delayed  — acceptance is visible immediately (the platform confirms
//               the friendship), but the neighborhood revelation lands
//               `param` rounds later, modeling crawl/API latency.
//  * batched  — revelations land at batch boundaries: everything accepted
//               inside batch b becomes visible when round b·param starts.
//               Retroactively justifies BatchedAbmStrategy, whose decisions
//               are stale by construction.
//
// Degenerate parameters collapse onto full by *definition*, not by
// equivalence proof: delayed with d = 0 and batched with batch <= 1 are
// normalized to kFull in is_full(), so they execute the identical code
// path and are trivially bit-identical to the status quo.

#pragma once

#include <cstdint>
#include <string>

namespace accu {

enum class FeedbackKind : std::uint8_t {
  kFull = 0,
  kMyopic = 1,
  kDelayed = 2,
  kBatched = 3,
};

/// One point on the feedback axis.  `param` is the delay in rounds
/// (delayed) or the batch size in rounds (batched); ignored for
/// full/myopic.  Value-semantic and totally ordered by (kind, param) so it
/// can sit in configs and checkpoint fingerprints.
struct FeedbackModel {
  FeedbackKind kind = FeedbackKind::kFull;
  std::uint32_t param = 0;

  /// True when this model behaves exactly like the paper's full feedback:
  /// kFull itself, delayed(0), and batched(<=1).  Every consumer branches
  /// on is_full() rather than kind so the degenerate parameters share the
  /// status-quo code path byte-for-byte.
  [[nodiscard]] bool is_full() const noexcept {
    switch (kind) {
      case FeedbackKind::kFull:
      case FeedbackKind::kMyopic:
        return kind == FeedbackKind::kFull;
      case FeedbackKind::kDelayed:
        return param == 0;
      case FeedbackKind::kBatched:
        return param <= 1;
    }
    return true;
  }

  /// Round at which the neighborhood of a node accepted in `round` becomes
  /// visible.  Only meaningful for delayed/batched (myopic never delivers,
  /// full delivers inline).  Rounds are the environment's clock — request
  /// count for ReliableEnv, attacker actions for FaultyEnv.
  [[nodiscard]] std::uint64_t due_round(std::uint64_t round) const noexcept {
    if (kind == FeedbackKind::kDelayed) return round + param;
    // Batched: the first boundary strictly after `round`.
    return (round / param + 1) * static_cast<std::uint64_t>(param);
  }

  /// Canonical spec string: "full", "myopic", "delayed:3", "batched:10".
  [[nodiscard]] std::string spec() const;

  /// Parses a model name ("full" | "myopic" | "delayed" | "batched") plus
  /// the separately-supplied parameter (--feedback-delay).  Unknown names
  /// throw InvalidArgument with a did-you-mean hint; delayed/batched with
  /// param == 0 throw (use --feedback=full to mean "no delay" explicitly
  /// — a silent zero hides a forgotten --feedback-delay).  `spec` may also
  /// carry an inline parameter ("delayed:3"), which wins over `param`.
  [[nodiscard]] static FeedbackModel parse(const std::string& spec,
                                           std::uint32_t param = 0);

  friend bool operator==(const FeedbackModel& a,
                         const FeedbackModel& b) noexcept {
    // Normalize before comparing so delayed(0) == full == batched(1).
    if (a.is_full() && b.is_full()) return true;
    return a.kind == b.kind && a.param == b.param;
  }
  friend bool operator!=(const FeedbackModel& a,
                         const FeedbackModel& b) noexcept {
    return !(a == b);
  }
};

}  // namespace accu
