// Coalition knowledge state for multi-bot attacks (extension; cf. the
// paper's reference [5], "Adaptive crawling with multiple bots",
// INFOCOM 2018).
//
// m colluding socialbots share every observation (a user accepted by any
// bot reveals its neighborhood to the whole coalition) but hold *separate*
// friend lists: a cautious user v accepts bot i iff v's realized mutual
// friends with *that bot* reach θ_v, so mutual-friend progress does not
// pool across bots — the structural reason a bot swarm can be weaker
// against cautious users than one persistent bot, which
// bench/ext_multibot measures.
//
// Benefit is coalition-level information access (Eq. 1 over the union):
// a user pays B_f once if it is a friend of at least one bot and B_fof
// once if it is adjacent to some bot's friend while friend of none.

#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"

namespace accu {

using BotId = std::uint32_t;

class MultiBotView {
 public:
  MultiBotView(const AccuInstance& instance, BotId num_bots);

  [[nodiscard]] BotId num_bots() const noexcept { return num_bots_; }

  /// Whether bot `bot` already sent user `v` a request.
  [[nodiscard]] bool is_requested_by(BotId bot, NodeId v) const {
    return request_state(bot, v) != RequestState::kUnknown;
  }
  [[nodiscard]] RequestState request_state(BotId bot, NodeId v) const;

  /// Whether v is a friend of bot `bot` / of any bot.
  [[nodiscard]] bool is_friend_of(BotId bot, NodeId v) const {
    return request_state(bot, v) == RequestState::kAccepted;
  }
  /// Number of bots v is a friend of (0 = not in the coalition's F).
  [[nodiscard]] std::uint32_t friend_count(NodeId v) const {
    ACCU_ASSERT(v < friend_count_.size());
    return friend_count_[v];
  }

  /// Coalition FOF: adjacent (realized) to some bot's friend and friend of
  /// no bot.
  [[nodiscard]] bool is_fof(NodeId v) const {
    return friend_count(v) == 0 && covering_friends_[v] > 0;
  }

  /// |N(v) ∩ N(s_bot)| in the realized graph — exact, since friends'
  /// neighborhoods are revealed to the coalition.
  [[nodiscard]] std::uint32_t mutual_friends(BotId bot, NodeId v) const;

  [[nodiscard]] EdgeState edge_state(EdgeId e) const {
    ACCU_ASSERT(e < edge_state_.size());
    return edge_state_[e];
  }
  [[nodiscard]] double edge_belief(EdgeId e) const;

  /// Deterministic threshold test for cautious v against bot `bot`.
  [[nodiscard]] bool cautious_would_accept(BotId bot, NodeId v) const;

  void record_rejection(BotId bot, NodeId v);
  void record_acceptance(BotId bot, NodeId v, const Realization& truth);

  /// Coalition benefit per Eq. (1) over the union of friend sets,
  /// maintained incrementally.
  [[nodiscard]] double current_benefit() const noexcept { return benefit_; }
  /// O(V) recomputation used by the property tests.
  [[nodiscard]] double recompute_benefit() const;

  [[nodiscard]] std::uint32_t num_requests() const noexcept {
    return num_requests_;
  }
  /// Users that are friends of at least one bot, in acceptance order.
  [[nodiscard]] const std::vector<NodeId>& coalition_friends() const noexcept {
    return coalition_friends_;
  }
  [[nodiscard]] std::uint32_t num_cautious_friends() const noexcept {
    return num_cautious_friends_;
  }

  [[nodiscard]] const AccuInstance& instance() const noexcept {
    return *instance_;
  }

 private:
  const AccuInstance* instance_;
  BotId num_bots_;
  // Indexed [bot * n + v].
  std::vector<RequestState> request_state_;
  std::vector<std::uint32_t> mutual_;
  // Shared observations.
  std::vector<EdgeState> edge_state_;
  std::vector<std::uint32_t> friend_count_;      // bots that befriended v
  std::vector<std::uint32_t> covering_friends_;  // realized coalition-friend
                                                 // neighbors of v
  std::vector<NodeId> coalition_friends_;
  std::uint32_t num_requests_ = 0;
  std::uint32_t num_cautious_friends_ = 0;
  double benefit_ = 0.0;
};

}  // namespace accu
