// Multi-bot attack simulation (extension; cf. paper reference [5]).
//
// m colluding bots take turns in rounds: every round each bot sends one
// friend request (so an attack of total budget k completes in ⌈k/m⌉
// interaction rounds — the latency argument for bot swarms), observations
// are shared coalition-wide, friendships and cautious thresholds are
// per-bot (see multibot_view.hpp).
//
// `MultiBotAbm` ports ABM's potential function to the coalition benefit:
// a user already befriended by some bot carries no direct gain for a
// second bot (the coalition's information access cannot improve), only the
// indirect value of raising that second bot's own mutual-friend counts
// toward cautious thresholds.
//
// Restriction: the multi-bot machinery covers the deterministic cautious
// model (the paper's main text), not the generalized q1/q2 variant.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/multibot/multibot_view.hpp"
#include "util/rng.hpp"

namespace accu {

/// Ground truth for a coalition attack: shared edge realization plus one
/// independent acceptance coin per (bot, user) pair — a user decides each
/// bot's request independently.
class MultiBotRealization {
 public:
  /// Samples edges once and a coin matrix of `num_bots` rows.
  static MultiBotRealization sample(const AccuInstance& instance,
                                    BotId num_bots, util::Rng& rng);

  /// Adapts a single-bot realization (bot 0 reuses its coins; useful for
  /// comparing m = 1 against the single-bot simulator).
  static MultiBotRealization from_single(const AccuInstance& instance,
                                         const Realization& truth);

  [[nodiscard]] const Realization& edges() const noexcept { return base_; }
  [[nodiscard]] BotId num_bots() const noexcept {
    return static_cast<BotId>(coins_.size());
  }
  [[nodiscard]] bool reckless_accepts(BotId bot, NodeId u) const {
    ACCU_ASSERT(bot < coins_.size());
    ACCU_ASSERT(u < coins_[bot].size());
    return coins_[bot][u];
  }

 private:
  MultiBotRealization(Realization base,
                      std::vector<std::vector<bool>> coins)
      : base_(std::move(base)), coins_(std::move(coins)) {}

  Realization base_;
  std::vector<std::vector<bool>> coins_;  // [bot][node]
};

/// A coalition policy: picks the next target for the given bot (or
/// kInvalidNode to pass this round).
class MultiBotStrategy {
 public:
  virtual ~MultiBotStrategy() = default;
  virtual void reset(const AccuInstance& instance, BotId num_bots,
                     util::Rng& rng) {
    (void)instance;
    (void)num_bots;
    (void)rng;
  }
  virtual NodeId select(BotId bot, const MultiBotView& view,
                        util::Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// ABM's potential function on the coalition state (see header comment).
class MultiBotAbm final : public MultiBotStrategy {
 public:
  explicit MultiBotAbm(PotentialWeights weights);

  void reset(const AccuInstance& instance, BotId num_bots,
             util::Rng& rng) override;
  NodeId select(BotId bot, const MultiBotView& view, util::Rng& rng) override;
  [[nodiscard]] std::string name() const override;

  /// The coalition potential of requesting u from `bot` (public for tests).
  [[nodiscard]] double potential(BotId bot, const MultiBotView& view,
                                 NodeId u) const;
  [[nodiscard]] static double direct_gain(const MultiBotView& view, NodeId u);
  [[nodiscard]] static double indirect_gain(BotId bot,
                                            const MultiBotView& view,
                                            NodeId u);

 private:
  PotentialWeights weights_;
  const AccuInstance* instance_ = nullptr;
};

struct MultiBotRequestRecord {
  BotId bot = 0;
  NodeId target = kInvalidNode;
  bool accepted = false;
  bool cautious_target = false;
  double benefit_before = 0.0;
  double benefit_after = 0.0;
  [[nodiscard]] double marginal() const noexcept {
    return benefit_after - benefit_before;
  }
};

struct MultiBotResult {
  std::vector<MultiBotRequestRecord> trace;
  double total_benefit = 0.0;
  std::uint32_t rounds = 0;
  std::uint32_t num_cautious_friends = 0;
  std::vector<NodeId> coalition_friends;
};

/// Runs a round-robin coalition attack with at most `budget` total
/// requests.  Stops early when every bot passes in a full round.
[[nodiscard]] MultiBotResult simulate_multibot(
    const AccuInstance& instance, const MultiBotRealization& truth,
    MultiBotStrategy& strategy, std::uint32_t budget, BotId num_bots,
    util::Rng& rng);

}  // namespace accu
