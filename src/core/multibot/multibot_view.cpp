#include "core/multibot/multibot_view.hpp"

namespace accu {

MultiBotView::MultiBotView(const AccuInstance& instance, BotId num_bots)
    : instance_(&instance),
      num_bots_(num_bots),
      request_state_(static_cast<std::size_t>(num_bots) *
                         instance.num_nodes(),
                     RequestState::kUnknown),
      mutual_(static_cast<std::size_t>(num_bots) * instance.num_nodes(), 0),
      edge_state_(instance.graph().num_edges(), EdgeState::kUnknown),
      friend_count_(instance.num_nodes(), 0),
      covering_friends_(instance.num_nodes(), 0) {
  if (num_bots == 0) {
    throw InvalidArgument("MultiBotView: need at least one bot");
  }
}

RequestState MultiBotView::request_state(BotId bot, NodeId v) const {
  ACCU_ASSERT(bot < num_bots_ && v < instance_->num_nodes());
  return request_state_[static_cast<std::size_t>(bot) *
                            instance_->num_nodes() +
                        v];
}

std::uint32_t MultiBotView::mutual_friends(BotId bot, NodeId v) const {
  ACCU_ASSERT(bot < num_bots_ && v < instance_->num_nodes());
  return mutual_[static_cast<std::size_t>(bot) * instance_->num_nodes() + v];
}

double MultiBotView::edge_belief(EdgeId e) const {
  switch (edge_state(e)) {
    case EdgeState::kPresent:
      return 1.0;
    case EdgeState::kAbsent:
      return 0.0;
    case EdgeState::kUnknown:
      return instance_->graph().edge_prob(e);
  }
  return 0.0;  // unreachable
}

bool MultiBotView::cautious_would_accept(BotId bot, NodeId v) const {
  ACCU_ASSERT(instance_->is_cautious(v));
  return mutual_friends(bot, v) >= instance_->threshold(v);
}

void MultiBotView::record_rejection(BotId bot, NodeId v) {
  ACCU_ASSERT_MSG(request_state(bot, v) == RequestState::kUnknown,
                  "each user receives at most one request per bot");
  request_state_[static_cast<std::size_t>(bot) * instance_->num_nodes() + v] =
      RequestState::kRejected;
  ++num_requests_;
}

void MultiBotView::record_acceptance(BotId bot, NodeId v,
                                     const Realization& truth) {
  ACCU_ASSERT_MSG(request_state(bot, v) == RequestState::kUnknown,
                  "each user receives at most one request per bot");
  const Graph& g = instance_->graph();
  const BenefitModel& benefits = instance_->benefits();
  const std::size_t n = instance_->num_nodes();
  request_state_[static_cast<std::size_t>(bot) * n + v] =
      RequestState::kAccepted;
  ++num_requests_;

  const bool first_friendship = friend_count_[v] == 0;
  if (first_friendship) {
    if (is_fof(v)) benefit_ -= benefits.fof_benefit(v);
    benefit_ += benefits.friend_benefit(v);
    coalition_friends_.push_back(v);
    if (instance_->is_cautious(v)) ++num_cautious_friends_;
  }
  ++friend_count_[v];

  // Reveal v's incident edges (idempotent when v is already someone's
  // friend) and update this bot's mutual counts; coalition-level FOF and
  // covering counts move only on the first friendship.
  for (const graph::Neighbor& nb : g.neighbors(v)) {
    const bool present = truth.edge_present(nb.edge);
    const EdgeState observed =
        present ? EdgeState::kPresent : EdgeState::kAbsent;
    ACCU_ASSERT_MSG(edge_state_[nb.edge] == EdgeState::kUnknown ||
                        edge_state_[nb.edge] == observed,
                    "realization inconsistent with earlier observations");
    edge_state_[nb.edge] = observed;
    if (!present) continue;
    const NodeId w = nb.node;
    ++mutual_[static_cast<std::size_t>(bot) * n + w];
    if (first_friendship) {
      const bool entered_fof = friend_count_[w] == 0 &&
                               covering_friends_[w] == 0;
      ++covering_friends_[w];
      if (entered_fof) benefit_ += benefits.fof_benefit(w);
    }
  }
}

double MultiBotView::recompute_benefit() const {
  const BenefitModel& benefits = instance_->benefits();
  double total = 0.0;
  for (NodeId v = 0; v < instance_->num_nodes(); ++v) {
    if (friend_count_[v] > 0) {
      total += benefits.friend_benefit(v);
    } else if (covering_friends_[v] > 0) {
      total += benefits.fof_benefit(v);
    }
  }
  return total;
}

}  // namespace accu
