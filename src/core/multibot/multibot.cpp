#include "core/multibot/multibot.hpp"

#include <cstdio>

#include "core/engine.hpp"

namespace accu {

MultiBotRealization MultiBotRealization::sample(const AccuInstance& instance,
                                                BotId num_bots,
                                                util::Rng& rng) {
  ACCU_ASSERT_MSG(!instance.has_generalized_cautious(),
                  "multi-bot attacks cover the deterministic cautious model");
  if (num_bots == 0) {
    throw InvalidArgument("MultiBotRealization: need at least one bot");
  }
  Realization base = Realization::sample(instance, rng);
  std::vector<std::vector<bool>> coins(num_bots);
  const NodeId n = instance.num_nodes();
  for (BotId bot = 0; bot < num_bots; ++bot) {
    coins[bot].resize(n);
    if (bot == 0) {
      // Reuse the base coins so bot 0 is comparable to a single-bot run on
      // the same seed.
      for (NodeId u = 0; u < n; ++u) coins[bot][u] = base.reckless_accepts(u);
      continue;
    }
    for (NodeId u = 0; u < n; ++u) {
      coins[bot][u] = rng.bernoulli(instance.accept_prob(u));
    }
  }
  return MultiBotRealization(std::move(base), std::move(coins));
}

MultiBotRealization MultiBotRealization::from_single(
    const AccuInstance& instance, const Realization& truth) {
  ACCU_ASSERT_MSG(!instance.has_generalized_cautious(),
                  "multi-bot attacks cover the deterministic cautious model");
  std::vector<std::vector<bool>> coins(1);
  coins[0].resize(instance.num_nodes());
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    coins[0][u] = truth.reckless_accepts(u);
  }
  return MultiBotRealization(truth, std::move(coins));
}

MultiBotAbm::MultiBotAbm(PotentialWeights weights) : weights_(weights) {
  if (!(weights.direct >= 0.0) || !(weights.indirect >= 0.0)) {
    throw InvalidArgument("MultiBotAbm: weights must be non-negative");
  }
}

std::string MultiBotAbm::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "MultiBotABM(wD=%.2f,wI=%.2f)",
                weights_.direct, weights_.indirect);
  return buf;
}

void MultiBotAbm::reset(const AccuInstance& instance, BotId, util::Rng&) {
  instance_ = &instance;
}

double MultiBotAbm::direct_gain(const MultiBotView& view, NodeId u) {
  const AccuInstance& instance = view.instance();
  // A second friendship with the same user adds nothing to the coalition's
  // information access.
  if (view.friend_count(u) > 0) return 0.0;
  const BenefitModel& benefits = instance.benefits();
  double gain = benefits.friend_benefit(u);
  if (view.is_fof(u)) gain -= benefits.fof_benefit(u);
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const NodeId v = nb.node;
    if (view.friend_count(v) > 0) continue;  // already harvested as friend
    if (view.is_fof(v)) continue;
    const double belief = view.edge_belief(nb.edge);
    if (belief <= 0.0) continue;
    gain += belief * benefits.fof_benefit(v);
  }
  return gain;
}

double MultiBotAbm::indirect_gain(BotId bot, const MultiBotView& view,
                                  NodeId u) {
  const AccuInstance& instance = view.instance();
  if (instance.is_cautious(u)) return 0.0;
  const BenefitModel& benefits = instance.benefits();
  double gain = 0.0;
  for (const graph::Neighbor& nb : instance.graph().neighbors(u)) {
    const NodeId v = nb.node;
    if (!instance.is_cautious(v)) continue;
    if (view.friend_count(v) > 0) continue;  // prize already taken
    // Only this bot's own request to v can cash in this bot's mutual
    // progress; if it already burned that request, no indirect value.
    if (view.is_requested_by(bot, v)) continue;
    const std::uint32_t theta = instance.threshold(v);
    const std::uint32_t mutual = view.mutual_friends(bot, v);
    if (mutual >= theta) continue;
    const double belief = view.edge_belief(nb.edge);
    if (belief <= 0.0) continue;
    gain += belief * benefits.upgrade_gain(v) /
            static_cast<double>(theta - mutual);
  }
  return gain;
}

double MultiBotAbm::potential(BotId bot, const MultiBotView& view,
                              NodeId u) const {
  const AccuInstance& instance = view.instance();
  const double q =
      instance.is_cautious(u)
          ? (view.cautious_would_accept(bot, u) ? 1.0 : 0.0)
          : instance.accept_prob(u);
  if (q <= 0.0) return 0.0;
  double value = weights_.direct * direct_gain(view, u);
  if (weights_.indirect > 0.0) {
    value += weights_.indirect * indirect_gain(bot, view, u);
  }
  return q * value;
}

NodeId MultiBotAbm::select(BotId bot, const MultiBotView& view, util::Rng&) {
  ACCU_ASSERT_MSG(instance_ != nullptr, "reset() must run before select()");
  NodeId best = kInvalidNode;
  double best_value = 0.0;
  for (NodeId u = 0; u < instance_->num_nodes(); ++u) {
    if (view.is_requested_by(bot, u)) continue;
    const double value = potential(bot, view, u);
    if (best == kInvalidNode || value > best_value) {
      best = u;
      best_value = value;
    }
  }
  // Passing beats spending budget on a provably worthless request.
  if (best != kInvalidNode && best_value <= 0.0) {
    return kInvalidNode;
  }
  return best;
}

MultiBotResult simulate_multibot(const AccuInstance& instance,
                                 const MultiBotRealization& truth,
                                 MultiBotStrategy& strategy,
                                 std::uint32_t budget, BotId num_bots,
                                 util::Rng& rng) {
  ACCU_ASSERT(truth.num_bots() >= num_bots);
  MultiBotView view(instance, num_bots);
  MultiBotResult result;
  strategy.reset(instance, num_bots, rng);
  engine::MultiBotEnv env(instance, truth, strategy, budget, num_bots, rng,
                          view, result);
  engine::run_rounds(env);
  return result;
}

}  // namespace accu
