// NEON (AArch64 Advanced SIMD) kernels.  Two 2-lane f64 accumulators model
// the four canonical stride-4 lanes: acc01 holds (l0, l1), acc23 holds
// (l2, l3); vaddq_f64(acc01, acc23) = (l0+l2, l1+l3) and the final scalar
// add spells out (l0 + l2) + (l1 + l3) — bit-identical to the scalar
// canonical kernels (vmulq/vaddq are plain IEEE multiplies/adds; no fused
// intrinsics are used and the build adds -ffp-contract=off).

#include "core/score_simd.hpp"

#if defined(__aarch64__) && !defined(ACCU_SCALAR_ONLY)

#include <arm_neon.h>

namespace accu::simd {

namespace {

double row_gather_mul_neon(const double* values, const NodeId* nodes,
                           const double* table, std::uint32_t s0,
                           std::uint32_t s1) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::uint32_t s = s0;
  for (; s + 4 <= s1; s += 4) {
    // NEON has no gather; assemble the table lanes with scalar loads.
    const float64x2_t t01 =
        vcombine_f64(vld1_f64(table + nodes[s]), vld1_f64(table + nodes[s + 1]));
    const float64x2_t t23 = vcombine_f64(vld1_f64(table + nodes[s + 2]),
                                         vld1_f64(table + nodes[s + 3]));
    const float64x2_t v01 = vld1q_f64(values + s);
    const float64x2_t v23 = vld1q_f64(values + s + 2);
    acc01 = vaddq_f64(acc01, vmulq_f64(v01, t01));
    acc23 = vaddq_f64(acc23, vmulq_f64(v23, t23));
  }
  double lanes[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                     vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  for (; s < s1; ++s) {
    lanes[(s - s0) & 3] += values[s] * table[nodes[s]];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double row_sum_neon(const double* values, std::uint32_t s0, std::uint32_t s1) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::uint32_t s = s0;
  for (; s + 4 <= s1; s += 4) {
    acc01 = vaddq_f64(acc01, vld1q_f64(values + s));
    acc23 = vaddq_f64(acc23, vld1q_f64(values + s + 2));
  }
  double lanes[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                     vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  for (; s < s1; ++s) {
    lanes[(s - s0) & 3] += values[s];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void bernoulli_pack_neon(const std::uint64_t* raw, const std::uint64_t* thr,
                         std::size_t n, std::uint64_t* out_words) {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    std::uint64_t bits = 0;
    for (unsigned j = 0; j < 64; j += 2) {
      const uint64x2_t r = vshrq_n_u64(vld1q_u64(raw + i + j), 11);
      const uint64x2_t t = vld1q_u64(thr + i + j);
      const uint64x2_t lt = vcltq_u64(r, t);
      bits |= (vgetq_lane_u64(lt, 0) & 1u) << j;
      bits |= (vgetq_lane_u64(lt, 1) & 1u) << (j + 1);
    }
    out_words[w] = bits;
  }
  if (i < n) {
    std::uint64_t bits = 0;
    for (unsigned j = 0; i + j < n; ++j) {
      bits |= static_cast<std::uint64_t>((raw[i + j] >> 11) < thr[i + j]) << j;
    }
    out_words[w] = bits;
  }
}

constexpr ScoreKernels kNeonKernels{Isa::kNeon, &row_gather_mul_neon,
                                    &row_sum_neon, &bernoulli_pack_neon};

}  // namespace

const ScoreKernels& neon_kernels() noexcept { return kNeonKernels; }

}  // namespace accu::simd

#endif  // __aarch64__
