#include "core/score.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "core/score_simd.hpp"
#include "core/task_pool.hpp"

namespace accu {

namespace {
constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
}  // namespace

void ScorePack::build(const AccuInstance& instance) {
  const Graph& g = instance.graph();
  const NodeId n = g.num_nodes();
  const std::size_t slots = 2ull * g.num_edges();
  if (slots >= kNoSlot) {
    throw InvalidArgument("ScorePack: instance too large for 32-bit slots");
  }
  instance_ = &instance;
  uid_ = instance.uid();
  num_nodes_ = n;

  row_begin_.resize(n + 1);
  cautious_bits_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
  friend_b_.resize(n);
  fof_b_.resize(n);
  q_reckless_.resize(n);
  q_below_.resize(n);
  q_above_.resize(n);
  theta_.resize(n);
  adj_node_.resize(slots);
  mirror_.resize(slots);
  d_init_.resize(slots);
  i_gain_.resize(slots);
  slot_theta_.resize(slots);

  const BenefitModel& benefits = instance.benefits();
  for (NodeId u = 0; u < n; ++u) {
    friend_b_[u] = benefits.friend_benefit(u);
    fof_b_[u] = benefits.fof_benefit(u);
    q_reckless_[u] = instance.accept_prob(u);
    if (instance.is_cautious(u)) {
      cautious_bits_[u >> 6] |= 1ull << (u & 63);
      theta_[u] = instance.threshold(u);
      q_below_[u] = instance.cautious_accept_prob(u, false);
      q_above_[u] = instance.cautious_accept_prob(u, true);
    } else {
      theta_[u] = 0;
      q_below_[u] = 0.0;
      q_above_[u] = 1.0;
    }
  }

  // Pre-laid-out slot tables (binary instance format): the file already
  // stores mirror / d_init / i_gain / slot_theta in exactly this layout, so
  // adopt them by memcpy and skip both the per-slot walk and the mirror
  // linking.  The format writer produced them with this very function (or a
  // transform pinned bit-identical to it in tests), so adopted packs score
  // bit-for-bit like recomputed ones; the binary loader re-checked the
  // structural invariants (mirror twin links, slot_theta, reckless-zero
  // i_gain) against the CSR before attaching.
  if (const PackTables* tables = instance.pack_tables();
      tables != nullptr && tables->num_slots == slots) {
    const std::span<const std::size_t> offsets = g.raw_offsets();
    for (NodeId u = 0; u <= n; ++u) {
      row_begin_[u] = static_cast<std::uint32_t>(offsets[u]);
    }
    const std::span<const graph::Neighbor> adj = g.raw_adjacency();
    for (std::size_t i = 0; i < slots; ++i) adj_node_[i] = adj[i].node;
    if (slots > 0) {
      std::memcpy(mirror_.data(), tables->mirror,
                  slots * sizeof(std::uint32_t));
      std::memcpy(d_init_.data(), tables->d_init, slots * sizeof(double));
      std::memcpy(i_gain_.data(), tables->i_gain, slots * sizeof(double));
      std::memcpy(slot_theta_.data(), tables->slot_theta,
                  slots * sizeof(std::uint32_t));
    }
    return;
  }

  std::uint32_t s = 0;
  for (NodeId u = 0; u < n; ++u) {
    row_begin_[u] = s;
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      const NodeId v = nb.node;
      const double prior = g.edge_prob(nb.edge);
      adj_node_[s] = v;
      // The live term values (header invariant: active terms always carry
      // the prior), with the scalar code's exact operation order.
      d_init_[s] = prior * benefits.fof_benefit(v);
      if (instance.is_cautious(v)) {
        i_gain_[s] = prior * benefits.upgrade_gain(v);
        slot_theta_[s] = instance.threshold(v);
      } else {
        i_gain_[s] = 0.0;
        slot_theta_[s] = 1;
      }
      ++s;
    }
  }
  row_begin_[n] = s;

  // Link the two slots of each undirected edge.
  edge_slot_.assign(g.num_edges(), kNoSlot);
  s = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      const std::uint32_t other = edge_slot_[nb.edge];
      if (other == kNoSlot) {
        edge_slot_[nb.edge] = s;
      } else {
        mirror_[s] = other;
        mirror_[other] = s;
      }
      ++s;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched rescore
// ---------------------------------------------------------------------------

void score_batch_prepare(const ScorePack& pack, const AttackerView& view,
                         bool want_indirect, ScoreBatchScratch& scratch) {
  ACCU_ASSERT_MSG(pack.built_for(view.instance()),
                  "score_batch_prepare: pack does not match the view");
  const NodeId n = pack.num_nodes();
  const RequestState* rs = view.request_states().data();
  const std::uint32_t* mutual = view.mutual_counts().data();

  // P_D mask: a neighbor term is live until its node is an accepted friend
  // or a (believed) FOF.  Deactivated terms multiply to an exact +0.0,
  // which is a bit-exact stand-in for the scalar reference's skip.
  scratch.active.resize(n);
  double* active = scratch.active.data();
  for (NodeId v = 0; v < n; ++v) {
    active[v] = static_cast<double>(
        (rs[v] != RequestState::kAccepted) & (mutual[v] == 0));
  }

  // P_I reciprocal gaps: only cautious nodes can carry one, so walk the
  // cautious bitset words instead of all n nodes.
  if (want_indirect) {
    scratch.inv_gap.assign(n, 0.0);
    double* inv_gap = scratch.inv_gap.data();
    const std::span<const std::uint64_t> words = pack.cautious_words();
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const NodeId v = static_cast<NodeId>(
            (w << 6) + static_cast<unsigned>(std::countr_zero(bits)));
        bits &= bits - 1;
        if (rs[v] != RequestState::kUnknown) continue;  // spent or rejected
        const std::uint32_t theta = pack.theta(v);
        const std::uint32_t m = mutual[v];
        if (m < theta) {
          inv_gap[v] = 1.0 / static_cast<double>(theta - m);
        }
      }
    }
  } else {
    scratch.inv_gap.resize(n);  // keep sized for the ranged call's pointers
  }
}

void score_batch_ranged(const ScorePack& pack, const AttackerView& view,
                        const PotentialWeights& weights,
                        const ScoreBatchScratch& scratch, NodeId begin,
                        NodeId end, double* out) {
  ACCU_ASSERT_MSG(pack.built_for(view.instance()),
                  "score_batch: pack does not match the view's instance");
  ACCU_ASSERT(begin <= end && end <= pack.num_nodes());
  ACCU_ASSERT(scratch.active.size() >= pack.num_nodes());
  const RequestState* rs = view.request_states().data();
  const std::uint32_t* mutual = view.mutual_counts().data();
  const double* d_init = pack.d_init_all().data();
  const double* i_gain = pack.i_gain_all().data();
  const NodeId* nodes = pack.slot_nodes_all().data();
  const double* active = scratch.active.data();
  const double* inv_gap = scratch.inv_gap.data();
  const bool want_indirect = weights.indirect > 0.0;
  const simd::ScoreKernels& kernels = simd::kernels();

  for (NodeId u = begin; u < end; ++u) {
    double& result = out[u - begin];
    if (rs[u] != RequestState::kUnknown) {
      result = 0.0;
      continue;
    }
    const bool cautious = pack.is_cautious(u);
    const double q = cautious ? (mutual[u] >= pack.theta(u) ? pack.q_above(u)
                                                            : pack.q_below(u))
                              : pack.q_reckless(u);
    if (q <= 0.0) {
      result = 0.0;
      continue;
    }
    const std::uint32_t s0 = pack.row_begin(u);
    const std::uint32_t s1 = pack.row_begin(u + 1);
    // P_D: mask-multiply gather in the canonical lane order; a deactivated
    // term (friend or FOF neighbor) contributes an exact +0.0, matching the
    // scalar reference's skip bit for bit.
    double direct = pack.friend_benefit(u);
    if (mutual[u] > 0) direct -= pack.fof_benefit(u);  // u un-requested ⇒ FOF
    direct += kernels.row_gather_mul(d_init, nodes, active, s0, s1);
    double value = weights.direct * direct;
    if (want_indirect && !cautious) {
      // P_I: slots with a reckless neighbor carry i_gain = 0.0; neighbors
      // with no indirect value left carry inv_gap = 0.0 — either factor
      // zeroes the term exactly, so the full-row gather matches the scalar
      // reference's conditional loop.  (Cautious u: indirect ≡ 0, and
      // adding weights.indirect * 0.0 is a no-op — skip the row entirely.)
      value +=
          weights.indirect * kernels.row_gather_mul(i_gain, nodes, inv_gap,
                                                    s0, s1);
    }
    result = q * value;
  }
}

void score_batch(const ScorePack& pack, const AttackerView& view,
                 const PotentialWeights& weights, NodeId begin, NodeId end,
                 double* out) {
  ScoreBatchScratch scratch;
  score_batch_prepare(pack, view, weights.indirect > 0.0, scratch);
  score_batch_ranged(pack, view, weights, scratch, begin, end, out);
}

void score_batch_all(const ScorePack& pack, const AttackerView& view,
                     const PotentialWeights& weights,
                     ScoreBatchScratch& scratch, TaskPool* pool, double* out) {
  score_batch_prepare(pack, view, weights.indirect > 0.0, scratch);
  const NodeId n = pack.num_nodes();
  // Below this many candidates per chunk the fan-out/join overhead beats
  // the row work; chunking never changes values, only wall-clock.
  constexpr NodeId kMinChunk = 256;
  const unsigned threads = pool != nullptr ? pool->threads() : 1;
  if (threads <= 1 || n < 2 * kMinChunk) {
    score_batch_ranged(pack, view, weights, scratch, 0, n, out);
    return;
  }
  const NodeId chunk = std::max(kMinChunk, (n + threads - 1) / threads);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  pool->run(num_chunks, [&](std::size_t c) {
    const NodeId begin = static_cast<NodeId>(c) * chunk;
    const NodeId end = std::min<NodeId>(begin + chunk, n);
    score_batch_ranged(pack, view, weights, scratch, begin, end, out + begin);
  });
}

// ---------------------------------------------------------------------------
// Incremental engine
// ---------------------------------------------------------------------------

void ScoreEngine::reset(const ScorePack& pack,
                        const PotentialWeights& weights) {
  pack_ = &pack;
  weights_ = weights;
  maintain_indirect_ = weights.indirect > 0.0;

  const std::span<const double> d_init = pack.d_init_all();
  contrib_d_.assign(d_init.begin(), d_init.end());
  if (maintain_indirect_) {
    const std::span<const double> i_gain = pack.i_gain_all();
    const std::span<const std::uint32_t> theta = pack.slot_theta_all();
    contrib_i_.resize(i_gain.size());
    for (std::size_t s = 0; s < i_gain.size(); ++s) {
      // Blank state: mutual = 0, denominator = θ_v.  Reciprocal form
      // (numerator · 1/gap) — the canonical P_I operation order shared
      // with score_batch and the scalar reference.
      contrib_i_[s] = i_gain[s] == 0.0
                          ? 0.0
                          : i_gain[s] * (1.0 / static_cast<double>(theta[s]));
    }
  } else {
    contrib_i_.clear();
  }

  const NodeId n = pack.num_nodes();
  mutual_.assign(n, 0);
  fof_.assign(n, 0);
  requested_.assign(n, 0);
  dirty_.assign(n, 0);
  eager_.clear();
  eager_stamp_.assign(n, 0);
  eager_round_ = 0;
}

double ScoreEngine::score(NodeId u) const {
  const ScorePack& pack = *pack_;
  ACCU_ASSERT_MSG(requested_[u] == 0,
                  "score() is defined for un-requested candidates only");
  const bool cautious = pack.is_cautious(u);
  const double q = cautious ? (mutual_[u] >= pack.theta(u) ? pack.q_above(u)
                                                           : pack.q_below(u))
                            : pack.q_reckless(u);
  if (q <= 0.0) return 0.0;
  const std::uint32_t s0 = pack.row_begin(u);
  const std::uint32_t s1 = pack.row_begin(u + 1);
  // Canonical lane-order row sums (score_simd.hpp): contrib_d_[s] is
  // exactly d_init[s]·mask and contrib_i_[s] exactly i_gain[s]·inv_gap, so
  // these reductions are bit-identical to score_batch's gathers.
  const simd::ScoreKernels& kernels = simd::kernels();
  double direct = pack.friend_benefit(u);
  if (fof_[u] != 0) direct -= pack.fof_benefit(u);
  direct += kernels.row_sum(contrib_d_.data(), s0, s1);
  double value = weights_.direct * direct;
  if (weights_.indirect > 0.0 && !cautious) {
    value += weights_.indirect * kernels.row_sum(contrib_i_.data(), s0, s1);
  }
  return q * value;
}

void ScoreEngine::add_eager(NodeId u) {
  if (requested_[u] != 0 || eager_stamp_[u] == eager_round_) return;
  eager_stamp_[u] = eager_round_;
  eager_.push_back(u);
}

void ScoreEngine::apply_acceptance(
    NodeId target, const AttackerView::AcceptanceEffects& effects) {
  const ScorePack& pack = *pack_;
  ++eager_round_;
  eager_.clear();
  requested_[target] = 1;

  // (1) The new friend leaves every neighbor's P_D sum (friend skip) and
  //     P_I sum (requested skip): zero the mirror slots of target's row.
  {
    const std::uint32_t s0 = pack.row_begin(target);
    const std::uint32_t s1 = pack.row_begin(target + 1);
    for (std::uint32_t s = s0; s < s1; ++s) {
      const std::uint32_t m = pack.mirror(s);
      contrib_d_[m] = 0.0;
      if (maintain_indirect_) contrib_i_[m] = 0.0;
      mark_dirty(pack.slot_node(s));
    }
  }

  // (2) Nodes entering FOF: their (1 − 1_FOF) factor vanishes from every
  //     neighbor's P_D sum, and their own head gains the −B_fof term.
  for (const NodeId w : effects.new_fof) {
    fof_[w] = 1;
    mark_dirty(w);
    const std::uint32_t s0 = pack.row_begin(w);
    const std::uint32_t s1 = pack.row_begin(w + 1);
    for (std::uint32_t s = s0; s < s1; ++s) {
      contrib_d_[pack.mirror(s)] = 0.0;
      mark_dirty(pack.slot_node(s));
    }
  }

  // (3) Mutual-count advances.  Only cautious users carry θ-dependent
  //     state; the FOF consequences of a first mutual friend are case (2).
  for (const NodeId v : effects.mutual_increased) {
    ++mutual_[v];
    if (requested_[v] != 0 || !pack.is_cautious(v)) continue;
    const std::uint32_t theta = pack.theta(v);
    const std::uint32_t m = mutual_[v];
    if (m == theta) {
      // Crossed the threshold: q(v) jumps q1 → q2 (never down, q1 <= q2) —
      // re-score v eagerly; v's indirect value is spent, so it leaves its
      // neighbors' P_I sums.
      add_eager(v);
      if (maintain_indirect_) {
        const std::uint32_t s0 = pack.row_begin(v);
        const std::uint32_t s1 = pack.row_begin(v + 1);
        for (std::uint32_t s = s0; s < s1; ++s) {
          contrib_i_[pack.mirror(s)] = 0.0;
          mark_dirty(pack.slot_node(s));
        }
      }
    } else if (m < theta && maintain_indirect_) {
      // Denominator θ_v − m shrank: every neighbor's P_I term for v grows —
      // recompute those terms and re-score the owners eagerly.
      const double inv_gap = 1.0 / static_cast<double>(theta - m);
      const std::uint32_t s0 = pack.row_begin(v);
      const std::uint32_t s1 = pack.row_begin(v + 1);
      for (std::uint32_t s = s0; s < s1; ++s) {
        const std::uint32_t ms = pack.mirror(s);
        contrib_i_[ms] = pack.i_gain(ms) * inv_gap;
        add_eager(pack.slot_node(s));
      }
    }
    // m > θ: crossed earlier — terms already zero, q already q2.
  }
}

void ScoreEngine::apply_revelation(
    const AttackerView::AcceptanceEffects& effects) {
  const ScorePack& pack = *pack_;
  ++eager_round_;
  eager_.clear();

  // Cases (2) and (3) of apply_acceptance, verbatim: the revelation's
  // new-FOF entries and mutual advances.  Case (1) — deactivating the
  // accepted target's own slots — ran when the acceptance was observed.
  for (const NodeId w : effects.new_fof) {
    fof_[w] = 1;
    mark_dirty(w);
    const std::uint32_t s0 = pack.row_begin(w);
    const std::uint32_t s1 = pack.row_begin(w + 1);
    for (std::uint32_t s = s0; s < s1; ++s) {
      contrib_d_[pack.mirror(s)] = 0.0;
      mark_dirty(pack.slot_node(s));
    }
  }

  for (const NodeId v : effects.mutual_increased) {
    ++mutual_[v];
    if (requested_[v] != 0 || !pack.is_cautious(v)) continue;
    const std::uint32_t theta = pack.theta(v);
    const std::uint32_t m = mutual_[v];
    if (m == theta) {
      add_eager(v);
      if (maintain_indirect_) {
        const std::uint32_t s0 = pack.row_begin(v);
        const std::uint32_t s1 = pack.row_begin(v + 1);
        for (std::uint32_t s = s0; s < s1; ++s) {
          contrib_i_[pack.mirror(s)] = 0.0;
          mark_dirty(pack.slot_node(s));
        }
      }
    } else if (m < theta && maintain_indirect_) {
      const double inv_gap = 1.0 / static_cast<double>(theta - m);
      const std::uint32_t s0 = pack.row_begin(v);
      const std::uint32_t s1 = pack.row_begin(v + 1);
      for (std::uint32_t s = s0; s < s1; ++s) {
        const std::uint32_t ms = pack.mirror(s);
        contrib_i_[ms] = pack.i_gain(ms) * inv_gap;
        add_eager(pack.slot_node(s));
      }
    }
  }
}

void ScoreEngine::apply_rejection(NodeId target) {
  const ScorePack& pack = *pack_;
  ++eager_round_;
  eager_.clear();
  requested_[target] = 1;
  // A rejection reveals nothing, but a rejected *cautious* target can never
  // be befriended anymore, so it leaves its neighbors' P_I sums.  (Its P_D
  // terms stay: a rejected node can still become a believed FOF.)
  if (maintain_indirect_ && pack.is_cautious(target)) {
    const std::uint32_t s0 = pack.row_begin(target);
    const std::uint32_t s1 = pack.row_begin(target + 1);
    for (std::uint32_t s = s0; s < s1; ++s) {
      contrib_i_[pack.mirror(s)] = 0.0;
      mark_dirty(pack.slot_node(s));
    }
  }
}

}  // namespace accu
