#include "core/defense.hpp"

#include <algorithm>
#include <numeric>

#include "core/simulator.hpp"
#include "core/strategies/abm.hpp"

namespace accu::defense {

std::vector<NodeId> VulnerabilityReport::most_vulnerable(
    std::size_t count) const {
  std::vector<std::size_t> order(cautious_users.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return capture_probability[a] > capture_probability[b];
                   });
  std::vector<NodeId> out;
  out.reserve(std::min(count, order.size()));
  for (std::size_t i = 0; i < order.size() && out.size() < count; ++i) {
    out.push_back(cautious_users[order[i]]);
  }
  return out;
}

std::vector<NodeId> VulnerabilityReport::top_gateways(
    std::size_t count) const {
  std::vector<NodeId> order;
  for (NodeId v = 0; v < gateway_score.size(); ++v) {
    if (gateway_score[v] > 0.0) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    return gateway_score[a] > gateway_score[b];
  });
  if (order.size() > count) order.resize(count);
  return order;
}

VulnerabilityReport assess(const AccuInstance& instance,
                           const AttackModel& model) {
  VulnerabilityReport report;
  report.cautious_users = instance.cautious_users();
  report.capture_probability.assign(report.cautious_users.size(), 0.0);
  report.gateway_score.assign(instance.num_nodes(), 0.0);
  if (model.trials == 0) return report;

  util::Rng master(model.seed);
  util::RunningStat capture_rate;
  for (std::uint32_t trial = 0; trial < model.trials; ++trial) {
    util::Rng rng = master.split(trial + 1);
    const Realization truth = Realization::sample(instance, rng);
    AbmStrategy attacker(model.weights.direct, model.weights.indirect);
    AttackerView view(instance);
    util::Rng attack_rng = rng.split(7);
    const SimulationResult result = simulate_with_view(
        instance, truth, attacker, model.budget, attack_rng, view);
    report.attacker_benefit.add(result.total_benefit);
    std::size_t captured = 0;
    for (std::size_t i = 0; i < report.cautious_users.size(); ++i) {
      const NodeId victim = report.cautious_users[i];
      if (!view.is_friend(victim)) continue;
      report.capture_probability[i] += 1.0;
      ++captured;
      // Gateways: the victim's realized friend-neighbors are the mutual
      // friends whose acceptance let the threshold fall.
      for (const graph::Neighbor& nb : instance.graph().neighbors(victim)) {
        if (view.edge_state(nb.edge) == EdgeState::kPresent &&
            view.is_friend(nb.node)) {
          report.gateway_score[nb.node] += 1.0;
        }
      }
    }
    capture_rate.add(report.cautious_users.empty()
                         ? 0.0
                         : static_cast<double>(captured) /
                               static_cast<double>(
                                   report.cautious_users.size()));
  }
  for (double& p : report.capture_probability) {
    p /= static_cast<double>(model.trials);
  }
  for (double& s : report.gateway_score) {
    s /= static_cast<double>(model.trials);
  }
  report.mean_capture_rate = capture_rate.mean();
  return report;
}

ThresholdRecommendation recommend_threshold(
    const ThresholdInstanceFactory& make_instance,
    const std::vector<double>& candidates, double target_protection,
    const AttackModel& model) {
  if (candidates.empty()) {
    throw InvalidArgument("recommend_threshold: need candidate fractions");
  }
  ACCU_ASSERT(std::is_sorted(candidates.begin(), candidates.end()));
  ThresholdRecommendation best;
  for (const double fraction : candidates) {
    const AccuInstance instance = make_instance(fraction, model.seed);
    const VulnerabilityReport report = assess(instance, model);
    const double protection = 1.0 - report.mean_capture_rate;
    if (!best.target_met &&
        (protection > best.protection_rate || best.theta_fraction == 0.0)) {
      best.theta_fraction = fraction;
      best.protection_rate = protection;
      best.attacker_benefit = report.attacker_benefit.mean();
    }
    if (protection >= target_protection) {
      best.theta_fraction = fraction;
      best.protection_rate = protection;
      best.attacker_benefit = report.attacker_benefit.mean();
      best.target_met = true;
      break;  // candidates are ascending: first hit is the cheapest
    }
  }
  return best;
}

}  // namespace accu::defense
