#include "core/instance_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/atomic_file.hpp"

namespace accu {

void write_instance(const AccuInstance& instance, std::ostream& os) {
  const Graph& g = instance.graph();
  os << "# accu-instance v1\n";
  os << "nodes " << g.num_nodes() << " edges " << g.num_edges() << '\n';
  char buf[160];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::EdgeEndpoints ep = g.endpoints(e);
    std::snprintf(buf, sizeof buf, "e %u %u %.17g\n", ep.lo, ep.hi,
                  g.edge_prob(e));
    os << buf;
  }
  const BenefitModel& benefits = instance.benefits();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const bool cautious = instance.is_cautious(u);
    std::snprintf(buf, sizeof buf, "n %u %c %.17g %u %.17g %.17g %.17g %.17g\n",
                  u, cautious ? 'C' : 'R', instance.accept_prob(u),
                  instance.threshold(u), benefits.friend_benefit(u),
                  benefits.fof_benefit(u),
                  cautious ? instance.cautious_accept_prob(u, false) : 0.0,
                  cautious ? instance.cautious_accept_prob(u, true) : 1.0);
    os << buf;
  }
}

void write_instance_file(const AccuInstance& instance,
                         const std::string& path) {
  // Atomic replace (temp + fsync + rename): a crash or ENOSPC mid-write
  // never leaves a torn instance file behind for a later run to load, and
  // short writes/ENOSPC surface as IoError/DiskFullError instead of a
  // silently truncated ofstream.
  std::ostringstream os;
  write_instance(instance, os);
  util::write_file_atomic(path, os.str());
}

namespace {

[[noreturn]] void malformed(std::size_t line_no, const std::string& what) {
  throw IoError("accu-instance line " + std::to_string(line_no) + ": " +
                what);
}

/// Rejects NaN/Inf up front so a corrupt file fails with a line number
/// instead of poisoning the instance (NaN compares false against every
/// range check downstream).
void check_finite(std::size_t line_no, const char* field, double value) {
  if (!std::isfinite(value)) {
    malformed(line_no, std::string(field) + " is not finite");
  }
}

void check_probability(std::size_t line_no, const char* field, double value) {
  check_finite(line_no, field, value);
  if (value < 0.0 || value > 1.0) {
    malformed(line_no, std::string(field) + " outside [0,1]");
  }
}

}  // namespace

AccuInstance read_instance(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line()) throw IoError("accu-instance: empty input");
  NodeId n = 0;
  std::size_t m = 0;
  {
    std::istringstream header(line);
    std::string nodes_kw, edges_kw;
    unsigned long long n_raw = 0, m_raw = 0;
    if (!(header >> nodes_kw >> n_raw >> edges_kw >> m_raw) ||
        nodes_kw != "nodes" || edges_kw != "edges") {
      malformed(line_no, "expected 'nodes <n> edges <m>'");
    }
    // Explicit limits instead of a silent narrowing cast: node ids are
    // uint32 (kInvalidNode reserved) and every edge needs two uint32 slots.
    if (n_raw >= graph::kInvalidNode) {
      malformed(line_no, "node count " + std::to_string(n_raw) +
                             " exceeds the uint32 id space (max " +
                             std::to_string(graph::kInvalidNode - 1) + ")");
    }
    if (m_raw >= (1ull << 31)) {
      malformed(line_no, "edge count " + std::to_string(m_raw) +
                             " exceeds the 2m uint32 slot space (max " +
                             std::to_string((1ull << 31) - 1) + ")");
    }
    n = static_cast<NodeId>(n_raw);
    m = static_cast<std::size_t>(m_raw);
  }

  graph::GraphBuilder builder(n);
  for (std::size_t e = 0; e < m; ++e) {
    if (!next_line()) {
      malformed(line_no, "truncated input: expected " + std::to_string(m) +
                             " edge lines, got " + std::to_string(e));
    }
    std::istringstream ls(line);
    std::string tag;
    unsigned long u = 0, v = 0;
    double p = 0.0;
    if (!(ls >> tag >> u >> v >> p) || tag != "e") {
      malformed(line_no, "expected 'e <u> <v> <p>'");
    }
    if (u >= n || v >= n) malformed(line_no, "edge endpoint out of range");
    if (u == v) {
      malformed(line_no, "self-loop on node " + std::to_string(u));
    }
    check_probability(line_no, "edge probability", p);
    if (!builder.try_add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                              p)) {
      malformed(line_no, "duplicate edge (" + std::to_string(u) + "," +
                             std::to_string(v) + ")");
    }
  }

  std::vector<UserClass> classes(n, UserClass::kReckless);
  std::vector<double> q(n, 0.0), bf(n, 0.0), bfof(n, 0.0);
  std::vector<std::uint32_t> theta(n, 1);
  GeneralizedCautiousParams cautious{std::vector<double>(n, 0.0),
                                     std::vector<double>(n, 1.0)};
  std::vector<bool> seen(n, false);
  for (NodeId i = 0; i < n; ++i) {
    if (!next_line()) {
      malformed(line_no, "truncated input: expected " + std::to_string(n) +
                             " node lines, got " + std::to_string(i));
    }
    std::istringstream ls(line);
    std::string tag, klass;
    unsigned long id = 0;
    // θ is parsed as a double and range-checked *before* the uint32 cast:
    // an unsigned extraction would silently wrap "-1" to ULONG_MAX and a
    // value like 4.3e9 would truncate mid-token; both now fail with the
    // offending line number instead.
    double th = 0.0;
    double qu = 0.0, f = 0.0, fof = 0.0, q1 = 0.0, q2 = 1.0;
    if (!(ls >> tag >> id >> klass >> qu >> th >> f >> fof >> q1 >> q2) ||
        tag != "n") {
      malformed(line_no,
                "expected 'n <id> <R|C> <q> <theta> <B_f> <B_fof> <q1> <q2>'");
    }
    if (id >= n) malformed(line_no, "node id out of range");
    check_finite(line_no, "threshold theta", th);
    if (th < 0.0 || th > 4294967295.0 || th != std::floor(th)) {
      malformed(line_no, "threshold theta must be an integer in [0, 2^32)");
    }
    if (seen[id]) malformed(line_no, "duplicate node line");
    seen[id] = true;
    if (klass == "C") {
      classes[id] = UserClass::kCautious;
    } else if (klass != "R") {
      malformed(line_no, "user class must be R or C");
    }
    check_probability(line_no, "accept probability q", qu);
    check_probability(line_no, "q1", q1);
    check_probability(line_no, "q2", q2);
    check_finite(line_no, "friend benefit", f);
    check_finite(line_no, "friend-of-friend benefit", fof);
    q[id] = qu;
    theta[id] = static_cast<std::uint32_t>(th);  // range-checked above
    bf[id] = f;
    bfof[id] = fof;
    cautious.below[id] = q1;
    cautious.above[id] = q2;
  }

  if (next_line()) {
    malformed(line_no, "trailing content after the declared " +
                           std::to_string(m) + " edge and " +
                           std::to_string(n) + " node lines");
  }

  // AccuInstance / BenefitModel constructors re-validate everything else.
  return AccuInstance(builder.build(), std::move(classes), std::move(q),
                      std::move(theta),
                      BenefitModel(std::move(bf), std::move(bfof)),
                      std::move(cautious));
}

AccuInstance read_instance_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  return read_instance(is);
}

}  // namespace accu
