// Portable-scalar kernels + the runtime ISA dispatch table.
//
// The scalar kernels below ARE the canonical reduction-order definition
// (see score_simd.hpp): four stride-4 lane accumulators combined as
// (l0 + l2) + (l1 + l3).  The vector TUs (score_simd_avx2.cpp,
// score_simd_neon.cpp) must reproduce these bit for bit — the Score suite
// pins them against each other under every forced ISA.

#include "core/score_simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace accu::simd {

namespace {

double row_gather_mul_scalar(const double* values, const NodeId* nodes,
                             const double* table, std::uint32_t s0,
                             std::uint32_t s1) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::uint32_t s = s0;
  for (; s + 4 <= s1; s += 4) {
    l0 += values[s] * table[nodes[s]];
    l1 += values[s + 1] * table[nodes[s + 1]];
    l2 += values[s + 2] * table[nodes[s + 2]];
    l3 += values[s + 3] * table[nodes[s + 3]];
  }
  double lanes[4] = {l0, l1, l2, l3};
  for (; s < s1; ++s) {
    lanes[(s - s0) & 3] += values[s] * table[nodes[s]];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double row_sum_scalar(const double* values, std::uint32_t s0,
                      std::uint32_t s1) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::uint32_t s = s0;
  for (; s + 4 <= s1; s += 4) {
    l0 += values[s];
    l1 += values[s + 1];
    l2 += values[s + 2];
    l3 += values[s + 3];
  }
  double lanes[4] = {l0, l1, l2, l3};
  for (; s < s1; ++s) {
    lanes[(s - s0) & 3] += values[s];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void bernoulli_pack_scalar(const std::uint64_t* raw, const std::uint64_t* thr,
                           std::size_t n, std::uint64_t* out_words) {
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    std::uint64_t bits = 0;
    for (unsigned j = 0; j < 64; ++j) {
      bits |= static_cast<std::uint64_t>((raw[i + j] >> 11) < thr[i + j]) << j;
    }
    out_words[w] = bits;
  }
  if (i < n) {
    std::uint64_t bits = 0;
    for (unsigned j = 0; i + j < n; ++j) {
      bits |= static_cast<std::uint64_t>((raw[i + j] >> 11) < thr[i + j]) << j;
    }
    out_words[w] = bits;
  }
}

constexpr ScoreKernels kScalarKernels{Isa::kScalar, &row_gather_mul_scalar,
                                      &row_sum_scalar, &bernoulli_pack_scalar};

std::atomic<const ScoreKernels*> g_active{nullptr};

}  // namespace

// Defined in the per-ISA TUs; only referenced when the build includes them
// (an ACCU_SCALAR_ONLY build compiles those TUs to empty stubs, so the
// scalar table is the only dispatch tail and vector ISAs are unsupported).
#if (defined(__x86_64__) || defined(__i386__)) && !defined(ACCU_SCALAR_ONLY)
const ScoreKernels& avx2_kernels() noexcept;
#endif
#if defined(__aarch64__) && !defined(ACCU_SCALAR_ONLY)
const ScoreKernels& neon_kernels() noexcept;
#endif

bool isa_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && !defined(ACCU_SCALAR_ONLY)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__) && !defined(ACCU_SCALAR_ONLY)
      return true;  // AArch64 mandates Advanced SIMD
#else
      return false;
#endif
  }
  return false;
}

Isa best_isa() noexcept {
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

namespace {

const ScoreKernels& table_for(Isa isa) noexcept {
  switch (isa) {
#if (defined(__x86_64__) || defined(__i386__)) && !defined(ACCU_SCALAR_ONLY)
    case Isa::kAvx2:
      return avx2_kernels();
#endif
#if defined(__aarch64__) && !defined(ACCU_SCALAR_ONLY)
    case Isa::kNeon:
      return neon_kernels();
#endif
    default:
      return kScalarKernels;
  }
}

/// The auto choice: a valid + supported ACCU_SIMD wins, else best_isa().
Isa resolve_auto() noexcept {
  if (const char* env = std::getenv("ACCU_SIMD")) {
    const std::string_view spec(env);
    if (spec == "scalar") return Isa::kScalar;
    if (spec == "avx2" && isa_supported(Isa::kAvx2)) return Isa::kAvx2;
    if (spec == "neon" && isa_supported(Isa::kNeon)) return Isa::kNeon;
    // Unknown or unsupported: fall through to the hardware default — a
    // stale env var must not crash or silently de-vectorize a run on a
    // different box.
  }
  return best_isa();
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<Isa> parse_isa(std::string_view spec) {
  if (spec == "auto") return std::nullopt;
  if (spec == "scalar") return Isa::kScalar;
  if (spec == "avx2") return Isa::kAvx2;
  if (spec == "neon") return Isa::kNeon;
  throw InvalidArgument("simd: expected auto|scalar|avx2|neon, got '" +
                              std::string(spec) + "'");
}

void select_isa(Isa isa) {
  if (!isa_supported(isa)) {
    throw InvalidArgument(std::string("simd: ISA '") + isa_name(isa) +
                                "' is not supported on this host");
  }
  g_active.store(&table_for(isa), std::memory_order_release);
}

void select_auto() noexcept {
  g_active.store(&table_for(resolve_auto()), std::memory_order_release);
}

void select(std::optional<Isa> choice) {
  if (choice.has_value()) {
    select_isa(*choice);
  } else {
    select_auto();
  }
}

const ScoreKernels& kernels() noexcept {
  const ScoreKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = &table_for(resolve_auto());
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

Isa active_isa() noexcept { return kernels().id; }

}  // namespace accu::simd
