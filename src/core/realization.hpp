// Ground-truth realizations (paper §II-B).
//
// A realization φ fixes every random quantity of an instance:
//
//   * which potential edges actually exist (edge (u,v) is present with
//     probability p_uv, independently), and
//   * each reckless user's acceptance coin (accept with probability q_u;
//     a user receives at most one request, so one coin per user is
//     equivalent to a per-request draw).
//
// Under the deterministic model cautious users have no effective coin —
// their acceptance is a function of the realized mutual-friend count
// (paper §II-A).  Under the *generalized* model of §III-B they accept with
// probability q1 below threshold and q2 at/above it; since each user
// receives at most one request, the realization carries two independent
// pre-drawn coins per user (one per regime) and the simulator consults
// whichever regime is active at request time.
//
// The simulator owns a realization as the hidden ground truth and reveals
// pieces of it to the AttackerView as requests are accepted.

#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace accu {

class Realization {
 public:
  /// Samples a realization from the instance's probabilities.
  static Realization sample(const AccuInstance& instance, util::Rng& rng);

  /// Re-samples in place, reusing the coin/edge storage (the workspace
  /// path) — draw-for-draw identical to `sample`.
  ///
  /// This is the batched fast path: a cached per-instance *draw plan*
  /// (rebuilt when the instance uid changes, allocation-free once the
  /// pooled buffers have grown) lists every Bernoulli draw the reference
  /// loop would make, in order, as an integer threshold
  /// (util::Rng::bernoulli_threshold); resampling bulk-fills the raw
  /// xoshiro outputs (Rng::fill_raw — same stream, same end state), packs
  /// the compares 64 per word through the active SIMD kernel
  /// (simd::ScoreKernels::bernoulli_pack), and scatters the packed runs
  /// into the bit vectors over a template holding the deterministic
  /// (p ≤ 0 / p ≥ 1, never-drawn) outcomes.  Bit-identical to
  /// `resample_reference` — including the skipped draws — by the threshold
  /// equivalence proven in util/rng.hpp.
  void resample(const AccuInstance& instance, util::Rng& rng);

  /// The reference per-draw sampling loop the fast path is pinned against
  /// (tests/realization_test.cpp compares bits and RNG end state).
  void resample_reference(const AccuInstance& instance, util::Rng& rng);

  /// Rebuilds in place from explicit edge/coin vectors under the
  /// deterministic cautious model (cf. the two-argument constructor),
  /// reusing storage.
  void assign(const std::vector<bool>& edge_present,
              const std::vector<bool>& accepts);

  /// As above, from word-backed bit vectors — the hot variant (word-granular
  /// copies; lookahead rebuilds a scenario per sample through this).
  void assign(const util::BitVec& edge_present, const util::BitVec& accepts);

  /// A realization in which every potential edge exists and every reckless
  /// user accepts — the deterministic "certain" world; handy for tests and
  /// for instances whose probabilities are all 1.  Cautious regime coins
  /// are pinned to their most permissive positive-probability outcome
  /// (below-threshold accepts iff q1 > 0, at-threshold accepts iff q2 > 0),
  /// which reduces to reject/accept under the deterministic model.
  static Realization certain(const AccuInstance& instance);

  /// Explicit construction (tests, exhaustive theory enumeration).  The
  /// cautious regime coins default to the deterministic model
  /// (below = reject, above = accept).
  Realization(std::vector<bool> edge_present, std::vector<bool> accepts);

  /// Explicit construction with cautious regime coins (generalized model).
  Realization(std::vector<bool> edge_present, std::vector<bool> accepts,
              std::vector<bool> cautious_below_accepts,
              std::vector<bool> cautious_above_accepts);

  /// Word-backed variant of the two-argument constructor (deterministic
  /// cautious model).  A named factory so brace-initialized vector<bool>
  /// construction stays unambiguous.
  [[nodiscard]] static Realization from_bits(const util::BitVec& edge_present,
                                             const util::BitVec& accepts);

  [[nodiscard]] bool edge_present(EdgeId e) const {
    return edge_present_.get(e);
  }

  /// Whether reckless user u's coin came up "accept".  Meaningless for
  /// cautious users (asserted against in the simulator, not here, so the
  /// theory code can enumerate uniformly).
  [[nodiscard]] bool reckless_accepts(NodeId u) const {
    return accepts_.get(u);
  }

  /// Generalized-model coin of cautious user v for the below-threshold
  /// regime (accept with probability q1).
  [[nodiscard]] bool cautious_below_accepts(NodeId v) const {
    return cautious_below_.get(v);
  }

  /// Generalized-model coin of cautious user v for the at/above-threshold
  /// regime (accept with probability q2).
  [[nodiscard]] bool cautious_above_accepts(NodeId v) const {
    return cautious_above_.get(v);
  }

  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_present_.size();
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return accepts_.size();
  }

  /// Realized degree of v (number of present incident edges).
  [[nodiscard]] std::uint32_t realized_degree(const Graph& g, NodeId v) const;

  /// Probability of this realization under the instance's model — the
  /// product over edges of p / (1-p) and over *reckless* users of
  /// q / (1-q).  Used by the exhaustive theory calculations.
  [[nodiscard]] double probability(const AccuInstance& instance) const;

 private:
  /// Shape-less; only `sample` uses it (resample fills every vector).
  Realization() = default;

  /// The cached draw schedule of one instance: which events the reference
  /// loop draws (vs decides deterministically), their thresholds in draw
  /// order, and how the drawn bits scatter into the four bit vectors.
  struct DrawPlan {
    /// A maximal stretch of consecutive draws landing on consecutive bits
    /// of one destination array (most instances need only two: all edges,
    /// then all acceptance coins).
    struct Run {
      std::size_t draw_begin;   // first draw index of the stretch
      std::size_t count;        // number of draws
      std::size_t dest_begin;   // first destination bit
      std::uint8_t array;       // 0 edges, 1 accepts, 2 below, 3 above
    };

    std::uint64_t uid = 0;  // AccuInstance::uid the plan was built for
    std::size_t num_draws = 0;
    std::vector<std::uint64_t> thresholds;  // per draw, in draw order
    std::vector<Run> runs;
    // Per-array template words: deterministic outcomes set, drawn bits 0.
    std::vector<std::uint64_t> tmpl_[4];

    void build(const AccuInstance& instance);
  };

  DrawPlan plan_;
  std::vector<std::uint64_t> raw_;     // pooled raw xoshiro outputs
  std::vector<std::uint64_t> packed_;  // pooled packed compare bits

  util::BitVec edge_present_;    // per EdgeId
  util::BitVec accepts_;         // per NodeId (reckless coins)
  util::BitVec cautious_below_;  // per NodeId (generalized q1 coins)
  util::BitVec cautious_above_;  // per NodeId (generalized q2 coins)
};

/// The ground-truth network of a realization: exactly the present edges,
/// carried with probability 1 (node ids preserved).  This is the graph the
/// attacker would see with unlimited budget; tests and analyses use it as
/// the omniscient reference.
[[nodiscard]] Graph realized_graph(const Graph& prior,
                                   const Realization& truth);

}  // namespace accu
