// Unreliable-platform simulation (fault injection).
//
// The paper's protocol assumes a perfectly reliable platform: every friend
// request is delivered and its outcome fully observed.  Real campaigns run
// against platforms that silently drop requests, time out, return transient
// errors, and rate-limit aggressive accounts.  The adaptive-policy framework
// only requires the policy to be well-defined under whatever feedback
// arrives, so the fault layer slots in *under* the strategies:
//
//   * kDrop       — the request is lost; the platform never processes it and
//                   the attacker receives no answer.
//   * kTimeout    — the platform never answers in time; the outcome is
//                   unknown to the attacker.  (Like a drop, the request is
//                   not processed; the two differ only in how they would be
//                   logged by a real platform, and both surface to the
//                   attacker as "no response".)
//   * kTransient  — the platform returns an explicit retryable error; the
//                   request was not processed.
//   * kRateLimit  — the platform refuses the request and suspends the
//                   attacker for `suspension_rounds` rounds.  The budget
//                   keeps ticking during the suspension: those rounds are
//                   lost (graceful-degradation pressure).
//
// Faults are drawn from the FaultModel's *own* deterministic RNG stream —
// never from the strategy's — so a fault sequence is reproducible from its
// seed and the pristine (fault-free) simulation consumes exactly the same
// strategy randomness as `simulate`.

#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace accu {

class AttackerView;

/// Ground-truth fault injected on one simulated round (recorded in the
/// trace).  kSuspensionStall marks a round consumed by an earlier
/// rate-limit suspension: no request was sent, the budget ticked anyway.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop = 1,
  kTimeout = 2,
  kTransient = 3,
  kRateLimit = 4,
  kSuspensionStall = 5,
};

/// What the *attacker* can see of a faulted request.  Drops and timeouts
/// are indistinguishable from the attacker's side (silence); transient
/// errors and rate limits are explicit platform answers.
enum class FaultFeedback : std::uint8_t {
  kNoResponse = 0,
  kTransientError = 1,
  kRateLimited = 2,
};

/// A fault-aware strategy's decision about a faulted request.
enum class FaultResponse : std::uint8_t {
  /// Write the target off.  The simulator records the request as rejected
  /// in the attacker's view (no information gained, target never pursued
  /// again) and notifies the strategy through the normal observe() path.
  kAbandon = 0,
  /// Keep the target pending; the view is left untouched so the target
  /// stays selectable for a later retry.
  kRetryLater = 1,
};

/// Optional mixin for strategies that want fault feedback (the
/// RetryingStrategy decorator implements it).  Plain strategies without it
/// degrade gracefully: every faulted request is abandoned.
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;

  /// Called instead of Strategy::observe when the request faulted.  The
  /// view has *not* been modified.  Return kRetryLater to keep the target
  /// requestable, kAbandon to write it off as rejected.
  virtual FaultResponse observe_fault(NodeId target, FaultFeedback feedback,
                                      const AttackerView& view) = 0;
};

/// Per-request fault probabilities.  All-zero (the default) reproduces the
/// paper's reliable platform exactly.
struct FaultConfig {
  double drop_rate = 0.0;
  double timeout_rate = 0.0;
  double transient_rate = 0.0;
  double rate_limit_rate = 0.0;
  /// Rounds lost after a rate-limit fault (the platform's back-off window
  /// `w`); the budget keeps ticking while suspended.
  std::uint32_t suspension_rounds = 3;

  [[nodiscard]] double total_rate() const noexcept {
    return drop_rate + timeout_rate + transient_rate + rate_limit_rate;
  }

  /// Throws InvalidArgument on non-finite / negative rates or a total
  /// above 1.
  void validate() const;

  /// A config spreading `total` evenly across the four fault kinds — the
  /// single-knob `--fault-rate` used by the CLI and the robustness sweep.
  [[nodiscard]] static FaultConfig uniform(double total,
                                           std::uint32_t suspension_rounds = 3);
};

/// Draws one fault per request attempt from a dedicated RNG stream.
class FaultModel {
 public:
  /// Validates the config (throws InvalidArgument if malformed).
  FaultModel(const FaultConfig& config, std::uint64_t seed);

  /// The fault hitting the next request attempt; kNone = delivered.
  /// Exactly one uniform draw per call when any rate is positive, zero
  /// draws otherwise.
  [[nodiscard]] FaultKind next();

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
  util::Rng rng_;
};

/// Short human-readable label ("drop", "rate-limit", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

}  // namespace accu
