// Defender-side analysis tools.
//
// The paper's cautious (linear-threshold) acceptance is a *defense* that
// high-profile users adopt; its evaluation section studies the attack.
// This module flips the table for the defender:
//
//   * `assess` Monte-Carlo-simulates the paper's strongest attacker (ABM)
//     against an instance and reports, per cautious user, the probability
//     of being befriended within the attacker's budget, plus aggregate
//     exposure numbers.
//   * `recommend_threshold` sweeps candidate threshold fractions through a
//     caller-supplied instance factory and returns the smallest fraction
//     whose protection rate (1 − expected captured fraction of cautious
//     users) meets the target.
//
// These tools power the `defense_hardening` example.

#pragma once

#include <functional>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace accu::defense {

/// The attacker the defender plans against.
struct AttackModel {
  PotentialWeights weights{0.5, 0.5};  ///< ABM weights (paper defaults)
  std::uint32_t budget = 200;          ///< friend requests per attack
  std::uint32_t trials = 20;           ///< Monte Carlo repetitions
  std::uint64_t seed = 1;
};

struct VulnerabilityReport {
  /// Cautious users of the assessed instance, ascending ids.
  std::vector<NodeId> cautious_users;
  /// Per-cautious-user probability of ending up the attacker's friend,
  /// parallel to `cautious_users`.
  std::vector<double> capture_probability;
  /// Attacker's Eq.-(1) benefit across the trials.
  util::RunningStat attacker_benefit;
  /// Expected fraction of cautious users captured.
  double mean_capture_rate = 0.0;
  /// Gateway scores: for every user, the expected number of cautious
  /// captures per attack in which that user served as one of the mutual
  /// friends satisfying the victim's threshold.  High-score reckless users
  /// are the accounts whose friendships (or their visibility) the defender
  /// should protect first.
  std::vector<double> gateway_score;

  /// The `count` most-at-risk cautious users, most vulnerable first (ties
  /// to the smaller id).
  [[nodiscard]] std::vector<NodeId> most_vulnerable(std::size_t count) const;

  /// The `count` highest-scoring gateway users, descending score (ties to
  /// the smaller id); zero-score users are omitted.
  [[nodiscard]] std::vector<NodeId> top_gateways(std::size_t count) const;
};

/// Simulates `model.trials` independent ABM attacks (fresh realization
/// each) and aggregates capture statistics.
[[nodiscard]] VulnerabilityReport assess(const AccuInstance& instance,
                                         const AttackModel& model);

/// Builds an instance with the given threshold fraction; `seed` derives all
/// of its randomness.
using ThresholdInstanceFactory =
    std::function<AccuInstance(double theta_fraction, std::uint64_t seed)>;

struct ThresholdRecommendation {
  double theta_fraction = 0.0;    ///< the recommended setting
  double protection_rate = 0.0;   ///< achieved at that setting
  double attacker_benefit = 0.0;  ///< attacker's residual benefit
  bool target_met = false;        ///< false: even the largest candidate fails
};

/// Sweeps `candidates` (ascending) and returns the first fraction whose
/// protection rate reaches `target_protection`; when none does, returns the
/// best candidate with `target_met = false`.
[[nodiscard]] ThresholdRecommendation recommend_threshold(
    const ThresholdInstanceFactory& make_instance,
    const std::vector<double>& candidates, double target_protection,
    const AttackModel& model);

}  // namespace accu::defense
