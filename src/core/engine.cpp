#include "core/engine.hpp"

namespace accu {

AttackerView& SimWorkspace::reset_view(const AccuInstance& instance) {
  if (!view_.has_value()) {
    view_.emplace(instance);
  } else {
    view_->reset(instance);
  }
  return *view_;
}

const Realization& SimWorkspace::sample_truth(const AccuInstance& instance,
                                              util::Rng& rng) {
  if (!truth_.has_value()) {
    truth_ = Realization::sample(instance, rng);
  } else {
    truth_->resample(instance, rng);
  }
  return *truth_;
}

const ScorePack& SimWorkspace::score_pack(const AccuInstance& instance) {
  if (!score_pack_.built_for(instance)) score_pack_.build(instance);
  return score_pack_;
}

void SimWorkspace::set_cell_threads(unsigned threads) {
  const unsigned width = threads == 0 ? 1 : threads;
  if (width == cell_threads_) return;
  cell_threads_ = width;
  task_pool_.reset();  // respawned at the new width on next use
}

TaskPool& SimWorkspace::task_pool() {
  if (!task_pool_.has_value()) task_pool_.emplace(cell_threads_);
  return *task_pool_;
}

namespace {

/// Hands the workspace-pooled score pack to strategies that score through
/// the flat kernels; runs immediately before Strategy::reset.
void offer_score_pack(const AccuInstance& instance, Strategy& strategy,
                      SimWorkspace& ws) {
  if (strategy.wants_score_pack()) {
    strategy.adopt_score_pack(ws.score_pack(instance));
  }
}

/// Hands the workspace-pooled task pool to strategies with parallel inner
/// loops; like the pack offer, valid only for the simulation that follows.
void offer_task_pool(Strategy& strategy, SimWorkspace& ws) {
  strategy.adopt_task_pool(&ws.task_pool());
}

}  // namespace

void simulate_into(const AccuInstance& instance, const Realization& truth,
                   Strategy& strategy, std::uint32_t budget, util::Rng& rng,
                   AttackerView& view, SimWorkspace& ws, SimulationResult& out,
                   const util::CancelToken* cancel,
                   const FeedbackModel& feedback) {
  ACCU_ASSERT(truth.num_edges() == instance.graph().num_edges());
  ACCU_ASSERT(truth.num_nodes() == instance.num_nodes());
  out.clear();
  out.trace.reserve(budget);
  view.arm_feedback(feedback);
  offer_score_pack(instance, strategy, ws);
  offer_task_pool(strategy, ws);
  strategy.reset(instance, rng);
  engine::ReliableEnv env(instance, truth, strategy, budget, rng, view, ws,
                          out, cancel);
  engine::run_rounds(env);
}

void simulate_with_faults_into(const AccuInstance& instance,
                               const Realization& truth, Strategy& strategy,
                               std::uint32_t budget, util::Rng& rng,
                               FaultModel& faults, AttackerView& view,
                               SimWorkspace& ws, SimulationResult& out,
                               const util::CancelToken* cancel,
                               const FeedbackModel& feedback) {
  ACCU_ASSERT(truth.num_edges() == instance.graph().num_edges());
  ACCU_ASSERT(truth.num_nodes() == instance.num_nodes());
  out.clear();
  out.trace.reserve(budget);
  view.arm_feedback(feedback);
  offer_score_pack(instance, strategy, ws);
  offer_task_pool(strategy, ws);
  strategy.reset(instance, rng);
  engine::FaultyEnv env(instance, truth, strategy, budget, rng, faults, view,
                        ws, out, cancel);
  engine::run_rounds(env);
}

}  // namespace accu
