#include "core/instance.hpp"

#include <atomic>
#include <string>

namespace accu {

std::uint64_t AccuInstance::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

AccuInstance::AccuInstance(Graph graph, std::vector<UserClass> classes,
                           std::vector<double> accept_prob,
                           std::vector<std::uint32_t> threshold,
                           BenefitModel benefits)
    : graph_(std::move(graph)),
      classes_(std::move(classes)),
      accept_prob_(std::move(accept_prob)),
      threshold_(std::move(threshold)),
      benefits_(std::move(benefits)),
      cautious_below_(graph_.num_nodes(), 0.0),
      cautious_above_(graph_.num_nodes(), 1.0) {
  validate();
}

AccuInstance::AccuInstance(Graph graph, std::vector<UserClass> classes,
                           std::vector<double> accept_prob,
                           std::vector<std::uint32_t> threshold,
                           BenefitModel benefits,
                           GeneralizedCautiousParams cautious_params)
    : graph_(std::move(graph)),
      classes_(std::move(classes)),
      accept_prob_(std::move(accept_prob)),
      threshold_(std::move(threshold)),
      benefits_(std::move(benefits)),
      cautious_below_(std::move(cautious_params.below)),
      cautious_above_(std::move(cautious_params.above)) {
  const NodeId n = graph_.num_nodes();
  if (cautious_below_.size() != n || cautious_above_.size() != n) {
    throw InvalidArgument(
        "AccuInstance: generalized cautious vectors must have one entry per "
        "node");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (classes_.size() == n && classes_[v] != UserClass::kCautious) continue;
    const double q1 = cautious_below_[v];
    const double q2 = cautious_above_[v];
    if (!(q1 >= 0.0 && q1 <= q2 && q2 <= 1.0)) {
      throw InvalidArgument("AccuInstance: need 0 <= q1 <= q2 <= 1 for "
                            "cautious user " +
                            std::to_string(v));
    }
    if (q1 != 0.0 || q2 != 1.0) generalized_ = true;
  }
  validate();
}

void AccuInstance::validate() {
  const NodeId n = graph_.num_nodes();
  if (classes_.size() != n || accept_prob_.size() != n ||
      threshold_.size() != n || benefits_.num_nodes() != n) {
    throw InvalidArgument("AccuInstance: per-node vector size mismatch");
  }
  for (NodeId u = 0; u < n; ++u) {
    if (!(accept_prob_[u] >= 0.0 && accept_prob_[u] <= 1.0)) {
      throw InvalidArgument("AccuInstance: q(" + std::to_string(u) +
                            ") outside [0,1]");
    }
    if (classes_[u] != UserClass::kCautious) continue;
    ++num_cautious_;
    cautious_users_.push_back(u);
    if (threshold_[u] < 1) {
      throw InvalidArgument("AccuInstance: θ(" + std::to_string(u) +
                            ") must be a positive integer");
    }
    // With no cautious-cautious edges every neighbor is reckless, so
    // feasibility |N(v) ∩ V_R| >= θ_v reduces to deg(v) >= θ_v; both
    // assumptions are checked in one scan.
    std::uint32_t reckless_neighbors = 0;
    for (const graph::Neighbor& nb : graph_.neighbors(u)) {
      if (classes_[nb.node] == UserClass::kCautious) {
        throw InvalidArgument(
            "AccuInstance: edge between cautious users " + std::to_string(u) +
            " and " + std::to_string(nb.node) +
            " violates the model assumption N(v) ∩ V_C = ∅");
      }
      ++reckless_neighbors;
    }
    if (reckless_neighbors < threshold_[u]) {
      throw InvalidArgument(
          "AccuInstance: cautious user " + std::to_string(u) +
          " has fewer reckless neighbors than its threshold (" +
          std::to_string(reckless_neighbors) + " < " +
          std::to_string(threshold_[u]) +
          "); the paper removes such users from the network");
    }
  }
}

}  // namespace accu
