// The round engine — the one implementation of the paper's policy-execution
// loop (Algorithm 1's outer loop), shared by every simulation mode.
//
// Golovin & Krause's adaptive-submodularity framework (the paper's
// theoretical backbone) describes all of our simulators as the same
// process: a policy repeatedly extends a partial realization ω by selecting
// an item and observing its outcome.  What differs between the reliable,
// faulted, temporal, and multi-bot simulations is only the *environment*:
// how budget is counted, what happens between rounds, and how a request
// resolves.  `run_rounds` owns the loop once; an environment policy
// supplies the hooks:
//
//     while (env.has_budget()) {
//       begin_round()   — advance clocks, poll cancellation; may stop
//       select()        — ask the policy for a target (kInvalidNode = pass)
//       on_pass()       — a pass/wait round; may stop the attack
//       begin_request() — open the trace record, spend budget, draw faults;
//                         returns false when the request never reached the
//                         platform (the faulted path)
//       resolve()       — the accept/reject coin against the hidden truth
//       settle()        — reveal + observe + trace (the one reveal path)
//       faulted()       — fault feedback, abandonment, suspension stalls
//     }
//     env.finish()      — fold totals into the result
//
// The environments (`ReliableEnv`, `FaultyEnv`, `TemporalEnv`,
// `MultiBotEnv`) are written so the generated code is step-for-step — and
// therefore trace-byte-for-byte and RNG-draw-for-draw — identical to the
// four hand-written loops they replaced; tests/engine_test.cpp pins each
// one against a reference copy of the old loop.
//
// `SimWorkspace` is the engine's companion: it pools every allocation a
// simulation needs (the AttackerView's flat arrays, the acceptance-effects
// scratch, the ground-truth realization, fault retry counters) so a sweep
// that runs millions of cells performs O(1) allocations per cell instead
// of O(V+E) — see DESIGN.md §10 for the reuse rules.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/faults.hpp"
#include "core/multibot/multibot.hpp"
#include "core/observation.hpp"
#include "core/realization.hpp"
#include "core/score.hpp"
#include "core/simulator.hpp"
#include "core/task_pool.hpp"
#include "core/temporal/temporal.hpp"
#include "core/types.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace accu {

/// Reusable per-worker simulation scratch.  One workspace serves any number
/// of sequential simulations over instances of any shape; its buffers grow
/// to the largest instance seen and are then reused allocation-free.
/// Not thread-safe: one workspace per worker thread.
class SimWorkspace {
 public:
  SimWorkspace() = default;

  /// An AttackerView over `instance` with no requests sent, reusing the
  /// workspace's flat arrays.  Invalidates the view of any earlier call.
  [[nodiscard]] AttackerView& reset_view(const AccuInstance& instance);

  /// Samples a ground-truth realization into pooled storage (draw-for-draw
  /// identical to Realization::sample).  Invalidates earlier references.
  [[nodiscard]] const Realization& sample_truth(const AccuInstance& instance,
                                                util::Rng& rng);

  /// The flat SoA score pack for `instance`, built on first use and cached
  /// by instance identity (AccuInstance::uid), so a sweep that re-runs the
  /// same instance across cells shares one pack allocation-free.  The
  /// engine entry points offer it to strategies via
  /// Strategy::adopt_score_pack.
  [[nodiscard]] const ScorePack& score_pack(const AccuInstance& instance);

  /// Configures the width of the intra-cell task pool offered to strategies
  /// (total concurrency including the simulating thread; default 1 =
  /// sequential).  Changing the width tears the pool down and respawns it
  /// on next use, so call this once per sweep, not per cell.
  void set_cell_threads(unsigned threads);

  /// The workspace's task pool, spawned lazily at the configured width and
  /// parked between cells.  Width 1 pools run inline on the caller.
  [[nodiscard]] TaskPool& task_pool();

  /// Acceptance-effects scratch shared by the engine's reveal path.
  AttackerView::AcceptanceEffects effects;
  /// Per-target prior faulted attempts (FaultyEnv's retry accounting).
  std::vector<std::uint32_t> fault_attempts;

 private:
  std::optional<AttackerView> view_;
  std::optional<Realization> truth_;
  ScorePack score_pack_;
  unsigned cell_threads_ = 1;
  std::optional<TaskPool> task_pool_;
};

/// As `simulate_with_view` (simulator.hpp), but writes into a caller-owned
/// result and draws all scratch from `ws` — the allocation-free entry point
/// the experiment harness uses.  `view` is typically `ws.reset_view(...)`;
/// any fresh view over `instance` works.
void simulate_into(const AccuInstance& instance, const Realization& truth,
                   Strategy& strategy, std::uint32_t budget, util::Rng& rng,
                   AttackerView& view, SimWorkspace& ws, SimulationResult& out,
                   const util::CancelToken* cancel = nullptr,
                   const FeedbackModel& feedback = {});

/// As `simulate_with_faults`, workspace-pooled like `simulate_into`.
void simulate_with_faults_into(const AccuInstance& instance,
                               const Realization& truth, Strategy& strategy,
                               std::uint32_t budget, util::Rng& rng,
                               FaultModel& faults, AttackerView& view,
                               SimWorkspace& ws, SimulationResult& out,
                               const util::CancelToken* cancel = nullptr,
                               const FeedbackModel& feedback = {});

namespace engine {

/// Environment verdict for the hooks that can end the attack early.
enum class RoundStep : std::uint8_t { kContinue, kStop };

/// The single round loop.  See the header comment for the hook contract.
template <class Env>
void run_rounds(Env& env) {
  while (env.has_budget()) {
    if (env.begin_round() == RoundStep::kStop) break;
    const NodeId target = env.select();
    if (target == kInvalidNode) {
      if (env.on_pass() == RoundStep::kStop) break;
      continue;
    }
    if (env.begin_request(target)) {
      env.settle(target, env.resolve(target));
    } else {
      env.faulted(target);
    }
  }
  env.finish();
}

/// Resolves whether `target` accepts a delivered request under the hidden
/// ground truth — the one acceptance rule, shared by every environment.
/// Cautious users follow the threshold model: the pre-drawn coin of the
/// active regime decides (q1 below θ, q2 at/above; the deterministic model
/// is (q1, q2) = (0, 1)).  Reckless users follow their acceptance coin.
/// The threshold test is the *platform's*: a cautious user counts their
/// realized mutual friends (`true_cautious_would_accept`), which equals the
/// attacker's observed test under full feedback but may run ahead of it
/// under a deferred FeedbackModel.
template <class View, class Truth>
[[nodiscard]] bool resolve_acceptance(const AccuInstance& instance,
                                      const Truth& truth, const View& view,
                                      NodeId target) {
  if (instance.is_cautious(target)) {
    const bool reached = view.true_cautious_would_accept(target);
    return reached ? truth.cautious_above_accepts(target)
                   : truth.cautious_below_accepts(target);
  }
  return truth.reckless_accepts(target);
}

/// Shared single-bot state + the one reveal/observe/trace path (`settle`).
class SingleBotEnvBase {
 public:
  SingleBotEnvBase(const AccuInstance& instance, const Realization& truth,
                   Strategy& strategy, std::uint32_t budget, util::Rng& rng,
                   AttackerView& view, SimWorkspace& ws, SimulationResult& out,
                   const util::CancelToken* cancel)
      : instance_(instance),
        truth_(truth),
        strategy_(strategy),
        budget_(budget),
        rng_(rng),
        view_(view),
        ws_(ws),
        out_(out),
        cancel_(cancel) {}

  [[nodiscard]] NodeId select() { return strategy_.select(view_, rng_); }
  /// A single-bot strategy returning kInvalidNode stops the attack.
  [[nodiscard]] RoundStep on_pass() const { return RoundStep::kStop; }

  [[nodiscard]] bool resolve(NodeId target) const {
    return resolve_acceptance(instance_, truth_, view_, target);
  }

  void settle(NodeId target, bool accepted) {
    record_.accepted = accepted;
    if (accepted) {
      view_.record_acceptance(target, truth_, ws_.effects);
      record_.benefit_after = view_.true_benefit();
      strategy_.observe(target, true, view_, &ws_.effects);
    } else {
      view_.record_rejection(target);
      record_.benefit_after = view_.true_benefit();
      strategy_.observe(target, false, view_, nullptr);
    }
    out_.trace.push_back(record_);
  }

  void finish() {
    out_.total_benefit = view_.true_benefit();
    out_.num_accepted = static_cast<std::uint32_t>(view_.friends().size());
    out_.num_cautious_friends = view_.num_cautious_friends();
    out_.friends = view_.friends();
  }

 protected:
  void check_cancel() const {
    if (cancel_ != nullptr) cancel_->check();
  }

  /// Drains every revelation due at `round` into the observed layer and
  /// notifies the strategy per delivery.  No-op under full feedback (the
  /// reveal happened inline in settle).  The environments call this from
  /// begin_round with their own clock, so "d rounds later" means the same
  /// thing budget means in that environment.
  void deliver_feedback(std::uint64_t round) {
    if (!view_.deferred_feedback()) return;
    view_.set_feedback_round(round);
    while (view_.has_due_revelation()) {
      const NodeId source = view_.deliver_next_revelation(truth_, ws_.effects);
      strategy_.observe_revelation(source, view_, ws_.effects);
    }
  }

  /// Validates the selection and opens this round's trace record.  Trace
  /// benefits measure the realized attack state (true_benefit ==
  /// current_benefit under full feedback), so the reported curves stay
  /// comparable across feedback models.
  void open_record(NodeId target) {
    ACCU_ASSERT_MSG(target < instance_.num_nodes(),
                    "strategy selected an out-of-range node");
    ACCU_ASSERT_MSG(!view_.is_requested(target),
                    "strategy re-selected an already-requested node");
    record_ = RequestRecord{};
    record_.target = target;
    record_.cautious_target = instance_.is_cautious(target);
    record_.benefit_before = view_.true_benefit();
  }

  const AccuInstance& instance_;
  const Realization& truth_;
  Strategy& strategy_;
  const std::uint32_t budget_;
  util::Rng& rng_;
  AttackerView& view_;
  SimWorkspace& ws_;
  SimulationResult& out_;
  const util::CancelToken* cancel_;
  RequestRecord record_{};
};

/// The paper's reliable platform: budget counts delivered requests, every
/// request reaches the platform.
class ReliableEnv final : public SingleBotEnvBase {
 public:
  using SingleBotEnvBase::SingleBotEnvBase;

  [[nodiscard]] bool has_budget() const {
    return view_.num_requests() < budget_;
  }
  [[nodiscard]] RoundStep begin_round() {
    check_cancel();
    deliver_feedback(view_.num_requests());  // round clock = requests sent
    return RoundStep::kContinue;
  }
  [[nodiscard]] bool begin_request(NodeId target) {
    open_record(target);
    return true;  // always delivered
  }
  void faulted(NodeId /*target*/) {}  // unreachable: delivery never fails
};

/// The unreliable platform (DESIGN.md §8): budget counts *rounds* —
/// delivered requests, faulted requests, and suspension stalls alike — and
/// each attempt may fault per the FaultModel's own RNG stream.
class FaultyEnv final : public SingleBotEnvBase {
 public:
  FaultyEnv(const AccuInstance& instance, const Realization& truth,
            Strategy& strategy, std::uint32_t budget, util::Rng& rng,
            FaultModel& faults, AttackerView& view, SimWorkspace& ws,
            SimulationResult& out, const util::CancelToken* cancel)
      : SingleBotEnvBase(instance, truth, strategy, budget, rng, view, ws, out,
                         cancel),
        faults_(faults),
        observer_(strategy.as_fault_observer()) {
    ws.fault_attempts.assign(instance.num_nodes(), 0);
  }

  [[nodiscard]] bool has_budget() const { return rounds_ < budget_; }
  [[nodiscard]] RoundStep begin_round() {
    check_cancel();
    deliver_feedback(rounds_);  // round clock = budget rounds consumed
    return RoundStep::kContinue;
  }

  [[nodiscard]] bool begin_request(NodeId target) {
    open_record(target);
    record_.attempt = ws_.fault_attempts[target];
    if (record_.attempt > 0) ++out_.num_retries;
    ++rounds_;
    fault_ = faults_.next();
    return fault_ == FaultKind::kNone;
  }

  void faulted(NodeId target) {
    // The platform never processed the request: the attacker learns nothing
    // about the target; only the fault-aware feedback and the spent round
    // remain.
    ++out_.num_faulted;
    ++ws_.fault_attempts[target];
    record_.fault = fault_;
    record_.benefit_after = record_.benefit_before;

    FaultFeedback feedback = FaultFeedback::kNoResponse;
    if (fault_ == FaultKind::kTransient) {
      feedback = FaultFeedback::kTransientError;
    } else if (fault_ == FaultKind::kRateLimit) {
      feedback = FaultFeedback::kRateLimited;
    }
    const FaultResponse response =
        observer_ != nullptr ? observer_->observe_fault(target, feedback, view_)
                             : FaultResponse::kAbandon;
    if (response == FaultResponse::kAbandon) {
      // Write-off: for the attacker's knowledge this is exactly a rejection
      // (no reveal, target never pursued again).
      view_.record_rejection(target);
      strategy_.observe(target, false, view_, nullptr);
      ++out_.num_abandoned;
    }
    out_.trace.push_back(record_);

    if (fault_ == FaultKind::kRateLimit) {
      // Suspension: the next `w` rounds are lost, budget keeps ticking.
      // Stall rounds stay in the trace (explicit zero marginals) so
      // per-round curve indices remain aligned across runs.
      const std::uint32_t w = faults_.config().suspension_rounds;
      for (std::uint32_t i = 0; i < w && rounds_ < budget_; ++i) {
        RequestRecord stall;
        stall.fault = FaultKind::kSuspensionStall;
        stall.benefit_before = view_.true_benefit();
        stall.benefit_after = stall.benefit_before;
        out_.trace.push_back(stall);
        ++rounds_;
        ++out_.rounds_suspended;
      }
    }
  }

 private:
  FaultModel& faults_;
  FaultObserver* observer_;
  FaultKind fault_ = FaultKind::kNone;
  std::uint32_t rounds_ = 0;  // every round consumes budget
};

/// The growing network (temporal extension): one request opportunity per
/// round, arrivals activate between rounds, kInvalidNode means *wait* (the
/// round is spent, the request is kept).
class TemporalEnv final {
 public:
  TemporalEnv(const AccuInstance& instance, const Realization& truth,
              TemporalStrategy& strategy, std::uint32_t rounds,
              std::uint32_t budget, util::Rng& rng, TemporalView& view,
              TemporalResult& out)
      : instance_(instance),
        truth_(truth),
        strategy_(strategy),
        rounds_(rounds),
        budget_(budget),
        rng_(rng),
        view_(view),
        out_(out) {}

  [[nodiscard]] bool has_budget() const { return round_ < rounds_; }

  [[nodiscard]] RoundStep begin_round() {
    view_.advance_to(round_);
    if (view_.num_requests() >= budget_) return RoundStep::kStop;
    record_ = TemporalRequestRecord{};
    record_.round = round_;
    return RoundStep::kContinue;
  }

  [[nodiscard]] NodeId select() { return strategy_.select(view_, rng_); }

  [[nodiscard]] RoundStep on_pass() {
    record_.benefit_after = view_.current_benefit();
    out_.trace.push_back(record_);  // waited this round
    ++round_;
    return RoundStep::kContinue;
  }

  [[nodiscard]] bool begin_request(NodeId target) {
    ACCU_ASSERT_MSG(view_.is_active(target) && !view_.is_requested(target),
                    "temporal strategy selected an illegal target");
    record_.target = target;
    record_.cautious_target = instance_.is_cautious(target);
    return true;  // the temporal model has no fault layer
  }

  [[nodiscard]] bool resolve(NodeId target) const {
    return resolve_acceptance(instance_, truth_, view_, target);
  }

  void settle(NodeId target, bool accepted) {
    record_.accepted = accepted;
    if (accepted) {
      view_.record_acceptance(target);
    } else {
      view_.record_rejection(target);
    }
    record_.benefit_after = view_.current_benefit();
    out_.trace.push_back(record_);
    ++round_;
  }

  void faulted(NodeId /*target*/) {}  // unreachable

  void finish() {
    out_.total_benefit = view_.current_benefit();
    out_.num_cautious_friends = view_.num_cautious_friends();
    out_.requests_sent = view_.num_requests();
  }

 private:
  const AccuInstance& instance_;
  const Realization& truth_;
  TemporalStrategy& strategy_;
  const std::uint32_t rounds_;
  const std::uint32_t budget_;
  util::Rng& rng_;
  TemporalView& view_;
  TemporalResult& out_;
  std::uint32_t round_ = 0;
  TemporalRequestRecord record_{};
};

/// Per-bot facades over the coalition state so `resolve_acceptance` covers
/// the multi-bot environment too.  The multi-bot machinery is restricted to
/// the deterministic cautious model, so the regime coins are the constants
/// (q1, q2) = (0, 1): reached-threshold accepts, below rejects.
struct BotScopedView {
  const MultiBotView& view;
  BotId bot;
  [[nodiscard]] bool cautious_would_accept(NodeId v) const {
    return view.cautious_would_accept(bot, v);
  }
  /// Multi-bot runs are full-feedback only (simulate_multibot rejects a
  /// non-full model), so the true and observed tests coincide.
  [[nodiscard]] bool true_cautious_would_accept(NodeId v) const {
    return cautious_would_accept(v);
  }
};
struct BotScopedTruth {
  const MultiBotRealization& truth;
  BotId bot;
  [[nodiscard]] bool reckless_accepts(NodeId u) const {
    return truth.reckless_accepts(bot, u);
  }
  [[nodiscard]] bool cautious_below_accepts(NodeId /*v*/) const {
    return false;
  }
  [[nodiscard]] bool cautious_above_accepts(NodeId /*v*/) const {
    return true;
  }
};

/// The round-robin coalition adapter: flattens "each round, every bot sends
/// one request" into engine rounds (one bot turn each).  A full round in
/// which every bot passed stops the attack; `rounds` counts interaction
/// rounds, including a final partial one in which some bot sent.
class MultiBotEnv final {
 public:
  MultiBotEnv(const AccuInstance& instance, const MultiBotRealization& truth,
              MultiBotStrategy& strategy, std::uint32_t budget, BotId num_bots,
              util::Rng& rng, MultiBotView& view, MultiBotResult& out)
      : instance_(instance),
        truth_(truth),
        strategy_(strategy),
        budget_(budget),
        num_bots_(num_bots),
        rng_(rng),
        view_(view),
        out_(out) {}

  [[nodiscard]] bool has_budget() const {
    return view_.num_requests() < budget_;
  }

  [[nodiscard]] RoundStep begin_round() {
    if (bot_ == num_bots_) {  // the previous interaction round completed
      if (!any_sent_) return RoundStep::kStop;  // every bot passed
      ++out_.rounds;
      bot_ = 0;
      any_sent_ = false;
    }
    return RoundStep::kContinue;
  }

  [[nodiscard]] NodeId select() { return strategy_.select(bot_, view_, rng_); }

  [[nodiscard]] RoundStep on_pass() {
    ++bot_;  // this bot passes its turn; the round continues
    return RoundStep::kContinue;
  }

  [[nodiscard]] bool begin_request(NodeId target) {
    ACCU_ASSERT_MSG(target < instance_.num_nodes(),
                    "strategy selected an out-of-range node");
    ACCU_ASSERT_MSG(!view_.is_requested_by(bot_, target),
                    "strategy re-selected a node already requested by this "
                    "bot");
    any_sent_ = true;
    record_ = MultiBotRequestRecord{};
    record_.bot = bot_;
    record_.target = target;
    record_.cautious_target = instance_.is_cautious(target);
    record_.benefit_before = view_.current_benefit();
    return true;  // the multi-bot model has no fault layer
  }

  [[nodiscard]] bool resolve(NodeId target) const {
    return resolve_acceptance(instance_, BotScopedTruth{truth_, bot_},
                              BotScopedView{view_, bot_}, target);
  }

  void settle(NodeId target, bool accepted) {
    record_.accepted = accepted;
    if (accepted) {
      view_.record_acceptance(bot_, target, truth_.edges());
    } else {
      view_.record_rejection(bot_, target);
    }
    record_.benefit_after = view_.current_benefit();
    out_.trace.push_back(record_);
    ++bot_;
  }

  void faulted(NodeId /*target*/) {}  // unreachable

  void finish() {
    // Budget ran out (or every bot stopped) mid-round: a round in which
    // some bot sent still counts as an interaction round.
    if (any_sent_) ++out_.rounds;
    out_.total_benefit = view_.current_benefit();
    out_.num_cautious_friends = view_.num_cautious_friends();
    out_.coalition_friends = view_.coalition_friends();
  }

 private:
  const AccuInstance& instance_;
  const MultiBotRealization& truth_;
  MultiBotStrategy& strategy_;
  const std::uint32_t budget_;
  const BotId num_bots_;
  util::Rng& rng_;
  MultiBotView& view_;
  MultiBotResult& out_;
  BotId bot_ = 0;
  bool any_sent_ = false;
  MultiBotRequestRecord record_{};
};

}  // namespace engine
}  // namespace accu
