// Text serialization of complete ACCU instances.
//
// Lets an experiment (network + partition + acceptance parameters +
// benefits) be frozen to a file and re-run elsewhere — the reproduction
// analogue of shipping the paper's exact evaluation inputs.  The format is
// line-oriented and versioned:
//
//   # accu-instance v1
//   nodes <n> edges <m>
//   e <u> <v> <p>                                        (m lines)
//   n <id> <R|C> <q> <theta> <B_f> <B_fof> <q1> <q2>     (n lines)
//
// Doubles round-trip exactly (%.17g).  Readers reject malformed input with
// IoError and re-validate the instance through its constructor.

#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace accu {

void write_instance(const AccuInstance& instance, std::ostream& os);
void write_instance_file(const AccuInstance& instance,
                         const std::string& path);

[[nodiscard]] AccuInstance read_instance(std::istream& is);
[[nodiscard]] AccuInstance read_instance_file(const std::string& path);

}  // namespace accu
