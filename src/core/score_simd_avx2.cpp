// AVX2 kernels.  Compiled with -mavx2 (per-file, so the rest of the build
// stays portable); only ever called through the dispatch table after a
// runtime __builtin_cpu_supports("avx2") check.
//
// Bit-exactness vs the scalar canonical kernels: vmulpd/vaddpd are the same
// IEEE-754 operations as the scalar multiplies/adds, lane j of the ymm
// accumulator is exactly the scalar lane-j accumulator (stride-4 slot
// positions), and the final combine spells out (l0 + l2) + (l1 + l3).
// Intrinsics are never contraction-fused by the compiler (and the build
// adds -ffp-contract=off besides), so there is no FMA rounding hazard.

#include "core/score_simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && !defined(ACCU_SCALAR_ONLY)

#include <immintrin.h>

namespace accu::simd {

namespace {

double row_gather_mul_avx2(const double* values, const NodeId* nodes,
                           const double* table, std::uint32_t s0,
                           std::uint32_t s1) {
  __m256d acc = _mm256_setzero_pd();
  std::uint32_t s = s0;
  for (; s + 4 <= s1; s += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nodes + s));
    const __m256d t = _mm256_i32gather_pd(table, idx, 8);
    const __m256d v = _mm256_loadu_pd(values + s);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, t));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; s < s1; ++s) {
    lanes[(s - s0) & 3] += values[s] * table[nodes[s]];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double row_sum_avx2(const double* values, std::uint32_t s0, std::uint32_t s1) {
  __m256d acc = _mm256_setzero_pd();
  std::uint32_t s = s0;
  for (; s + 4 <= s1; s += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(values + s));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; s < s1; ++s) {
    lanes[(s - s0) & 3] += values[s];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void bernoulli_pack_avx2(const std::uint64_t* raw, const std::uint64_t* thr,
                         std::size_t n, std::uint64_t* out_words) {
  // (raw >> 11) < thr as a *signed* 64-bit compare: both sides are < 2^53
  // (53 mantissa bits / ceil(p·2^53) with p < 1), so the sign bit is never
  // set and signed == unsigned.
  std::size_t i = 0;
  std::size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    std::uint64_t bits = 0;
    for (unsigned j = 0; j < 64; j += 4) {
      const __m256i r = _mm256_srli_epi64(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(raw + i + j)),
          11);
      const __m256i t = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(thr + i + j));
      const __m256i lt = _mm256_cmpgt_epi64(t, r);
      bits |= static_cast<std::uint64_t>(
                  _mm256_movemask_pd(_mm256_castsi256_pd(lt)))
              << j;
    }
    out_words[w] = bits;
  }
  if (i < n) {
    std::uint64_t bits = 0;
    for (unsigned j = 0; i + j < n; ++j) {
      bits |= static_cast<std::uint64_t>((raw[i + j] >> 11) < thr[i + j]) << j;
    }
    out_words[w] = bits;
  }
}

constexpr ScoreKernels kAvx2Kernels{Isa::kAvx2, &row_gather_mul_avx2,
                                    &row_sum_avx2, &bernoulli_pack_avx2};

}  // namespace

const ScoreKernels& avx2_kernels() noexcept { return kAvx2Kernels; }

}  // namespace accu::simd

#endif  // x86
