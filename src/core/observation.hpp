// The attacker's knowledge state — the paper's partial realization ω.
//
// Tracks, for every user, the request status (the paper's X_u ∈ {0,1,?})
// and, for every potential edge, the observation status (X_uv ∈ {0,1,?}).
// When a user accepts a request, all of their incident edges are revealed
// (paper §II-B: "the neighborhood of u will be available to s and is no
// longer probabilistic").
//
// From those observations the view maintains, exactly and incrementally:
//
//   * the friend set F (accepted users) and whether each node is currently
//     a friend-of-friend (has a *realized* edge to some friend);
//   * each node's realized mutual-friend count |N(v) ∩ N(s)| — fully known
//     to the attacker because friends' neighborhoods are revealed, which is
//     what makes cautious acceptance predictable ("any policy should know
//     that the request will be rejected before it was sent", §III-B);
//   * the running benefit of Eq. (1): Σ_{u∈F} B_f(u) + Σ_{v∈FOF} B_fof(v).
//
// The view never looks at unrevealed parts of the realization; the
// simulator is the only component holding both.
//
// Feedback models (DESIGN.md §15).  Under the paper's *full* feedback the
// reveal happens inline in record_acceptance — the status-quo code path,
// byte-for-byte.  arm_feedback() with a non-full FeedbackModel switches the
// view into *deferred* mode, which splits its state into two layers:
//
//   * the OBSERVED layer (request_state_/edge_state_/mutual_/benefit_) —
//     what the attacker legally knows.  Acceptances update it immediately
//     (the platform confirms the friendship) but neighborhood revelations
//     queue in pending_ and only land when the environment calls
//     deliver_next_revelation at a round boundary (never, for myopic).
//   * the TRUE layer (true_mutual_/true_benefit_) — the realized ground
//     truth of the attack, which the *platform* uses to resolve cautious
//     acceptance (a cautious user counts their real mutual friends, not
//     the attacker's stale picture) and which reports measure.  Exposed
//     through true_* accessors that fall back to the observed layer under
//     full feedback, where the two coincide.

#pragma once

#include <span>
#include <vector>

#include "core/feedback.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"

namespace accu {

class AttackerView {
 public:
  /// Starts with no requests sent: every node '?' and every edge '?'.
  /// Keeps a reference to `instance`; the instance must outlive the view.
  explicit AttackerView(const AccuInstance& instance);

  /// Re-arms the view for a new simulation over `instance`: every node and
  /// edge back to '?', reusing the flat arrays instead of reconstructing —
  /// allocation-free once the arrays have grown to the instance's shape.
  void reset(const AccuInstance& instance);

  /// What changed when a request was accepted; lets callers (the ABM
  /// policy's incremental potential maintenance, the simulator's trace)
  /// react without re-deriving the deltas.
  struct AcceptanceEffects {
    /// The accepted node was a friend-of-friend just before accepting.
    bool was_fof = false;
    /// Nodes that entered FOF because of this acceptance.
    std::vector<NodeId> new_fof;
    /// Nodes whose realized mutual-friend count increased (the accepted
    /// node's realized neighbors, excluding nodes that were already
    /// friends).  Superset of `new_fof`.
    std::vector<NodeId> mutual_increased;

    /// Back to the empty state, keeping vector capacity (pooled reuse).
    void clear() noexcept {
      was_fof = false;
      new_fof.clear();
      mutual_increased.clear();
    }
  };

  /// Records a rejected request; reveals nothing else (paper §II-B).
  void record_rejection(NodeId v);

  /// Records an accepted request and reveals v's incident edges from the
  /// ground-truth realization.
  AcceptanceEffects record_acceptance(NodeId v, const Realization& truth);

  /// Pooled variant: writes the effects into `out` (cleared first), so a
  /// reused scratch object makes the reveal path allocation-free.
  void record_acceptance(NodeId v, const Realization& truth,
                         AcceptanceEffects& out);

  // --- feedback model (deferred revelations) ------------------------------

  /// Switches the view's feedback model; call right after reset().  A full
  /// model (the default) keeps the status-quo inline reveal; a non-full
  /// model defers neighborhood revelations into the pending queue (see the
  /// header comment).  The pending queue is a pooled member, so re-arming
  /// across sweep cells stays allocation-free.
  void arm_feedback(const FeedbackModel& model);

  [[nodiscard]] const FeedbackModel& feedback() const noexcept {
    return feedback_;
  }
  /// True when revelations defer (non-full model armed).
  [[nodiscard]] bool deferred_feedback() const noexcept { return deferred_; }

  /// Advances the delivery clock; the environment calls this at each round
  /// boundary with its round counter before draining due revelations.
  void set_feedback_round(std::uint64_t round) noexcept {
    feedback_round_ = round;
  }

  /// A queued revelation has come due at the current feedback round.
  [[nodiscard]] bool has_due_revelation() const noexcept {
    return next_pending_ < pending_.size() &&
           pending_[next_pending_].due <= feedback_round_;
  }

  /// Delivers the oldest due revelation: reveals the accepted node's
  /// incident edge realization into the observed layer (the exact loop
  /// full feedback runs inline) and reports the observed-state deltas in
  /// `effects` (was_fof is not meaningful for a late revelation and stays
  /// false).  Returns the node whose neighborhood landed.
  NodeId deliver_next_revelation(const Realization& truth,
                                 AcceptanceEffects& effects);

  /// Revelations still queued (undelivered at the end of an attack when
  /// the budget runs out before their due round).
  [[nodiscard]] std::size_t pending_revelations() const noexcept {
    return pending_.size() - next_pending_;
  }

  // --- request / friendship state ---------------------------------------

  [[nodiscard]] RequestState request_state(NodeId v) const {
    ACCU_ASSERT(v < request_state_.size());
    return request_state_[v];
  }
  [[nodiscard]] bool is_requested(NodeId v) const {
    return request_state(v) != RequestState::kUnknown;
  }
  [[nodiscard]] bool is_friend(NodeId v) const {
    return request_state(v) == RequestState::kAccepted;
  }
  /// FOF per the paper: shares a realized edge with a friend and is not a
  /// friend itself.
  [[nodiscard]] bool is_fof(NodeId v) const {
    return mutual_friends(v) > 0 && !is_friend(v);
  }
  [[nodiscard]] const std::vector<NodeId>& friends() const noexcept {
    return friends_;
  }
  [[nodiscard]] std::uint32_t num_requests() const noexcept {
    return num_requests_;
  }
  [[nodiscard]] std::uint32_t num_cautious_friends() const noexcept {
    return num_cautious_friends_;
  }

  // --- observed structure -------------------------------------------------

  /// Realized |N(v) ∩ N(s)| — exact, because friends reveal their edges.
  [[nodiscard]] std::uint32_t mutual_friends(NodeId v) const {
    ACCU_ASSERT(v < mutual_.size());
    return mutual_[v];
  }

  [[nodiscard]] EdgeState edge_state(EdgeId e) const {
    ACCU_ASSERT(e < edge_state_.size());
    return edge_state_[e];
  }

  /// The attacker's current belief that edge e exists: the prior p_e when
  /// unobserved, else 0/1.  Header-inline: this sits inside the potential
  /// function's innermost loop.
  [[nodiscard]] ACCU_ALWAYS_INLINE double edge_belief(EdgeId e) const {
    const EdgeState state = edge_state(e);
    if (state == EdgeState::kUnknown) return instance_->graph().edge_prob(e);
    return state == EdgeState::kPresent ? 1.0 : 0.0;
  }

  /// Deterministic acceptance test for a cautious user under the current
  /// observations (θ_v reached).
  [[nodiscard]] ACCU_ALWAYS_INLINE bool cautious_would_accept(NodeId v) const {
    ACCU_ASSERT(instance_->is_cautious(v));
    return mutual_friends(v) >= instance_->threshold(v);
  }

  // --- true layer (platform-side ground truth; == observed under full) ----

  /// Realized |N(v) ∩ N(s)| counting *every* acceptance, delivered or not —
  /// what the cautious user v actually sees on their own friend list.
  [[nodiscard]] ACCU_ALWAYS_INLINE std::uint32_t true_mutual_friends(
      NodeId v) const {
    ACCU_ASSERT(v < mutual_.size());
    return deferred_ ? true_mutual_[v] : mutual_[v];
  }

  /// The platform's acceptance test for a cautious user: realized mutual
  /// count against θ_v.  Identical to cautious_would_accept under full
  /// feedback; under deferred feedback the attacker's observed test may
  /// lag this one — that lag is the adaptivity gap.
  [[nodiscard]] ACCU_ALWAYS_INLINE bool true_cautious_would_accept(
      NodeId v) const {
    ACCU_ASSERT(instance_->is_cautious(v));
    return true_mutual_friends(v) >= instance_->threshold(v);
  }

  /// Eq. (1) benefit of the realized attack state (what reports measure);
  /// == current_benefit() under full feedback.
  [[nodiscard]] double true_benefit() const noexcept {
    return deferred_ ? true_benefit_ : benefit_;
  }

  // --- believed layer (attacker-side estimates under partial feedback) ----

  /// The attacker's expected |N(v) ∩ N(s)| under the current observations:
  /// Σ over v's potential edges to friends of edge_belief.  Under full
  /// feedback every such edge is observed, so this equals mutual_friends
  /// exactly; under myopic feedback it is the prior-weighted estimate the
  /// attacker must plan with.
  [[nodiscard]] double believed_mutual_friends(NodeId v) const;

  /// Believed FOF test: positive believed mutual mass and not a friend.
  [[nodiscard]] bool believed_is_fof(NodeId v) const {
    return believed_mutual_friends(v) > 0.0 && !is_friend(v);
  }

  /// The attacker's best guess whether cautious v would accept now.
  [[nodiscard]] bool believed_cautious_would_accept(NodeId v) const {
    ACCU_ASSERT(instance_->is_cautious(v));
    return believed_mutual_friends(v) >=
           static_cast<double>(instance_->threshold(v));
  }

  // --- flat spans (the score engine's batched kernels read these) ---------

  /// Per-node request states, indexed by NodeId.
  [[nodiscard]] std::span<const RequestState> request_states() const noexcept {
    return request_state_;
  }
  /// Per-node realized mutual-friend counts, indexed by NodeId.
  [[nodiscard]] std::span<const std::uint32_t> mutual_counts() const noexcept {
    return mutual_;
  }
  /// Per-edge observation states, indexed by EdgeId.
  [[nodiscard]] std::span<const EdgeState> edge_states() const noexcept {
    return edge_state_;
  }

  // --- benefit ------------------------------------------------------------

  /// Eq. (1) benefit of the current state, maintained incrementally.
  [[nodiscard]] double current_benefit() const noexcept { return benefit_; }

  /// Recomputes Eq. (1) from scratch (O(V)); tests pin the incremental
  /// value to this.
  [[nodiscard]] double recompute_benefit() const;

  [[nodiscard]] const AccuInstance& instance() const noexcept {
    return *instance_;
  }

  /// Number of edges whose state the attacker has observed (present or
  /// absent).
  [[nodiscard]] std::size_t num_observed_edges() const noexcept;

 private:
  /// Acceptance bookkeeping under a non-full model: observed layer gets
  /// the acceptance only, true layer gets the realized neighborhood, the
  /// revelation queues (unless myopic).
  void record_acceptance_deferred(NodeId v, const Realization& truth,
                                  AcceptanceEffects& effects);

  /// One queued neighborhood revelation: the accepted node and the round
  /// at which it becomes visible.
  struct PendingRevelation {
    NodeId node = kInvalidNode;
    std::uint64_t due = 0;
  };

  const AccuInstance* instance_;
  std::vector<RequestState> request_state_;
  std::vector<EdgeState> edge_state_;
  std::vector<std::uint32_t> mutual_;
  std::vector<NodeId> friends_;
  std::uint32_t num_requests_ = 0;
  std::uint32_t num_cautious_friends_ = 0;
  double benefit_ = 0.0;

  // Deferred-feedback state; untouched (deferred_ == false) under full
  // feedback so the status-quo path carries no extra work.  All vectors are
  // pooled members — reset/arm reuse their capacity.
  FeedbackModel feedback_{};
  bool deferred_ = false;
  std::uint64_t feedback_round_ = 0;
  std::vector<PendingRevelation> pending_;
  std::size_t next_pending_ = 0;
  std::vector<std::uint32_t> true_mutual_;
  double true_benefit_ = 0.0;
};

/// The social network as the attacker currently *knows* it: exactly the
/// edges observed present, carried with probability 1; node ids preserved.
/// Useful for exporting/visualizing crawl progress (the information the
/// attack actually harvested).
[[nodiscard]] Graph observed_graph(const AttackerView& view);

}  // namespace accu
