#include "util/backoff.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace accu::util {

std::uint32_t RetryPolicy::delay(std::uint32_t attempt, Rng& rng) const {
  ACCU_ASSERT(attempt >= 1);
  switch (kind) {
    case RetryKind::kNone:
      return 1;  // unreachable in practice; keep the contract total
    case RetryKind::kFixed:
      return std::max(1u, base_delay);
    case RetryKind::kExponentialJitter: {
      // base · 2^(attempt-1), capped at max_delay.  The doubling stops as
      // soon as the cap is reached, so arbitrarily large attempt counts
      // can never overflow or shift out of range — the loop runs at most
      // ~32 iterations before the value exceeds any 32-bit cap.
      const std::uint64_t cap = std::max(1u, max_delay);
      std::uint64_t value = std::max(1u, base_delay);
      for (std::uint32_t doubled = 1; doubled < attempt && value < cap;
           ++doubled) {
        value <<= 1;
      }
      const std::uint64_t capped = std::min(value, cap);
      // Full jitter: uniform in [1, capped].
      return static_cast<std::uint32_t>(1 + rng.below(capped));
    }
  }
  return 1;
}

RetryPolicy RetryPolicy::fixed(std::uint32_t retries,
                               std::uint32_t every) noexcept {
  RetryPolicy policy;
  policy.kind = RetryKind::kFixed;
  policy.max_retries = retries;
  policy.base_delay = every;
  return policy;
}

RetryPolicy RetryPolicy::exponential_jitter(std::uint32_t retries,
                                            std::uint32_t base,
                                            std::uint32_t cap) noexcept {
  RetryPolicy policy;
  policy.kind = RetryKind::kExponentialJitter;
  policy.max_retries = retries;
  policy.base_delay = base;
  policy.max_delay = cap;
  return policy;
}

RetryPolicy RetryPolicy::parse(const std::string& spec) {
  if (spec == "none") return none();
  if (spec == "fixed") return fixed(3);
  if (spec == "exp" || spec == "exponential" || spec == "backoff") {
    return exponential_jitter(3);
  }
  throw InvalidArgument("unknown retry policy '" + spec +
                        "' (expected none|fixed|exp)");
}

const char* RetryPolicy::name() const noexcept {
  switch (kind) {
    case RetryKind::kNone: return "none";
    case RetryKind::kFixed: return "fixed";
    case RetryKind::kExponentialJitter: return "exp-jitter";
  }
  return "?";
}

}  // namespace accu::util
