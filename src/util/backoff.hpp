// Retry/backoff policies for requests against an unreliable platform.
//
// A RetryPolicy answers two questions about a request that faulted:
// whether to try again after `failed_attempts` failures, and how many
// rounds to wait before the retry.  Delays are measured in attacker
// actions (simulation rounds), not wall time — during the wait the
// attacker keeps requesting other targets, so backing off is not dead
// budget.  The exponential schedule uses full jitter (uniform in
// [1, min(cap, base·2^(attempt−1))]), the standard defence against
// retry storms; jitter randomness comes from whatever Rng the caller
// passes, never from a hidden global.

#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace accu::util {

enum class RetryKind : std::uint8_t {
  kNone = 0,
  kFixed = 1,
  kExponentialJitter = 2,
};

struct RetryPolicy {
  RetryKind kind = RetryKind::kNone;
  /// Retry attempts allowed beyond the first request.
  std::uint32_t max_retries = 3;
  /// Rounds before the first retry (fixed: every retry).
  std::uint32_t base_delay = 1;
  /// Cap for the exponential schedule.
  std::uint32_t max_delay = 64;

  [[nodiscard]] bool should_retry(std::uint32_t failed_attempts) const noexcept {
    return kind != RetryKind::kNone && failed_attempts <= max_retries;
  }

  /// Rounds to wait before retry number `attempt` (1-based: the retry
  /// following the attempt-th failure).  Always at least 1.
  [[nodiscard]] std::uint32_t delay(std::uint32_t attempt, Rng& rng) const;

  [[nodiscard]] static RetryPolicy none() noexcept { return {}; }
  [[nodiscard]] static RetryPolicy fixed(std::uint32_t retries,
                                         std::uint32_t every = 1) noexcept;
  [[nodiscard]] static RetryPolicy exponential_jitter(
      std::uint32_t retries, std::uint32_t base = 1,
      std::uint32_t cap = 64) noexcept;

  /// Parses a CLI spec: "none", "fixed", "exp" (aliases "exponential",
  /// "backoff").  Throws InvalidArgument naming the bad spec otherwise.
  [[nodiscard]] static RetryPolicy parse(const std::string& spec);

  /// Short label for tables ("none", "fixed", "exp-jitter").
  [[nodiscard]] const char* name() const noexcept;
};

}  // namespace accu::util
