// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// checkpoint format uses to detect torn or corrupted cell blocks.  Chosen
// over a hash because the failure mode it guards against is storage-level
// corruption (partial appends, bit rot), where CRC's burst-error detection
// guarantees apply, and because the value is small enough to print in a
// one-line trailer.
//
// Incremental use: feed chunks in order, passing the previous return value
// as `crc` (start from 0).  The convention matches zlib's crc32(): the
// pre/post inversion happens inside, so intermediate values are already
// final — crc32("ab") == crc32("b", crc32("a")).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace accu::util {

[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t crc = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view data,
                                         std::uint32_t crc = 0) noexcept {
  return crc32(data.data(), data.size(), crc);
}

}  // namespace accu::util
