// Injectable I/O environment: the narrow syscall surface every durable
// path in accu goes through (checkpoint appends, serve journal, job spool,
// progress files, atomic replaces).
//
// Production code calls the ambient `io_env()`, which defaults to the real
// POSIX backend.  Tests swap in `FaultyFs`, a deterministic adversary that
// scripts the failures that actually corrupt state in the field:
//
//   * short writes            — write() returns fewer bytes than asked;
//   * EINTR storms            — write() fails with EINTR n times first;
//   * ENOSPC                  — a byte budget; the write that exhausts it
//                               is short, the next one fails with ENOSPC;
//   * fsync failure           — one scripted fsync fails, and (fsyncgate
//                               semantics) the dirty pages it covered are
//                               *dropped*: later fsyncs "succeed" but the
//                               data is gone, which is exactly the trap a
//                               sticky DurableAppender must refuse to fall
//                               into;
//   * crash at op k           — every effectful op from the k-th on fails
//                               with EIO and applies no effect, freezing a
//                               shadow "what is durable" model that
//                               materialize_crash_state() then writes back
//                               over the real files, simulating power loss
//                               at that exact boundary.
//
// FaultyFs forwards effects to the real filesystem (so in-run reads see
// normal data) while maintaining the shadow durability model on the side:
// write() dirties only the cache view; fsync(fd) promotes cache to
// durable; rename() and newly created names become durable only at the
// parent directory's fsync_dir (adversarial: before that, a crash loses
// the name entirely).  One documented simplification: truncate() is
// modeled as immediately durable (it is only used for torn-tail repair,
// which runs during recovery under the real env).
//
// One effectful op = one crash boundary.  Effectful ops are open-for-write,
// write (EINTR rejections excluded), fsync, fsync_dir, rename, truncate and
// unlink; close() and size() are free.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define ACCU_HAVE_POSIX_IO 1
#endif

namespace accu::util {

/// Outcome of a directory fsync.  Some filesystems refuse to open or sync
/// directories (kUnsupported — tolerated, durability degrades gracefully);
/// a hard error on a filesystem that *does* support it (EIO, ENOSPC) is a
/// real lost-durability signal the caller must treat as fatal.
enum class DirSyncResult : std::uint8_t {
  kOk = 0,
  kUnsupported = 1,
  kError = 2,
};

/// How open_write opens its target.
enum class OpenMode : std::uint8_t {
  kTruncate = 0,  ///< O_WRONLY | O_CREAT | O_TRUNC
  kAppend = 1,    ///< O_WRONLY | O_CREAT | O_APPEND
};

/// The syscall surface.  Methods mirror POSIX return conventions (negative
/// on failure with errno set) so call sites keep their familiar shape and
/// the real backend stays a zero-cost veneer.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  /// Returns an fd, or -1 with errno set.
  virtual int open_write(const std::string& path, OpenMode mode) = 0;
  /// Returns bytes written (possibly short), or -1 with errno set.
  virtual long write(int fd, const char* data, std::size_t len) = 0;
  /// 0 on success, -1 with errno set.
  virtual int fsync(int fd) = 0;
  /// Never a crash boundary (no durability effect).
  virtual int close(int fd) = 0;
  virtual int rename(const std::string& from, const std::string& to) = 0;
  virtual int truncate(const std::string& path, std::uint64_t length) = 0;
  virtual int unlink(const std::string& path) = 0;
  virtual DirSyncResult fsync_dir(const std::string& dir) = 0;
  /// Size of the open file, or -1 with errno set.
  virtual long long size(int fd) = 0;
};

/// The ambient environment used by util/atomic_file (and through it every
/// durable writer).  Defaults to the real POSIX backend.
[[nodiscard]] IoEnv& io_env() noexcept;

/// Swaps the ambient environment; passing nullptr restores the real one.
/// Returns the previous override (nullptr when the real env was active).
/// Not synchronized against in-flight I/O — install before spawning the
/// workload under test.
IoEnv* set_io_env(IoEnv* env) noexcept;

/// The real backend, for code that must bypass an installed fault layer
/// (e.g. FaultyFs forwarding its effects).
[[nodiscard]] IoEnv& real_io_env() noexcept;

/// RAII override: installs `env` on construction, restores the previous
/// environment on destruction (exception-safe test scaffolding).
class ScopedIoEnv {
 public:
  explicit ScopedIoEnv(IoEnv& env) : previous_(set_io_env(&env)) {}
  ~ScopedIoEnv() { set_io_env(previous_); }
  ScopedIoEnv(const ScopedIoEnv&) = delete;
  ScopedIoEnv& operator=(const ScopedIoEnv&) = delete;

 private:
  IoEnv* previous_;
};

// ---------------------------------------------------------------------------
// Deterministic fault-injection backend.

class FaultyFs final : public IoEnv {
 public:
  FaultyFs();

  // --- fault script (set before running the workload) ---------------------

  /// Crash at the k-th effectful op (1-based): that op and every later one
  /// fail with EIO and apply no effect.  0 disables.
  void crash_at(std::uint64_t op_index);
  /// Fail the n-th fsync/fsync_dir call (1-based) with EIO and drop the
  /// dirty cache of the file it covered (fsyncgate).  Later fsyncs succeed
  /// again — deliberately, so tests can prove callers refuse the trap.
  void fail_fsync(std::uint64_t nth);
  /// Cap every write() at `max_bytes` per call (short-write storm).
  /// 0 disables the cap.
  void short_write_cap(std::size_t max_bytes);
  /// Make the next `count` write() calls fail with EINTR before one
  /// succeeds.  EINTR rejections are not crash boundaries.
  void eintr_burst(std::uint32_t count);
  /// Total bytes writable before ENOSPC: the write that crosses the budget
  /// is short, the next returns -1/ENOSPC.  Negative disables.
  void disk_budget(long long bytes);

  // --- inspection ---------------------------------------------------------

  /// Effectful ops seen so far (= number of crash boundaries).
  [[nodiscard]] std::uint64_t op_count() const;
  /// fsync + fsync_dir calls seen so far.
  [[nodiscard]] std::uint64_t sync_count() const;
  /// True once a scripted crash point has triggered.
  [[nodiscard]] bool crashed() const;
  /// The shadow-durable content of `path`; returns false if the *name*
  /// would not survive a crash right now.
  [[nodiscard]] bool durable_content(const std::string& path,
                                     std::string* out) const;

  /// Rewrites the real filesystem to the shadow-durable state: every
  /// touched path gets its durable content, paths whose name is not
  /// durable are removed.  Call after the workload aborted on a scripted
  /// crash, then restore the real env and run recovery against the
  /// materialized state.
  void materialize_crash_state();

  // --- IoEnv --------------------------------------------------------------

  int open_write(const std::string& path, OpenMode mode) override;
  long write(int fd, const char* data, std::size_t len) override;
  int fsync(int fd) override;
  int close(int fd) override;
  int rename(const std::string& from, const std::string& to) override;
  int truncate(const std::string& path, std::uint64_t length) override;
  int unlink(const std::string& path) override;
  DirSyncResult fsync_dir(const std::string& dir) override;
  long long size(int fd) override;

 private:
  struct PendingEntry {
    enum class Kind : std::uint8_t { kCreate, kRename, kUnlink };
    Kind kind;
    std::string dir;      ///< parent directory whose fsync commits this
    std::string path;     ///< created / renamed-to / unlinked name
    std::string from;     ///< rename source (kRename only)
    std::string content;  ///< durable content snapshot at rename time
  };

  /// Returns true (and sets errno to EIO) when this op is at or past the
  /// scripted crash point; increments the op counter otherwise.
  bool crash_boundary();
  /// Slurps a real file that predates the fault script into cache_ +
  /// durable_ on first touch (open/truncate/rename/unlink of its name).
  void adopt_locked(const std::string& path);
  void commit_pending_for(const std::string& dir);
  [[nodiscard]] std::string durable_snapshot(const std::string& path) const;

  mutable std::mutex mutex_;
  std::uint64_t op_count_ = 0;
  std::uint64_t crash_op_ = 0;
  bool crashed_ = false;
  std::uint64_t fsync_count_ = 0;
  std::uint64_t fail_fsync_at_ = 0;
  std::size_t short_write_cap_ = 0;
  std::uint32_t eintr_left_ = 0;
  long long disk_budget_ = -1;

  /// Current visible ("page cache") content per touched path.
  std::map<std::string, std::string> cache_;
  /// Content durably on disk for paths whose *name* is durable.
  std::map<std::string, std::string> durable_;
  /// Content promoted by fd-fsync for paths whose name is not yet durable
  /// (a created-but-unrenamed temp file, an appender before dir fsync).
  std::map<std::string, std::string> fsynced_;
  /// Directory-entry changes awaiting their parent's fsync_dir.
  std::vector<PendingEntry> pending_;
  /// Open descriptors (real fds from the forwarded open).
  std::map<int, std::string> fds_;
};

}  // namespace accu::util
