#include "util/stats.hpp"

#include <cmath>

namespace accu::util {

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStat::ci95_halfwidth() const noexcept {
  return 1.96 * stderr_mean();
}

void SeriesAccumulator::add_run(const std::vector<double>& y) {
  if (y.size() > cells_.size()) cells_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) cells_[i].add(y[i]);
}

void SeriesAccumulator::add_at(std::size_t index, double y) {
  if (index >= cells_.size()) cells_.resize(index + 1);
  cells_[index].add(y);
}

void SeriesAccumulator::merge(const SeriesAccumulator& other) {
  if (other.cells_.size() > cells_.size()) cells_.resize(other.cells_.size());
  for (std::size_t i = 0; i < other.cells_.size(); ++i) {
    cells_[i].merge(other.cells_[i]);
  }
}

const RunningStat& SeriesAccumulator::at(std::size_t index) const {
  ACCU_ASSERT(index < cells_.size());
  return cells_[index];
}

std::vector<double> SeriesAccumulator::means() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].mean();
  return out;
}

std::vector<double> SeriesAccumulator::ci95() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out[i] = cells_[i].ci95_halfwidth();
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  if (!(hi > lo)) throw InvalidArgument("Histogram: hi must exceed lo");
  if (bins == 0) throw InvalidArgument("Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  if (std::isnan(x)) {
    // Casting floor(NaN) to an integer is UB; count it separately.
    ++nan_count_;
    return;
  }
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  if (bin < 0) bin = 0;
  const auto last = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  if (bin > last) bin = last;
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  ACCU_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  ACCU_ASSERT(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  ACCU_ASSERT(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  ACCU_ASSERT(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace accu::util
