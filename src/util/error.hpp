// Error handling primitives shared by every accu library.
//
// Two mechanisms, per the C++ Core Guidelines split between *preconditions /
// invariants* and *recoverable errors*:
//
//  * ACCU_ASSERT / ACCU_ASSERT_MSG — always-on internal invariant checks.
//    Violations indicate a bug inside this library; they print the failing
//    expression with source location and abort.  They are kept on in release
//    builds because the simulator's correctness claims (and the paper
//    reproduction) depend on them.
//
//  * accu::InvalidArgument / accu::IoError — exceptions thrown when *caller
//    provided* data is malformed (bad graph input, inconsistent model
//    parameters, unreadable files).  These are thrown during construction /
//    validation only, never on simulation hot paths.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace accu {

/// Thrown when a caller-supplied argument violates a documented precondition
/// (e.g. an edge probability outside [0,1], a threshold no reckless
/// neighborhood can satisfy).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown on I/O failures (unreadable edge-list file, malformed line, ...).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a durable write hits ENOSPC/EDQUOT.  The write is a clean
/// fail-stop: on-disk state is a valid prefix (checkpoint/journal records
/// are CRC-trailed), so freeing space and resuming loses nothing.
class DiskFullError : public IoError {
 public:
  using IoError::IoError;
};

/// Thrown when fsync (file or directory) fails.  Fsyncgate semantics: a
/// failed fsync means the kernel may have *dropped* the dirty pages, so a
/// later "successful" fsync proves nothing — the only safe reaction is to
/// stop using the handle and fail-stop the process.  DurableAppender makes
/// this sticky; callers map it to exit_code::kSyncLost.
class SyncFailedError : public IoError {
 public:
  using IoError::IoError;
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) noexcept {
  std::fprintf(stderr, "ACCU_ASSERT failed: %s\n  at %s:%d\n", expr, file,
               line);
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

}  // namespace detail
}  // namespace accu

/// Always-on invariant check; aborts with location info on failure.
#define ACCU_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                       \
          : ::accu::detail::assert_fail(#expr, __FILE__, __LINE__, ""))

/// Forces inlining of tiny accessors that sit on simulation hot paths (CSR
/// slices, edge beliefs); the definitions they annotate must be visible at
/// every call site (header-inline), which is what makes the attribute safe.
#if defined(__GNUC__) || defined(__clang__)
#define ACCU_ALWAYS_INLINE [[gnu::always_inline]] inline
#else
#define ACCU_ALWAYS_INLINE inline
#endif

/// Always-on invariant check with an explanatory message.
#define ACCU_ASSERT_MSG(expr, msg)                                      \
  ((expr) ? static_cast<void>(0)                                        \
          : ::accu::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
