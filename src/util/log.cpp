#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace accu::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept {
  if (static_cast<int>(level) >
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[accu %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace detail

#define ACCU_DEFINE_LOG(fn, level)                  \
  void fn(const char* fmt, ...) noexcept {          \
    std::va_list args;                              \
    va_start(args, fmt);                            \
    detail::vlog(level, fmt, args);                 \
    va_end(args);                                   \
  }

ACCU_DEFINE_LOG(log_error, LogLevel::kError)
ACCU_DEFINE_LOG(log_warn, LogLevel::kWarn)
ACCU_DEFINE_LOG(log_info, LogLevel::kInfo)
ACCU_DEFINE_LOG(log_debug, LogLevel::kDebug)

#undef ACCU_DEFINE_LOG

}  // namespace accu::util
