// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (graph generators, realization
// sampling, policies with random tie-breaking, the Random baseline) take an
// explicit `Rng&`.  Nothing in the library ever touches a global or
// time-seeded source, so every experiment is exactly reproducible from its
// seed — a requirement for the paper's "100 sample networks × 30 runs"
// protocol and for the regression tests.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through SplitMix64,
// both implemented here so the library has zero dependence on the quality or
// stability of the platform's <random> engines.  Distribution helpers are
// also implemented locally because libstdc++/libc++ distributions are not
// cross-platform deterministic.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace accu::util {

/// SplitMix64 step: used for seeding and for cheap hash-style mixing.
/// Advances `state` and returns the next 64-bit output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 pseudo-random generator with local distribution helpers.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into standard algorithms if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 256-bit state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x5eed'0000'0000'0001ULL) noexcept {
    reseed(seed);
  }

  /// Re-initializes the state exactly as the equivalent constructor would.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64_next(sm);
    }
    // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce four
    // zero outputs in a row, but keep the guard explicit.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 0x9e3779b97f4a7c15ULL;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator.  Streams produced by `split`
  /// with distinct tags are statistically independent of the parent and of
  /// each other, which lets the experiment harness hand one generator to
  /// each (sample, run) pair without sequencing constraints.
  [[nodiscard]] Rng split(std::uint64_t tag) noexcept {
    std::uint64_t mix = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng{splitmix64_next(mix)};
  }

  /// Fills `out[0..n)` with the next `n` raw outputs — exactly the sequence
  /// n calls to operator() would produce, amortizing the state loads so
  /// batch consumers (the realization sampler) pay ~1 ns/draw.
  void fill_raw(std::uint64_t* out, std::size_t n) noexcept {
    std::uint64_t s0 = state_[0], s1 = state_[1], s2 = state_[2],
                  s3 = state_[3];
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rotl(s1 * 5, 7) * 9;
      const std::uint64_t t = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= t;
      s3 = rotl(s3, 45);
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    ACCU_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Integer-threshold form of `bernoulli`'s interior case: for p in (0,1),
  /// `uniform() < p` ⟺ `(draw >> 11) < bernoulli_threshold(p)` as a uint64
  /// compare.  Proof: uniform() = (draw>>11)·2⁻⁵³ is exact (53-bit integer
  /// scaled by a power of two), so the comparison is the real-number test
  /// (draw>>11) < p·2⁵³ — and p·2⁵³ is itself exact for p < 1 (power-of-two
  /// scaling never rounds).  An integer x is < a real y iff x < ⌈y⌉ when y
  /// is fractional, and iff x < y when y is integral; ⌈·⌉ covers both.
  /// This lets batch samplers precompute thresholds once and vectorize the
  /// compare without touching floating point.
  [[nodiscard]] static std::uint64_t bernoulli_threshold(double p) noexcept {
    ACCU_ASSERT(p > 0.0 && p < 1.0);
    const double scaled = p * 0x1.0p53;  // exact: power-of-two scaling
    return static_cast<std::uint64_t>(std::ceil(scaled));
  }

  /// Uniform integer in [0, bound) via unbiased modulo rejection.
  /// Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    ACCU_ASSERT(bound > 0);
    // Reject draws from the short final cycle of size (2^64 mod bound) so
    // every residue is equally likely.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    std::uint64_t draw = (*this)();
    while (draw < threshold) draw = (*this)();
    return draw % bound;
  }

  /// Uniform integer in the inclusive range [lo, hi].  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    ACCU_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = (span == 0) ? (*this)() : below(span);
    return lo + static_cast<std::int64_t>(draw);
  }

  /// Uniform index into a container of `size` elements.  Requires size > 0.
  std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(below(size));
  }

  /// Fisher-Yates shuffle of a vector, deterministic given the stream.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples `count` distinct indices from [0, population) without
  /// replacement, in selection order (partial Fisher-Yates on an index
  /// vector).  Requires count <= population.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t population, std::size_t count);

  /// Geometric-like draw: number of failures before the first success of a
  /// Bernoulli(p) sequence; used by skip-sampling graph generators.
  /// Requires p in (0, 1].
  std::uint64_t geometric_skips(double p) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Counter-based generator: output i is a pure function of (seed, i) — the
/// SplitMix64 mix evaluated at state seed + (i+1)·γ, identical to what a
/// sequential SplitMix64 stream seeded with `seed` would emit as its i-th
/// output.  Because draws are independent of each other, any subrange can be
/// produced out of order, in parallel, or vectorized (the fill loop is a
/// pure map the auto-vectorizer handles; the 64×64 multiplies lower to
/// vpmuludq triples under AVX2).  This is the RNG seam for out-of-core /
/// sharded generation where a shared sequential stream would serialize the
/// producers.  NOT stream-compatible with Rng (xoshiro); sequential
/// simulation paths keep Rng.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// The i-th output of the stream (random access, stateless).
  [[nodiscard]] std::uint64_t at(std::uint64_t i) const noexcept {
    std::uint64_t z = seed_ + (i + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Fills out[0..n) with outputs `first..first+n` — equals calling at() per
  /// index, written as a branch-free map so the compiler can vectorize it.
  void fill(std::uint64_t first, std::uint64_t* out,
            std::size_t n) const noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t z = seed_ + (first + i + 1) * 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      out[i] = z ^ (z >> 31);
    }
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace accu::util
