#include "util/lockfile.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ACCU_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace accu::util {

PidFile::~PidFile() { release(); }

bool PidFile::try_acquire(const std::string& path) {
  if (held()) throw IoError("PidFile: already holding " + path_);
#ifdef ACCU_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    throw IoError("cannot open pid file " + path + ": " +
                  std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    (void)::close(fd);
    if (errno == EWOULDBLOCK || errno == EAGAIN) return false;
    throw IoError("cannot lock pid file " + path + ": " +
                  std::strerror(errno));
  }
  char buf[32];
  const int len =
      std::snprintf(buf, sizeof buf, "%ld\n", static_cast<long>(::getpid()));
  bool ok = ::ftruncate(fd, 0) == 0;
  ok = ok && ::write(fd, buf, static_cast<std::size_t>(len)) == len;
  ok = ok && ::fsync(fd) == 0;
  if (!ok) {
    const int saved = errno;
    (void)::close(fd);  // closing drops the flock
    throw IoError("cannot record pid in " + path + ": " +
                  std::strerror(saved));
  }
  (void)fsync_parent_dir(path);
  fd_ = fd;
#else
  // Create-exclusive fallback: no lock to inherit-release on crash, so a
  // stale file blocks successors until removed by hand.
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) {
    std::fclose(f);
    return false;
  }
  f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw IoError("cannot create pid file " + path);
  std::fprintf(f, "0\n");
  std::fclose(f);
  fd_ = 0;
#endif
  path_ = path;
  return true;
}

void PidFile::release() noexcept {
  if (!held()) return;
#ifdef ACCU_HAVE_POSIX_IO
  // Unlink before close: we still hold the flock while removing the name,
  // so no live daemon's file is ever deleted from under it.
  (void)::unlink(path_.c_str());
  (void)::close(fd_);
#else
  std::remove(path_.c_str());
#endif
  fd_ = -1;
  path_.clear();
}

long PidFile::read_pid(const std::string& path) noexcept {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  long pid = 0;
  const int got = std::fscanf(f, "%ld", &pid);
  std::fclose(f);
  return got == 1 && pid > 0 ? pid : 0;
}

}  // namespace accu::util
