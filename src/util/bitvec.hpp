// Word-backed bit vector.
//
// `std::vector<bool>` hides its words, which blocks the batch paths this
// library leans on: the fast realization sampler writes 64 Bernoulli
// outcomes per store, and the lookahead scenario scratch wants word-granular
// copies instead of per-bit RMW.  BitVec is the minimal replacement: a flat
// `uint64_t` array with LSB-first bit order inside each word (bit i lives at
// words()[i >> 6], mask 1 << (i & 63)), explicit word access, and
// capacity-reusing assignment.  Bits past `size()` in the last word are kept
// zero by every mutator so whole-word comparisons and copies are safe.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace accu::util {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool value = false) { assign(n, value); }

  /// Resizes to `n` bits, all set to `value`; reuses word capacity.
  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign(num_words(n), value ? ~0ull : 0ull);
    trim();
  }

  /// Resizes to `n` bits, preserving the first min(n, old size) bits; new
  /// bits are zero.
  void resize(std::size_t n) {
    size_ = n;
    words_.resize(num_words(n), 0);
    trim();
  }

  /// Word-granular copy; reuses capacity.
  void copy_from(const BitVec& other) {
    size_ = other.size_;
    words_.assign(other.words_.begin(), other.words_.end());
  }

  /// Bit-by-bit import from a `std::vector<bool>` (cold interop paths).
  void copy_from(const std::vector<bool>& bits) {
    assign(bits.size(), false);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) words_[i >> 6] |= 1ull << (i & 63);
    }
  }

  [[nodiscard]] bool get(std::size_t i) const {
    ACCU_ASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool value) {
    ACCU_ASSERT(i < size_);
    const std::uint64_t mask = 1ull << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Number of 64-bit words covering `bits` bits.
  [[nodiscard]] static std::size_t num_words(std::size_t bits) noexcept {
    return (bits + 63) / 64;
  }

  /// Clears any bits past size() in the last word (mutators call this so
  /// word-level consumers never see stale tail bits).
  void trim() noexcept {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (~0ull) >> (64 - tail);
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace accu::util
