// Monotonic wall-clock timing for progress reporting in long experiment
// sweeps.  Not used for any measured result — Google Benchmark owns those.

#pragma once

#include <chrono>

namespace accu::util {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace accu::util
