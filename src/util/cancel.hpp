// Cooperative cancellation for long-running simulations and sweeps.
//
// A CancelToken is a small thread-safe flag that a supervisor (watchdog
// thread, signal handler path, deadline timer) raises and that long-running
// work polls between units of progress.  The simulator checks it between
// rounds, so a pathological cell (e.g. a deep lookahead on a dense
// instance) can be stopped at the next round boundary — cancellation is
// cooperative and never interrupts a computation mid-step, which keeps
// every data structure consistent at the point of unwind.
//
// Contract:
//   * cancel() is safe from any thread and idempotent; the first reason to
//     fire wins and is what check() reports.
//   * An optional wall-clock deadline makes the token self-expiring:
//     cancelled() starts returning true once the deadline passes, without
//     requiring any supervisor thread.  (The experiment watchdog *also*
//     cancels expired cells explicitly, so either mechanism alone is
//     sufficient.)
//   * check() throws CancelledError, the unwind vehicle: a cancelled cell
//     reports Cancelled and leaves no partially aggregated trace behind.
//   * clear() re-arms a token for reuse (the harness re-runs a
//     deadline-cancelled cell with a fresh deadline).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace accu::util {

/// Why a CancelToken fired.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline = 1,   ///< wall-clock deadline exceeded
  kInterrupt = 2,  ///< external stop (SIGINT/SIGTERM or caller cancel)
};

[[nodiscard]] constexpr const char* cancel_reason_name(
    CancelReason reason) noexcept {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kInterrupt: return "interrupt";
  }
  return "?";
}

/// Thrown by CancelToken::check() to unwind cancelled work.  Not an input
/// error: callers that supervise cells catch it separately from
/// InvalidArgument / IoError and report the cell as cancelled.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? "cancelled: deadline exceeded"
                               : "cancelled: interrupted"),
        reason_(reason) {}

  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Raises the token.  First reason wins; later calls are no-ops.
  void cancel(CancelReason reason = CancelReason::kInterrupt) noexcept {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason),
                                    std::memory_order_relaxed);
  }

  /// Arms a wall-clock deadline `budget` from now; the token self-expires
  /// with CancelReason::kDeadline once it passes.
  void set_deadline_after(std::chrono::milliseconds budget) noexcept {
    const auto when = std::chrono::steady_clock::now() + budget;
    deadline_ns_.store(when.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Re-arms the token: clears the reason and any deadline.
  void clear() noexcept {
    reason_.store(0, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    if (reason_.load(std::memory_order_relaxed) != 0) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      // Latch the expiry so reason() is stable afterwards.
      const_cast<CancelToken*>(this)->cancel(CancelReason::kDeadline);
      return true;
    }
    return false;
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Throws CancelledError when the token has fired.  The polling point for
  /// cooperative work: cheap (one relaxed atomic load) on the happy path.
  void check() const {
    if (cancelled()) throw CancelledError(reason());
  }

 private:
  std::atomic<std::uint8_t> reason_{0};
  /// steady_clock deadline in time_since_epoch ticks; 0 = unarmed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace accu::util
