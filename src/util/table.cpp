#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace accu::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw InvalidArgument("Table: header cannot be empty");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  ACCU_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
  ACCU_ASSERT_MSG(rows_.back().size() < header_.size(),
                  "row has more cells than the header");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format(value, precision));
}

Table& Table::cell_int(long long value) { return cell(std::to_string(value)); }

const std::vector<std::string>& Table::row_at(std::size_t i) const {
  ACCU_ASSERT(i < rows_.size());
  return rows_[i];
}

std::string Table::format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "  " << v;
      if (c + 1 < header_.size()) {
        os << std::string(width[c] - v.size(), ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 2;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void Table::write_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::size_t columns) {
    for (std::size_t c = 0; c < columns; ++c) {
      if (c > 0) os << ',';
      if (c < cells.size()) os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit_row(header_, header_.size());
  for (const auto& r : rows_) emit_row(r, header_.size());
}

}  // namespace accu::util
