// Process exit codes shared by every accu binary (accu, accu_merge, the
// serve daemon and its workers).  One table instead of scattered magic
// numbers, so shell scripts — tools/ci.sh above all — can branch on a
// stable contract:
//
//   0    success
//   1    unhandled error (exception reached main)
//   2    usage error (bad command line)
//   3    merge found grid cells missing from every input
//   4    serve: at least one job was quarantined as poisoned
//   5    serve: another daemon already holds the root's pid lock
//   6    disk full (ENOSPC/EDQUOT) on a durable path — the checkpoint /
//        journal on disk is a valid prefix; free space and resume
//   7    fsync failed (file or directory) — dirty pages may be lost
//        (fsyncgate), the process fail-stopped rather than continue on a
//        handle whose durability can no longer be trusted; state on disk
//        is a valid prefix as of the last *successful* sync, resume re-runs
//        the rest
//   130  interrupted (SIGINT/SIGTERM drain; 128 + SIGINT by convention) —
//        state is checkpointed/journaled and resumable
//
// Codes are values, not an enum: they cross process boundaries (waitpid,
// shell $?), where the integer itself is the interface.

#pragma once

namespace accu::util::exit_code {

inline constexpr int kOk = 0;
inline constexpr int kFailure = 1;
inline constexpr int kUsage = 2;
inline constexpr int kMissingCells = 3;
inline constexpr int kQuarantined = 4;
inline constexpr int kAlreadyRunning = 5;
inline constexpr int kDiskFull = 6;
inline constexpr int kSyncLost = 7;
inline constexpr int kInterrupted = 130;

}  // namespace accu::util::exit_code
