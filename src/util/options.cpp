#include "util/options.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "util/error.hpp"

namespace accu::util {

namespace {

bool looks_like_option(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

/// Edit distance for the did-you-mean hint on unknown options.
std::size_t levenshtein(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = prev;
    }
  }
  return row[b.size()];
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_option(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) throw InvalidArgument("empty option name in " + arg);
      values_[name] = body.substr(eq + 1);
      continue;
    }
    values_[body] = "true";  // bare boolean flag
  }
}

void Options::load_defaults_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open options file: " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Trim whitespace.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    std::string body = line.substr(first, last - first + 1);
    if (body[0] == '#') continue;
    if (body.rfind("--", 0) == 0) body = body.substr(2);
    const std::size_t eq = body.find('=');
    const std::string name = eq == std::string::npos ? body
                                                     : body.substr(0, eq);
    if (name.empty()) {
      throw InvalidArgument("options file " + path + " line " +
                            std::to_string(line_no) + ": empty option name");
    }
    const std::string value =
        eq == std::string::npos ? "true" : body.substr(eq + 1);
    values_.try_emplace(name, value);  // command line wins
  }
}

Options& Options::declare(const std::string& name, const std::string& help) {
  declared_[name] = help;
  return *this;
}

void Options::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (declared_.contains(name) || name == "help") continue;
    std::string message = "unknown option --" + name;
    // Suggest the closest declared name when the typo is small.
    std::string best;
    std::size_t best_distance = 3;  // suggest only near-misses
    for (const auto& [known, help] : declared_) {
      (void)help;
      const std::size_t d = levenshtein(name, known);
      if (d < best_distance) {
        best_distance = d;
        best = known;
      }
    }
    if (!best.empty()) message += " (did you mean --" + best + "?)";
    throw InvalidArgument(message + "\n" + help_text());
  }
}

bool Options::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE) {
    throw InvalidArgument("option --" + name + ": value '" + it->second +
                          "' is out of range for a 64-bit integer");
  }
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("option --" + name + " expects an integer, got '" +
                          it->second + "'");
  }
  return parsed;
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (errno == ERANGE) {
    throw InvalidArgument("option --" + name + ": value '" + it->second +
                          "' is out of range for a double");
  }
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("option --" + name + " expects a number, got '" +
                          it->second + "'");
  }
  return parsed;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("option --" + name + " expects a boolean, got '" + v +
                        "'");
}

std::string Options::help_text() const {
  std::string out = "options:\n";
  for (const auto& [name, help] : declared_) {
    out += "  --" + name + "  " + help + "\n";
  }
  return out;
}

}  // namespace accu::util
