#include "util/io_env.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/error.hpp"

#ifdef ACCU_HAVE_POSIX_IO
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace accu::util {

namespace {

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Real backend: a zero-logic veneer over POSIX.

class RealIoEnv final : public IoEnv {
 public:
  int open_write(const std::string& path, OpenMode mode) override {
#ifdef ACCU_HAVE_POSIX_IO
    const int flags = O_WRONLY | O_CREAT |
                      (mode == OpenMode::kTruncate ? O_TRUNC : O_APPEND);
    return ::open(path.c_str(), flags, 0644);
#else
    (void)path;
    (void)mode;
    errno = ENOSYS;
    return -1;
#endif
  }

  long write(int fd, const char* data, std::size_t len) override {
#ifdef ACCU_HAVE_POSIX_IO
    return static_cast<long>(::write(fd, data, len));
#else
    (void)fd;
    (void)data;
    (void)len;
    errno = ENOSYS;
    return -1;
#endif
  }

  int fsync(int fd) override {
#ifdef ACCU_HAVE_POSIX_IO
    return ::fsync(fd);
#else
    (void)fd;
    errno = ENOSYS;
    return -1;
#endif
  }

  int close(int fd) override {
#ifdef ACCU_HAVE_POSIX_IO
    return ::close(fd);
#else
    (void)fd;
    errno = ENOSYS;
    return -1;
#endif
  }

  int rename(const std::string& from, const std::string& to) override {
    return std::rename(from.c_str(), to.c_str());
  }

  int truncate(const std::string& path, std::uint64_t length) override {
#ifdef ACCU_HAVE_POSIX_IO
    return ::truncate(path.c_str(), static_cast<off_t>(length));
#else
    (void)path;
    (void)length;
    errno = ENOSYS;
    return -1;
#endif
  }

  int unlink(const std::string& path) override {
    return std::remove(path.c_str());
  }

  DirSyncResult fsync_dir(const std::string& dir) override {
#ifdef ACCU_HAVE_POSIX_IO
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return DirSyncResult::kUnsupported;
    DirSyncResult result = DirSyncResult::kOk;
    if (::fsync(fd) != 0) {
      // EINVAL/ENOTSUP: the filesystem refuses directory fsync — a known
      // portability gap, not a lost write.  Anything else (EIO, ENOSPC)
      // means an entry table we needed durable may be gone.
      result = (errno == EINVAL || errno == ENOTSUP || errno == EROFS)
                   ? DirSyncResult::kUnsupported
                   : DirSyncResult::kError;
    }
    const int saved_errno = errno;
    (void)::close(fd);
    errno = saved_errno;
    return result;
#else
    (void)dir;
    return DirSyncResult::kUnsupported;
#endif
  }

  long long size(int fd) override {
#ifdef ACCU_HAVE_POSIX_IO
    struct stat st{};
    if (::fstat(fd, &st) != 0) return -1;
    return static_cast<long long>(st.st_size);
#else
    (void)fd;
    errno = ENOSYS;
    return -1;
#endif
  }
};

std::atomic<IoEnv*> g_override{nullptr};

/// Fully writes `len` bytes through the real env (its write can legally be
/// short); used by FaultyFs to apply the *effective* (possibly fault-
/// shortened) byte count to the real file.
bool real_write_all(int fd, const char* data, std::size_t len) {
  IoEnv& real = real_io_env();
  while (len > 0) {
    const long n = real.write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

IoEnv& real_io_env() noexcept {
  static RealIoEnv env;
  return env;
}

IoEnv& io_env() noexcept {
  IoEnv* override_env = g_override.load(std::memory_order_acquire);
  return override_env != nullptr ? *override_env : real_io_env();
}

IoEnv* set_io_env(IoEnv* env) noexcept {
  return g_override.exchange(env, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// FaultyFs

FaultyFs::FaultyFs() = default;

void FaultyFs::crash_at(std::uint64_t op_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_op_ = op_index;
}

void FaultyFs::fail_fsync(std::uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_fsync_at_ = nth;
}

void FaultyFs::short_write_cap(std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  short_write_cap_ = max_bytes;
}

void FaultyFs::eintr_burst(std::uint32_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  eintr_left_ = count;
}

void FaultyFs::disk_budget(long long bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_budget_ = bytes;
}

std::uint64_t FaultyFs::op_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_count_;
}

std::uint64_t FaultyFs::sync_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fsync_count_;
}

bool FaultyFs::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

bool FaultyFs::durable_content(const std::string& path,
                               std::string* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = durable_.find(path);
  if (it == durable_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool FaultyFs::crash_boundary() {
  ++op_count_;
  if (crashed_) {
    errno = EIO;
    return true;
  }
  if (crash_op_ != 0 && op_count_ >= crash_op_) {
    crashed_ = true;
    errno = EIO;
    return true;
  }
  return false;
}

std::string FaultyFs::durable_snapshot(const std::string& path) const {
  const auto fit = fsynced_.find(path);
  if (fit != fsynced_.end()) return fit->second;
  const auto dit = durable_.find(path);
  if (dit != durable_.end()) return dit->second;
  return std::string();
}

namespace {

/// Reads the whole file, returning false when it does not exist.
bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

void FaultyFs::adopt_locked(const std::string& path) {
  // Adopt a file that predates the fault script: it was durable before the
  // adversary arrived.  Must run before the op's real effect (a rename or
  // truncate would clobber the content we need to remember).
  if (cache_.find(path) != cache_.end() ||
      durable_.find(path) != durable_.end()) {
    return;
  }
  std::string existing;
  if (slurp(path, &existing)) {
    cache_[path] = existing;
    durable_[path] = existing;
  }
}

int FaultyFs::open_write(const std::string& path, OpenMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  adopt_locked(path);
  if (crash_boundary()) return -1;
  const int fd = real_io_env().open_write(path, mode);
  if (fd < 0) return fd;
  const bool name_known =
      durable_.find(path) != durable_.end() ||
      cache_.find(path) != cache_.end();
  if (mode == OpenMode::kTruncate) {
    cache_[path].clear();
  } else if (cache_.find(path) == cache_.end()) {
    cache_[path] = std::string();
  }
  if (!name_known) {
    pending_.push_back({PendingEntry::Kind::kCreate, directory_of(path),
                        path, std::string(), std::string()});
  }
  fds_[fd] = path;
  return fd;
}

long FaultyFs::write(int fd, const char* data, std::size_t len) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (eintr_left_ > 0) {
    --eintr_left_;
    errno = EINTR;
    return -1;  // deliberately not a crash boundary: the op never started
  }
  if (crash_boundary()) return -1;
  std::size_t effective = len;
  if (short_write_cap_ > 0 && effective > short_write_cap_) {
    effective = short_write_cap_;
  }
  if (disk_budget_ >= 0) {
    if (disk_budget_ == 0) {
      errno = ENOSPC;
      return -1;
    }
    if (static_cast<long long>(effective) > disk_budget_) {
      effective = static_cast<std::size_t>(disk_budget_);
    }
  }
  const auto it = fds_.find(fd);
  if (it == fds_.end()) {
    // Not a descriptor we opened — forward untouched.
    return real_io_env().write(fd, data, len);
  }
  if (!real_write_all(fd, data, effective)) return -1;
  if (disk_budget_ >= 0) disk_budget_ -= static_cast<long long>(effective);
  cache_[it->second].append(data, effective);
  return static_cast<long>(effective);
}

int FaultyFs::fsync(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crash_boundary()) return -1;
  const auto it = fds_.find(fd);
  const std::string path = it != fds_.end() ? it->second : std::string();
  ++fsync_count_;
  if (fsync_count_ == fail_fsync_at_) {
    // fsyncgate: the failed fsync *dropped* the dirty pages.  The cache
    // view reverts to the last durable content; a later fsync will report
    // success over the truncated state.
    if (!path.empty()) cache_[path] = durable_snapshot(path);
    errno = EIO;
    return -1;
  }
  const int rc = real_io_env().fsync(fd);
  if (rc != 0) return rc;
  if (!path.empty()) {
    fsynced_[path] = cache_[path];
    const auto dit = durable_.find(path);
    if (dit != durable_.end()) dit->second = cache_[path];
  }
  return 0;
}

int FaultyFs::close(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  fds_.erase(fd);
  return real_io_env().close(fd);
}

int FaultyFs::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A pre-existing rename target must be remembered *before* the real
  // rename clobbers it: until the parent directory fsyncs, the old entry
  // is what a crash leaves behind.
  adopt_locked(from);
  adopt_locked(to);
  if (crash_boundary()) return -1;
  const int rc = real_io_env().rename(from, to);
  if (rc != 0) return rc;
  const std::string snapshot = durable_snapshot(from);
  const auto cit = cache_.find(from);
  cache_[to] = cit != cache_.end() ? cit->second : std::string();
  cache_.erase(from);
  pending_.push_back(
      {PendingEntry::Kind::kRename, directory_of(to), to, from, snapshot});
  return 0;
}

int FaultyFs::truncate(const std::string& path, std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  adopt_locked(path);
  if (crash_boundary()) return -1;
  const int rc = real_io_env().truncate(path, length);
  if (rc != 0) return rc;
  // Documented simplification: truncation is modeled as immediately
  // durable.  It is only used for torn-tail repair, which runs during
  // recovery (under the real env), never inside the crash window.
  const auto resize_to = static_cast<std::size_t>(length);
  auto shrink = [resize_to](std::map<std::string, std::string>& m,
                            const std::string& p) {
    const auto it = m.find(p);
    if (it != m.end() && it->second.size() > resize_to) {
      it->second.resize(resize_to);
    }
  };
  shrink(cache_, path);
  shrink(durable_, path);
  shrink(fsynced_, path);
  return 0;
}

int FaultyFs::unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  adopt_locked(path);  // a crash before the dir fsync resurrects the file
  if (crash_boundary()) return -1;
  const int rc = real_io_env().unlink(path);
  if (rc != 0) return rc;
  cache_.erase(path);
  pending_.push_back({PendingEntry::Kind::kUnlink, directory_of(path), path,
                      std::string(), std::string()});
  return 0;
}

DirSyncResult FaultyFs::fsync_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crash_boundary()) return DirSyncResult::kError;
  ++fsync_count_;
  if (fsync_count_ == fail_fsync_at_) {
    // The entry table's dirty pages are dropped: pending entries stay
    // uncommitted, which is exactly the not-durable state they model.
    errno = EIO;
    return DirSyncResult::kError;
  }
  const DirSyncResult real = real_io_env().fsync_dir(dir);
  if (real != DirSyncResult::kError) commit_pending_for(dir);
  return real;
}

void FaultyFs::commit_pending_for(const std::string& dir) {
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->dir != dir) {
      ++it;
      continue;
    }
    switch (it->kind) {
      case PendingEntry::Kind::kCreate: {
        if (durable_.find(it->path) == durable_.end()) {
          const auto fit = fsynced_.find(it->path);
          durable_[it->path] =
              fit != fsynced_.end() ? fit->second : std::string();
        }
        break;
      }
      case PendingEntry::Kind::kRename: {
        durable_[it->path] = it->content;
        durable_.erase(it->from);
        fsynced_.erase(it->from);
        break;
      }
      case PendingEntry::Kind::kUnlink: {
        durable_.erase(it->path);
        fsynced_.erase(it->path);
        break;
      }
    }
    it = pending_.erase(it);
  }
}

long long FaultyFs::size(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  return real_io_env().size(fd);
}

void FaultyFs::materialize_crash_state() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<std::string> touched;
  for (const auto& [path, content] : cache_) touched.insert(path);
  for (const auto& [path, content] : durable_) touched.insert(path);
  for (const auto& [path, content] : fsynced_) touched.insert(path);
  for (const auto& entry : pending_) {
    touched.insert(entry.path);
    if (!entry.from.empty()) touched.insert(entry.from);
  }
  for (const std::string& path : touched) {
    const auto it = durable_.find(path);
    if (it == durable_.end()) {
      std::remove(path.c_str());  // the name never became durable
      continue;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("materialize_crash_state: cannot rewrite " + path);
    }
    out.write(it->second.data(),
              static_cast<std::streamsize>(it->second.size()));
    out.flush();
    if (!out) {
      throw IoError("materialize_crash_state: cannot rewrite " + path);
    }
  }
}

}  // namespace accu::util
