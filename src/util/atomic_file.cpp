#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ACCU_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace accu::util {

namespace {

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw IoError(what + " " + path + ": " + std::strerror(errno));
}

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#ifdef ACCU_HAVE_POSIX_IO
void write_all(int fd, const char* data, std::size_t len,
               const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("cannot write", path);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}
#endif

}  // namespace

bool fsync_dir(const std::string& dir) noexcept {
#ifdef ACCU_HAVE_POSIX_IO
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;  // not all filesystems allow dir opens
  const bool ok = ::fsync(fd) == 0;
  (void)::close(fd);
  return ok;
#else
  (void)dir;
  return false;  // no durability guarantees on the stdio fallback
#endif
}

bool fsync_parent_dir(const std::string& path) noexcept {
  return fsync_dir(directory_of(path));
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
#ifdef ACCU_HAVE_POSIX_IO
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail("cannot create", tmp);
  try {
    write_all(fd, content.data(), content.size(), tmp);
    if (::fsync(fd) != 0) io_fail("cannot fsync", tmp);
  } catch (...) {
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    io_fail("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    io_fail("cannot rename into place", path);
  }
  (void)fsync_parent_dir(path);
#else
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) io_fail("cannot create", tmp);
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    io_fail("cannot write", tmp);
  }
  std::remove(path.c_str());  // non-POSIX rename may not replace
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    io_fail("cannot rename into place", path);
  }
#endif
}

void truncate_file(const std::string& path, std::uint64_t length) {
#ifdef ACCU_HAVE_POSIX_IO
  if (::truncate(path.c_str(), static_cast<off_t>(length)) != 0) {
    io_fail("cannot truncate", path);
  }
#else
  // Portable fallback: read the prefix, rewrite the file.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) io_fail("cannot open", path);
  std::string prefix(length, '\0');
  const std::size_t got = std::fread(prefix.data(), 1, prefix.size(), in);
  std::fclose(in);
  prefix.resize(got);
  write_file_atomic(path, prefix);
#endif
}

DurableAppender::~DurableAppender() { close(); }

void DurableAppender::open(const std::string& path) {
  close();
  path_ = path;
#ifdef ACCU_HAVE_POSIX_IO
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) io_fail("cannot open for append", path);
  // If the open just created the file, its *name* exists only in the
  // directory; records synced into an unlinked-by-crash inode are lost.
  (void)fsync_parent_dir(path);
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) io_fail("cannot open for append", path);
  // Stash the FILE* through the fd slot is not portable; keep the handle
  // in a static-free way by reopening per append instead.
  std::fclose(f);
  fd_ = 0;  // marks "open" for the stdio fallback
#endif
}

bool DurableAppender::is_open() const noexcept { return fd_ >= 0; }

void DurableAppender::append(std::string_view data) {
  if (!is_open()) throw IoError("DurableAppender: append on closed file");
#ifdef ACCU_HAVE_POSIX_IO
  write_all(fd_, data.data(), data.size(), path_);
#else
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) io_fail("cannot open for append", path_);
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = written == data.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) io_fail("cannot append", path_);
#endif
}

void DurableAppender::sync() {
  if (!is_open()) return;
#ifdef ACCU_HAVE_POSIX_IO
  if (::fsync(fd_) != 0) io_fail("cannot fsync", path_);
#endif
}

void DurableAppender::close() noexcept {
#ifdef ACCU_HAVE_POSIX_IO
  if (fd_ >= 0) (void)::close(fd_);
#endif
  fd_ = -1;
}

std::uint64_t DurableAppender::size() const {
  if (!is_open()) return 0;
#ifdef ACCU_HAVE_POSIX_IO
  struct stat st{};
  if (::fstat(fd_, &st) != 0) io_fail("cannot stat", path_);
  return static_cast<std::uint64_t>(st.st_size);
#else
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long pos = std::ftell(f);
  std::fclose(f);
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
#endif
}

}  // namespace accu::util
