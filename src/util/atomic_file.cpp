#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/io_env.hpp"

namespace accu::util {

namespace {

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  const int err = errno;
  const std::string message = what + " " + path + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) throw DiskFullError(message);
  throw IoError(message);
}

[[noreturn]] void sync_fail(const std::string& what,
                            const std::string& path) {
  throw SyncFailedError(what + " " + path + ": " + std::strerror(errno));
}

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#ifdef ACCU_HAVE_POSIX_IO
void write_all(int fd, const char* data, std::size_t len,
               const std::string& path) {
  IoEnv& env = io_env();
  while (len > 0) {
    const long n = env.write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("cannot write", path);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}
#endif

}  // namespace

bool fsync_dir(const std::string& dir) noexcept {
#ifdef ACCU_HAVE_POSIX_IO
  return io_env().fsync_dir(dir) == DirSyncResult::kOk;
#else
  (void)dir;
  return false;  // no durability guarantees on the stdio fallback
#endif
}

bool fsync_parent_dir(const std::string& path) noexcept {
  return fsync_dir(directory_of(path));
}

void checked_fsync_dir(const std::string& dir) {
#ifdef ACCU_HAVE_POSIX_IO
  if (io_env().fsync_dir(dir) == DirSyncResult::kError) {
    sync_fail("cannot fsync directory", dir);
  }
#else
  (void)dir;  // unsupported platform: tolerated, like kUnsupported
#endif
}

void checked_fsync_parent_dir(const std::string& path) {
  checked_fsync_dir(directory_of(path));
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
#ifdef ACCU_HAVE_POSIX_IO
  IoEnv& env = io_env();
  const int fd = env.open_write(tmp, OpenMode::kTruncate);
  if (fd < 0) io_fail("cannot create", tmp);
  try {
    write_all(fd, content.data(), content.size(), tmp);
    if (env.fsync(fd) != 0) sync_fail("cannot fsync", tmp);
  } catch (...) {
    (void)env.close(fd);
    (void)env.unlink(tmp);
    throw;
  }
  if (env.close(fd) != 0) {
    (void)env.unlink(tmp);
    io_fail("cannot close", tmp);
  }
  if (env.rename(tmp, path) != 0) {
    (void)env.unlink(tmp);
    io_fail("cannot rename into place", path);
  }
  // The rename is in place; only its durability is at stake now, so a hard
  // directory-fsync error must surface as SyncFailedError, not be dropped.
  checked_fsync_parent_dir(path);
#else
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) io_fail("cannot create", tmp);
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    io_fail("cannot write", tmp);
  }
  std::remove(path.c_str());  // non-POSIX rename may not replace
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    io_fail("cannot rename into place", path);
  }
#endif
}

void truncate_file(const std::string& path, std::uint64_t length) {
#ifdef ACCU_HAVE_POSIX_IO
  if (io_env().truncate(path, length) != 0) {
    io_fail("cannot truncate", path);
  }
#else
  // Portable fallback: read the prefix, rewrite the file.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) io_fail("cannot open", path);
  std::string prefix(length, '\0');
  const std::size_t got = std::fread(prefix.data(), 1, prefix.size(), in);
  std::fclose(in);
  prefix.resize(got);
  write_file_atomic(path, prefix);
#endif
}

DurableAppender::~DurableAppender() { close(); }

void DurableAppender::open(const std::string& path) {
  close();
  sync_failed_ = false;
  path_ = path;
#ifdef ACCU_HAVE_POSIX_IO
  fd_ = io_env().open_write(path, OpenMode::kAppend);
  if (fd_ < 0) io_fail("cannot open for append", path);
  // If the open just created the file, its *name* exists only in the
  // directory; records synced into an unlinked-by-crash inode are lost.
  // A hard error here is lost durability — surface it.
  try {
    checked_fsync_parent_dir(path);
  } catch (...) {
    close();
    throw;
  }
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) io_fail("cannot open for append", path);
  // Stash the FILE* through the fd slot is not portable; keep the handle
  // in a static-free way by reopening per append instead.
  std::fclose(f);
  fd_ = 0;  // marks "open" for the stdio fallback
#endif
}

bool DurableAppender::is_open() const noexcept { return fd_ >= 0; }

void DurableAppender::append(std::string_view data) {
  if (!is_open()) throw IoError("DurableAppender: append on closed file");
  if (sync_failed_) {
    throw SyncFailedError(
        "DurableAppender: handle poisoned by an earlier fsync failure (" +
        path_ + "); appended bytes may already be lost");
  }
#ifdef ACCU_HAVE_POSIX_IO
  write_all(fd_, data.data(), data.size(), path_);
#else
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) io_fail("cannot open for append", path_);
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = written == data.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) io_fail("cannot append", path_);
#endif
}

void DurableAppender::sync() {
  if (!is_open()) return;
  if (sync_failed_) {
    throw SyncFailedError(
        "DurableAppender: handle poisoned by an earlier fsync failure (" +
        path_ + ")");
  }
#ifdef ACCU_HAVE_POSIX_IO
  if (io_env().fsync(fd_) != 0) {
    // fsyncgate: the kernel may have dropped the dirty pages.  Poison the
    // handle — a retried fsync reporting success would prove nothing.
    sync_failed_ = true;
    sync_fail("cannot fsync", path_);
  }
#endif
}

void DurableAppender::close() noexcept {
#ifdef ACCU_HAVE_POSIX_IO
  if (fd_ >= 0) (void)io_env().close(fd_);
#endif
  fd_ = -1;
}

std::uint64_t DurableAppender::size() const {
  if (!is_open()) return 0;
#ifdef ACCU_HAVE_POSIX_IO
  const long long size = io_env().size(fd_);
  if (size < 0) io_fail("cannot stat", path_);
  return static_cast<std::uint64_t>(size);
#else
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long pos = std::ftell(f);
  std::fclose(f);
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
#endif
}

// ---------------------------------------------------------------------------
// AtomicFileWriter

namespace {
// Small appends (section padding, per-row batches) coalesce into writes of
// this size; large appends bypass the buffer entirely.
constexpr std::size_t kWriterBufferBytes = 1u << 20;
}  // namespace

AtomicFileWriter::~AtomicFileWriter() { abort(); }

void AtomicFileWriter::open(const std::string& path) {
  abort();
  path_ = path;
  tmp_ = path + ".tmp";
  written_ = 0;
  buffer_.clear();
#ifdef ACCU_HAVE_POSIX_IO
  fd_ = io_env().open_write(tmp_, OpenMode::kTruncate);
  if (fd_ < 0) io_fail("cannot create", tmp_);
#else
  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) io_fail("cannot create", tmp_);
#endif
  open_ = true;
}

void AtomicFileWriter::append(const void* data, std::size_t len) {
  if (!open_) throw IoError("AtomicFileWriter: append on closed writer");
  written_ += len;
#ifdef ACCU_HAVE_POSIX_IO
  const char* bytes = static_cast<const char*>(data);
  if (buffer_.size() + len <= kWriterBufferBytes) {
    buffer_.append(bytes, len);
    return;
  }
  flush_buffer();
  if (len >= kWriterBufferBytes) {
    write_all(fd_, bytes, len, tmp_);
  } else {
    buffer_.append(bytes, len);
  }
#else
  // Stream straight to the temp file (stdio buffers the small appends), so
  // the bounded-memory guarantee holds on the fallback too — stream_gen's
  // --batch-bytes must not silently degrade to whole-file RAM usage here.
  if (std::fwrite(data, 1, len, file_) != len) io_fail("cannot write", tmp_);
#endif
}

void AtomicFileWriter::flush_buffer() {
#ifdef ACCU_HAVE_POSIX_IO
  if (!buffer_.empty()) {
    write_all(fd_, buffer_.data(), buffer_.size(), tmp_);
    buffer_.clear();
  }
#endif
}

void AtomicFileWriter::commit() {
  if (!open_) throw IoError("AtomicFileWriter: commit on closed writer");
#ifdef ACCU_HAVE_POSIX_IO
  IoEnv& env = io_env();
  try {
    flush_buffer();
    if (env.fsync(fd_) != 0) sync_fail("cannot fsync", tmp_);
  } catch (...) {
    abort();
    throw;
  }
  (void)env.close(fd_);
  fd_ = -1;
  if (env.rename(tmp_, path_) != 0) {
    const int rename_errno = errno;
    abort();
    errno = rename_errno;
    io_fail("cannot rename into place", path_);
  }
  open_ = false;
  checked_fsync_parent_dir(path_);
#else
  const bool flushed = std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!flushed) {
    abort();
    io_fail("cannot write", tmp_);
  }
  open_ = false;
  std::remove(path_.c_str());  // non-POSIX rename may not replace
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    io_fail("cannot rename into place", path_);
  }
#endif
}

void AtomicFileWriter::abort() noexcept {
  if (!open_) return;
  open_ = false;
  buffer_.clear();
#ifdef ACCU_HAVE_POSIX_IO
  if (fd_ >= 0) {
    (void)io_env().close(fd_);
    fd_ = -1;
  }
  (void)io_env().unlink(tmp_);
#else
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_.c_str());
#endif
}

// ---------------------------------------------------------------------------
// DurabilityPolicy + GroupCommitAppender

DurabilityPolicy::Mode DurabilityPolicy::parse_mode(const std::string& name) {
  if (name == "strict") return Mode::kStrict;
  if (name == "grouped") return Mode::kGrouped;
  throw InvalidArgument("durability must be 'strict' or 'grouped', got '" +
                        name + "'");
}

const char* DurabilityPolicy::mode_name() const noexcept {
  return mode == Mode::kStrict ? "strict" : "grouped";
}

void DurabilityPolicy::validate() const {
  if (group_cells < 1 || group_cells > 1000000) {
    throw InvalidArgument("group_cells must be in [1, 1000000], got " +
                          std::to_string(group_cells));
  }
  if (group_ms < 1 || group_ms > 600000) {
    throw InvalidArgument("group_ms must be in [1, 600000], got " +
                          std::to_string(group_ms));
  }
}

void GroupCommitAppender::open(const std::string& path,
                               const DurabilityPolicy& policy) {
  policy.validate();
  policy_ = policy;
  pending_ = 0;
  sync_count_ = 0;
  out_.open(path);
  last_sync_ = std::chrono::steady_clock::now();
}

void GroupCommitAppender::append_record(std::string_view data) {
  out_.append(data);
  ++pending_;
  if (policy_.mode == DurabilityPolicy::Mode::kStrict) {
    sync_now();
    return;
  }
  if (pending_ >= policy_.group_cells) {
    sync_now();
    return;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - last_sync_);
  if (elapsed.count() >= policy_.group_ms) sync_now();
}

void GroupCommitAppender::flush() {
  if (pending_ > 0) sync_now();
}

void GroupCommitAppender::sync_now() {
  out_.sync();
  pending_ = 0;
  ++sync_count_;
  last_sync_ = std::chrono::steady_clock::now();
}

}  // namespace accu::util
