// Streaming statistics used by the experiment harness.
//
// `RunningStat` accumulates mean/variance with Welford's numerically stable
// recurrence; `SeriesAccumulator` aggregates per-index curves (benefit vs k,
// marginal gain vs request index, ...) across repeated runs; `Histogram`
// bins scalar observations.  All of these are header-light, allocation-aware
// and exact enough for the confidence intervals reported in EXPERIMENTS.md.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace accu::util {

/// Welford streaming mean / variance / min / max of a scalar sample.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Half-width of a normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Aggregates repeated observations of a curve `y[0..n)`: each run calls
/// `add_run` with its curve; per-index means and CIs fall out.  Runs may
/// have different lengths (e.g. a policy that exhausts candidates early);
/// indices absent from a run simply contribute no sample there.
class SeriesAccumulator {
 public:
  /// Adds one run's curve; `y[i]` is the observation at index i.
  void add_run(const std::vector<double>& y);

  /// Adds a single observation at a given index.
  void add_at(std::size_t index, double y);

  /// Merges another accumulator index-by-index (parallel experiment
  /// shards).
  void merge(const SeriesAccumulator& other);

  [[nodiscard]] std::size_t length() const noexcept { return cells_.size(); }
  [[nodiscard]] const RunningStat& at(std::size_t index) const;
  [[nodiscard]] std::vector<double> means() const;
  [[nodiscard]] std::vector<double> ci95() const;

 private:
  std::vector<RunningStat> cells_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are clamped to
/// the first/last bin so mass is never silently dropped.  NaN samples are
/// not binnable (flooring NaN to an integer bin index is undefined
/// behavior): they are tallied in `nan_count()` instead and excluded from
/// `total()` and the bin fractions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// NaN samples seen by add(); never binned.
  [[nodiscard]] std::size_t nan_count() const noexcept { return nan_count_; }
  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of all samples falling in `bin` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

/// Exact mean of a vector (0 for empty input) — convenience for tests.
[[nodiscard]] double mean_of(const std::vector<double>& xs) noexcept;

}  // namespace accu::util
