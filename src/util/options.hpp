// Minimal command-line option parsing for bench/example binaries.
//
// Accepted forms: `--name=value` and bare `--flag` (boolean true).  The
// space-separated `--name value` form is intentionally not supported — it
// is ambiguous with positional arguments.  Unknown options raise
// InvalidArgument so typos in a long benchmark invocation fail loudly
// instead of silently running defaults.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace accu::util {

class Options {
 public:
  /// Parses argv; throws InvalidArgument on malformed input.  Positional
  /// (non `--`) arguments are collected in order.
  Options(int argc, const char* const* argv);

  /// Loads defaults from a response file: one `name=value` or bare `flag`
  /// per line (leading `--` optional), `#` comments and blank lines
  /// ignored.  Values already present (from the command line) win, so the
  /// file supplies defaults — the conventional `--options=FILE` pattern
  /// for long experiment configurations.  Throws IoError / InvalidArgument.
  void load_defaults_file(const std::string& path);

  /// Declares an option as known; returns *this for chaining.  After all
  /// declarations, call `check_unknown()` to reject typos.
  Options& declare(const std::string& name, const std::string& help);

  /// Throws InvalidArgument if the command line contained an undeclared
  /// option.
  void check_unknown() const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// One-line-per-option usage text from the declarations.
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> declared_;  // name -> help
  std::vector<std::string> positional_;
};

}  // namespace accu::util
