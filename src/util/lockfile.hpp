// Pid-file lock for singleton daemons (the `accu serve` front door).
//
// The classic pidfile race — a stale file from a crashed daemon blocking
// every successor — is avoided by locking the file with flock(2) instead of
// trusting its contents: the lock dies with the process, so a SIGKILLed
// daemon releases the root automatically while a *live* one keeps any
// second instance out (two daemons appending to one journal would corrupt
// the queue).  The recorded pid is advisory, for `status` and operators.
//
// On platforms without flock the guard degrades to create-exclusive
// semantics: correct against concurrent starts, but a crash leaves a stale
// file the operator must remove.

#pragma once

#include <string>

namespace accu::util {

class PidFile {
 public:
  PidFile() = default;
  ~PidFile();
  PidFile(const PidFile&) = delete;
  PidFile& operator=(const PidFile&) = delete;

  /// Tries to take the exclusive lock on `path`, recording this process's
  /// pid inside.  Returns false when another live process holds it; throws
  /// IoError only on genuine I/O failure (unwritable directory, ...).
  [[nodiscard]] bool try_acquire(const std::string& path);

  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

  /// The raw descriptor (-1 when not held).  A forked child must close its
  /// inherited copy: flock lives on the open file description, so a child
  /// that keeps the fd would hold the lock past the parent's death.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Drops the lock and removes the file (no-op when not held).
  void release() noexcept;

  /// Advisory: the pid recorded in a lock file, or 0 when unreadable.
  [[nodiscard]] static long read_pid(const std::string& path) noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace accu::util
