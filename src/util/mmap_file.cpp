#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/io_env.hpp"  // for ACCU_HAVE_POSIX_IO

#ifdef ACCU_HAVE_POSIX_IO
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace accu::util {

namespace {

[[noreturn]] void map_fail(const std::string& what, const std::string& path) {
  throw IoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#ifdef ACCU_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) map_fail("cannot open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    map_fail("cannot stat", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);
  if (base == MAP_FAILED) {
    errno = saved;
    map_fail("cannot mmap", path);
  }
  file->map_base_ = base;
  file->data_ = static_cast<const std::byte*>(base);
  file->size_ = size;
  file->mapped_ = true;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) map_fail("cannot open", path);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    map_fail("cannot stat", path);
  }
  std::rewind(f);
  const auto size = static_cast<std::size_t>(end);
  file->fallback_.resize((size + 7) / 8);
  const std::size_t got =
      size == 0 ? 0 : std::fread(file->fallback_.data(), 1, size, f);
  std::fclose(f);
  if (got != size) map_fail("cannot read", path);
  file->data_ = reinterpret_cast<const std::byte*>(file->fallback_.data());
  file->size_ = size;
#endif
  return file;
}

MappedFile::~MappedFile() {
#ifdef ACCU_HAVE_POSIX_IO
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
#endif
}

}  // namespace accu::util
