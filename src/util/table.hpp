// Tabular output: aligned console tables (for bench binaries that reprint a
// paper table/figure as rows) and RFC-4180 CSV emission (for plotting the
// same data externally).  Cells are strings; numeric helpers format with a
// fixed precision so columns stay aligned.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace accu::util {

/// A rectangular table with a header row.  Rows may be added with fewer
/// cells than the header; missing trailing cells render empty.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row.  Subsequent `cell` calls append to it.
  Table& row();
  /// Appends a string cell to the current row.
  Table& cell(std::string value);
  /// Appends a formatted numeric cell (fixed, `precision` decimals).
  Table& cell(double value, int precision = 2);
  /// Appends an integer cell.
  Table& cell_int(long long value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row_at(std::size_t i) const;

  /// Renders an aligned, box-drawing-free console table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180 CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(std::ostream& os) const;

  /// Formats a double the same way `cell(double)` does.
  [[nodiscard]] static std::string format(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace accu::util
