// Durable-file primitives for crash-consistent on-disk state.
//
// Three operations the checkpoint layer needs and plain iostreams cannot
// provide:
//
//   * write_file_atomic — all-or-nothing replacement: write to a temp file
//     in the same directory, flush + fsync, rename() over the target, then
//     fsync the directory so the rename itself is durable.  A crash at any
//     point leaves either the old file or the new one, never a torn mix.
//   * DurableAppender — an append-only handle whose sync() pushes the bytes
//     through the OS cache (fsync).  Appending a record then syncing bounds
//     crash loss to the in-flight record.
//   * truncate_file — drops a torn tail in place (resume after a crash
//     mid-append).
//
// On POSIX these map to open/write/fsync/rename; elsewhere they degrade to
// stdio without the fsync guarantees (same semantics minus durability —
// the code stays correct, crashes may just lose more).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace accu::util {

/// Atomically replaces `path` with `content` (temp file + fsync + rename).
/// Throws IoError on any failure; the target is untouched in that case.
void write_file_atomic(const std::string& path, const std::string& content);

/// Flushes a directory's entry table to stable storage.  A rename or a
/// freshly created file is durable only once its *directory* is fsynced —
/// fsyncing the file alone leaves the name itself at the mercy of a power
/// loss.  Best effort: returns false (never throws) where the platform or
/// filesystem refuses directory fsync, in which case crashes may lose the
/// newest names but the code stays correct.
bool fsync_dir(const std::string& dir) noexcept;

/// fsync_dir on the directory containing `path` ("." for a bare name).
bool fsync_parent_dir(const std::string& path) noexcept;

/// Truncates `path` to `length` bytes.  Throws IoError on failure.
void truncate_file(const std::string& path, std::uint64_t length);

/// Append-only file handle with explicit durability control.
class DurableAppender {
 public:
  DurableAppender() = default;
  ~DurableAppender();
  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Opens (creating if absent) `path` for appending.  Throws IoError.
  void open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept;

  /// Appends the whole buffer (short writes are retried).  Throws IoError.
  void append(std::string_view data);

  /// Flushes appended bytes to stable storage (fsync where available).
  void sync();

  void close() noexcept;

  /// Current size of the file in bytes.
  [[nodiscard]] std::uint64_t size() const;

  /// The raw descriptor (-1 when closed) — lets a forked child close its
  /// inherited copy so it never pins the parent's append stream.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace accu::util
