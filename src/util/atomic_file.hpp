// Durable-file primitives for crash-consistent on-disk state.
//
// Three operations the checkpoint layer needs and plain iostreams cannot
// provide:
//
//   * write_file_atomic — all-or-nothing replacement: write to a temp file
//     in the same directory, flush + fsync, rename() over the target, then
//     fsync the directory so the rename itself is durable.  A crash at any
//     point leaves either the old file or the new one, never a torn mix.
//   * DurableAppender — an append-only handle whose sync() pushes the bytes
//     through the OS cache (fsync).  Appending a record then syncing bounds
//     crash loss to the in-flight record.
//   * truncate_file — drops a torn tail in place (resume after a crash
//     mid-append).
//
// Failure taxonomy (all derive from IoError, see util/error.hpp):
// ENOSPC/EDQUOT on a write throws DiskFullError; a failed fsync — file or
// directory — throws SyncFailedError and, on DurableAppender, is *sticky*:
// the kernel may have dropped the dirty pages (fsyncgate), so every later
// append/sync on that handle refuses rather than let a retried fsync
// "succeed" over lost data.
//
// On POSIX these route through util::io_env() (open/write/fsync/rename),
// which tests swap for a deterministic fault injector; elsewhere they
// degrade to stdio without the fsync guarantees (same semantics minus
// durability — the code stays correct, crashes may just lose more).

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace accu::util {

/// Atomically replaces `path` with `content` (temp file + fsync + rename).
/// Throws IoError (DiskFullError / SyncFailedError for those causes); the
/// target is untouched except when the final directory fsync fails, in
/// which case the rename happened but may not survive a crash — callers
/// must treat SyncFailedError as fatal either way.
void write_file_atomic(const std::string& path, const std::string& content);

/// Flushes a directory's entry table to stable storage.  A rename or a
/// freshly created file is durable only once its *directory* is fsynced —
/// fsyncing the file alone leaves the name itself at the mercy of a power
/// loss.  Best effort: returns false (never throws) where the platform or
/// filesystem refuses directory fsync, in which case crashes may lose the
/// newest names but the code stays correct.  Hard errors (EIO, ENOSPC)
/// also return false here; durable paths use checked_fsync_dir instead.
bool fsync_dir(const std::string& dir) noexcept;

/// fsync_dir on the directory containing `path` ("." for a bare name).
bool fsync_parent_dir(const std::string& path) noexcept;

/// Like fsync_dir but distinguishes "the filesystem cannot sync
/// directories" (tolerated, returns) from a hard I/O error on one that can
/// (throws SyncFailedError — an entry we needed durable may be lost).
void checked_fsync_dir(const std::string& dir);

/// checked_fsync_dir on the directory containing `path`.
void checked_fsync_parent_dir(const std::string& path);

/// Truncates `path` to `length` bytes.  Throws IoError on failure.
void truncate_file(const std::string& path, std::uint64_t length);

/// Append-only file handle with explicit durability control.
class DurableAppender {
 public:
  DurableAppender() = default;
  ~DurableAppender();
  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Opens (creating if absent) `path` for appending.  Throws IoError.
  void open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept;

  /// Appends the whole buffer (short writes are retried).  Throws IoError;
  /// DiskFullError on ENOSPC, SyncFailedError if a previous sync failed.
  void append(std::string_view data);

  /// Flushes appended bytes to stable storage (fsync where available).
  /// A failure throws SyncFailedError and poisons the handle: the dropped
  /// dirty pages cannot be recovered by retrying (fsyncgate), so every
  /// subsequent append/sync throws until the handle is re-opened against
  /// verified on-disk state.
  void sync();

  /// True once a sync has failed on this handle.
  [[nodiscard]] bool sync_failed() const noexcept { return sync_failed_; }

  void close() noexcept;

  /// Current size of the file in bytes.
  [[nodiscard]] std::uint64_t size() const;

  /// The raw descriptor (-1 when closed) — lets a forked child close its
  /// inherited copy so it never pins the parent's append stream.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  bool sync_failed_ = false;
  std::string path_;
};

/// Streaming counterpart of write_file_atomic for payloads too large to
/// buffer in memory (the binary instance format's multi-gigabyte section
/// stream).  Appends go to `path + ".tmp"` through util::IoEnv, coalesced
/// into batched write() calls by an internal buffer; commit() flushes,
/// fsyncs, renames over the target and fsyncs the directory.  Until
/// commit() returns, the target file is untouched; destruction without a
/// commit (including via an exception) unlinks the temp file.  Error
/// taxonomy matches write_file_atomic: DiskFullError on ENOSPC/EDQUOT,
/// SyncFailedError on a failed fsync, IoError otherwise.
///
/// On non-POSIX platforms the writer streams to the same temp file through
/// stdio, so the bounded-memory guarantee holds everywhere; what degrades
/// is only durability (no fsync, no fault injection — like the rest of the
/// stdio fallbacks in this file).
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Starts writing `path` (via its ".tmp" sibling).  Throws IoError.
  void open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept { return open_; }

  /// Appends `len` bytes.  Throws IoError / DiskFullError.
  void append(const void* data, std::size_t len);
  void append(std::string_view data) { append(data.data(), data.size()); }

  /// Bytes appended so far (committed + buffered).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return written_;
  }

  /// Flush + fsync + rename into place + directory fsync.  After a
  /// successful commit the writer is closed; on failure the temp file is
  /// removed and the exception propagates.
  void commit();

  /// Drops the temp file without touching the target.  Safe to call
  /// repeatedly; the destructor calls it for uncommitted writers.
  void abort() noexcept;

 private:
  void flush_buffer();

  bool open_ = false;
  int fd_ = -1;                 // POSIX path
  std::FILE* file_ = nullptr;   // stdio fallback
  std::string path_, tmp_;
  std::uint64_t written_ = 0;
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// Durability policy + group commit.

/// How aggressively a record stream is fsynced.
///
///   * strict  — fsync after every record.  Crash loses at most the
///               in-flight record.  This is the pre-existing behavior.
///   * grouped — fsync every `group_cells` records or `group_ms`
///               milliseconds, whichever first, plus forced flushes at
///               drain/stop/deadline and stream end.  Crash loses at most
///               the last uncommitted group — and because records carry CRC
///               trailers and loads dedup first-wins, recovery truncates to
///               the valid prefix and simply re-runs the lost cells;
///               the final report stays bit-identical.
///
/// The elapsed-time bound is checked at append boundaries (no timer
/// thread): a stream that goes quiet keeps its tail unsynced until the
/// next append or flush, which is why every stop path must flush.
struct DurabilityPolicy {
  enum class Mode : std::uint8_t { kStrict = 0, kGrouped = 1 };

  Mode mode = Mode::kStrict;
  std::uint32_t group_cells = 64;
  std::uint32_t group_ms = 100;

  /// Parses "strict" / "grouped".  Throws InvalidArgument otherwise.
  [[nodiscard]] static Mode parse_mode(const std::string& name);
  [[nodiscard]] const char* mode_name() const noexcept;

  /// Bounds-checks the group knobs (group_cells in [1, 1e6], group_ms in
  /// [1, 600000]).  Throws InvalidArgument with the offending value.
  void validate() const;
};

/// A DurableAppender that syncs per DurabilityPolicy.  `append_record`
/// counts one record (= one grid cell for the checkpoint stream) and syncs
/// when the policy says so; `flush` forces out anything pending and is
/// mandatory before reporting progress as durable (drain, STOP, deadline,
/// stream end).  Sync failures are sticky exactly like DurableAppender's.
class GroupCommitAppender {
 public:
  /// Throws InvalidArgument if the policy fails validate().
  void open(const std::string& path, const DurabilityPolicy& policy);
  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }

  /// Appends one record and syncs if the policy's cell or time bound is
  /// reached.  Throws like DurableAppender::append / sync.
  void append_record(std::string_view data);

  /// Syncs any unsynced records; no-op when nothing is pending.
  void flush();

  void close() noexcept { out_.close(); }

  /// Records appended since the last sync (crash-window size).
  [[nodiscard]] std::uint32_t pending() const noexcept { return pending_; }
  /// fsyncs issued by this appender (bench/test observability).
  [[nodiscard]] std::uint64_t sync_count() const noexcept {
    return sync_count_;
  }
  [[nodiscard]] std::uint64_t size() const { return out_.size(); }
  [[nodiscard]] int fd() const noexcept { return out_.fd(); }

 private:
  void sync_now();

  DurableAppender out_;
  DurabilityPolicy policy_;
  std::uint32_t pending_ = 0;
  std::uint64_t sync_count_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
};

}  // namespace accu::util
