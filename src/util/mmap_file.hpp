// Read-only file mapping for the zero-parse binary instance loader.
//
// On POSIX the whole file is mmap()ed PROT_READ/MAP_PRIVATE, so loading a
// multi-gigabyte instance costs page-table setup plus the pages actually
// touched; elsewhere the file is slurped into an 8-byte-aligned heap buffer
// (same interface, no laziness).  The mapping is shared (shared_ptr) so
// structures that alias it — the pre-laid-out ScorePack slot tables an
// AccuInstance carries — keep it alive for exactly as long as needed.
//
// Reads are not routed through util::IoEnv: the fault-injection surface
// (io_env.hpp) covers durable *writes*; loaders validate what they read via
// CRCs instead (core/instance_format.hpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace accu::util {

class MappedFile {
 public:
  /// Maps `path` read-only.  Throws IoError when the file cannot be opened,
  /// stat'ed, or mapped.  An empty file maps to data() == nullptr, size 0.
  [[nodiscard]] static std::shared_ptr<const MappedFile> open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when backed by a real mmap (false for the heap fallback).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;             // munmap handle (POSIX)
  std::vector<std::uint64_t> fallback_;  // 8-byte-aligned heap copy
};

}  // namespace accu::util
