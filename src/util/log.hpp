// Leveled stderr logging for the experiment harness.
//
// The library itself is silent at default level; bench binaries raise the
// level with --verbose to watch sweep progress.  printf-style formatting is
// used (checked by the compiler via the format attribute) to keep hot-path
// call sites allocation-free when the level is filtered out.

#pragma once

#include <cstdarg>

namespace accu::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global threshold; messages above it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept;
}  // namespace detail

#if defined(__GNUC__) || defined(__clang__)
#define ACCU_PRINTF_LIKE __attribute__((format(printf, 1, 2)))
#else
#define ACCU_PRINTF_LIKE
#endif

void log_error(const char* fmt, ...) noexcept ACCU_PRINTF_LIKE;
void log_warn(const char* fmt, ...) noexcept ACCU_PRINTF_LIKE;
void log_info(const char* fmt, ...) noexcept ACCU_PRINTF_LIKE;
void log_debug(const char* fmt, ...) noexcept ACCU_PRINTF_LIKE;

#undef ACCU_PRINTF_LIKE

}  // namespace accu::util
