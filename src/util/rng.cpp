#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace accu::util {

std::vector<std::size_t> Rng::sample_without_replacement(
    std::size_t population, std::size_t count) {
  ACCU_ASSERT_MSG(count <= population,
                  "cannot sample more items than the population holds");
  std::vector<std::size_t> pool(population);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + index(population - i);
    using std::swap;
    swap(pool[i], pool[j]);
    picked.push_back(pool[i]);
  }
  return picked;
}

std::uint64_t Rng::geometric_skips(double p) noexcept {
  ACCU_ASSERT(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inverse-CDF sampling: floor(log(U) / log(1-p)) failures before success.
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf, retry instead of
  // producing an unbounded skip (probability 2^-53 per draw).
  while (u <= 0.0) u = uniform();
  const double skips = std::floor(std::log(u) / std::log1p(-p));
  // Clamp pathological rounding to a sane non-negative integer.
  if (skips < 0.0) return 0;
  if (skips > 9.0e18) return static_cast<std::uint64_t>(9.0e18);
  return static_cast<std::uint64_t>(skips);
}

}  // namespace accu::util
