// Write-ahead journal for the serve daemon's job queue.
//
// Every queue transition (submit, shard start, shard completion, crash,
// quarantine, failure, job completion, drain) is appended as one fsynced
// line *before* the daemon acts on it, so a `kill -9` at any instant loses
// at most the in-flight record — never a completed state change.  On
// restart the journal is replayed into a state machine and the daemon
// resumes exactly where the log ends; the per-cell sweep state itself
// lives in the shard checkpoint files, so a lost `start` record merely
// re-runs a shard whose checkpoint already holds its finished cells.
//
// Format (line-oriented, mirrors the checkpoint v2 conventions):
//
//     # accu-serve-journal v1
//     <verb> <arg> ... <crc32-8hex>\n
//
// The CRC trailer covers the payload (everything before the final
// space-separated token).  Arguments must not contain whitespace.  A torn
// or bit-rotted tail is detected by the CRC / missing-newline check and
// truncated deterministically on open, exactly like a torn checkpoint
// block: records after the first invalid line are dropped even if they
// would individually verify, because append order is the source of truth.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"

namespace accu::serve {

struct JournalRecord {
  std::string verb;
  std::vector<std::string> args;
};

/// What reading a journal file yielded.  `valid_end` is the byte offset
/// just past the last verifiable record — everything beyond it is torn or
/// corrupt and must be truncated before appending.
struct JournalLoad {
  std::vector<JournalRecord> records;
  std::uint64_t valid_end = 0;
  std::uint64_t file_size = 0;
  bool existed = false;
};

/// Reads and verifies a journal.  A missing file yields an empty load
/// (existed = false); a file whose header line is damaged yields
/// valid_end = 0 (the whole file is discarded).  Never throws on
/// corruption — corruption is an expected crash artifact, reported via
/// valid_end < file_size.  Throws IoError only when the file exists but
/// cannot be read at all.
[[nodiscard]] JournalLoad read_journal(const std::string& path);

/// Formats one record line (payload + CRC trailer + newline), the exact
/// bytes JobJournal::append writes.  Throws InvalidArgument if the verb or
/// any argument contains whitespace.
[[nodiscard]] std::string format_journal_record(
    const std::string& verb, const std::vector<std::string>& args);

/// Append handle.  `open` creates the file with its header, or truncates a
/// torn tail of an existing file; `append` writes one record and fsyncs it
/// before returning, so a record the caller has seen acknowledged survives
/// any subsequent crash.
class JobJournal {
 public:
  /// Opens (creating or repairing) the journal; returns the records that
  /// survived verification, replaying duties to the caller.
  JournalLoad open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }
  /// Raw descriptor for fork hygiene (see DurableAppender::fd).
  [[nodiscard]] int fd() const noexcept { return out_.fd(); }
  void append(const std::string& verb,
              const std::vector<std::string>& args = {});

 private:
  util::DurableAppender out_;
};

// ---------------------------------------------------------------------------
// Replay: fold the record stream into per-job state.

struct ReplayedJob {
  enum class State : std::uint8_t {
    kQueued = 0,
    kRunning = 1,
    kDone = 2,
    kFailed = 3,
    kQuarantined = 4,
  };
  State state = State::kQueued;
  std::uint32_t shards = 1;
  std::vector<bool> shard_done;
  /// Last journaled worker pid per shard; 0 = none recorded.  After a
  /// daemon crash these are the candidates for orphan recovery.
  std::vector<long> shard_pid;
  std::uint32_t crashes = 0;
  int exit_code = 0;
  std::string fail_reason;
};

[[nodiscard]] const char* replayed_state_name(
    ReplayedJob::State state) noexcept;

struct ReplayState {
  /// Keyed by job id; std::map keeps submission (id) order.
  std::map<std::string, ReplayedJob> jobs;
  bool drain_requested = false;
};

/// Folds records into job states.  Idempotent under duplicated records
/// (a crash can duplicate at most the acted-on-but-re-journaled tail) and
/// tolerant of unknown verbs (skipped — forward compatibility).
[[nodiscard]] ReplayState replay_journal(
    const std::vector<JournalRecord>& records);

}  // namespace accu::serve
