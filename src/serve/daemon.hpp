// The serve daemon: a crash-safe job scheduler over the sharded sweep
// machinery.
//
// Layout under the serve root directory:
//
//     root/serve.pid        flock-held pidfile (single daemon per root)
//     root/journal          write-ahead queue journal (serve/journal.hpp)
//     root/spool/*.job      incoming descriptors (atomic client writes)
//     root/jobs/<id>/       per-job state:
//         job.desc          the admitted descriptor (CRC-guarded)
//         shard<i>.ckpt     per-shard sweep checkpoint (crash-resumable)
//         progress.<i>      throttled shard progress (advisory)
//         merged.ckpt       post-merge unsharded checkpoint
//         report.md         final markdown report
//     root/STOP             drain request flag (written by `accu serve
//                           stop`, removed once the drain completes)
//
// Crash story: admission renames the descriptor into jobs/<id>/ *before*
// journaling the submit, so a crash between the two leaves a job directory
// the next daemon adopts (re-journals) on startup; every later transition
// is journaled before it is acted on.  Cell-level state lives in the shard
// checkpoints, so losing a `start` record merely re-runs a shard that
// resumes from its own checkpoint — no cell is ever lost or double-counted
// after a kill -9 of the daemon or any worker.
//
// Workers are forked processes running run_job_shard; on Linux they carry
// PR_SET_PDEATHSIG so a SIGKILLed daemon takes its workers with it (no
// orphan ever appends to a checkpoint behind a restarted daemon's back).
// Recovery additionally kills any journaled worker pid that still looks
// like an accu process before rescheduling its shard.

#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/admission.hpp"

namespace accu::serve {

struct ServeConfig {
  std::string root;           ///< serve state directory (created if absent)
  std::uint32_t workers = 2;  ///< max concurrent worker processes; also the
                              ///< shard count stamped on admitted jobs
  AdmissionConfig admission{};
  std::uint32_t poll_ms = 50;  ///< scheduler tick
  /// Exit once the spool is empty and every job is terminal — the mode CI
  /// and tests use; a service deployment leaves it false and drains via
  /// SIGTERM or `accu serve stop`.
  bool exit_when_idle = false;
  /// External stop flag (SIGTERM handler); non-zero triggers a drain:
  /// workers get SIGTERM, stop at cell granularity with checkpoints
  /// flushed, and the daemon exits 0 with every non-terminal job resumable.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

/// Runs the daemon loop.  Returns util::exit_code::kOk on a clean drain or
/// idle exit, kQuarantined when it exits idle with quarantined jobs,
/// kAlreadyRunning when another daemon holds the root, kFailure on setup
/// errors.
[[nodiscard]] int run_daemon(const ServeConfig& config);

/// One row of `accu serve status`.
struct JobStatus {
  std::string id;
  std::string state;  ///< queued | running | done | failed | quarantined
  std::size_t cells_done = 0;
  std::size_t cells_total = 0;
  double ema_cell_ms = 0.0;  ///< per-cell EMA across reporting shards
  double eta_s = 0.0;        ///< 0 when unknown or done
  std::uint32_t crashes = 0;
  std::string detail;  ///< fail reason, exit code, ...
};

/// Reads queue state from the journal + progress files.  Works while a
/// daemon is live (readers never lock) and after it exited.
[[nodiscard]] std::vector<JobStatus> read_status(const std::string& root);

/// Asks a running daemon to drain by dropping the STOP flag file.
void request_stop(const std::string& root);

}  // namespace accu::serve
