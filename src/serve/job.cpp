#include "serve/job.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/feedback.hpp"
#include "core/instance_format.hpp"
#include "core/instance_io.hpp"
#include "core/score_simd.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/log.hpp"
#include "util/options.hpp"

namespace accu::serve {
namespace {

constexpr const char* kJobHeader = "# accu-serve-job v1";

/// Every descriptor key, declared once — parse_job feeds these to
/// util::Options so typos fail with did-you-mean instead of silently
/// running defaults.
const std::vector<std::pair<const char*, const char*>>& job_keys() {
  static const std::vector<std::pair<const char*, const char*>> keys = {
      {"kind", "compare | simulate | sweep"},
      {"instance", "instance file (compare/simulate)"},
      {"dataset", "dataset generator name (sweep)"},
      {"scale", "dataset scale (sweep)"},
      {"cautious", "cautious users (sweep)"},
      {"budget", "k — friend requests per attack"},
      {"samples", "sample networks (sweep)"},
      {"runs", "repetitions per network"},
      {"seed", "master seed"},
      {"fault-rate", "total platform fault rate"},
      {"suspension-rounds", "suspension length in rounds"},
      {"retry", "retry policy spec (none|fixed|exp)"},
      {"feedback", "feedback model: full | myopic | delayed | batched"},
      {"feedback-delay", "delayed: rounds late; batched: batch period"},
      {"cell-deadline-ms", "per-cell wall-clock budget"},
      {"max-cell-retries", "re-runs after a blown cell deadline"},
      {"deadline-ms", "whole-job wall-clock deadline"},
      {"threads", "worker threads per shard process"},
      {"cell-threads", "intra-cell task-pool width per worker"},
      {"simd", "score kernel ISA: auto | scalar | avx2 | neon"},
      {"durability", "checkpoint fsync cadence: strict | grouped"},
      {"group-cells", "grouped durability: fsync every N cells"},
      {"group-ms", "grouped durability: fsync at least every T ms"},
  };
  return keys;
}

void append_kv(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += '\n';
}

std::string shard_progress_path(const std::string& job_dir,
                                std::uint32_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "/progress.%u", shard);
  return job_dir + name;
}

}  // namespace

std::string serialize_job(const JobSpec& spec) {
  std::string body = std::string(kJobHeader) + "\n";
  char num[64];
  append_kv(body, "kind", spec.kind);
  append_kv(body, "instance", spec.instance);
  append_kv(body, "dataset", spec.dataset);
  std::snprintf(num, sizeof num, "%.17g", spec.scale);
  append_kv(body, "scale", num);
  std::snprintf(num, sizeof num, "%u", spec.cautious);
  append_kv(body, "cautious", num);
  std::snprintf(num, sizeof num, "%u", spec.budget);
  append_kv(body, "budget", num);
  std::snprintf(num, sizeof num, "%u", spec.samples);
  append_kv(body, "samples", num);
  std::snprintf(num, sizeof num, "%u", spec.runs);
  append_kv(body, "runs", num);
  std::snprintf(num, sizeof num, "%" PRIu64, spec.seed);
  append_kv(body, "seed", num);
  std::snprintf(num, sizeof num, "%.17g", spec.fault_rate);
  append_kv(body, "fault-rate", num);
  std::snprintf(num, sizeof num, "%u", spec.suspension_rounds);
  append_kv(body, "suspension-rounds", num);
  append_kv(body, "retry", spec.retry);
  append_kv(body, "feedback", spec.feedback);
  std::snprintf(num, sizeof num, "%u", spec.feedback_delay);
  append_kv(body, "feedback-delay", num);
  std::snprintf(num, sizeof num, "%u", spec.cell_deadline_ms);
  append_kv(body, "cell-deadline-ms", num);
  std::snprintf(num, sizeof num, "%u", spec.max_cell_retries);
  append_kv(body, "max-cell-retries", num);
  std::snprintf(num, sizeof num, "%" PRIu64, spec.deadline_ms);
  append_kv(body, "deadline-ms", num);
  std::snprintf(num, sizeof num, "%u", spec.threads);
  append_kv(body, "threads", num);
  std::snprintf(num, sizeof num, "%u", spec.cell_threads);
  append_kv(body, "cell-threads", num);
  append_kv(body, "simd", spec.simd);
  append_kv(body, "durability", spec.durability);
  std::snprintf(num, sizeof num, "%u", spec.group_cells);
  append_kv(body, "group-cells", num);
  std::snprintf(num, sizeof num, "%u", spec.group_ms);
  append_kv(body, "group-ms", num);
  char trailer[24];
  std::snprintf(trailer, sizeof trailer, "crc=%08x\n", util::crc32(body));
  return body + trailer;
}

JobSpec parse_job(const std::string& text) {
  // CRC trailer first: a descriptor that cannot prove its integrity is
  // rejected before any field is looked at.
  const std::string marker = "crc=";
  const std::size_t crc_pos = text.rfind(marker);
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    throw IoError("job descriptor: missing crc trailer");
  }
  std::string crc_hex = text.substr(crc_pos + marker.size());
  while (!crc_hex.empty() &&
         (crc_hex.back() == '\n' || crc_hex.back() == '\r')) {
    crc_hex.pop_back();
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(crc_hex.c_str(), &end, 16);
  if (crc_hex.size() != 8 || end == nullptr || *end != '\0') {
    throw IoError("job descriptor: malformed crc trailer");
  }
  const std::string payload = text.substr(0, crc_pos);
  if (util::crc32(payload) != static_cast<std::uint32_t>(parsed)) {
    throw IoError("job descriptor: crc mismatch (torn or corrupted file)");
  }

  // Re-parse the verified payload through util::Options so unknown keys
  // fail with the same did-you-mean diagnostics as the command line.
  std::vector<std::string> argv_storage = {"job"};
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    argv_storage.push_back("--" + line);
  }
  std::vector<const char*> argv;
  argv.reserve(argv_storage.size());
  for (const std::string& arg : argv_storage) argv.push_back(arg.c_str());
  util::Options opts(static_cast<int>(argv.size()), argv.data());
  for (const auto& [key, help] : job_keys()) opts.declare(key, help);
  opts.check_unknown();

  JobSpec spec;
  spec.kind = opts.get("kind", spec.kind);
  if (spec.kind != "compare" && spec.kind != "simulate" &&
      spec.kind != "sweep") {
    throw InvalidArgument("job descriptor: unknown kind '" + spec.kind +
                          "' (compare | simulate | sweep)");
  }
  spec.instance = opts.get("instance", spec.instance);
  spec.dataset = opts.get("dataset", spec.dataset);
  spec.scale = opts.get_double("scale", spec.scale);
  spec.cautious =
      static_cast<std::uint32_t>(opts.get_int("cautious", spec.cautious));
  spec.budget =
      static_cast<std::uint32_t>(opts.get_int("budget", spec.budget));
  spec.samples =
      static_cast<std::uint32_t>(opts.get_int("samples", spec.samples));
  spec.runs = static_cast<std::uint32_t>(opts.get_int("runs", spec.runs));
  spec.seed = static_cast<std::uint64_t>(
      opts.get_int("seed", static_cast<std::int64_t>(spec.seed)));
  spec.fault_rate = opts.get_double("fault-rate", spec.fault_rate);
  spec.suspension_rounds = static_cast<std::uint32_t>(
      opts.get_int("suspension-rounds", spec.suspension_rounds));
  spec.retry = opts.get("retry", spec.retry);
  (void)util::RetryPolicy::parse(spec.retry);  // validate eagerly
  spec.feedback = opts.get("feedback", spec.feedback);
  spec.feedback_delay = static_cast<std::uint32_t>(
      opts.get_int("feedback-delay", spec.feedback_delay));
  // Validate eagerly: a bad feedback spec is rejected at admission, not
  // after the job's workers have forked.
  (void)FeedbackModel::parse(spec.feedback, spec.feedback_delay);
  spec.cell_deadline_ms = static_cast<std::uint32_t>(
      opts.get_int("cell-deadline-ms", spec.cell_deadline_ms));
  spec.max_cell_retries = static_cast<std::uint32_t>(
      opts.get_int("max-cell-retries", spec.max_cell_retries));
  spec.deadline_ms = static_cast<std::uint64_t>(
      opts.get_int("deadline-ms", static_cast<std::int64_t>(spec.deadline_ms)));
  spec.threads =
      static_cast<std::uint32_t>(opts.get_int("threads", spec.threads));
  spec.cell_threads = static_cast<std::uint32_t>(
      opts.get_int("cell-threads", spec.cell_threads));
  spec.simd = opts.get("simd", spec.simd);
  // Validate the spelling eagerly; ISA *support* is a property of the
  // executing host and is checked by run_experiment.
  (void)simd::parse_isa(spec.simd);
  spec.durability = opts.get("durability", spec.durability);
  spec.group_cells = static_cast<std::uint32_t>(
      opts.get_int("group-cells", spec.group_cells));
  spec.group_ms =
      static_cast<std::uint32_t>(opts.get_int("group-ms", spec.group_ms));
  (void)spec.durability_policy();  // validate mode + knob ranges eagerly
  if (spec.runs == 0 || spec.samples == 0) {
    throw InvalidArgument("job descriptor: samples and runs must be >= 1");
  }
  if ((spec.kind == "compare" || spec.kind == "simulate") &&
      spec.instance.empty()) {
    throw InvalidArgument("job descriptor: kind " + spec.kind +
                          " needs instance=FILE");
  }
  return spec;
}

util::DurabilityPolicy JobSpec::durability_policy() const {
  util::DurabilityPolicy policy;
  policy.mode = util::DurabilityPolicy::parse_mode(durability);
  policy.group_cells = group_cells;
  policy.group_ms = group_ms;
  policy.validate();
  return policy;
}

JobSpec load_job_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot read job descriptor " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw IoError("cannot read job descriptor " + path);
  return parse_job(text);
}

std::string submit_job(const std::string& spool_dir, const JobSpec& spec,
                       const std::string& name) {
  const std::string base = name.empty() ? "job" : name;
  const std::string path = spool_dir + "/" + base + ".job";
  util::write_file_atomic(path, serialize_job(spec));
  return path;
}

std::vector<StrategyFactory> compare_roster() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Greedy", [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
      {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }},
      {"PageRank", [] { return std::make_unique<PageRankStrategy>(); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

ExperimentConfig shard_config(const JobSpec& spec, std::uint32_t shard,
                              std::uint32_t shard_count,
                              const std::string& checkpoint_path) {
  ExperimentConfig config;
  config.budget = spec.budget;
  config.samples = spec.kind == "sweep" ? spec.samples : 1;
  config.runs = spec.kind == "simulate" ? 1 : spec.runs;
  config.seed = spec.seed;
  config.threads = spec.threads;
  config.cell_threads = spec.cell_threads;
  config.simd = simd::parse_isa(spec.simd);
  config.faults = FaultConfig::uniform(spec.fault_rate,
                                       spec.suspension_rounds);
  config.retry = util::RetryPolicy::parse(spec.retry);
  config.feedback = FeedbackModel::parse(spec.feedback, spec.feedback_delay);
  config.checkpoint_path = checkpoint_path;
  config.cell_deadline_ms = spec.cell_deadline_ms;
  config.max_cell_retries = spec.max_cell_retries;
  config.durability = spec.durability_policy();
  config.shard_index = shard;
  config.shard_count = shard_count;
  return config;
}

InstanceFactory job_instance_factory(const JobSpec& spec) {
  if (spec.kind == "sweep") {
    return [spec](std::uint32_t, std::uint64_t seed) {
      datasets::DatasetConfig config;
      config.scale = spec.scale;
      config.num_cautious = spec.cautious;
      util::Rng rng(seed);
      return datasets::make_dataset(spec.dataset, config, rng);
    };
  }
  // compare/simulate: one fixed instance, loaded lazily inside the worker
  // so a bad path fails the cell (reported per sample) instead of the
  // daemon.  samples = 1 means it is read exactly once per shard.
  const std::string path = spec.instance;
  return [path](std::uint32_t, std::uint64_t) {
    // Auto-detects text vs binary by magic, so packed instances serve too.
    return load_instance_auto(path);
  };
}

bool read_shard_progress(const std::string& job_dir, std::uint32_t shard,
                         ShardProgress& out) {
  std::ifstream in(shard_progress_path(job_dir, shard));
  if (!in.good()) return false;
  ShardProgress parsed;
  std::string line;
  bool saw_done = false, saw_total = false;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "done") {
      parsed.done = std::strtoull(value.c_str(), nullptr, 10);
      saw_done = true;
    } else if (key == "total") {
      parsed.total = std::strtoull(value.c_str(), nullptr, 10);
      saw_total = true;
    } else if (key == "ema-cell-ms") {
      parsed.ema_cell_ms = std::strtod(value.c_str(), nullptr);
    }
  }
  if (!saw_done || !saw_total) return false;
  out = parsed;
  return true;
}

int run_job_shard(const JobSpec& spec, const std::string& job_dir,
                  std::uint32_t shard, std::uint32_t shard_count,
                  const volatile std::sig_atomic_t* stop) {
  namespace exit_code = util::exit_code;
  try {
    char ckpt_name[32];
    std::snprintf(ckpt_name, sizeof ckpt_name, "/shard%u.ckpt", shard);
    ExperimentConfig config =
        shard_config(spec, shard, shard_count, job_dir + ckpt_name);
    config.interrupt_flag = stop;

    // Progress file: EMA of per-cell wall clock, flushed at most every
    // 100ms (plus once at the end) so status queries stay cheap for the
    // sweep.  write_file_atomic keeps readers from ever seeing a torn
    // file.
    const std::string progress_path = shard_progress_path(job_dir, shard);
    using clock = std::chrono::steady_clock;
    clock::time_point last_write{};
    double ema_ms = 0.0;
    config.progress = [&](const ExperimentProgress& p) {
      if (!p.restored && p.cell_ms > 0.0) {
        ema_ms = ema_ms == 0.0 ? p.cell_ms : 0.8 * ema_ms + 0.2 * p.cell_ms;
      }
      const clock::time_point now = clock::now();
      if (p.cells_done < p.cells_total &&
          now - last_write < std::chrono::milliseconds(100)) {
        return;
      }
      last_write = now;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "done=%zu\ntotal=%zu\nema-cell-ms=%.3f\n", p.cells_done,
                    p.cells_total, ema_ms);
      try {
        util::write_file_atomic(progress_path, buf);
      } catch (const IoError&) {
        // Progress is advisory; the checkpoint holds the real state.
      }
    };

    const ExperimentResult result = run_experiment(
        job_instance_factory(spec), compare_roster(), config);
    if (result.interrupted) return exit_code::kInterrupted;
    if (!result.failures.empty()) {
      util::log_error("serve shard %u/%u: %zu cell(s) failed", shard,
                      shard_count, result.failures.size());
      return exit_code::kFailure;
    }
    return exit_code::kOk;
  } catch (const DiskFullError& e) {
    util::log_error(
        "serve shard %u/%u: disk full — %s; the shard checkpoint is a "
        "valid prefix, the shard resumes once space is freed",
        shard, shard_count, e.what());
    return exit_code::kDiskFull;
  } catch (const SyncFailedError& e) {
    util::log_error(
        "serve shard %u/%u: fsync failed — %s; cells synced before the "
        "failure are safe, the shard resumes from the checkpoint once the "
        "device recovers",
        shard, shard_count, e.what());
    return exit_code::kSyncLost;
  } catch (const std::exception& e) {
    util::log_error("serve shard %u/%u: %s", shard, shard_count, e.what());
    return exit_code::kFailure;
  }
}

}  // namespace accu::serve
