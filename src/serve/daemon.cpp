#include "serve/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "util/atomic_file.hpp"
#include "util/backoff.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/lockfile.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ACCU_SERVE_POSIX 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace accu::serve {

namespace fs = std::filesystem;
namespace exit_code = util::exit_code;

namespace {

// Written by the forked worker's SIGTERM/SIGINT handler, polled by the
// experiment watchdog: the worker stops at cell granularity with its
// checkpoint flushed and exits kInterrupted.
volatile std::sig_atomic_t g_worker_stop = 0;

void worker_signal_handler(int) { g_worker_stop = 1; }

std::string to_string_u(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string to_string_i(long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

/// Parses "job<seq>" back into its sequence number; 0 if not that shape.
std::uint32_t job_id_seq(const std::string& id) {
  if (id.rfind("job", 0) != 0) return 0;
  const long seq = std::strtol(id.c_str() + 3, nullptr, 10);
  return seq > 0 ? static_cast<std::uint32_t>(seq) : 0;
}

std::string make_job_id(std::uint32_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "job%04u", seq);
  return buf;
}

std::size_t job_grid_cells(const JobSpec& spec) {
  const std::size_t samples = spec.kind == "sweep" ? spec.samples : 1;
  const std::size_t runs = spec.kind == "simulate" ? 1 : spec.runs;
  return samples * runs;
}

#ifdef ACCU_SERVE_POSIX

bool pid_alive(long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

/// Linux: is the pid (still) an accu process?  Guards orphan recovery
/// against pid reuse — never SIGKILL a stranger that inherited the number.
bool pid_is_accu(long pid) {
#if defined(__linux__)
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%ld/cmdline", pid);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::string argv0;
  std::getline(in, argv0, '\0');
  return argv0.find("accu") != std::string::npos;
#else
  return pid_alive(pid);
#endif
}

/// Kills a journaled worker pid that survived a daemon crash and waits for
/// it to disappear, so the rescheduled shard never shares its checkpoint
/// file with a live appender.  (On Linux PR_SET_PDEATHSIG already reaped
/// these with the daemon; this is the portable belt to that suspender.)
void reclaim_orphan(long pid) {
  if (!pid_alive(pid) || !pid_is_accu(pid)) return;
  util::log_warn("serve: killing orphaned worker pid %ld from a previous "
                 "daemon",
                 pid);
  (void)::kill(static_cast<pid_t>(pid), SIGKILL);
  for (int i = 0; i < 500 && pid_alive(pid); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

struct ShardRuntime {
  enum class Phase : std::uint8_t { kPending, kRunning, kDone };
  Phase phase = Phase::kPending;
  long pid = 0;
  std::uint64_t ready_tick = 0;  ///< crash backoff: no restart before this
};

struct JobRuntime {
  std::string id;
  JobSpec spec;
  std::string dir;
  std::uint32_t shards = 1;
  std::vector<ShardRuntime> shard;
  std::uint32_t crashes = 0;
  bool started = false;   ///< consumed a start token; deadline clock runs
  bool failing = false;   ///< deadline blown: terminating workers
  std::chrono::steady_clock::time_point started_at{};
  enum class State : std::uint8_t {
    kActive,
    kDone,
    kFailed,
    kQuarantined,
  } state = State::kActive;

  [[nodiscard]] bool all_shards_done() const {
    return std::all_of(shard.begin(), shard.end(), [](const ShardRuntime& s) {
      return s.phase == ShardRuntime::Phase::kDone;
    });
  }
  [[nodiscard]] bool any_shard_running() const {
    return std::any_of(shard.begin(), shard.end(), [](const ShardRuntime& s) {
      return s.phase == ShardRuntime::Phase::kRunning;
    });
  }
};

pid_t spawn_worker(const JobRuntime& job, std::uint32_t shard,
                   int pidfile_fd, int journal_fd) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)
  // Drop the inherited pidfile and journal descriptors immediately: flock
  // lives on the open file description, so a worker that kept the pidfile
  // fd would hold the daemon's lock past the daemon's death and make a
  // prompt restart see "already running" until PDEATHSIG catches up.
  if (pidfile_fd >= 0) (void)::close(pidfile_fd);
  if (journal_fd >= 0) (void)::close(journal_fd);
#if defined(__linux__)
  // Die with the daemon: a SIGKILLed daemon must never leave a worker
  // appending to a checkpoint behind its successor's back.
  (void)::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  g_worker_stop = 0;
  std::signal(SIGTERM, worker_signal_handler);
  std::signal(SIGINT, worker_signal_handler);
  int code = exit_code::kFailure;
  try {
    code = run_job_shard(job.spec, job.dir, shard, job.shards,
                         &g_worker_stop);
  } catch (...) {
    // run_job_shard catches std::exception itself; this guards the rest.
  }
  // _exit, not exit: the child still shares stdio (and any future fds)
  // with the daemon and must not flush or close them on the way out.
  ::_exit(code);
}

/// Everything the scheduler loop touches, so helpers stay short.
struct Daemon {
  ServeConfig config;
  std::string root;
  JobJournal journal;
  std::map<std::string, JobRuntime> jobs;  ///< non-terminal (this session)
  std::set<std::string> journaled;  ///< every id the journal knows, terminal too
  int pidfile_fd = -1;  ///< for fork hygiene in spawn_worker
  std::map<long, std::pair<std::string, std::uint32_t>> running;  // pid → …
  std::uint32_t next_seq = 1;
  std::uint64_t tick = 0;
  bool draining = false;
  std::size_t quarantined_jobs = 0;
  TokenBucket bucket{0.0, 0.0};
  util::RetryPolicy crash_backoff =
      util::RetryPolicy::exponential_jitter(0x0fffffff, 2, 200);
  util::Rng backoff_rng{0x5eedba5eULL};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }
  [[nodiscard]] std::size_t active_jobs() const {
    std::size_t n = 0;
    for (const auto& [id, job] : jobs) {
      if (job.state == JobRuntime::State::kActive) ++n;
    }
    return n;
  }

  void note_seq(const std::string& id) {
    next_seq = std::max(next_seq, job_id_seq(id) + 1);
  }

  JobRuntime* find(const std::string& id) {
    auto it = jobs.find(id);
    return it == jobs.end() ? nullptr : &it->second;
  }

  void quarantine(JobRuntime& job) {
    journal.append("quarantine", {job.id});
    job.state = JobRuntime::State::kQuarantined;
    ++quarantined_jobs;
    util::log_error("serve: job %s quarantined after %u worker crash(es)",
                    job.id.c_str(), job.crashes);
    for (ShardRuntime& sh : job.shard) {
      if (sh.pid > 0) (void)::kill(static_cast<pid_t>(sh.pid), SIGTERM);
    }
  }

  void recover(const ReplayState& replay);
  void adopt_unjournaled();
  void reap();
  void check_deadlines();
  void scan_spool();
  void complete_jobs();
  void start_shards();
  [[nodiscard]] bool idle() const;
  int run();
};

void Daemon::recover(const ReplayState& replay) {
  for (const auto& [id, rj] : replay.jobs) {
    note_seq(id);
    journaled.insert(id);
    if (rj.state == ReplayedJob::State::kDone ||
        rj.state == ReplayedJob::State::kFailed ||
        rj.state == ReplayedJob::State::kQuarantined) {
      continue;  // terminal: journal is the record, nothing to resume
    }
    JobRuntime job;
    job.id = id;
    job.dir = root + "/jobs/" + id;
    try {
      job.spec = load_job_file(job.dir + "/job.desc");
    } catch (const std::exception& e) {
      util::log_error("serve: job %s lost its descriptor (%s)", id.c_str(),
                      e.what());
      journal.append("fail", {id, "descriptor"});
      continue;
    }
    job.shards = rj.shards;
    job.shard.assign(rj.shards, ShardRuntime{});
    job.crashes = rj.crashes;
    job.started = rj.state == ReplayedJob::State::kRunning;
    job.started_at = std::chrono::steady_clock::now();
    for (std::uint32_t s = 0; s < rj.shards; ++s) {
      if (rj.shard_done[s]) {
        job.shard[s].phase = ShardRuntime::Phase::kDone;
      } else if (rj.shard_pid[s] != 0) {
        // A worker we forked in a previous life; its shard checkpoint
        // already holds whatever it finished, so kill-and-rerun is cheap.
        reclaim_orphan(rj.shard_pid[s]);
      }
    }
    if (job.started) {
      util::log_info("serve: resuming job %s (%u shard(s))", id.c_str(),
                     job.shards);
    }
    jobs.emplace(id, std::move(job));
  }
}

void Daemon::adopt_unjournaled() {
  // A crash between "rename descriptor into jobs/<id>/" and "journal the
  // submit" leaves a job directory the journal has never heard of.  Adopt
  // it: re-journal the submit with the current shard count.  (The reverse
  // order would lose the job entirely — the spool file is already gone.)
  std::error_code ec;
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator(root + "/jobs", ec)) {
    if (!entry.is_directory()) continue;
    const std::string id = entry.path().filename().string();
    if (jobs.count(id) != 0 || journaled.count(id) != 0) continue;
    if (fs::exists(entry.path() / "job.desc")) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::string& id : ids) {
    JobRuntime job;
    job.id = id;
    job.dir = root + "/jobs/" + id;
    try {
      job.spec = load_job_file(job.dir + "/job.desc");
    } catch (const std::exception&) {
      continue;  // never journaled, never admitted: leave it for forensics
    }
    // Only adopt directories that are plausibly ours *and* absent from the
    // journal because of the submit race — i.e. carry our id shape.
    if (job_id_seq(id) == 0) continue;
    note_seq(id);
    job.shards = std::max(1u, config.workers);
    job.shard.assign(job.shards, ShardRuntime{});
    journal.append("submit", {id, to_string_u(job.shards)});
    journaled.insert(id);
    util::log_warn("serve: adopted unjournaled job directory %s",
                   id.c_str());
    jobs.emplace(id, std::move(job));
  }
}

void Daemon::reap() {
  int status = 0;
  pid_t pid = 0;
  while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
    auto it = running.find(pid);
    if (it == running.end()) continue;
    const std::string job_id = it->second.first;
    const std::uint32_t shard = it->second.second;
    running.erase(it);
    JobRuntime* job = find(job_id);
    if (job == nullptr) continue;
    ShardRuntime& sh = job->shard[shard];
    sh.pid = 0;
    const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                                       : 128 + WTERMSIG(status);
    if (job->state != JobRuntime::State::kActive) {
      sh.phase = ShardRuntime::Phase::kPending;
      continue;  // quarantined/failed while this worker was exiting
    }
    if (code == exit_code::kOk) {
      journal.append("shard-done", {job_id, to_string_u(shard), "0"});
      sh.phase = ShardRuntime::Phase::kDone;
    } else if (code == exit_code::kInterrupted || job->failing) {
      // Paused (drain or deadline termination), not a crash: the shard
      // checkpoint is flushed and the cells it holds will be reused.
      sh.phase = ShardRuntime::Phase::kPending;
    } else {
      if (code == exit_code::kDiskFull) {
        util::log_error(
            "serve: job %s shard %u fail-stopped on ENOSPC; its checkpoint "
            "is a valid prefix — the retry resumes it once space is freed",
            job_id.c_str(), shard);
      } else if (code == exit_code::kSyncLost) {
        util::log_error(
            "serve: job %s shard %u fail-stopped on a failed fsync "
            "(dirty pages may be lost); cells synced before the failure "
            "are safe in its checkpoint and the retry resumes from there",
            job_id.c_str(), shard);
      }
      journal.append("crash", {job_id, to_string_u(shard), to_string_i(code)});
      ++job->crashes;
      sh.phase = ShardRuntime::Phase::kPending;
      if (job->crashes > config.admission.crash_budget) {
        quarantine(*job);
      } else {
        const std::uint32_t delay =
            crash_backoff.delay(job->crashes, backoff_rng);
        sh.ready_tick = tick + delay;
        util::log_warn("serve: job %s shard %u crashed (exit %d); retry %u "
                       "of %u in %u tick(s)",
                       job_id.c_str(), shard, code, job->crashes,
                       config.admission.crash_budget, delay);
      }
    }
  }
}

void Daemon::check_deadlines() {
  for (auto& [id, job] : jobs) {
    if (job.state != JobRuntime::State::kActive) continue;
    if (job.spec.deadline_ms == 0 || !job.started) continue;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - job.started_at)
            .count();
    if (!job.failing && elapsed_ms > static_cast<double>(job.spec.deadline_ms)) {
      job.failing = true;
      util::log_warn("serve: job %s blew its %llums deadline; terminating",
                     id.c_str(),
                     static_cast<unsigned long long>(job.spec.deadline_ms));
      for (ShardRuntime& sh : job.shard) {
        if (sh.pid > 0) (void)::kill(static_cast<pid_t>(sh.pid), SIGTERM);
      }
    }
    if (job.failing && !job.any_shard_running()) {
      journal.append("fail", {id, "deadline"});
      job.state = JobRuntime::State::kFailed;
    }
  }
}

void Daemon::scan_spool() {
  const std::string spool = root + "/spool";
  std::error_code ec;
  std::vector<fs::path> incoming;
  for (const auto& entry : fs::directory_iterator(spool, ec)) {
    if (entry.path().extension() == ".job") incoming.push_back(entry.path());
  }
  std::sort(incoming.begin(), incoming.end());
  for (const fs::path& path : incoming) {
    if (admit(active_jobs(), config.admission) == Admission::kQueueFull) {
      util::log_warn("serve: queue full (%zu jobs); rejecting %s",
                     active_jobs(), path.filename().string().c_str());
      fs::rename(path, fs::path(path.string() + ".rejected"), ec);
      continue;
    }
    JobRuntime job;
    try {
      job.spec = load_job_file(path.string());
    } catch (const std::exception& e) {
      util::log_warn("serve: rejecting %s: %s",
                     path.filename().string().c_str(), e.what());
      fs::rename(path, fs::path(path.string() + ".bad"), ec);
      continue;
    }
    job.id = make_job_id(next_seq++);
    job.dir = root + "/jobs/" + job.id;
    job.shards = std::max(1u, config.workers);
    job.shard.assign(job.shards, ShardRuntime{});
    fs::create_directories(job.dir);
    // Descriptor into place first, then the journal record: if we crash
    // between the two, startup adoption re-journals the directory.  The
    // other order would admit a job whose descriptor vanished.
    fs::rename(path, fs::path(job.dir + "/job.desc"));
    // Both renames must be durable before the journal admits the job: a
    // hard dir-fsync error here would let a crash resurrect the spool file
    // *and* lose the job directory the journal references.  Fail-stop
    // (propagates to run_daemon → kSyncLost) instead of shrugging.
    util::checked_fsync_dir(job.dir);
    util::checked_fsync_dir(spool);
    journal.append("submit", {job.id, to_string_u(job.shards)});
    journaled.insert(job.id);
    util::log_info("serve: admitted %s as %s (%zu grid cell(s), %u shard(s))",
                   path.filename().string().c_str(), job.id.c_str(),
                   job_grid_cells(job.spec), job.shards);
    jobs.emplace(job.id, std::move(job));
  }
}

void Daemon::complete_jobs() {
  for (auto& [id, job] : jobs) {
    if (job.state != JobRuntime::State::kActive || job.failing) continue;
    if (job.shard.empty() || !job.all_shards_done()) continue;
    try {
      std::vector<std::string> paths;
      for (std::uint32_t s = 0; s < job.shards; ++s) {
        char name[32];
        std::snprintf(name, sizeof name, "/shard%u.ckpt", s);
        const std::string ckpt = job.dir + name;
        if (fs::exists(ckpt)) paths.push_back(ckpt);
      }
      const ShardMergeOutcome merged =
          merge_shard_checkpoints(paths, job.dir + "/merged.ckpt");
      if (merged.cells_missing > 0) {
        // Shards all claimed success yet cells are absent — a corrupted
        // checkpoint tail between worker exit and merge.  Not silently
        // acceptable for a daemon whose contract is bit-identical results.
        util::log_error("serve: job %s merge is missing %zu cell(s)",
                        id.c_str(), merged.cells_missing);
        journal.append("fail", {id, "missing-cells"});
        job.state = JobRuntime::State::kFailed;
        continue;
      }
      ReportOptions report_options;
      report_options.title = "accu serve — " + id;
      std::ostringstream report;
      write_markdown_report(merged.result, merged.config, report,
                            report_options);
      // Atomic + durable: the report a status query can see is always
      // whole, and a crash right after "done" is journaled cannot lose it.
      util::write_file_atomic(job.dir + "/report.md", report.str());
      journal.append("done", {id, "0"});
      job.state = JobRuntime::State::kDone;
      util::log_info("serve: job %s done (%zu cells merged)", id.c_str(),
                     merged.cells_merged);
    } catch (const std::exception& e) {
      util::log_error("serve: job %s merge failed: %s", id.c_str(),
                      e.what());
      journal.append("fail", {id, "merge"});
      job.state = JobRuntime::State::kFailed;
    }
  }
}

void Daemon::start_shards() {
  for (auto& [id, job] : jobs) {
    if (job.state != JobRuntime::State::kActive || job.failing) continue;
    for (std::uint32_t s = 0; s < job.shards; ++s) {
      if (running.size() >= config.workers) return;
      ShardRuntime& sh = job.shard[s];
      if (sh.phase != ShardRuntime::Phase::kPending) continue;
      if (tick < sh.ready_tick) continue;
      if (!job.started) {
        // Token bucket gates *job* starts (the fork fan-out of an admitted
        // job is bounded by `workers` already).  No token: try next tick.
        if (!bucket.try_take(now_s())) return;
        job.started = true;
        job.started_at = std::chrono::steady_clock::now();
      }
      const pid_t pid = spawn_worker(job, s, pidfile_fd, journal.fd());
      if (pid < 0) {
        util::log_error("serve: fork failed: %s", std::strerror(errno));
        return;  // transient (EAGAIN); retry next tick
      }
      journal.append("start",
                     {id, to_string_u(s), to_string_i(static_cast<long long>(pid))});
      sh.phase = ShardRuntime::Phase::kRunning;
      sh.pid = pid;
      running.emplace(static_cast<long>(pid), std::make_pair(id, s));
    }
  }
}

bool Daemon::idle() const {
  if (!running.empty()) return false;
  for (const auto& [id, job] : jobs) {
    if (job.state == JobRuntime::State::kActive) return false;
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root + "/spool", ec)) {
    if (entry.path().extension() == ".job") return false;
  }
  return true;
}

int Daemon::run() {
  root = config.root;
  fs::create_directories(root + "/spool");
  fs::create_directories(root + "/jobs");

  util::PidFile pidfile;
  if (!pidfile.try_acquire(root + "/serve.pid")) {
    util::log_error("serve: another daemon holds %s (pid %ld)",
                    (root + "/serve.pid").c_str(),
                    util::PidFile::read_pid(root + "/serve.pid"));
    return exit_code::kAlreadyRunning;
  }
  pidfile_fd = pidfile.fd();

  bucket = TokenBucket(config.admission.start_rate,
                       config.admission.start_burst);
  const JournalLoad loaded = journal.open(root + "/journal");
  recover(replay_journal(loaded.records));
  adopt_unjournaled();

  util::log_info("serve: daemon up at %s (%u worker(s), %zu job(s) to "
                 "resume)",
                 root.c_str(), config.workers, active_jobs());

  for (;; ++tick) {
    reap();

    const bool stop_requested =
        (config.stop_flag != nullptr && *config.stop_flag != 0) ||
        fs::exists(root + "/STOP");
    if (stop_requested && !draining) {
      draining = true;
      util::log_info("serve: drain requested; stopping %zu worker(s) at "
                     "cell granularity",
                     running.size());
      for (const auto& [pid, where] : running) {
        (void)::kill(static_cast<pid_t>(pid), SIGTERM);
      }
    }

    if (draining) {
      if (running.empty()) {
        journal.append("drain");
        std::error_code ec;
        fs::remove(root + "/STOP", ec);
        util::log_info("serve: drained; %zu job(s) remain resumable",
                       active_jobs());
        return exit_code::kOk;
      }
    } else {
      check_deadlines();
      scan_spool();
      complete_jobs();
      start_shards();
      if (config.exit_when_idle && idle()) {
        util::log_info("serve: queue idle; exiting");
        return quarantined_jobs > 0 ? exit_code::kQuarantined
                                    : exit_code::kOk;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(config.poll_ms));
  }
}

#endif  // ACCU_SERVE_POSIX

}  // namespace

int run_daemon(const ServeConfig& config) {
#ifdef ACCU_SERVE_POSIX
  try {
    Daemon daemon;
    daemon.config = config;
    return daemon.run();
  } catch (const DiskFullError& e) {
    util::log_error(
        "serve: disk full — %s; the journal and shard checkpoints are "
        "valid prefixes, restart the daemon once space is freed to resume",
        e.what());
    return exit_code::kDiskFull;
  } catch (const SyncFailedError& e) {
    util::log_error(
        "serve: fsync failed — %s; state synced before the failure is "
        "safe, restart the daemon once the device recovers to resume",
        e.what());
    return exit_code::kSyncLost;
  } catch (const std::exception& e) {
    util::log_error("serve: %s", e.what());
    return exit_code::kFailure;
  }
#else
  (void)config;
  util::log_error("serve: daemon mode needs a POSIX platform");
  return exit_code::kFailure;
#endif
}

std::vector<JobStatus> read_status(const std::string& root) {
  const JournalLoad loaded = read_journal(root + "/journal");
  const ReplayState replay = replay_journal(loaded.records);
  std::vector<JobStatus> out;
  for (const auto& [id, rj] : replay.jobs) {
    JobStatus status;
    status.id = id;
    status.state = replayed_state_name(rj.state);
    status.crashes = rj.crashes;
    if (!rj.fail_reason.empty()) status.detail = rj.fail_reason;
    const std::string dir = root + "/jobs/" + id;
    double ema_sum = 0.0;
    std::uint32_t ema_count = 0;
    for (std::uint32_t s = 0; s < rj.shards; ++s) {
      ShardProgress progress;
      if (!read_shard_progress(dir, s, progress)) continue;
      status.cells_done += progress.done;
      status.cells_total += progress.total;
      if (progress.ema_cell_ms > 0.0) {
        ema_sum += progress.ema_cell_ms;
        ++ema_count;
      }
    }
    if (status.cells_total == 0) {
      try {
        status.cells_total = job_grid_cells(load_job_file(dir + "/job.desc"));
      } catch (const std::exception&) {
        // Descriptor unreadable: totals stay unknown, state still shows.
      }
    }
    if (ema_count > 0) status.ema_cell_ms = ema_sum / ema_count;
    if (rj.state == ReplayedJob::State::kQueued ||
        rj.state == ReplayedJob::State::kRunning) {
      if (status.ema_cell_ms > 0.0 && status.cells_total > status.cells_done) {
        const double remaining =
            static_cast<double>(status.cells_total - status.cells_done);
        // Serial per-cell estimate spread over the job's shards.
        status.eta_s = remaining * status.ema_cell_ms / 1000.0 /
                       std::max(1u, rj.shards);
      }
    }
    out.push_back(std::move(status));
  }
  return out;
}

void request_stop(const std::string& root) {
  util::write_file_atomic(root + "/STOP", "stop\n");
}

}  // namespace accu::serve
