// Job descriptors for the serve daemon, and the shard runner workers
// execute.
//
// A job is a sweep request — the same knobs `accu compare` takes on its
// command line, serialized as `key=value` lines with a CRC32 trailer so a
// torn or bit-rotted descriptor is rejected at admission instead of
// launching a half-configured sweep.  Submission is a two-step atomic
// handshake: the client writes the descriptor into `<root>/spool/` with
// write_file_atomic (temp + fsync + rename + dir fsync), the daemon
// renames it into the job's own directory and journals the admission.
// Either step crashing leaves the descriptor whole in exactly one place.
//
// Execution reuses the library's sharded-sweep machinery unchanged: each
// worker process runs `run_job_shard`, which is run_experiment on one
// shard of the (sample, run) grid with a per-shard checkpoint file, so a
// killed worker resumes at cell granularity and the daemon's final merge
// is bit-identical to an unsharded run.

#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace accu::serve {

/// One queued sweep.  Field defaults are deliberately tiny — a default
/// job is a smoke test, not a paper run.
struct JobSpec {
  /// "compare": the paper roster on a fixed instance file (samples = 1,
  /// like `accu compare`).  "simulate": compare with runs forced to 1.
  /// "sweep": the roster over `samples` generated networks of `dataset`.
  std::string kind = "compare";
  std::string instance;               ///< compare/simulate: instance file
  std::string dataset = "facebook";   ///< sweep: generator name
  double scale = 0.05;                ///< sweep: dataset scale
  std::uint32_t cautious = 20;        ///< sweep: cautious users
  std::uint32_t budget = 100;         ///< k — requests per attack
  std::uint32_t samples = 1;          ///< sweep: networks per dataset
  std::uint32_t runs = 10;            ///< repetitions per network
  std::uint64_t seed = 1;
  double fault_rate = 0.0;            ///< spread over the four fault kinds
  std::uint32_t suspension_rounds = 3;
  std::string retry = "none";         ///< RetryPolicy::parse spec
  /// FeedbackModel spec: "full" | "myopic" | "delayed" | "batched"
  /// (see core/feedback.hpp).  Non-full models take `feedback_delay`.
  std::string feedback = "full";
  std::uint32_t feedback_delay = 0;   ///< delayed: d rounds; batched: period
  std::uint32_t cell_deadline_ms = 0;
  std::uint32_t max_cell_retries = 0;
  /// Whole-job wall-clock deadline enforced by the daemon; 0 = none.
  /// A job still running past it is terminated and journaled as failed.
  std::uint64_t deadline_ms = 0;
  std::uint32_t threads = 1;          ///< worker threads *per shard process*
  /// Intra-cell task-pool width per worker (ExperimentConfig::cell_threads;
  /// 1 = sequential, 0 = hardware).  Trace-invariant, so jobs may tune it
  /// freely without changing results.
  std::uint32_t cell_threads = 1;
  /// SIMD kernel table: "auto" | "scalar" | "avx2" | "neon"
  /// (core/score_simd.hpp).  Spelling is validated at admission on the
  /// submitting host; *support* is checked on the executing host at sweep
  /// start (descriptors travel between architectures).
  std::string simd = "auto";
  /// Checkpoint fsync cadence per shard: "strict" | "grouped"
  /// (util::DurabilityPolicy).  grouped amortizes the per-cell fsync —
  /// the serve throughput ceiling — over group_cells / group_ms.
  std::string durability = "strict";
  std::uint32_t group_cells = 64;     ///< grouped: fsync every N cells
  std::uint32_t group_ms = 100;       ///< grouped: fsync at least every T ms

  /// The validated util::DurabilityPolicy the three fields above encode.
  /// Throws InvalidArgument on a bad mode or out-of-range knobs.
  [[nodiscard]] util::DurabilityPolicy durability_policy() const;
};

/// key=value serialization with a `crc=<8hex>` trailer line covering every
/// preceding byte.
[[nodiscard]] std::string serialize_job(const JobSpec& spec);

/// Parses a descriptor; throws IoError on a missing/mismatched CRC trailer
/// and InvalidArgument on unknown keys (with did-you-mean, via
/// util::Options) or invalid values.
[[nodiscard]] JobSpec parse_job(const std::string& text);

/// parse_job over a file's bytes.  Throws IoError when unreadable.
[[nodiscard]] JobSpec load_job_file(const std::string& path);

/// Atomically places a descriptor into the daemon's spool directory as
/// `<name>.job` (name must be filesystem-safe; empty picks "job").
/// Returns the path written.
std::string submit_job(const std::string& spool_dir, const JobSpec& spec,
                       const std::string& name = {});

/// The paper's comparison roster — the same five policies `accu compare`
/// runs, shared so serve reports are byte-identical to compare reports.
[[nodiscard]] std::vector<StrategyFactory> compare_roster();

/// ExperimentConfig for one shard of the job's grid, checkpointing to
/// `checkpoint_path`.  compare/simulate kinds force samples = 1 (and
/// simulate runs = 1) so their fingerprint matches a direct `accu
/// compare` invocation.
[[nodiscard]] ExperimentConfig shard_config(const JobSpec& spec,
                                            std::uint32_t shard,
                                            std::uint32_t shard_count,
                                            const std::string& checkpoint_path);

/// Instance factory for the job: fixed file for compare/simulate, dataset
/// generator for sweep.
[[nodiscard]] InstanceFactory job_instance_factory(const JobSpec& spec);

/// Runs one shard to completion inside the current process (workers call
/// this after fork).  Writes a throttled progress file
/// `<job_dir>/progress.<shard>` as cells finish.  Returns an exit_code
/// value: kOk on a clean shard, kInterrupted when `stop` fired (shard is
/// resumable), kFailure when any cell failed or the sweep threw.
[[nodiscard]] int run_job_shard(const JobSpec& spec,
                                const std::string& job_dir,
                                std::uint32_t shard,
                                std::uint32_t shard_count,
                                const volatile std::sig_atomic_t* stop);

/// One parsed progress file.  `ema_cell_ms` is an exponential moving
/// average of per-cell wall clock — the daemon's ETA source.
struct ShardProgress {
  std::size_t done = 0;
  std::size_t total = 0;
  double ema_cell_ms = 0.0;
};

/// Reads `<job_dir>/progress.<shard>`; returns false if absent/corrupt
/// (a torn progress file is cosmetic — the checkpoint holds the truth).
bool read_shard_progress(const std::string& job_dir, std::uint32_t shard,
                         ShardProgress& out);

}  // namespace accu::serve
