#include "serve/journal.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace accu::serve {
namespace {

constexpr const char* kHeader = "# accu-serve-journal v1";

bool has_whitespace(const std::string& s) {
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) return true;
  }
  return false;
}

/// Splits a verified payload into verb + args (whitespace-delimited).
JournalRecord parse_payload(const std::string& payload) {
  std::istringstream in(payload);
  JournalRecord record;
  in >> record.verb;
  std::string token;
  while (in >> token) record.args.push_back(std::move(token));
  return record;
}

/// Verifies one raw line (no trailing newline).  Returns false on any
/// damage: missing CRC token, malformed hex, or checksum mismatch.
bool verify_line(const std::string& line, std::string& payload_out) {
  const std::size_t space = line.find_last_of(' ');
  if (space == std::string::npos) return false;
  const std::string crc_token = line.substr(space + 1);
  if (crc_token.size() != 8) return false;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(crc_token.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return false;
  const std::string payload = line.substr(0, space);
  if (util::crc32(payload) != static_cast<std::uint32_t>(parsed)) {
    return false;
  }
  payload_out = payload;
  return true;
}

}  // namespace

std::string format_journal_record(const std::string& verb,
                                  const std::vector<std::string>& args) {
  if (verb.empty() || has_whitespace(verb)) {
    throw InvalidArgument("journal: bad verb '" + verb + "'");
  }
  std::string payload = verb;
  for (const std::string& arg : args) {
    if (arg.empty() || has_whitespace(arg)) {
      throw InvalidArgument("journal: argument with whitespace in '" + verb +
                            "' record: '" + arg + "'");
    }
    payload += ' ';
    payload += arg;
  }
  char trailer[16];
  std::snprintf(trailer, sizeof trailer, " %08x\n", util::crc32(payload));
  return payload + trailer;
}

JournalLoad read_journal(const std::string& path) {
  JournalLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return load;  // missing file: empty, existed = false
  load.existed = true;

  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) throw IoError("cannot read journal " + path);
  load.file_size = content.size();

  // Header first: a damaged header invalidates the whole file.
  std::size_t pos = 0;
  {
    const std::size_t nl = content.find('\n');
    if (nl == std::string::npos || content.substr(0, nl) != kHeader) {
      return load;  // valid_end = 0
    }
    pos = nl + 1;
  }
  load.valid_end = pos;

  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: no newline
    const std::string line = content.substr(pos, nl - pos);
    std::string payload;
    if (!verify_line(line, payload)) break;  // bit rot / torn record
    load.records.push_back(parse_payload(payload));
    pos = nl + 1;
    load.valid_end = pos;
  }
  return load;
}

JournalLoad JobJournal::open(const std::string& path) {
  JournalLoad load = read_journal(path);
  if (!load.existed) {
    util::write_file_atomic(path, std::string(kHeader) + "\n");
    load.valid_end = load.file_size = std::string(kHeader).size() + 1;
  } else if (load.valid_end < load.file_size) {
    if (load.valid_end == 0) {
      // Header itself is damaged: the queue state is gone, but the shard
      // checkpoints still hold every finished cell — start a fresh log and
      // let directory adoption re-journal surviving jobs.
      util::log_warn("journal %s: damaged header, starting fresh",
                     path.c_str());
      util::write_file_atomic(path, std::string(kHeader) + "\n");
    } else {
      util::log_warn("journal %s: dropping torn tail (%llu of %llu bytes "
                     "verified)",
                     path.c_str(),
                     static_cast<unsigned long long>(load.valid_end),
                     static_cast<unsigned long long>(load.file_size));
      util::truncate_file(path, load.valid_end);
    }
  }
  out_.open(path);
  return load;
}

void JobJournal::append(const std::string& verb,
                        const std::vector<std::string>& args) {
  if (!out_.is_open()) throw IoError("journal: append before open");
  out_.append(format_journal_record(verb, args));
  out_.sync();
}

const char* replayed_state_name(ReplayedJob::State state) noexcept {
  switch (state) {
    case ReplayedJob::State::kQueued: return "queued";
    case ReplayedJob::State::kRunning: return "running";
    case ReplayedJob::State::kDone: return "done";
    case ReplayedJob::State::kFailed: return "failed";
    case ReplayedJob::State::kQuarantined: return "quarantined";
  }
  return "unknown";
}

ReplayState replay_journal(const std::vector<JournalRecord>& records) {
  ReplayState state;
  auto find = [&state](const std::string& id) -> ReplayedJob* {
    auto it = state.jobs.find(id);
    return it == state.jobs.end() ? nullptr : &it->second;
  };
  auto shard_of = [](const ReplayedJob& job,
                     const std::string& arg) -> std::size_t {
    const long shard = std::strtol(arg.c_str(), nullptr, 10);
    if (shard < 0 || static_cast<std::size_t>(shard) >= job.shard_done.size()) {
      return job.shard_done.size();  // out of range: sentinel
    }
    return static_cast<std::size_t>(shard);
  };
  auto terminal = [](const ReplayedJob& job) {
    return job.state == ReplayedJob::State::kDone ||
           job.state == ReplayedJob::State::kFailed ||
           job.state == ReplayedJob::State::kQuarantined;
  };

  for (const JournalRecord& record : records) {
    if (record.verb == "submit" && record.args.size() >= 2) {
      if (find(record.args[0]) != nullptr) continue;  // duplicate submit
      ReplayedJob job;
      const long shards = std::strtol(record.args[1].c_str(), nullptr, 10);
      job.shards = shards > 0 ? static_cast<std::uint32_t>(shards) : 1;
      job.shard_done.assign(job.shards, false);
      job.shard_pid.assign(job.shards, 0);
      state.jobs.emplace(record.args[0], std::move(job));
    } else if (record.verb == "start" && record.args.size() >= 3) {
      ReplayedJob* job = find(record.args[0]);
      if (job == nullptr || terminal(*job)) continue;
      const std::size_t shard = shard_of(*job, record.args[1]);
      if (shard >= job->shard_done.size()) continue;
      job->state = ReplayedJob::State::kRunning;
      job->shard_pid[shard] = std::strtol(record.args[2].c_str(), nullptr, 10);
    } else if (record.verb == "shard-done" && record.args.size() >= 2) {
      ReplayedJob* job = find(record.args[0]);
      if (job == nullptr || terminal(*job)) continue;
      const std::size_t shard = shard_of(*job, record.args[1]);
      if (shard >= job->shard_done.size()) continue;
      job->shard_done[shard] = true;
      job->shard_pid[shard] = 0;
    } else if (record.verb == "crash" && record.args.size() >= 2) {
      ReplayedJob* job = find(record.args[0]);
      if (job == nullptr || terminal(*job)) continue;
      const std::size_t shard = shard_of(*job, record.args[1]);
      if (shard < job->shard_pid.size()) job->shard_pid[shard] = 0;
      ++job->crashes;
    } else if (record.verb == "quarantine" && record.args.size() >= 1) {
      ReplayedJob* job = find(record.args[0]);
      if (job == nullptr || job->state == ReplayedJob::State::kDone) continue;
      job->state = ReplayedJob::State::kQuarantined;
    } else if (record.verb == "fail" && record.args.size() >= 1) {
      ReplayedJob* job = find(record.args[0]);
      if (job == nullptr || terminal(*job)) continue;
      job->state = ReplayedJob::State::kFailed;
      job->fail_reason = record.args.size() >= 2 ? record.args[1] : "";
    } else if (record.verb == "done" && record.args.size() >= 1) {
      ReplayedJob* job = find(record.args[0]);
      if (job == nullptr || terminal(*job)) continue;
      job->state = ReplayedJob::State::kDone;
      job->exit_code =
          record.args.size() >= 2
              ? static_cast<int>(std::strtol(record.args[1].c_str(), nullptr,
                                             10))
              : 0;
    } else if (record.verb == "drain") {
      state.drain_requested = true;
    }
    // Unknown verbs: skipped (forward compatibility).
  }
  return state;
}

}  // namespace accu::serve
