// Admission control for the serve daemon's job queue.
//
// Three independent guards, all deliberately simple and all testable with
// an injected clock:
//
//   * a queue bound — at most `max_queued` non-terminal jobs exist at
//     once; excess submissions are rejected at the spool, never silently
//     dropped after admission;
//   * a token bucket on *job starts* — a burst of submissions is admitted
//     to the queue immediately but fans out into worker processes at a
//     bounded rate, so a misbehaving client cannot fork-storm the host;
//   * a per-job crash budget (enforced by the daemon with util::backoff
//     between retries) — a job whose workers keep dying is quarantined
//     instead of crash-looping forever.

#pragma once

#include <cstddef>
#include <cstdint>

namespace accu::serve {

/// Classic token bucket with an explicit clock: `now_s` is seconds from
/// any fixed origin (tests pass a fake clock; the daemon passes a
/// monotonic one).  The bucket starts full so an idle daemon admits a
/// burst instantly.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Takes one token if available; refills by elapsed-time * rate first.
  /// A non-positive rate disables the limiter (always allows).
  bool try_take(double now_s) {
    if (rate_ <= 0.0) return true;
    if (primed_) {
      tokens_ += (now_s - last_s_) * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
    }
    primed_ = true;
    last_s_ = now_s;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = 0.0;
  bool primed_ = false;  ///< first call establishes the clock origin
};

struct AdmissionConfig {
  /// Max non-terminal (queued + running) jobs; further submissions are
  /// rejected.
  std::size_t max_queued = 16;
  /// Token-bucket rate/burst for job starts (starts per second).
  double start_rate = 4.0;
  double start_burst = 4.0;
  /// Worker crashes a job may consume before it is quarantined.
  std::uint32_t crash_budget = 3;
};

enum class Admission : std::uint8_t {
  kAdmit = 0,
  kQueueFull = 1,
};

/// Queue-bound check at submission time.
[[nodiscard]] inline Admission admit(std::size_t active_jobs,
                                     const AdmissionConfig& config) {
  return active_jobs >= config.max_queued ? Admission::kQueueFull
                                          : Admission::kAdmit;
}

}  // namespace accu::serve
