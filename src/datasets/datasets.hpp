// Dataset factory reproducing the paper's experimental setup (§IV-A).
//
// The paper evaluates on four SNAP snapshots (Table I):
//
//     Network    Nodes   Edges   Kind
//     Facebook   4k      88k     Social
//     Slashdot   77k     905k    Social
//     Twitter    81k     1.77M   Social
//     DBLP       317k    1.05M   Collaboration
//
// The raw snapshots are not redistributable here, so each dataset is
// substituted by a synthetic generator tuned to the snapshot's size, mean
// degree, degree-tail and clustering (the properties the paper's phenomena
// depend on — see DESIGN.md §4):
//
//     facebook  — Holme–Kim, 4,039 nodes, mean degree ≈ 43.7, high
//                 clustering (the FB ego networks are locally dense);
//     slashdot  — power-law configuration model (γ ≈ 2.5), 77,360 nodes,
//                 mean degree ≈ 23.4;
//     twitter   — Holme–Kim with moderate clustering, 81,306 nodes, mean
//                 degree ≈ 43.6;
//     dblp      — overlapping communities (co-authorship cliques),
//                 317,080 nodes, mean degree ≈ 6.6.
//
// `scale` shrinks node counts (mean degree is preserved) so the full bench
// suite stays laptop-fast; `--scale=1` reproduces paper-sized networks.
//
// On top of the topology the factory applies the paper's §IV-A protocol:
//   * edge existence probabilities  p_uv ~ U[0,1);
//   * acceptance probabilities      q_u  ~ U[0,1) for reckless users;
//   * benefits B_f = 2 (reckless) / `cautious_friend_benefit` (cautious),
//     B_fof = 1 for everyone;
//   * cautious users drawn uniformly among nodes of degree ∈ [10,100],
//     iteratively, skipping any node adjacent to an already-selected one
//     (so no cautious–cautious edges exist), 100 users at full scale;
//   * thresholds θ_v = max(1, round(`threshold_fraction` · deg(v))).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "util/rng.hpp"

namespace accu::datasets {

struct DatasetSpec {
  std::string name;          ///< factory key
  std::string kind;          ///< "Social" / "Collaboration" (Table I)
  NodeId paper_nodes;        ///< Table I node count
  std::uint64_t paper_edges; ///< Table I edge count
};

/// The four paper datasets, in Table I order.
[[nodiscard]] const std::vector<DatasetSpec>& paper_datasets();

/// Looks a spec up by name; throws InvalidArgument for unknown names.
[[nodiscard]] const DatasetSpec& dataset_spec(const std::string& name);

struct DatasetConfig {
  /// Linear node-count scale relative to the paper's snapshot (mean degree
  /// is preserved).  1.0 = paper-sized.
  double scale = 1.0;
  /// Number of cautious users to select (paper: 100).  Clamped to the
  /// eligible pool size.
  std::uint32_t num_cautious = 100;
  /// Cautious users' friend benefit B_f (paper sweeps 20..100; Fig. 2 uses
  /// 50).
  double cautious_friend_benefit = 50.0;
  /// θ_v as a fraction of deg(v) (paper: 0.3).
  double threshold_fraction = 0.3;
  /// Reckless users' friend benefit (paper: 2).
  double reckless_friend_benefit = 2.0;
  /// Everyone's friend-of-friend benefit (paper: 1).
  double fof_benefit = 1.0;
  /// Cautious-eligibility degree window (paper: [10, 100]).
  std::uint32_t cautious_degree_min = 10;
  std::uint32_t cautious_degree_max = 100;
  /// Generalized cautious model (§III-B): acceptance probability below /
  /// at-or-above the threshold.  The defaults (0, 1) are the paper's
  /// deterministic linear-threshold model.
  double cautious_below_prob = 0.0;
  double cautious_above_prob = 1.0;
};

/// Builds one sample network of the named dataset.  All randomness
/// (topology, probabilities, cautious selection) comes from `rng`.
[[nodiscard]] AccuInstance make_dataset(const std::string& name,
                                        const DatasetConfig& config,
                                        util::Rng& rng);

/// Generates only the topology of the named dataset at `scale` (edge
/// probabilities all 1, no partition) — used by Table I reporting and the
/// generator statistics tests.
[[nodiscard]] Graph make_topology(const std::string& name, double scale,
                                  util::Rng& rng);

/// Builds an instance from a real edge-list snapshot (e.g. an actual SNAP
/// file, which this repo cannot ship): reads the file with graph::
/// read_edge_list_file semantics, re-draws every edge probability from
/// U[0,1) per the paper's §IV-A protocol (any probabilities in the file
/// are ignored), then applies the same cautious-selection / q / benefit /
/// threshold pipeline as the synthetic factories.  `config.scale` is
/// ignored — the file defines the topology.
[[nodiscard]] AccuInstance make_dataset_from_edge_list(
    const std::string& path, const DatasetConfig& config, util::Rng& rng);

/// Selects cautious users per the paper's protocol on an arbitrary graph:
/// uniformly among nodes with degree in [degree_min, degree_max],
/// iteratively, never selecting two adjacent nodes.  Returns ascending
/// node ids; the result may be shorter than `count` if the pool is small.
[[nodiscard]] std::vector<NodeId> select_cautious_users(
    const Graph& graph, std::uint32_t count, std::uint32_t degree_min,
    std::uint32_t degree_max, util::Rng& rng);

/// Assembles an AccuInstance from a topology and a cautious-user set,
/// applying the §IV-A acceptance/benefit/threshold protocol (edge
/// probabilities are taken from `graph` as-is).
[[nodiscard]] AccuInstance assemble_instance(const Graph& graph,
                                             const std::vector<NodeId>& cautious,
                                             const DatasetConfig& config,
                                             util::Rng& rng);

}  // namespace accu::datasets
