#include "datasets/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace accu::datasets {

namespace {

using graph::GraphBuilder;

/// Scaled node count; tiny scales are clamped so generator parameters
/// (attachment counts, degree windows) stay meaningful.
NodeId scaled_nodes(NodeId paper_nodes, double scale) {
  if (!(scale > 0.0)) throw InvalidArgument("dataset scale must be > 0");
  const double n = std::round(static_cast<double>(paper_nodes) * scale);
  return static_cast<NodeId>(std::max(120.0, n));
}

/// Generator recipes matched to each snapshot's mean degree / structure;
/// see the header comment for the correspondence.
GraphBuilder topology_builder(const std::string& name, double scale,
                              util::Rng& rng) {
  const DatasetSpec& spec = dataset_spec(name);
  const NodeId n = scaled_nodes(spec.paper_nodes, scale);
  if (name == "facebook") {
    return graph::holme_kim(n, 22, 0.60, rng);
  }
  if (name == "slashdot") {
    const auto cap = std::min<std::uint32_t>(1000, n - 1);
    return graph::powerlaw_configuration(n, 2.5, 8, cap, rng);
  }
  if (name == "twitter") {
    return graph::holme_kim(n, 22, 0.35, rng);
  }
  if (name == "dblp") {
    return graph::community_affiliation(n, 8.0, 2, 0.45, rng);
  }
  throw InvalidArgument("unknown dataset: " + name);  // unreachable
}

}  // namespace

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {"facebook", "Social", 4039, 88234},
      {"slashdot", "Social", 77360, 905468},
      {"twitter", "Social", 81306, 1768149},
      {"dblp", "Collaboration", 317080, 1049866},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const DatasetSpec& spec : paper_datasets()) {
    if (spec.name == name) return spec;
  }
  throw InvalidArgument("unknown dataset: " + name +
                        " (expected facebook|slashdot|twitter|dblp)");
}

Graph make_topology(const std::string& name, double scale, util::Rng& rng) {
  return topology_builder(name, scale, rng).build();
}

std::vector<NodeId> select_cautious_users(const Graph& graph,
                                          std::uint32_t count,
                                          std::uint32_t degree_min,
                                          std::uint32_t degree_max,
                                          util::Rng& rng) {
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::uint32_t d = graph.degree(v);
    if (d >= degree_min && d <= degree_max) pool.push_back(v);
  }
  rng.shuffle(pool);
  std::vector<bool> blocked(graph.num_nodes(), false);
  std::vector<NodeId> cautious;
  for (const NodeId v : pool) {
    if (cautious.size() >= count) break;
    if (blocked[v]) continue;  // adjacent to an already-selected user
    cautious.push_back(v);
    blocked[v] = true;
    for (const graph::Neighbor& nb : graph.neighbors(v)) {
      blocked[nb.node] = true;
    }
  }
  std::sort(cautious.begin(), cautious.end());
  return cautious;
}

AccuInstance assemble_instance(const Graph& graph,
                               const std::vector<NodeId>& cautious,
                               const DatasetConfig& config, util::Rng& rng) {
  const NodeId n = graph.num_nodes();
  std::vector<UserClass> classes(n, UserClass::kReckless);
  for (const NodeId v : cautious) {
    ACCU_ASSERT(v < n);
    classes[v] = UserClass::kCautious;
  }
  std::vector<double> accept_prob(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    // q_u ~ U[0,1) for reckless users; cautious users never use q but a
    // value is still stored (the realization draws a coin per node).
    accept_prob[u] = classes[u] == UserClass::kReckless ? rng.uniform() : 0.0;
  }
  std::vector<std::uint32_t> threshold(n, 1);
  for (const NodeId v : cautious) {
    const auto deg = graph.degree(v);
    const auto raw = static_cast<std::uint32_t>(
        std::round(config.threshold_fraction * deg));
    threshold[v] = std::clamp<std::uint32_t>(raw, 1, deg);
  }
  BenefitModel benefits = BenefitModel::paper_default(
      classes, config.reckless_friend_benefit, config.cautious_friend_benefit,
      config.fof_benefit);
  GeneralizedCautiousParams cautious_params{
      std::vector<double>(n, config.cautious_below_prob),
      std::vector<double>(n, config.cautious_above_prob)};
  return AccuInstance(graph, std::move(classes), std::move(accept_prob),
                      std::move(threshold), std::move(benefits),
                      std::move(cautious_params));
}

AccuInstance make_dataset_from_edge_list(const std::string& path,
                                         const DatasetConfig& config,
                                         util::Rng& rng) {
  const Graph raw = graph::read_edge_list_file(path);
  // Rebuild with fresh uniform edge probabilities (§IV-A).
  GraphBuilder builder(raw.num_nodes());
  for (graph::EdgeId e = 0; e < raw.num_edges(); ++e) {
    const graph::EdgeEndpoints ep = raw.endpoints(e);
    builder.add_edge(ep.lo, ep.hi);
  }
  builder.assign_uniform_probs(rng);
  const Graph graph = builder.build();
  const std::vector<NodeId> cautious = select_cautious_users(
      graph, config.num_cautious, config.cautious_degree_min,
      config.cautious_degree_max, rng);
  return assemble_instance(graph, cautious, config, rng);
}

AccuInstance make_dataset(const std::string& name,
                          const DatasetConfig& config, util::Rng& rng) {
  GraphBuilder builder = topology_builder(name, config.scale, rng);
  builder.assign_uniform_probs(rng);  // p_uv ~ U[0,1), §IV-A
  const Graph graph = builder.build();
  const std::vector<NodeId> cautious = select_cautious_users(
      graph, config.num_cautious, config.cautious_degree_min,
      config.cautious_degree_max, rng);
  return assemble_instance(graph, cautious, config, rng);
}

}  // namespace accu::datasets
