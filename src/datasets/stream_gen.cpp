#include "datasets/stream_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/instance_format.hpp"
#include "graph/graph.hpp"
#include "util/atomic_file.hpp"
#include "util/io_env.hpp"
#include "util/rng.hpp"

namespace accu::datasets {

namespace {

namespace fmt = instance_format;

/// Uniform [0,1) from a raw 64-bit draw — the exact expression
/// util::Rng::uniform uses, so counter-based and sequential draws share one
/// mapping.
double unit(std::uint64_t draw) noexcept {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t tag) noexcept {
  std::uint64_t s = seed ^ (tag * 0x9e3779b97f4a7c15ULL);
  return util::splitmix64_next(s);
}

// Independent counter streams derived from the config seed.
constexpr std::uint64_t kTagRows = 0x526f7773ULL;    // per-row topology
constexpr std::uint64_t kTagProbs = 0x50726f62ULL;   // edge priors
constexpr std::uint64_t kTagAccept = 0x41636370ULL;  // acceptance draws

/// One spool record: a normalized undirected edge, lo < hi.  The spool is
/// written in (lo, hi)-ascending order, which makes it simultaneously the
/// endpoints section payload and a scan source that delivers every CSR
/// row's entries in ascending-neighbor order (neighbors v < u arrive in
/// their own lo-blocks, all before block u; neighbors v > u arrive inside
/// block u sorted by hi).
struct Edge {
  std::uint32_t lo, hi;
};
static_assert(sizeof(Edge) == 8, "spool records must pack");

/// Generic {u32,u32} slot entry for the adjacency scatter.
struct Slot {
  std::uint32_t node, edge;
};
static_assert(sizeof(Slot) == 8, "adjacency entries must pack");

/// Repeated sequential reader over the spool (plain buffered reads — the
/// spool is a file this process just wrote; util::IoEnv fault injection
/// covers the write sides).
class SpoolScanner {
 public:
  explicit SpoolScanner(std::string path) : path_(std::move(path)) {}

  /// Invokes fn(lo, hi, edge_index) for every record, in file order.
  template <typename Fn>
  void scan(Fn&& fn) {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) throw IoError("cannot open edge spool: " + path_);
    std::vector<Edge> buf(1u << 16);
    std::uint32_t e = 0;
    for (;;) {
      const std::size_t got =
          std::fread(buf.data(), sizeof(Edge), buf.size(), f);
      for (std::size_t i = 0; i < got; ++i, ++e) fn(buf[i].lo, buf[i].hi, e);
      if (got < buf.size()) break;
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) throw IoError("error reading edge spool: " + path_);
    ++scans_;
  }

  [[nodiscard]] std::uint64_t scans() const noexcept { return scans_; }

 private:
  std::string path_;
  std::uint64_t scans_ = 0;
};

/// Greedy row-aligned buckets: consecutive row ranges [r0, r1) whose slot
/// span fits `cap` bytes at `elem_bytes` per slot (always at least one row,
/// so a hub row larger than the cap gets a private oversized bucket).
template <typename Fn>
void for_each_row_bucket(const std::vector<std::uint64_t>& offsets,
                         std::uint64_t n, std::uint64_t elem_bytes,
                         std::uint64_t cap, Fn&& fn) {
  std::uint64_t r0 = 0;
  while (r0 < n) {
    std::uint64_t r1 = r0 + 1;
    while (r1 < n && (offsets[r1 + 1] - offsets[r0]) * elem_bytes <= cap) {
      ++r1;
    }
    fn(r0, r1);
    r0 = r1;
  }
}

/// Best-effort spool removal on every exit path (the spool only exists
/// after its atomic commit; unlinking a missing file is a harmless ENOENT).
struct SpoolGuard {
  std::string path;
  ~SpoolGuard() { util::io_env().unlink(path); }
};

}  // namespace

void StreamGenConfig::validate() const {
  if (num_nodes == 0 || num_nodes >= graph::kInvalidNode) {
    throw InvalidArgument("stream generator: num_nodes out of range");
  }
  if (!std::isfinite(avg_degree) || avg_degree <= 0.0 ||
      avg_degree > 20000.0) {
    throw InvalidArgument("stream generator: avg_degree out of range");
  }
  if (!std::isfinite(alpha) || alpha <= 2.0 || alpha > 8.0) {
    throw InvalidArgument("stream generator: alpha must be in (2, 8]");
  }
  if (cautious_degree_min < 1 || cautious_degree_min > cautious_degree_max) {
    throw InvalidArgument(
        "stream generator: need 1 <= cautious_degree_min <= "
        "cautious_degree_max");
  }
  if (!std::isfinite(threshold_fraction) || threshold_fraction <= 0.0 ||
      threshold_fraction > 1.0) {
    throw InvalidArgument(
        "stream generator: threshold_fraction must be in (0, 1]");
  }
  if (!std::isfinite(fof_benefit) || fof_benefit < 0.0 ||
      !std::isfinite(reckless_friend_benefit) ||
      reckless_friend_benefit < fof_benefit ||
      !std::isfinite(cautious_friend_benefit) ||
      cautious_friend_benefit < fof_benefit) {
    throw InvalidArgument(
        "stream generator: benefits must satisfy B_f >= B_fof >= 0");
  }
}

StreamGenStats generate_instance_stream(const StreamGenConfig& config,
                                        const std::string& path) {
  config.validate();
  const std::uint64_t n = config.num_nodes;
  const double beta = 1.0 / (config.alpha - 1.0);
  const std::uint64_t cap = std::max<std::uint64_t>(config.batch_bytes,
                                                    64ull << 10);

  const std::string spool_path = path + ".spool";
  SpoolGuard guard{spool_path};
  std::vector<std::uint32_t> deg(n, 0);
  std::uint64_t m = 0;

  // --- pass A: row-by-row edge generation into the sorted spool ----------
  //
  // Row u proposes k_u partners with ids above u, where k_u follows a
  // rank-weighted power law (low ids are the heavy head) and partners come
  // from the inverse CDF of the same rank weight restricted to (u, n).
  // Each row consumes its own counter-seeded Rng, so rows are independent
  // of each other and of any batching.
  {
    util::AtomicFileWriter spool;
    spool.open(spool_path);
    const util::CounterRng row_seeds(sub_seed(config.seed, kTagRows));
    const double rate_scale = (config.avg_degree / 2.0) * (1.0 - beta);
    std::vector<std::uint32_t> partners;
    std::vector<Edge> row_buf;
    row_buf.reserve(1u << 15);
    for (std::uint64_t u = 0; u + 1 < n; ++u) {
      util::Rng rng(row_seeds.at(u));
      const double rank = static_cast<double>(u + 1) / static_cast<double>(n);
      double lam = rate_scale * std::pow(rank, -beta);
      if (lam > 10000.0) lam = 10000.0;
      const double whole = std::floor(lam);
      std::uint64_t k = static_cast<std::uint64_t>(whole) +
                        (rng.uniform() < (lam - whole) ? 1 : 0);
      partners.clear();
      const double f_lo = std::pow(rank, 1.0 - beta);
      for (std::uint64_t i = 0; i < k; ++i) {
        const double t = rng.uniform();
        const double x =
            std::pow(f_lo + t * (1.0 - f_lo), 1.0 / (1.0 - beta));
        auto v = static_cast<std::uint64_t>(x * static_cast<double>(n));
        if (v <= u) v = u + 1;
        if (v >= n) v = n - 1;
        partners.push_back(static_cast<std::uint32_t>(v));
      }
      std::sort(partners.begin(), partners.end());
      partners.erase(std::unique(partners.begin(), partners.end()),
                     partners.end());
      for (const std::uint32_t v : partners) {
        row_buf.push_back({static_cast<std::uint32_t>(u), v});
        ++deg[u];
        ++deg[v];
      }
      m += partners.size();
      if (m >= (1ull << 31)) {
        throw InvalidArgument(
            "stream generator: edge count exceeds the 2m uint32 slot space; "
            "lower avg_degree or num_nodes");
      }
      if (row_buf.size() >= (1u << 15)) {
        spool.append(row_buf.data(), row_buf.size() * sizeof(Edge));
        row_buf.clear();
      }
    }
    if (!row_buf.empty()) {
      spool.append(row_buf.data(), row_buf.size() * sizeof(Edge));
    }
    spool.commit();
  }

  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (std::uint64_t u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + deg[u];

  SpoolScanner scanner(spool_path);

  // --- selection pass: cautious users, streaming ---------------------------
  //
  // Greedy by ascending id over the degree-window pool, skipping any node
  // adjacent to an already-selected one — the deterministic streaming
  // analogue of datasets.hpp's randomized protocol.  One scan suffices
  // because the spool is lo-major: when node u's decision is due, every
  // edge (v, u) with v < u has already been seen, so `blocked` is complete.
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> cautious_bits(words, 0);
  std::uint32_t selected = 0;
  {
    std::vector<std::uint64_t> blocked(words, 0);
    std::uint64_t next_row = 0;
    const auto decide_through = [&](std::uint64_t upto) {
      for (; next_row < upto; ++next_row) {
        const std::uint64_t u = next_row;
        if (selected >= config.num_cautious) continue;
        if (deg[u] < config.cautious_degree_min ||
            deg[u] > config.cautious_degree_max) {
          continue;
        }
        if ((blocked[u >> 6] >> (u & 63)) & 1u) continue;
        cautious_bits[u >> 6] |= 1ull << (u & 63);
        ++selected;
      }
    };
    scanner.scan([&](std::uint32_t lo, std::uint32_t hi, std::uint32_t) {
      decide_through(static_cast<std::uint64_t>(lo) + 1);
      if ((cautious_bits[lo >> 6] >> (lo & 63)) & 1u) {
        blocked[hi >> 6] |= 1ull << (hi & 63);
      }
    });
    decide_through(n);
  }
  const auto is_cautious = [&](std::uint64_t u) {
    return ((cautious_bits[u >> 6] >> (u & 63)) & 1u) != 0;
  };
  const auto theta_of = [&](std::uint64_t u) -> std::uint32_t {
    const auto t = static_cast<std::uint32_t>(
        std::llround(config.threshold_fraction * static_cast<double>(deg[u])));
    return t < 1 ? 1u : t;
  };

  // --- emit the binary format ---------------------------------------------
  const std::uint64_t flags = config.pack_tables ? fmt::kFlagPackTables : 0;
  BinaryInstanceWriter w;
  w.open(path, n, m, flags);

  w.begin_section(fmt::kOffsets);
  w.write(offsets.data(), (n + 1) * 8);
  w.end_section();

  // Adjacency: scatter passes into row-aligned buckets.  Within a bucket a
  // per-row append cursor suffices because the lo-major scan delivers each
  // row's entries in ascending-neighbor order (see Edge above).
  {
    w.begin_section(fmt::kAdjacency);
    std::vector<Slot> bucket;
    std::vector<std::uint32_t> cur;
    for_each_row_bucket(offsets, n, sizeof(Slot), cap,
                        [&](std::uint64_t r0, std::uint64_t r1) {
      const std::uint64_t base = offsets[r0];
      const std::uint64_t span = offsets[r1] - base;
      bucket.resize(static_cast<std::size_t>(span));
      cur.assign(static_cast<std::size_t>(r1 - r0), 0);
      scanner.scan([&](std::uint32_t lo, std::uint32_t hi, std::uint32_t e) {
        if (lo >= r0 && lo < r1) {
          bucket[static_cast<std::size_t>(offsets[lo] - base +
                                          cur[lo - r0]++)] = {hi, e};
        }
        if (hi >= r0 && hi < r1) {
          bucket[static_cast<std::size_t>(offsets[hi] - base +
                                          cur[hi - r0]++)] = {lo, e};
        }
      });
      w.write(bucket.data(), static_cast<std::size_t>(span) * sizeof(Slot));
    });
    w.end_section();
  }

  // Endpoints: the spool *is* the section payload.
  {
    w.begin_section(fmt::kEndpoints);
    std::vector<Edge> ebuf;
    ebuf.reserve(1u << 16);
    scanner.scan([&](std::uint32_t lo, std::uint32_t hi, std::uint32_t) {
      ebuf.push_back({lo, hi});
      if (ebuf.size() == (1u << 16)) {
        w.write(ebuf.data(), ebuf.size() * sizeof(Edge));
        ebuf.clear();
      }
    });
    if (!ebuf.empty()) w.write(ebuf.data(), ebuf.size() * sizeof(Edge));
    w.end_section();
  }

  // Edge priors: pure counter stream in EdgeId order.
  const util::CounterRng prob_rng(sub_seed(config.seed, kTagProbs));
  constexpr std::size_t kChunk = 1u << 16;
  {
    w.begin_section(fmt::kProbs);
    std::vector<double> dbuf(kChunk);
    for (std::uint64_t e0 = 0; e0 < m; e0 += kChunk) {
      const std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, m - e0));
      for (std::size_t i = 0; i < len; ++i) {
        dbuf[i] = unit(prob_rng.at(e0 + i));
      }
      w.write(dbuf.data(), len * 8);
    }
    w.end_section();
  }

  w.begin_section(fmt::kCautious);
  if (!cautious_bits.empty()) {
    w.write(cautious_bits.data(), cautious_bits.size() * 8);
  }
  w.end_section();

  // Per-node columns, streamed in fixed-size chunks.
  const auto node_column_f64 = [&](std::uint32_t id, auto&& value_of) {
    w.begin_section(id);
    std::vector<double> dbuf(kChunk);
    for (std::uint64_t u0 = 0; u0 < n; u0 += kChunk) {
      const std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, n - u0));
      for (std::size_t i = 0; i < len; ++i) dbuf[i] = value_of(u0 + i);
      w.write(dbuf.data(), len * 8);
    }
    w.end_section();
  };
  const util::CounterRng accept_rng(sub_seed(config.seed, kTagAccept));
  node_column_f64(fmt::kAccept,
                  [&](std::uint64_t u) { return unit(accept_rng.at(u)); });
  {
    w.begin_section(fmt::kTheta);
    std::vector<std::uint32_t> ubuf(kChunk);
    for (std::uint64_t u0 = 0; u0 < n; u0 += kChunk) {
      const std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, n - u0));
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t u = u0 + i;
        ubuf[i] = is_cautious(u) ? theta_of(u) : 1u;
      }
      w.write(ubuf.data(), len * 4);
    }
    w.end_section();
  }
  node_column_f64(fmt::kFriendBenefit, [&](std::uint64_t u) {
    return is_cautious(u) ? config.cautious_friend_benefit
                          : config.reckless_friend_benefit;
  });
  node_column_f64(fmt::kFofBenefit,
                  [&](std::uint64_t) { return config.fof_benefit; });

  // --- pre-laid-out ScorePack slot tables ----------------------------------
  //
  // Slot positions come from a full cursor simulation per scan (the same
  // assignment ScorePack::build's CSR walk produces); values are the exact
  // expressions ScorePack::build computes, so an adopted pack is
  // bit-identical to a recomputed one (pinned in tests).
  if (config.pack_tables) {
    std::vector<std::uint32_t> gcur(n);
    const auto slot_passes = [&](std::uint32_t id, std::uint64_t elem_bytes,
                                 auto&& emit) {
      w.begin_section(id);
      for_each_row_bucket(offsets, n, elem_bytes, cap,
                          [&](std::uint64_t r0, std::uint64_t r1) {
        const std::uint64_t s_begin = offsets[r0];
        const std::uint64_t s_end = offsets[r1];
        std::fill(gcur.begin(), gcur.end(), 0);
        emit.start(s_begin, s_end);
        scanner.scan(
            [&](std::uint32_t lo, std::uint32_t hi, std::uint32_t e) {
          const std::uint64_t sl = offsets[lo] + gcur[lo]++;
          const std::uint64_t sh = offsets[hi] + gcur[hi]++;
          // Slot sl lives in row lo and points at neighbor hi (and vice
          // versa) — mirror partners by construction.
          if (sl >= s_begin && sl < s_end) emit.put(sl - s_begin, hi, lo, e, sh);
          if (sh >= s_begin && sh < s_end) emit.put(sh - s_begin, lo, hi, e, sl);
        });
        emit.flush();
      });
      w.end_section();
    };

    struct MirrorEmit {
      BinaryInstanceWriter& w;
      std::vector<std::uint32_t> buf;
      void start(std::uint64_t s0, std::uint64_t s1) {
        buf.assign(static_cast<std::size_t>(s1 - s0), 0);
      }
      void put(std::uint64_t rel, std::uint32_t, std::uint32_t, std::uint32_t,
               std::uint64_t mirror_slot) {
        buf[static_cast<std::size_t>(rel)] =
            static_cast<std::uint32_t>(mirror_slot);
      }
      void flush() { w.write(buf.data(), buf.size() * 4); }
    };
    MirrorEmit mirror_emit{w, {}};
    slot_passes(fmt::kMirror, 4, mirror_emit);

    struct ValueEmit {
      BinaryInstanceWriter& w;
      const util::CounterRng& probs;
      double (*value)(double p, bool neighbor_cautious,
                      const StreamGenConfig& cfg);
      const StreamGenConfig& cfg;
      const std::vector<std::uint64_t>& cautious_bits;
      std::vector<double> buf;
      void start(std::uint64_t s0, std::uint64_t s1) {
        buf.assign(static_cast<std::size_t>(s1 - s0), 0.0);
      }
      void put(std::uint64_t rel, std::uint32_t neighbor, std::uint32_t,
               std::uint32_t e, std::uint64_t) {
        const double p = unit(probs.at(e));
        const bool c = ((cautious_bits[neighbor >> 6] >> (neighbor & 63)) &
                        1u) != 0;
        buf[static_cast<std::size_t>(rel)] = value(p, c, cfg);
      }
      void flush() { w.write(buf.data(), buf.size() * 8); }
    };
    ValueEmit d_init_emit{
        w, prob_rng,
        [](double p, bool, const StreamGenConfig& cfg) {
          return p * cfg.fof_benefit;  // prior · B_fof(v), all-node constant
        },
        config, cautious_bits, {}};
    slot_passes(fmt::kDInit, 8, d_init_emit);
    ValueEmit i_gain_emit{
        w, prob_rng,
        [](double p, bool neighbor_cautious, const StreamGenConfig& cfg) {
          // prior · upgrade_gain(v) for cautious v, exactly 0.0 otherwise —
          // ScorePack::build's expression, operation for operation.
          return neighbor_cautious
                     ? p * (cfg.cautious_friend_benefit - cfg.fof_benefit)
                     : 0.0;
        },
        config, cautious_bits, {}};
    slot_passes(fmt::kIGain, 8, i_gain_emit);

    struct SlotThetaEmit {
      BinaryInstanceWriter& w;
      const std::vector<std::uint64_t>& cautious_bits;
      const std::vector<std::uint32_t>& deg;
      double fraction;
      std::vector<std::uint32_t> buf;
      void start(std::uint64_t s0, std::uint64_t s1) {
        buf.assign(static_cast<std::size_t>(s1 - s0), 0);
      }
      void put(std::uint64_t rel, std::uint32_t neighbor, std::uint32_t,
               std::uint32_t, std::uint64_t) {
        const bool c = ((cautious_bits[neighbor >> 6] >> (neighbor & 63)) &
                        1u) != 0;
        std::uint32_t theta = 1;
        if (c) {
          const auto t = static_cast<std::uint32_t>(std::llround(
              fraction * static_cast<double>(deg[neighbor])));
          theta = t < 1 ? 1u : t;
        }
        buf[static_cast<std::size_t>(rel)] = theta;
      }
      void flush() { w.write(buf.data(), buf.size() * 4); }
    };
    SlotThetaEmit slot_theta_emit{w, cautious_bits, deg,
                                  config.threshold_fraction, {}};
    slot_passes(fmt::kSlotTheta, 4, slot_theta_emit);
  }

  w.commit();

  StreamGenStats stats;
  stats.num_nodes = n;
  stats.num_edges = m;
  stats.num_cautious = selected;
  stats.spool_scans = scanner.scans();
  return stats;
}

}  // namespace accu::datasets
