// Out-of-core synthetic instance generator: emits the binary ".accui"
// format (core/instance_format.hpp) directly, in batched section writes,
// with resident memory bounded by O(n) per-node arrays plus one bucket
// buffer — never the O(m) edge set.  A 10M-node twitter-like instance
// packs on a laptop.
//
// Pipeline (details in stream_gen.cpp):
//
//   1. Generate edges row by row (rank-weighted power-law partners, each
//      row's stream an independent CounterRng-seeded Rng, so output is
//      independent of batching) into a sorted (lo,hi) uint32 spool file.
//   2. One spool scan selects cautious users (greedy by id over the
//      degree-window pool, never two adjacent — the streaming analogue of
//      datasets.hpp's protocol).
//   3. Stream the format's sections through BinaryInstanceWriter: CSR
//      adjacency and the ScorePack slot tables are produced by repeated
//      sequential spool scans scattering into row-aligned buckets of at
//      most `batch_bytes`; everything per-node streams from the O(n)
//      arrays; edge probabilities and acceptance draws are counter-based
//      (util::CounterRng), so any subrange regenerates independently.
//
// Determinism: the output file is byte-identical for a fixed config
// regardless of `batch_bytes` — bucket boundaries only choose which pass
// writes a slot, never its value.  All I/O goes through util::IoEnv
// (AtomicFileWriter for the spool and the target), so the FaultyFs suite
// covers ENOSPC / crash mid-generation: the target path either appears
// complete or not at all.

#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace accu::datasets {

struct StreamGenConfig {
  std::uint64_t num_nodes = 1'000'000;
  /// Target mean total degree (edges ≈ n·avg_degree/2).
  double avg_degree = 16.0;
  /// Degree-tail exponent of the rank-weighted row rates; (2, 8].
  double alpha = 2.5;
  /// Cautious-selection protocol (same knobs as datasets::DatasetConfig).
  std::uint32_t num_cautious = 100;
  std::uint32_t cautious_degree_min = 10;
  std::uint32_t cautious_degree_max = 100;
  double threshold_fraction = 0.3;
  double cautious_friend_benefit = 50.0;
  double reckless_friend_benefit = 2.0;
  double fof_benefit = 1.0;
  std::uint64_t seed = 1;
  /// Bucket buffer cap for the scatter passes (floored at 64 KiB; a single
  /// hub row larger than the cap gets a bucket of its own).
  std::uint64_t batch_bytes = 64ull << 20;
  /// Embed the pre-laid-out ScorePack slot tables (sections 12–15).
  bool pack_tables = true;

  /// Throws InvalidArgument on out-of-range knobs.
  void validate() const;
};

struct StreamGenStats {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_cautious = 0;
  /// Sequential scans of the edge spool (observability for the batching
  /// trade-off: smaller buckets -> more scans).
  std::uint64_t spool_scans = 0;
};

/// Generates the configured instance into `path` (binary format, atomic
/// publish).  The edge spool lives at `path + ".spool"` for the duration
/// and is unlinked before returning.  Throws InvalidArgument for bad
/// configs and IoError (DiskFullError / SyncFailedError) for I/O failures.
StreamGenStats generate_instance_stream(const StreamGenConfig& config,
                                        const std::string& path);

}  // namespace accu::datasets
