// Tests for the generalized cautious model (§III-B): q1/q2 validation,
// realization coins, simulator regime selection, ABM's acceptance
// weighting, the curvature δ, and exact reduction to the deterministic
// model at (q1, q2) = (0, 1).

#include <gtest/gtest.h>

#include <cmath>

#include "core/strategies/abm.hpp"
#include "core/theory/estimator.hpp"
#include "core/theory/ratios.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Path 0-1-2 with cautious node 1 (θ=2 is infeasible on a path end, so
/// use middle node with both neighbors reckless), q1/q2 configurable.
AccuInstance tiny_generalized(double q1, double q2) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  std::vector<UserClass> classes = {UserClass::kReckless,
                                    UserClass::kCautious,
                                    UserClass::kReckless};
  GeneralizedCautiousParams params{{0.0, q1, 0.0}, {1.0, q2, 1.0}};
  return AccuInstance(b.build(), classes, {1.0, 0.0, 1.0}, {1, 2, 1},
                      BenefitModel::paper_default(classes, 2.0, 10.0, 1.0),
                      params);
}

TEST(GeneralizedModelTest, ValidationAndFlag) {
  EXPECT_FALSE(tiny_generalized(0.0, 1.0).has_generalized_cautious());
  EXPECT_TRUE(tiny_generalized(0.1, 0.9).has_generalized_cautious());
  EXPECT_TRUE(tiny_generalized(0.0, 0.9).has_generalized_cautious());
  EXPECT_THROW(tiny_generalized(0.5, 0.4), InvalidArgument);  // q1 > q2
  EXPECT_THROW(tiny_generalized(-0.1, 0.5), InvalidArgument);
  EXPECT_THROW(tiny_generalized(0.5, 1.5), InvalidArgument);
}

TEST(GeneralizedModelTest, AccessorReturnsRegimeProbability) {
  const AccuInstance instance = tiny_generalized(0.1, 0.8);
  EXPECT_DOUBLE_EQ(instance.cautious_accept_prob(1, false), 0.1);
  EXPECT_DOUBLE_EQ(instance.cautious_accept_prob(1, true), 0.8);
}

TEST(GeneralizedModelTest, RealizationCoinsMatchProbabilities) {
  const AccuInstance instance = tiny_generalized(0.25, 0.75);
  util::Rng rng(1);
  int below = 0, above = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const Realization truth = Realization::sample(instance, rng);
    below += truth.cautious_below_accepts(1);
    above += truth.cautious_above_accepts(1);
  }
  EXPECT_NEAR(below / static_cast<double>(trials), 0.25, 0.01);
  EXPECT_NEAR(above / static_cast<double>(trials), 0.75, 0.01);
}

TEST(GeneralizedModelTest, DeterministicCoinsArePinned) {
  const AccuInstance instance = tiny_generalized(0.0, 1.0);
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Realization truth = Realization::sample(instance, rng);
    EXPECT_FALSE(truth.cautious_below_accepts(1));
    EXPECT_TRUE(truth.cautious_above_accepts(1));
  }
}

TEST(GeneralizedModelTest, RealizationProbabilityIncludesCautiousCoins) {
  const AccuInstance instance = tiny_generalized(0.25, 0.75);
  // All edges present, reckless accept; cautious below=true, above=false.
  const Realization truth({true, true}, {true, true, true},
                          {false, true, false}, {true, false, true});
  // Edges certain, reckless certain; cautious contributes 0.25 · 0.25.
  EXPECT_NEAR(truth.probability(instance), 0.0625, 1e-12);
}

TEST(GeneralizedModelTest, SimulatorConsultsActiveRegime) {
  const AccuInstance instance = tiny_generalized(1.0, 1.0);
  {
    // q1 = 1: a below-threshold request is *accepted* (unlike the
    // deterministic model).
    const Realization truth = Realization::certain(instance);
    class Script final : public Strategy {
     public:
      NodeId select(const AttackerView& view, util::Rng&) override {
        for (NodeId v : {NodeId{1}, NodeId{0}, NodeId{2}}) {
          if (!view.is_requested(v)) return v;
        }
        return kInvalidNode;
      }
      [[nodiscard]] std::string name() const override { return "Script"; }
    } script;
    util::Rng rng(3);
    const SimulationResult result =
        simulate(instance, truth, script, 1, rng);
    EXPECT_TRUE(result.trace[0].accepted);
    EXPECT_EQ(result.num_cautious_friends, 1u);
  }
  {
    // Below-coin false, above-coin true: rejected early, accepted late.
    const AccuInstance inst2 = tiny_generalized(0.5, 0.5);
    const Realization truth({true, true}, {true, true, true},
                            {false, false, false}, {true, true, true});
    class Script final : public Strategy {
     public:
      explicit Script(std::vector<NodeId> order) : order_(std::move(order)) {}
      NodeId select(const AttackerView& view, util::Rng&) override {
        while (cursor_ < order_.size() &&
               view.is_requested(order_[cursor_])) {
          ++cursor_;
        }
        return cursor_ < order_.size() ? order_[cursor_++] : kInvalidNode;
      }
      [[nodiscard]] std::string name() const override { return "Script"; }

     private:
      std::vector<NodeId> order_;
      std::size_t cursor_ = 0;
    };
    util::Rng rng(4);
    Script early({1});
    const SimulationResult r1 = simulate(inst2, truth, early, 1, rng);
    EXPECT_FALSE(r1.trace[0].accepted);  // below regime, coin false
    Script late({0, 2, 1});
    const SimulationResult r2 = simulate(inst2, truth, late, 3, rng);
    EXPECT_TRUE(r2.trace[2].accepted);  // θ=2 reached, above coin true
  }
}

TEST(GeneralizedModelTest, AbmUsesRegimeProbabilities) {
  const AccuInstance instance = tiny_generalized(0.2, 0.9);
  AttackerView view(instance);
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 1), 0.2);
  const Realization truth = Realization::certain(instance);
  view.record_acceptance(0, truth);
  view.record_acceptance(2, truth);
  EXPECT_EQ(view.mutual_friends(1), 2u);
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 1), 0.9);
}

TEST(GeneralizedModelTest, CurvatureDelta) {
  EXPECT_TRUE(std::isinf(
      generalized_curvature_delta(tiny_generalized(0.0, 1.0))));
  EXPECT_DOUBLE_EQ(
      generalized_curvature_delta(tiny_generalized(0.1, 1.0)), 10.0);
  EXPECT_DOUBLE_EQ(
      generalized_curvature_delta(tiny_generalized(0.5, 0.5)), 1.0);
  // δ = 10, k = 20 reproduces the paper's 0.095 curvature guarantee.
  EXPECT_NEAR(
      curvature_ratio(
          generalized_curvature_delta(tiny_generalized(0.1, 1.0)), 20),
      0.095, 5e-4);
}

TEST(GeneralizedModelTest, SampledMarginalUsesRegimeProbabilities) {
  // The Monte Carlo Δ estimator must weight a below-threshold cautious
  // candidate by q1, not by 0: Δ(v) ≈ q1·(B_f − 1_FOF·B_fof + FOF mass).
  const AccuInstance instance = tiny_generalized(0.4, 1.0);
  AttackerView view(instance);
  util::Rng mc(9);
  const double sampled = sampled_marginal_gain(view, 1, 60000, mc);
  // P_D(1) = B_f(1) + B_fof(0) + B_fof(2) = 10 + 1 + 1.
  EXPECT_NEAR(sampled, 0.4 * 12.0, 0.15);
}

TEST(GeneralizedModelTest, TheoryToolsRejectGeneralizedInstances) {
  const AccuInstance instance = tiny_generalized(0.3, 0.9);
  EXPECT_DEATH(realization_submodular_ratio(
                   instance, Realization::certain(instance)),
               "deterministic");
}

// The incremental ABM must stay exact under the generalized model: q(u)
// for a cautious user now changes value (q1 → q2) at the threshold
// crossing, and below-threshold acceptances reveal neighborhoods too.
class GeneralizedIncrementalTest
    : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralizedIncrementalTest, IncrementalMatchesReference) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::barabasi_albert(70, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(70, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(70, 1);
  GeneralizedCautiousParams params{std::vector<double>(70, 0.0),
                                   std::vector<double>(70, 1.0)};
  std::vector<NodeId> cautious;
  for (NodeId v = 8; v < 70 && cautious.size() < 6; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    params.below[v] = 0.2;  // below-threshold gambles can pay off
    params.above[v] = 0.9;
    cautious.push_back(v);
  }
  std::vector<double> q(70);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::paper_default(classes), params);
  ASSERT_TRUE(instance.has_generalized_cautious());
  const Realization truth = Realization::sample(instance, rng);

  AbmStrategy::Config fast;
  fast.weights = {0.5, 0.5};
  AbmStrategy::Config slow = fast;
  slow.incremental = false;
  AbmStrategy a(fast), r(slow);
  util::Rng ra(1), rr(1);
  const SimulationResult fa = simulate(instance, truth, a, 35, ra);
  const SimulationResult fr = simulate(instance, truth, r, 35, rr);
  ASSERT_EQ(fa.trace.size(), fr.trace.size());
  for (std::size_t i = 0; i < fa.trace.size(); ++i) {
    ASSERT_EQ(fa.trace[i].target, fr.trace[i].target) << "request " << i;
    ASSERT_EQ(fa.trace[i].accepted, fr.trace[i].accepted);
  }
  EXPECT_DOUBLE_EQ(fa.total_benefit, fr.total_benefit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedIncrementalTest,
                         testing::Values(201u, 202u, 203u, 204u));

TEST(GeneralizedModelTest, DatasetFactorySupportsGeneralizedModel) {
  util::Rng rng(5);
  datasets::DatasetConfig config;
  config.scale = 0.08;
  config.num_cautious = 10;
  config.cautious_below_prob = 0.1;
  config.cautious_above_prob = 0.9;
  const AccuInstance instance =
      datasets::make_dataset("facebook", config, rng);
  EXPECT_TRUE(instance.has_generalized_cautious());
  for (const NodeId v : instance.cautious_users()) {
    EXPECT_DOUBLE_EQ(instance.cautious_accept_prob(v, false), 0.1);
    EXPECT_DOUBLE_EQ(instance.cautious_accept_prob(v, true), 0.9);
  }
  EXPECT_DOUBLE_EQ(generalized_curvature_delta(instance), 9.0);
}

}  // namespace
}  // namespace accu
