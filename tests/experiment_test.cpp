// Tests for the experiment harness: TraceAggregator arithmetic, seeding /
// determinism, and the paired-realization design.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

SimulationResult fake_result(std::vector<RequestRecord> trace) {
  SimulationResult result;
  result.trace = std::move(trace);
  result.total_benefit =
      result.trace.empty() ? 0.0 : result.trace.back().benefit_after;
  for (const RequestRecord& r : result.trace) {
    result.num_accepted += r.accepted;
    if (r.accepted && r.cautious_target) ++result.num_cautious_friends;
  }
  return result;
}

RequestRecord record(NodeId target, bool accepted, bool cautious,
                     double before, double after) {
  RequestRecord r;
  r.target = target;
  r.accepted = accepted;
  r.cautious_target = cautious;
  r.benefit_before = before;
  r.benefit_after = after;
  return r;
}

TEST(TraceAggregatorTest, CurvesAndSplits) {
  TraceAggregator agg;
  agg.add(fake_result({record(0, true, false, 0, 4),
                       record(1, true, true, 4, 10)}),
          2);
  agg.add(fake_result({record(2, false, false, 0, 0),
                       record(3, true, false, 0, 2)}),
          2);

  EXPECT_DOUBLE_EQ(agg.cumulative_benefit().at(0).mean(), 2.0);  // (4+0)/2
  EXPECT_DOUBLE_EQ(agg.cumulative_benefit().at(1).mean(), 6.0);  // (10+2)/2
  EXPECT_DOUBLE_EQ(agg.marginal().at(1).mean(), 4.0);            // (6+2)/2
  // Cautious/reckless split: request 1 was cautious in run 1 only.
  EXPECT_DOUBLE_EQ(agg.marginal_cautious().at(1).mean(), 3.0);   // (6+0)/2
  EXPECT_DOUBLE_EQ(agg.marginal_reckless().at(1).mean(), 1.0);   // (0+2)/2
  EXPECT_DOUBLE_EQ(agg.cautious_fraction().at(1).mean(), 0.5);
  EXPECT_DOUBLE_EQ(agg.total_benefit().mean(), 6.0);
  EXPECT_DOUBLE_EQ(agg.cautious_friends().mean(), 0.5);
  EXPECT_DOUBLE_EQ(agg.accepted_requests().mean(), 1.5);
}

TEST(TraceAggregatorTest, ShortTracesHoldFinalBenefit) {
  TraceAggregator agg;
  agg.add(fake_result({record(0, true, false, 0, 5)}), 3);
  EXPECT_EQ(agg.cumulative_benefit().length(), 3u);
  EXPECT_DOUBLE_EQ(agg.cumulative_benefit().at(2).mean(), 5.0);
  EXPECT_DOUBLE_EQ(agg.marginal().at(2).mean(), 0.0);
}

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.06;  // ~240 nodes
    config.num_cautious = 10;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> two_strategies() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

TEST(RunExperimentTest, ShapesAndNames) {
  ExperimentConfig config;
  config.budget = 20;
  config.samples = 2;
  config.runs = 2;
  config.seed = 7;
  const ExperimentResult result =
      run_experiment(tiny_factory(), two_strategies(), config);
  ASSERT_EQ(result.strategy_names.size(), 2u);
  EXPECT_EQ(result.strategy_names[0], "ABM");
  const TraceAggregator& abm = result.by_name("ABM");
  EXPECT_EQ(abm.total_benefit().count(), 4u);  // samples × runs
  EXPECT_EQ(abm.cumulative_benefit().length(), 20u);
  EXPECT_THROW(result.by_name("nope"), InvalidArgument);
}

TEST(RunExperimentTest, DeterministicGivenSeed) {
  ExperimentConfig config;
  config.budget = 15;
  config.samples = 2;
  config.runs = 2;
  config.seed = 9;
  const ExperimentResult a =
      run_experiment(tiny_factory(), two_strategies(), config);
  const ExperimentResult b =
      run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_DOUBLE_EQ(a.by_name("ABM").total_benefit().mean(),
                   b.by_name("ABM").total_benefit().mean());
  EXPECT_DOUBLE_EQ(a.by_name("Random").total_benefit().mean(),
                   b.by_name("Random").total_benefit().mean());
  config.seed = 10;
  const ExperimentResult c =
      run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_NE(a.by_name("ABM").total_benefit().mean(),
            c.by_name("ABM").total_benefit().mean());
}

TEST(RunExperimentTest, PairedRealizationsAcrossStrategies) {
  // Two copies of the same deterministic policy must see identical worlds
  // and therefore produce identical aggregates.
  ExperimentConfig config;
  config.budget = 12;
  config.samples = 2;
  config.runs = 3;
  config.seed = 11;
  const std::vector<StrategyFactory> twins = {
      {"A", [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
      {"B", [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
  };
  const ExperimentResult result =
      run_experiment(tiny_factory(), twins, config);
  EXPECT_DOUBLE_EQ(result.by_name("A").total_benefit().mean(),
                   result.by_name("B").total_benefit().mean());
  for (std::size_t i = 0; i < config.budget; ++i) {
    EXPECT_DOUBLE_EQ(result.by_name("A").cumulative_benefit().at(i).mean(),
                     result.by_name("B").cumulative_benefit().at(i).mean());
  }
}

TEST(RunExperimentTest, CumulativeBenefitIsMonotone) {
  ExperimentConfig config;
  config.budget = 25;
  config.samples = 1;
  config.runs = 3;
  config.seed = 13;
  const ExperimentResult result =
      run_experiment(tiny_factory(), two_strategies(), config);
  for (const std::string& name : {"ABM", "Random"}) {
    const auto means = result.by_name(name).cumulative_benefit().means();
    for (std::size_t i = 1; i < means.size(); ++i) {
      EXPECT_GE(means[i], means[i - 1] - 1e-9) << name << " @ " << i;
    }
  }
}

}  // namespace
}  // namespace accu
