// Integration tests for the supervised experiment runner: per-cell
// wall-clock deadlines (watchdog cancellation + deterministic retries),
// interrupt-flag stops, and the crash headline — a sweep SIGKILLed mid-run
// resumes from its checkpoint to bit-identical aggregates.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>

#include "core/experiment.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"

// Written by the forked child's SIGTERM handler, polled by the watchdog —
// the same arrangement the CLI uses.
volatile std::sig_atomic_t g_resilience_stop = 0;

extern "C" void resilience_stop_handler(int) { g_resilience_stop = 1; }

namespace accu {
namespace {

/// Deterministic strategy that takes a configurable wall-clock time per
/// request: scans node ids in order, sleeping before each selection.  It
/// consumes no randomness, so its results do not depend on timing at all —
/// only on which cells were allowed to finish.
class SlowScanStrategy : public Strategy {
 public:
  explicit SlowScanStrategy(std::chrono::milliseconds per_select)
      : per_select_(per_select) {}

  void reset(const AccuInstance& instance, util::Rng&) override {
    num_nodes_ = instance.num_nodes();
    cursor_ = 0;
  }

  NodeId select(const AttackerView& view, util::Rng&) override {
    std::this_thread::sleep_for(per_select_);
    while (cursor_ < num_nodes_ && view.is_requested(cursor_)) ++cursor_;
    return cursor_ < num_nodes_ ? cursor_++ : kInvalidNode;
  }

  [[nodiscard]] std::string name() const override { return "SlowScan"; }

 private:
  std::chrono::milliseconds per_select_;
  NodeId num_nodes_ = 0;
  NodeId cursor_ = 0;
};

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 8;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> fast_roster() {
  return {
      {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

std::vector<StrategyFactory> slow_roster(std::chrono::milliseconds delay) {
  return {{"SlowScan", [delay] {
             return std::make_unique<SlowScanStrategy>(delay);
           }}};
}

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// Exact equality of every aggregate — the resilience guarantee is
/// bit-identity with an undisturbed sweep, not closeness.
void expect_identical_results(const ExperimentResult& a,
                              const ExperimentResult& b) {
  ASSERT_EQ(a.strategy_names, b.strategy_names);
  for (std::size_t s = 0; s < a.aggregates.size(); ++s) {
    const TraceAggregator& x = a.aggregates[s];
    const TraceAggregator& y = b.aggregates[s];
    SCOPED_TRACE(a.strategy_names[s]);
    EXPECT_EQ(x.total_benefit().count(), y.total_benefit().count());
    EXPECT_EQ(x.total_benefit().mean(), y.total_benefit().mean());
    EXPECT_EQ(x.total_benefit().variance(), y.total_benefit().variance());
    EXPECT_EQ(x.cautious_friends().mean(), y.cautious_friends().mean());
    EXPECT_EQ(x.accepted_requests().mean(), y.accepted_requests().mean());
    EXPECT_EQ(x.faulted_requests().mean(), y.faulted_requests().mean());
    EXPECT_EQ(x.retries().mean(), y.retries().mean());
    EXPECT_EQ(x.abandoned_targets().mean(), y.abandoned_targets().mean());
    ASSERT_EQ(x.cumulative_benefit().length(),
              y.cumulative_benefit().length());
    for (std::size_t i = 0; i < x.cumulative_benefit().length(); ++i) {
      EXPECT_EQ(x.cumulative_benefit().at(i).mean(),
                y.cumulative_benefit().at(i).mean())
          << "index " << i;
      EXPECT_EQ(x.marginal().at(i).mean(), y.marginal().at(i).mean());
      EXPECT_EQ(x.cautious_fraction().at(i).mean(),
                y.cautious_fraction().at(i).mean());
    }
  }
}

ExperimentConfig slow_config() {
  ExperimentConfig config;
  config.budget = 5;
  config.samples = 1;
  config.runs = 2;
  config.seed = 53;
  return config;
}

TEST(ResilienceTest, DeadlineExceededCellsAreCancelledAndReported) {
  ExperimentConfig config = slow_config();
  config.cell_deadline_ms = 25;  // each cell needs ~100ms of sleeping
  const ExperimentResult result = run_experiment(
      tiny_factory(), slow_roster(std::chrono::milliseconds(20)), config);
  ASSERT_EQ(result.failures.size(), 2u);
  for (const CellFailure& failure : result.failures) {
    EXPECT_EQ(failure.kind, CellFailure::Kind::kDeadline);
    EXPECT_EQ(failure.attempts, 1u);
    EXPECT_GT(failure.elapsed_ms, 0.0);
  }
  EXPECT_EQ(result.cells_retried, 0u);
  EXPECT_FALSE(result.interrupted);
  // Cancelled cells contribute nothing: no partial traces in aggregates.
  EXPECT_EQ(result.aggregates[0].total_benefit().count(), 0u);
  EXPECT_STREQ(cell_failure_kind_name(CellFailure::Kind::kDeadline),
               "deadline");
}

TEST(ResilienceTest, DeadlineRetriesAreDeterministicAcrossThreadCounts) {
  auto run_with_threads = [](std::uint32_t threads) {
    ExperimentConfig config = slow_config();
    config.cell_deadline_ms = 25;
    config.max_cell_retries = 2;
    config.threads = threads;
    return run_experiment(tiny_factory(),
                          slow_roster(std::chrono::milliseconds(20)), config);
  };
  const ExperimentResult sequential = run_with_threads(1);
  const ExperimentResult pooled = run_with_threads(2);

  auto failure_set = [](const ExperimentResult& result) {
    std::vector<std::tuple<std::uint32_t, std::uint32_t, CellFailure::Kind,
                           std::uint32_t>>
        set;
    for (const CellFailure& f : result.failures) {
      set.emplace_back(f.sample, f.run, f.kind, f.attempts);
    }
    std::sort(set.begin(), set.end());
    return set;
  };
  ASSERT_EQ(sequential.failures.size(), 2u);
  for (const CellFailure& failure : sequential.failures) {
    EXPECT_EQ(failure.kind, CellFailure::Kind::kDeadline);
    EXPECT_EQ(failure.attempts, 3u);  // 1 original + 2 retries, all too slow
  }
  EXPECT_EQ(sequential.cells_retried, 2u);  // each cell counts once
  EXPECT_EQ(failure_set(sequential), failure_set(pooled));
  EXPECT_EQ(sequential.cells_retried, pooled.cells_retried);
}

TEST(ResilienceTest, GenerousDeadlineLeavesResultsBitIdentical) {
  ExperimentConfig plain;
  plain.budget = 20;
  plain.samples = 1;
  plain.runs = 3;
  plain.seed = 59;
  plain.faults = FaultConfig::uniform(0.2);
  plain.retry = util::RetryPolicy::exponential_jitter(2);
  const ExperimentResult unsupervised =
      run_experiment(tiny_factory(), fast_roster(), plain);

  ExperimentConfig supervised = plain;
  supervised.cell_deadline_ms = 60000;  // never binds
  supervised.max_cell_retries = 2;
  const ExperimentResult result =
      run_experiment(tiny_factory(), fast_roster(), supervised);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.cells_retried, 0u);
  // Supervision consumes no randomness: attempt 0 draws the exact same
  // seed streams as an unsupervised sweep.
  expect_identical_results(unsupervised, result);
}

TEST(ResilienceTest, PresetInterruptFlagStopsBeforeAnyCell) {
  static volatile std::sig_atomic_t flag = 1;
  ExperimentConfig config = slow_config();
  config.interrupt_flag = &flag;
  const ExperimentResult result = run_experiment(
      tiny_factory(), slow_roster(std::chrono::milliseconds(1)), config);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.aggregates[0].total_benefit().count(), 0u);
}

TEST(ResilienceTest, InterruptedCheckpointedSweepResumesToCompletion) {
  const ExperimentConfig plain = slow_config();
  const ExperimentResult uninterrupted = run_experiment(
      tiny_factory(), slow_roster(std::chrono::milliseconds(1)), plain);

  static volatile std::sig_atomic_t flag = 1;
  ExperimentConfig interrupted_config = plain;
  interrupted_config.checkpoint_path = temp_path("accu_resil_interrupt.txt");
  interrupted_config.interrupt_flag = &flag;
  const ExperimentResult stopped = run_experiment(
      tiny_factory(), slow_roster(std::chrono::milliseconds(1)),
      interrupted_config);
  EXPECT_TRUE(stopped.interrupted);

  ExperimentConfig resume_config = interrupted_config;
  resume_config.interrupt_flag = nullptr;
  const ExperimentResult resumed = run_experiment(
      tiny_factory(), slow_roster(std::chrono::milliseconds(1)),
      resume_config);
  EXPECT_FALSE(resumed.interrupted);
  expect_identical_results(uninterrupted, resumed);
}

// The headline crash test: fork a sweep, SIGKILL it mid-flight (no chance
// to flush or unwind), and assert that resuming from whatever checkpoint
// bytes survived reproduces the uninterrupted aggregates exactly.
TEST(ResilienceTest, SigkillMidSweepResumesBitIdentically) {
  ExperimentConfig config;
  config.budget = 6;
  config.samples = 1;
  config.runs = 10;
  config.seed = 61;
  const InstanceFactory factory = tiny_factory();
  const std::vector<StrategyFactory> roster =
      slow_roster(std::chrono::milliseconds(2));
  const ExperimentResult uninterrupted =
      run_experiment(factory, roster, config);

  ExperimentConfig checkpointed = config;
  checkpointed.checkpoint_path = temp_path("accu_resil_sigkill.txt");
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    // Child: run the sweep until the parent kills us.  _exit (not exit):
    // a SIGKILL leaves no cleanup anyway, and the early-finish path must
    // not flush the parent's duplicated stdio buffers.
    (void)run_experiment(factory, roster, checkpointed);
    _exit(0);
  }
  // Let the child complete a few cells (~12ms each), then kill it without
  // warning — possibly mid-checkpoint-append.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);

  const ExperimentResult resumed =
      run_experiment(factory, roster, checkpointed);
  expect_identical_results(uninterrupted, resumed);

  // And the checkpoint is now complete: a further resume replays
  // everything from disk, still bit-identically.
  const ExperimentResult replayed =
      run_experiment(factory, roster, checkpointed);
  expect_identical_results(uninterrupted, replayed);
}

// Graceful variant: SIGTERM is caught by a handler that sets the interrupt
// flag (the CLI arrangement); the child stops at cell granularity with the
// checkpoint flushed, and the parent resumes to completion.
TEST(ResilienceTest, SigtermStopsGracefullyAndResumeCompletes) {
  ExperimentConfig config;
  config.budget = 6;
  config.samples = 1;
  config.runs = 10;
  config.seed = 67;
  const InstanceFactory factory = tiny_factory();
  const std::vector<StrategyFactory> roster =
      slow_roster(std::chrono::milliseconds(2));
  const ExperimentResult uninterrupted =
      run_experiment(factory, roster, config);

  ExperimentConfig checkpointed = config;
  checkpointed.checkpoint_path = temp_path("accu_resil_sigterm.txt");
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    std::signal(SIGTERM, resilience_stop_handler);
    ExperimentConfig supervised = checkpointed;
    supervised.interrupt_flag = &g_resilience_stop;
    const ExperimentResult r = run_experiment(factory, roster, supervised);
    _exit(r.interrupted ? 42 : 0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  kill(pid, SIGTERM);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  // 42 = stopped mid-sweep; 0 = the sweep won the race and finished.
  // Either way the checkpoint must resume to the exact same aggregates.
  EXPECT_TRUE(WEXITSTATUS(status) == 42 || WEXITSTATUS(status) == 0)
      << "child exit status " << WEXITSTATUS(status);

  const ExperimentResult resumed =
      run_experiment(factory, roster, checkpointed);
  expect_identical_results(uninterrupted, resumed);
}

}  // namespace
}  // namespace accu
