// Tests for the dataset factory: cautious-user selection invariants, the
// §IV-A parameter protocol, Table I size matching, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "datasets/datasets.hpp"
#include "graph/algorithms.hpp"
#include "graph/io.hpp"

namespace accu::datasets {
namespace {

TEST(DatasetSpecTest, TableOneEntries) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "facebook");
  EXPECT_EQ(specs[0].paper_nodes, 4039u);
  EXPECT_EQ(specs[3].name, "dblp");
  EXPECT_EQ(specs[3].kind, "Collaboration");
  EXPECT_EQ(dataset_spec("twitter").paper_edges, 1768149u);
  EXPECT_THROW(dataset_spec("myspace"), InvalidArgument);
}

TEST(DatasetTopologyTest, MeanDegreeTracksPaperAtSmallScale) {
  // The substitution preserves mean degree at any scale; verify all four at
  // a bench-friendly scale.
  struct Case {
    const char* name;
    double mean_degree;
    double tolerance;
  };
  for (const Case c : {Case{"facebook", 43.7, 4.0},
                       Case{"slashdot", 23.4, 7.0},
                       Case{"twitter", 43.5, 4.0},
                       Case{"dblp", 6.6, 2.0}}) {
    util::Rng rng(11);
    const double scale = c.name == std::string("facebook") ? 0.5 : 0.03;
    const Graph g = make_topology(c.name, scale, rng);
    EXPECT_NEAR(graph::degree_stats(g).mean, c.mean_degree, c.tolerance)
        << c.name;
  }
}

TEST(DatasetTopologyTest, ScaleControlsNodeCount) {
  util::Rng rng(12);
  const Graph half = make_topology("facebook", 0.5, rng);
  EXPECT_NEAR(static_cast<double>(half.num_nodes()), 4039 * 0.5, 2.0);
  util::Rng rng2(12);
  const Graph tiny = make_topology("facebook", 1e-9, rng2);
  EXPECT_EQ(tiny.num_nodes(), 120u);  // clamped floor
  EXPECT_THROW(make_topology("facebook", 0.0, rng), InvalidArgument);
}

TEST(CautiousSelectionTest, RespectsDegreeWindowAndIndependence) {
  util::Rng grng(13);
  const Graph g = make_topology("facebook", 0.5, grng);
  util::Rng rng(14);
  const auto cautious = select_cautious_users(g, 60, 10, 100, rng);
  EXPECT_EQ(cautious.size(), 60u);
  EXPECT_TRUE(std::is_sorted(cautious.begin(), cautious.end()));
  for (const NodeId v : cautious) {
    EXPECT_GE(g.degree(v), 10u);
    EXPECT_LE(g.degree(v), 100u);
  }
  // Pairwise non-adjacent (paper: "no direct edges among them").
  for (std::size_t i = 0; i < cautious.size(); ++i) {
    for (std::size_t j = i + 1; j < cautious.size(); ++j) {
      EXPECT_FALSE(g.has_edge(cautious[i], cautious[j]));
    }
  }
}

TEST(CautiousSelectionTest, ShortfallWhenPoolSmall) {
  // A star: center degree 9, leaves degree 1 — window [5,100] admits only
  // the center.
  graph::GraphBuilder b(10);
  for (NodeId v = 1; v < 10; ++v) b.add_edge(0, v);
  const Graph g = b.build();
  util::Rng rng(15);
  const auto cautious = select_cautious_users(g, 5, 5, 100, rng);
  EXPECT_EQ(cautious.size(), 1u);
  EXPECT_EQ(cautious[0], 0u);
}

TEST(MakeDatasetTest, InstanceRespectsPaperProtocol) {
  util::Rng rng(16);
  DatasetConfig config;
  config.scale = 0.5;
  config.num_cautious = 40;
  config.cautious_friend_benefit = 50.0;
  config.threshold_fraction = 0.3;
  const AccuInstance instance = make_dataset("facebook", config, rng);

  EXPECT_EQ(instance.num_cautious(), 40u);
  std::uint32_t checked = 0;
  for (const NodeId v : instance.cautious_users()) {
    // θ_v = max(1, round(0.3 · deg(v))), clamped to deg(v).
    const auto deg = instance.graph().degree(v);
    const auto expected = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::round(0.3 * deg)), 1, deg);
    EXPECT_EQ(instance.threshold(v), expected);
    EXPECT_DOUBLE_EQ(instance.benefits().friend_benefit(v), 50.0);
    EXPECT_DOUBLE_EQ(instance.benefits().fof_benefit(v), 1.0);
    ++checked;
  }
  EXPECT_EQ(checked, 40u);
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    if (instance.is_cautious(u)) continue;
    EXPECT_DOUBLE_EQ(instance.benefits().friend_benefit(u), 2.0);
    EXPECT_GE(instance.accept_prob(u), 0.0);
    EXPECT_LT(instance.accept_prob(u), 1.0);
  }
  // Edge probabilities are uniform [0,1): spot-check the range and spread.
  const Graph& g = instance.graph();
  double sum = 0.0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_GE(g.edge_prob(e), 0.0);
    ASSERT_LT(g.edge_prob(e), 1.0);
    sum += g.edge_prob(e);
  }
  EXPECT_NEAR(sum / g.num_edges(), 0.5, 0.02);
}

TEST(MakeDatasetTest, DeterministicGivenSeed) {
  DatasetConfig config;
  config.scale = 0.2;
  config.num_cautious = 20;
  util::Rng a(99), b(99), c(100);
  const AccuInstance ia = make_dataset("facebook", config, a);
  const AccuInstance ib = make_dataset("facebook", config, b);
  const AccuInstance ic = make_dataset("facebook", config, c);
  EXPECT_EQ(ia.num_nodes(), ib.num_nodes());
  EXPECT_EQ(ia.graph().num_edges(), ib.graph().num_edges());
  EXPECT_EQ(ia.cautious_users(), ib.cautious_users());
  EXPECT_TRUE(ia.cautious_users() != ic.cautious_users() ||
              ia.graph().num_edges() != ic.graph().num_edges());
}

TEST(MakeDatasetTest, FromEdgeListAppliesProtocol) {
  // Write a small snapshot, ingest it, and check the §IV-A pipeline ran.
  util::Rng grng(31);
  const Graph topology = make_topology("facebook", 0.1, grng);
  const std::string path = testing::TempDir() + "accu_snap_test.edges";
  graph::write_edge_list_file(topology, path);

  DatasetConfig config;
  config.num_cautious = 12;
  util::Rng rng(32);
  const AccuInstance instance =
      make_dataset_from_edge_list(path, config, rng);
  EXPECT_EQ(instance.num_nodes(), topology.num_nodes());
  EXPECT_EQ(instance.graph().num_edges(), topology.num_edges());
  EXPECT_EQ(instance.num_cautious(), 12u);
  // Probabilities were re-drawn uniformly (the file had p = 1 everywhere).
  double sum = 0.0;
  for (graph::EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    ASSERT_LT(instance.graph().edge_prob(e), 1.0);
    sum += instance.graph().edge_prob(e);
  }
  EXPECT_NEAR(sum / instance.graph().num_edges(), 0.5, 0.05);
  EXPECT_THROW(make_dataset_from_edge_list("/nonexistent.edges", config, rng),
               IoError);
}

TEST(MakeDatasetTest, AllFourDatasetsValidate) {
  // AccuInstance's constructor enforces the model assumptions; building
  // every dataset exercises them end to end.
  DatasetConfig config;
  config.num_cautious = 25;
  for (const DatasetSpec& spec : paper_datasets()) {
    util::Rng rng(17);
    config.scale = spec.name == "facebook" ? 0.3 : 0.02;
    const AccuInstance instance = make_dataset(spec.name, config, rng);
    EXPECT_GT(instance.num_cautious(), 0u) << spec.name;
    EXPECT_GT(instance.graph().num_edges(), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace accu::datasets
