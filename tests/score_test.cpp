// Property suite for the SoA score engine (core/score.hpp) — PR 4.
//
// Pins the flat kernels to the scalar reference in strategies/abm.cpp
// BIT-EXACTLY (EXPECT_EQ on doubles, no tolerances):
//
//   * ScorePackTest    — the per-instance pack: mirror involution,
//     slot-constant term numerators, cautious bitset/threshold columns,
//     uid-based identity.
//   * ScoreBatchTest   — score_batch vs AbmStrategy::potential across
//     random instances evolved request-by-request, all four population
//     mixes (all-reckless, sparse-cautious, dense-cautious, generalized
//     q1 > 0) and three weight settings.
//   * ScoreEngineTest  — the incremental delta caches vs a scalar rescan
//     at every step of full simulations, plus full-trace equality of the
//     incremental ABM against the reference mode.
//   * ScoreHeapTest    — the satellite-1 heap-hygiene regression: over a
//     long adversarial run the selection heap stays within the 4x-live
//     compaction bound instead of growing with the refresh count.
//
// Exact equality is feasible because a live potential term always carries
// the edge prior (see the invariant in core/score.hpp) and the kernels sum
// rows in the same CSR order as the scalar loops — identical operations in
// identical order produce identical doubles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/score.hpp"
#include "core/strategies/abm.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

// ---------------------------------------------------------------------------
// Instance factory: Holme–Kim small worlds with a configurable cautious
// population (greedily chosen to respect the no-cautious-edge assumption)
// and optional generalized q1 > 0 acceptance.
// ---------------------------------------------------------------------------

struct MixConfig {
  const char* label;
  NodeId n = 80;
  std::size_t max_cautious = 0;
  std::uint32_t theta = 2;
  double q1 = 0.0;  // > 0 switches to the generalized cautious model
  std::uint64_t seed = 1;
};

AccuInstance make_instance(const MixConfig& c) {
  util::Rng rng(c.seed);
  graph::GraphBuilder b = graph::holme_kim(c.n, 4, 0.35, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(c.n, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(c.n, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 0; v < c.n && cautious.size() < c.max_cautious; ++v) {
    if (g.degree(v) < c.theta + 1) continue;
    bool adjacent = false;
    for (const NodeId x : cautious) adjacent |= g.has_edge(v, x);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = c.theta;
    cautious.push_back(v);
  }
  std::vector<double> q(c.n);
  for (auto& x : q) x = rng.uniform();
  BenefitModel benefits = BenefitModel::paper_default(classes);
  if (c.q1 > 0.0) {
    GeneralizedCautiousParams params{std::vector<double>(c.n, c.q1),
                                     std::vector<double>(c.n, 1.0)};
    return AccuInstance(g, classes, q, thresholds, std::move(benefits),
                        std::move(params));
  }
  return AccuInstance(g, classes, q, thresholds, std::move(benefits));
}

const MixConfig kMixes[] = {
    {"all_reckless", 80, 0, 2, 0.0, 11},
    {"sparse_cautious", 80, 6, 2, 0.0, 22},
    {"dense_cautious", 80, 80, 2, 0.0, 33},
    {"generalized_q1", 80, 10, 2, 0.35, 44},
};

const PotentialWeights kWeightSettings[] = {{1.0, 0.0}, {0.5, 0.5}, {0.3, 0.7}};

bool resolve_acceptance(const AccuInstance& instance, const Realization& truth,
                        const AttackerView& view, NodeId target) {
  if (instance.is_cautious(target)) {
    const bool reached = view.cautious_would_accept(target);
    return reached ? truth.cautious_above_accepts(target)
                   : truth.cautious_below_accepts(target);
  }
  return truth.reckless_accepts(target);
}

/// Deterministic request sequence covering accepts, rejects, cautious and
/// reckless targets: walks a fixed stride over the unrequested population.
NodeId pick_target(const AttackerView& view, std::uint32_t step) {
  const NodeId n = view.instance().num_nodes();
  for (NodeId k = 0; k < n; ++k) {
    const NodeId u = static_cast<NodeId>((step * 13 + k * 7 + 3) % n);
    if (!view.is_requested(u)) return u;
  }
  return kInvalidNode;
}

AbmStrategy make_scalar(const PotentialWeights& weights) {
  AbmStrategy::Config config;
  config.weights = weights;
  config.incremental = false;
  return AbmStrategy(config);
}

// ---------------------------------------------------------------------------
// ScorePackTest
// ---------------------------------------------------------------------------

TEST(ScorePackTest, ColumnsAndSlotsMatchTheInstance) {
  for (const MixConfig& mix : kMixes) {
    const AccuInstance instance = make_instance(mix);
    const Graph& g = instance.graph();
    const BenefitModel& benefits = instance.benefits();
    ScorePack pack;
    pack.build(instance);
    ASSERT_TRUE(pack.built_for(instance)) << mix.label;
    ASSERT_EQ(pack.num_nodes(), instance.num_nodes()) << mix.label;
    ASSERT_EQ(pack.num_slots(), 2 * g.num_edges()) << mix.label;

    std::uint32_t slot = 0;
    for (NodeId u = 0; u < instance.num_nodes(); ++u) {
      EXPECT_EQ(pack.row_begin(u), slot) << mix.label << " node " << u;
      EXPECT_EQ(pack.is_cautious(u), instance.is_cautious(u)) << u;
      EXPECT_EQ(pack.friend_benefit(u), benefits.friend_benefit(u)) << u;
      EXPECT_EQ(pack.fof_benefit(u), benefits.fof_benefit(u)) << u;
      if (instance.is_cautious(u)) {
        EXPECT_EQ(pack.theta(u), instance.threshold(u)) << u;
        EXPECT_EQ(pack.q_below(u), instance.cautious_accept_prob(u, false))
            << u;
        EXPECT_EQ(pack.q_above(u), instance.cautious_accept_prob(u, true))
            << u;
      } else {
        EXPECT_EQ(pack.theta(u), 0u) << u;
        EXPECT_EQ(pack.q_reckless(u), instance.accept_prob(u)) << u;
      }
      for (const graph::Neighbor& nb : g.neighbors(u)) {
        EXPECT_EQ(pack.slot_node(slot), nb.node) << u;
        // Mirror involution: the reverse slot sits in nb.node's row, points
        // back at u, and mirrors back to this slot.
        const std::uint32_t m = pack.mirror(slot);
        EXPECT_EQ(pack.slot_node(m), u) << u;
        EXPECT_EQ(pack.mirror(m), slot) << u;
        EXPECT_GE(m, pack.row_begin(nb.node)) << u;
        // Slot-constant term numerators.
        const double prior = g.edge_prob(nb.edge);
        EXPECT_EQ(pack.d_init(slot), prior * benefits.fof_benefit(nb.node))
            << u;
        if (instance.is_cautious(nb.node)) {
          EXPECT_EQ(pack.i_gain(slot), prior * benefits.upgrade_gain(nb.node))
              << u;
          EXPECT_EQ(pack.slot_theta(slot), instance.threshold(nb.node)) << u;
        } else {
          EXPECT_EQ(pack.i_gain(slot), 0.0) << u;
        }
        ++slot;
      }
    }
    EXPECT_EQ(pack.row_begin(instance.num_nodes()), slot) << mix.label;
  }
}

TEST(ScorePackTest, IdentityTracksInstanceUidNotJustAddress) {
  const AccuInstance a = make_instance(kMixes[1]);
  ScorePack pack;
  pack.build(a);
  EXPECT_TRUE(pack.built_for(a));

  // A copy shares contents and uid, so the pack still describes it only at
  // the same address; a fresh construction (new uid) must be rejected even
  // if the allocator reuses the address.
  const AccuInstance b = make_instance(kMixes[2]);
  EXPECT_FALSE(pack.built_for(b));
  pack.build(b);
  EXPECT_FALSE(pack.built_for(a));
  EXPECT_TRUE(pack.built_for(b));
}

TEST(ScorePackTest, RebuildReusesWithoutShrinking) {
  ScorePack pack;
  const AccuInstance big = make_instance({"big", 120, 10, 2, 0.0, 5});
  const AccuInstance small = make_instance({"small", 40, 4, 2, 0.0, 6});
  pack.build(big);
  const std::uint32_t big_slots = pack.num_slots();
  pack.build(small);
  EXPECT_TRUE(pack.built_for(small));
  EXPECT_LT(pack.num_slots(), big_slots);
  pack.build(big);
  EXPECT_TRUE(pack.built_for(big));
  EXPECT_EQ(pack.num_slots(), big_slots);
}

// ---------------------------------------------------------------------------
// ScoreBatchTest — the stateless batched rescore vs the scalar potential.
// ---------------------------------------------------------------------------

TEST(ScoreBatchTest, MatchesScalarPotentialThroughEvolvingSimulations) {
  for (const MixConfig& mix : kMixes) {
    const AccuInstance instance = make_instance(mix);
    const NodeId n = instance.num_nodes();
    ScorePack pack;
    pack.build(instance);
    for (const PotentialWeights& weights : kWeightSettings) {
      const AbmStrategy scalar = make_scalar(weights);
      util::Rng truth_rng(mix.seed * 100 + 1);
      const Realization truth = Realization::sample(instance, truth_rng);
      AttackerView view(instance);
      std::vector<double> scores(n);
      for (std::uint32_t step = 0; step <= 50; ++step) {
        score_batch(pack, view, weights, 0, n, scores.data());
        for (NodeId u = 0; u < n; ++u) {
          const double expected =
              view.is_requested(u) ? 0.0 : scalar.potential(view, u);
          // Exact: same doubles, not approximately equal.
          EXPECT_EQ(scores[u], expected)
              << mix.label << " wD=" << weights.direct << " step " << step
              << " node " << u;
        }
        const NodeId target = pick_target(view, step);
        if (target == kInvalidNode) break;
        if (resolve_acceptance(instance, truth, view, target)) {
          view.record_acceptance(target, truth);
        } else {
          view.record_rejection(target);
        }
      }
    }
  }
}

TEST(ScoreBatchTest, SubRangeMatchesFullBatch) {
  const AccuInstance instance = make_instance(kMixes[3]);
  const NodeId n = instance.num_nodes();
  ScorePack pack;
  pack.build(instance);
  util::Rng truth_rng(9);
  const Realization truth = Realization::sample(instance, truth_rng);
  AttackerView view(instance);
  for (std::uint32_t step = 0; step < 10; ++step) {
    const NodeId target = pick_target(view, step);
    if (resolve_acceptance(instance, truth, view, target)) {
      view.record_acceptance(target, truth);
    } else {
      view.record_rejection(target);
    }
  }
  const PotentialWeights weights{0.5, 0.5};
  std::vector<double> full(n);
  score_batch(pack, view, weights, 0, n, full.data());
  const NodeId begin = n / 4, end = (3 * n) / 4;
  std::vector<double> part(end - begin);
  score_batch(pack, view, weights, begin, end, part.data());
  for (NodeId u = begin; u < end; ++u) {
    EXPECT_EQ(part[u - begin], full[u]) << u;
  }
}

// ---------------------------------------------------------------------------
// ScoreEngineTest — incremental caches vs scalar rescan at every step.
// ---------------------------------------------------------------------------

TEST(ScoreEngineTest, IncrementalScoresMatchScalarRescanAtEveryStep) {
  for (const MixConfig& mix : kMixes) {
    const AccuInstance instance = make_instance(mix);
    const NodeId n = instance.num_nodes();
    ScorePack pack;
    pack.build(instance);
    for (const PotentialWeights& weights : kWeightSettings) {
      const AbmStrategy scalar = make_scalar(weights);
      util::Rng truth_rng(mix.seed * 100 + 2);
      const Realization truth = Realization::sample(instance, truth_rng);
      AttackerView view(instance);
      ScoreEngine engine;
      engine.reset(pack, weights);
      for (std::uint32_t step = 0; step <= 60; ++step) {
        for (NodeId u = 0; u < n; ++u) {
          if (view.is_requested(u)) {
            EXPECT_TRUE(engine.is_requested(u)) << u;
            continue;
          }
          EXPECT_EQ(engine.score(u), scalar.potential(view, u))
              << mix.label << " wI=" << weights.indirect << " step " << step
              << " node " << u;
        }
        const NodeId target = pick_target(view, step);
        if (target == kInvalidNode) break;
        if (resolve_acceptance(instance, truth, view, target)) {
          const AttackerView::AcceptanceEffects effects =
              view.record_acceptance(target, truth);
          engine.apply_acceptance(target, effects);
        } else {
          view.record_rejection(target);
          engine.apply_rejection(target);
        }
        // Eager nodes (potential may have increased) are always live
        // candidates — requested nodes never need a re-push.
        for (const NodeId u : engine.pending_eager()) {
          EXPECT_FALSE(engine.is_requested(u)) << u;
        }
      }
    }
  }
}

TEST(ScoreEngineTest, ResetRearmsAfterAFullRun) {
  const AccuInstance instance = make_instance(kMixes[1]);
  const NodeId n = instance.num_nodes();
  ScorePack pack;
  pack.build(instance);
  const PotentialWeights weights{0.5, 0.5};
  const AbmStrategy scalar = make_scalar(weights);
  ScoreEngine engine;
  for (int round = 0; round < 2; ++round) {
    util::Rng truth_rng(40 + round);
    const Realization truth = Realization::sample(instance, truth_rng);
    AttackerView view(instance);
    engine.reset(pack, weights);
    for (std::uint32_t step = 0; step < 25; ++step) {
      const NodeId target = pick_target(view, step);
      if (resolve_acceptance(instance, truth, view, target)) {
        engine.apply_acceptance(target, view.record_acceptance(target, truth));
      } else {
        view.record_rejection(target);
        engine.apply_rejection(target);
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      if (view.is_requested(u)) continue;
      EXPECT_EQ(engine.score(u), scalar.potential(view, u))
          << "round " << round << " node " << u;
    }
  }
}

TEST(ScoreEngineTest, IncrementalAbmTraceEqualsReferenceMode) {
  // End-to-end: the ScoreEngine-backed policy must pick the same node as
  // the O(n·Σdeg) rescan policy at every round, over every mix.
  for (const MixConfig& mix : kMixes) {
    const AccuInstance instance = make_instance(mix);
    for (const PotentialWeights& weights : kWeightSettings) {
      AbmStrategy::Config reference_config;
      reference_config.weights = weights;
      reference_config.incremental = false;
      AbmStrategy incremental(weights.direct, weights.indirect);
      AbmStrategy reference(reference_config);
      util::Rng truth_rng(mix.seed * 100 + 3);
      const Realization truth = Realization::sample(instance, truth_rng);
      util::Rng rng_a(5), rng_b(5);
      const SimulationResult a =
          simulate(instance, truth, incremental, instance.num_nodes(), rng_a);
      const SimulationResult b =
          simulate(instance, truth, reference, instance.num_nodes(), rng_b);
      ASSERT_EQ(a.trace.size(), b.trace.size()) << mix.label;
      for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].target, b.trace[i].target)
            << mix.label << " wI=" << weights.indirect << " @" << i;
        EXPECT_EQ(a.trace[i].benefit_after, b.trace[i].benefit_after)
            << mix.label << " @" << i;
      }
      EXPECT_EQ(a.total_benefit, b.total_benefit) << mix.label;
    }
  }
}

// ---------------------------------------------------------------------------
// ScoreHeapTest — satellite 1: heap hygiene over long adversarial runs.
// ---------------------------------------------------------------------------

TEST(ScoreHeapTest, HeapStaysWithinCompactionBoundOnLongAdversarialRun) {
  // Generalized q1 > 0 with a dense cautious population maximizes eager
  // re-pushes (every mutual increase under θ re-scores neighbors; rejected
  // cautious targets purge P_I rows), which is what used to grow the heap
  // linearly with the refresh count.  The compaction bound must hold after
  // every selection, over a full exhaustion run.
  const AccuInstance instance = make_instance({"adversarial", 300, 300, 2,
                                               0.3, 77});
  const NodeId n = instance.num_nodes();
  util::Rng truth_rng(1);
  const Realization truth = Realization::sample(instance, truth_rng);
  AbmStrategy strategy(0.5, 0.5);
  util::Rng rng(2);
  strategy.reset(instance, rng);
  AttackerView view(instance);
  std::size_t max_heap = 0;
  std::uint32_t accepted_count = 0;
  for (std::uint32_t round = 0; round < n; ++round) {
    const NodeId target = strategy.select(view, rng);
    ASSERT_NE(target, kInvalidNode) << round;
    const std::size_t live = n - view.num_requests();
    EXPECT_LE(strategy.heap_size(), 4 * live + 16) << "round " << round;
    max_heap = std::max(max_heap, strategy.heap_size());
    if (resolve_acceptance(instance, truth, view, target)) {
      ++accepted_count;
      const AttackerView::AcceptanceEffects effects =
          view.record_acceptance(target, truth);
      strategy.observe(target, true, view, &effects);
    } else {
      view.record_rejection(target);
      strategy.observe(target, false, view, nullptr);
    }
  }
  EXPECT_EQ(view.num_requests(), n);
  // The run must actually exercise both event paths and the bound must be
  // a real constraint (a trivial run would never push past the seed size).
  EXPECT_GT(accepted_count, 0u);
  EXPECT_LT(accepted_count, n);
  EXPECT_GT(max_heap, static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace accu
