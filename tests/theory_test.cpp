// Tests for the theory toolkit: the Fig. 1 non-submodularity witness, the
// curvature discussion of §III-B, set-benefit semantics, the submodularity
// ratios (brute force vs Lemma 4/5 closed forms), and Theorem 1's bound
// checked against the exact optimal adaptive policy.

#include <gtest/gtest.h>

#include <cmath>

#include "core/strategies/abm.hpp"
#include "core/theory/exact.hpp"
#include "core/theory/ratios.hpp"
#include "core/theory/set_benefit.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

// ------------------------------------------------ Fig. 1 witness (§III-B) ----

/// The paper's two-user example: v0 = reckless with q = 1, v1 = cautious
/// with θ = 1, edge (v0,v1) certain, B_f(v1) > B_fof(v1) > 0.
AccuInstance fig1_instance() {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  const std::vector<UserClass> classes = {UserClass::kReckless,
                                          UserClass::kCautious};
  return AccuInstance(b.build(), classes, {1.0, 0.0}, {1, 1},
                      BenefitModel({2.0, 5.0}, {1.0, 1.0}));
}

TEST(NonSubmodularityTest, Fig1WitnessViolatesAdaptiveSubmodularity) {
  const AccuInstance instance = fig1_instance();
  const auto worlds = enumerate_realizations(instance);
  ASSERT_EQ(worlds.size(), 1u);  // fully deterministic

  // ω1 = ∅: the cautious user rejects in every realization.
  AttackerView before(instance);
  const double delta_before = exact_marginal_gain(before, 1, worlds);
  EXPECT_DOUBLE_EQ(delta_before, 0.0);

  // ω2: v0 accepted, the edge (v0,v1) observed ⇒ Δ = B_f − B_fof.
  AttackerView after(instance);
  after.record_acceptance(0, worlds[0].first);
  const double delta_after = exact_marginal_gain(after, 1, worlds);
  EXPECT_DOUBLE_EQ(delta_after, 4.0);

  // Δ(v1|ω2) > Δ(v1|ω1) with ω1 ⊆ ω2: adaptive submodularity fails, and
  // the total primal curvature of this pair is unbounded.
  EXPECT_GT(delta_after, delta_before);
  EXPECT_TRUE(std::isinf(total_primal_curvature(delta_after, delta_before)));
}

TEST(CurvatureTest, PaperNumericExample) {
  // §III-B: δ = 10, k = 20 gives a ratio of ≈ 0.095.
  EXPECT_NEAR(curvature_ratio(10.0, 20), 0.095, 5e-4);
}

TEST(CurvatureTest, DegeneratesWithUnboundedDelta) {
  EXPECT_LT(curvature_ratio(1e9, 20), 1e-6);
  EXPECT_DOUBLE_EQ(total_primal_curvature(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(total_primal_curvature(2.0, 4.0), 0.5);
}

TEST(Theorem1RatioTest, ClosedForm) {
  EXPECT_NEAR(theorem1_ratio(1.0, 20, 20), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(theorem1_ratio(0.5, 10, 20), 1.0 - std::exp(-0.25), 1e-12);
  EXPECT_DOUBLE_EQ(theorem1_ratio(0.0, 5, 5), 0.0);
}

// ------------------------------------------------------------ set benefit ----

AccuInstance path_instance() {
  // 0-1-2-3 path, node 2 cautious θ=2; benefits 3/1 uniform.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  return AccuInstance(b.build(), classes, {1.0, 1.0, 0.0, 1.0}, {1, 1, 2, 1},
                      BenefitModel::uniform(4, 3.0, 1.0));
}

TEST(SetBenefitTest, HandComputedValues) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {}), 0.0);
  // {1}: friend 1, FOF {0,2} ⇒ 3+1+1.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1}), 5.0);
  // {2}: cautious alone rejects ⇒ 0.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {2}), 0.0);
  // {1,3}: friends 1,3; FOF {0,2} ⇒ 3+3+1+1.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1, 3}), 8.0);
  // {1,2,3}: cautious 2 reaches θ=2 ⇒ friends {1,2,3}, FOF {0} ⇒ 9+1.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1, 2, 3}), 10.0);
  // Mask interface agrees.
  EXPECT_DOUBLE_EQ(set_benefit_mask(instance, truth, 0b1110), 10.0);
}

TEST(SetBenefitTest, RejectingCoinsSuppressFriends) {
  const AccuInstance instance = path_instance();
  // Node 1's coin rejects.
  const Realization truth(std::vector<bool>(3, true),
                          {true, false, true, true});
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1}), 0.0);
  // {1,3}: only 3 befriended ⇒ 3 + FOF 2 ⇒ 4; cautious 2 would need θ=2
  // but has only one friend-neighbor.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1, 2, 3}), 4.0);
}

TEST(SetBenefitTest, AbsentEdgesBlockCautiousAndFof) {
  const AccuInstance instance = path_instance();
  // Edge (1,2) absent.
  const Realization truth({true, false, true},
                          std::vector<bool>(4, true));
  // {1,3}: friends 1,3; FOF: 0 (via 1), 2 (via 3 only) ⇒ 3+3+1+1 = 8;
  // cautious 2 has mutual = 1 < 2 forever.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1, 2, 3}), 8.0);
}

class SetBenefitPropertyTest : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(SetBenefitPropertyTest, MonotoneInRequestSet) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::erdos_renyi(10, 0.3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(10, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(10, 1);
  for (NodeId v = 0; v < 10; ++v) {
    if (g.degree(v) >= 2) {
      classes[v] = UserClass::kCautious;
      thresholds[v] = 2;
      break;
    }
  }
  std::vector<double> q(10);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::uniform(10, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t small = rng() & 0x3FF;
    const std::uint64_t big = small | (rng() & 0x3FF);
    EXPECT_LE(set_benefit_mask(instance, truth, small),
              set_benefit_mask(instance, truth, big) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetBenefitPropertyTest,
                         testing::Values(51u, 52u, 53u, 54u));

// ------------------------------------------------------------------ ratios ----

TEST(SubmodularRatioTest, NoCautiousUsersGivesOne) {
  // Observation 1: with V_C = ∅ the benefit function is submodular.
  util::Rng rng(61);
  graph::GraphBuilder b = graph::erdos_renyi(8, 0.35, rng);
  const AccuInstance instance(b.build(), std::vector<UserClass>(8),
                              std::vector<double>(8, 1.0),
                              std::vector<std::uint32_t>(8, 1),
                              BenefitModel::uniform(8, 2.0, 1.0));
  const Realization truth = Realization::certain(instance);
  EXPECT_DOUBLE_EQ(realization_submodular_ratio(instance, truth), 1.0);
}

TEST(SubmodularRatioTest, PositiveUnderStrictGap) {
  // Corollary 1: B_f − B_fof > 0 everywhere ⇒ λ > 0 (and cautious users
  // push it strictly below 1).
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  const double lambda = realization_submodular_ratio(instance, truth);
  EXPECT_GT(lambda, 0.0);
  EXPECT_LT(lambda, 1.0);
}

TEST(SubmodularRatioTest, Lemma4DegreeOneClosedFormIsConservative) {
  // v_c (node 1, θ=1) hangs off node 0, which also has neighbor 2:
  // the paper's closed form gives B'(0)/(B_f(v_c)+B'(0)) = 1/6 with
  // B'(0) = B_f − B_fof = 1.  The true minimizing pair is S={2},
  // T={0, v_c} with ratio (B'(0) + B_fof(v_c)) / (B_f(v_c) + B'(0)) = 1/3 —
  // the lemma's numerator drops the B_fof(v_c) gain of v_c entering FOF,
  // so the closed form is a conservative (lower) estimate here.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  std::vector<UserClass> classes(3, UserClass::kReckless);
  classes[1] = UserClass::kCautious;
  const AccuInstance instance(b.build(), classes, {1.0, 0.0, 1.0}, {1, 1, 1},
                              BenefitModel({2.0, 5.0, 2.0}, {1.0, 1.0, 1.0}));
  const Realization truth = Realization::certain(instance);
  const double closed = lemma4_lambda(instance, truth);
  EXPECT_DOUBLE_EQ(closed, 1.0 / 6.0);  // the paper's arithmetic
  const double brute = realization_submodular_ratio(instance, truth);
  EXPECT_NEAR(brute, 1.0 / 3.0, 1e-12);  // hand-enumerated true minimum
  EXPECT_LE(closed, brute + 1e-12);
}

TEST(SubmodularRatioTest, Lemma4DegreeOneIsolatedNeighbor) {
  // When u has no other neighbor, B'(u) = B_f(u): closed form 2/7; the
  // brute-force minimum is (B_f(0)+B_fof(1))/(B_f(0)+B_f(1)) = 3/7 for the
  // same S=∅, T={0,1} pair (again the B_fof(v_c) term).
  graph::GraphBuilder b(2);
  b.add_edge(0, 1);
  std::vector<UserClass> classes = {UserClass::kReckless,
                                    UserClass::kCautious};
  const AccuInstance instance(b.build(), classes, {1.0, 0.0}, {1, 1},
                              BenefitModel({2.0, 5.0}, {1.0, 1.0}));
  const Realization truth = Realization::certain(instance);
  EXPECT_DOUBLE_EQ(lemma4_lambda(instance, truth), 2.0 / 7.0);
  EXPECT_NEAR(realization_submodular_ratio(instance, truth), 3.0 / 7.0,
              1e-12);
}

TEST(SubmodularRatioTest, Lemma4HigherDegreeTracksBruteForce) {
  // Star around cautious node 0 with θ = 2 and three reckless leaves that
  // are pairwise connected through extra reckless nodes.
  graph::GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 4);
  b.add_edge(2, 5);
  b.add_edge(3, 6);
  std::vector<UserClass> classes(7, UserClass::kReckless);
  classes[0] = UserClass::kCautious;
  const AccuInstance instance(
      b.build(), classes, {0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
      {2, 1, 1, 1, 1, 1, 1},
      BenefitModel::paper_default(classes, 2.0, 8.0, 1.0));
  const Realization truth = Realization::certain(instance);
  const double brute = realization_submodular_ratio(instance, truth);
  const double closed = lemma4_lambda(instance, truth);
  EXPECT_GT(brute, 0.0);
  // The lemma's closed form drops B_fof cross-terms from its candidate-pair
  // ratios, so it is an *estimate* of λ_φ rather than a one-sided bound
  // (it lands below the brute force on the degree-one instances above and
  // slightly above it here: 0.125 vs 1/9).  Pin it to a sanity band around
  // the exact value.
  EXPECT_GT(closed, 0.0);
  EXPECT_LE(closed, 1.0);
  EXPECT_GE(closed, 0.5 * brute);
  EXPECT_LE(closed, 2.0 * brute);
}

TEST(SubmodularRatioTest, IndependentCautiousComposition) {
  // Two cautious users (θ=1) with disjoint realized neighborhoods: the
  // paper's composition takes the minimum of the per-user Lemma 4 values.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);  // cautious 1 hangs off 0
  b.add_edge(0, 4);
  b.add_edge(2, 3);  // cautious 3 hangs off 2
  b.add_edge(2, 5);
  std::vector<UserClass> classes(6, UserClass::kReckless);
  classes[1] = classes[3] = UserClass::kCautious;
  const BenefitModel benefits({2.0, 5.0, 2.0, 9.0, 2.0, 2.0},
                              std::vector<double>(6, 1.0));
  const AccuInstance instance(b.build(), classes,
                              {1.0, 0.0, 1.0, 0.0, 1.0, 1.0},
                              {1, 1, 1, 1, 1, 1}, benefits);
  const Realization truth = Realization::certain(instance);
  // Per-user Lemma 4 (degree-one case, B'(u) = 1): 1/(5+1) and 1/(9+1).
  EXPECT_DOUBLE_EQ(independent_cautious_lambda(instance, truth), 0.1);
  // Brute force agrees on the ordering: the instance's true λ is driven by
  // the higher-benefit cautious user.
  const double brute = realization_submodular_ratio(instance, truth);
  EXPECT_GT(brute, 0.0);
  EXPECT_LT(brute, 1.0);
}

TEST(SubmodularRatioTest, IndependentCompositionRejectsSharedNeighbors) {
  // Both cautious users hang off the same reckless hub: the composition's
  // precondition fails and Lemma 5 is the right tool.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  std::vector<UserClass> classes = {UserClass::kReckless,
                                    UserClass::kCautious,
                                    UserClass::kCautious};
  const AccuInstance instance(b.build(), classes, {1.0, 0.0, 0.0}, {1, 1, 1},
                              BenefitModel({2.0, 5.0, 5.0}, {1.0, 1.0, 1.0}));
  const Realization truth = Realization::certain(instance);
  EXPECT_THROW(independent_cautious_lambda(instance, truth),
               InvalidArgument);
  EXPECT_GT(lemma5_upper_bound(instance, truth, 0), 0.0);
}

TEST(SubmodularRatioTest, IndependentCompositionNoCautiousIsOne) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  const AccuInstance instance(b.build(), std::vector<UserClass>(3),
                              std::vector<double>(3, 1.0),
                              std::vector<std::uint32_t>(3, 1),
                              BenefitModel::uniform(3, 2.0, 1.0));
  EXPECT_DOUBLE_EQ(
      independent_cautious_lambda(instance, Realization::certain(instance)),
      1.0);
}

TEST(SubmodularRatioTest, Lemma5BoundHolds) {
  // One reckless hub (node 0) shared by two cautious users 1, 2 (θ = 2),
  // each with a second reckless friend.
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 4);
  std::vector<UserClass> classes(5, UserClass::kReckless);
  classes[1] = classes[2] = UserClass::kCautious;
  const AccuInstance instance(
      b.build(), classes, {1.0, 0.0, 0.0, 1.0, 1.0}, {1, 2, 2, 1, 1},
      BenefitModel::paper_default(classes, 2.0, 10.0, 1.0));
  const Realization truth = Realization::certain(instance);
  const double bound = lemma5_upper_bound(instance, truth, 0);
  const double brute = realization_submodular_ratio(instance, truth);
  EXPECT_LE(brute, bound + 1e-12);
  // Hand value: B_f(0) / (Σ (B_f − B_fof) + B_f(0)) = 2 / (9+9+2) = 0.1.
  EXPECT_DOUBLE_EQ(bound, 0.1);
}

TEST(SubmodularRatioTest, AdaptiveRatioIsMinOverWorlds) {
  // Probabilistic edge turns the adaptive ratio into a minimum over worlds;
  // it can never exceed the certain world's ratio.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 1.0);
  std::vector<UserClass> classes(3, UserClass::kReckless);
  classes[1] = UserClass::kCautious;
  const AccuInstance instance(b.build(), classes, {1.0, 0.0, 1.0}, {1, 1, 1},
                              BenefitModel({2.0, 5.0, 2.0}, {1.0, 1.0, 1.0}));
  const double adaptive = adaptive_submodular_ratio(instance);
  const double certain = realization_submodular_ratio(
      instance, Realization::certain(instance));
  EXPECT_LE(adaptive, certain + 1e-12);
  EXPECT_GT(adaptive, 0.0);
}

// -------------------------------------------------- exact policies & bound ----

TEST(ExactPolicyTest, SingleRecklessNode) {
  graph::GraphBuilder b(1);
  const AccuInstance instance(b.build(), {UserClass::kReckless}, {0.5}, {1},
                              BenefitModel::uniform(1, 2.0, 1.0));
  const auto worlds = enumerate_realizations(instance);
  ASSERT_EQ(worlds.size(), 2u);
  const double value = exact_policy_value(
      instance, [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }, 1,
      worlds);
  EXPECT_DOUBLE_EQ(value, 1.0);  // 0.5 · B_f
  EXPECT_DOUBLE_EQ(optimal_adaptive_value(instance, 1, worlds), 1.0);
}

TEST(ExactPolicyTest, OptimalMonotoneInBudget) {
  const AccuInstance instance = path_instance();
  const auto worlds = enumerate_realizations(instance);
  double previous = 0.0;
  for (std::uint32_t k = 0; k <= 4; ++k) {
    const double value = optimal_adaptive_value(instance, k, worlds);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
  // Full budget on the deterministic path: befriend everyone ⇒ 4·3 = 12.
  EXPECT_DOUBLE_EQ(previous, 12.0);
}

TEST(ExactPolicyTest, NonAdaptiveOptimumOnDeterministicPath) {
  const AccuInstance instance = path_instance();
  const auto worlds = enumerate_realizations(instance);
  // Deterministic world: the best 2-set is {1,3} (benefit 8: two friends,
  // FOF 0 and 2); with k = 3 adding the cautious user 2 reaches θ ⇒ 10.
  EXPECT_DOUBLE_EQ(optimal_nonadaptive_value(instance, 2, worlds), 8.0);
  EXPECT_DOUBLE_EQ(optimal_nonadaptive_value(instance, 3, worlds), 10.0);
  EXPECT_DOUBLE_EQ(optimal_nonadaptive_value(instance, 0, worlds), 0.0);
  // Budget beyond n is clamped.
  EXPECT_DOUBLE_EQ(optimal_nonadaptive_value(instance, 9, worlds), 12.0);
}

TEST(ExactPolicyTest, AdaptivityGapOrdering) {
  // adaptive optimal >= non-adaptive optimal >= 0, and the adaptive greedy
  // sits in between the non-adaptive optimum is allowed to beat it or not —
  // only the optimal orderings are universal.
  util::Rng rng(77);
  graph::GraphBuilder b = graph::erdos_renyi(6, 0.4, rng);
  while (b.num_edges() < 4 || b.num_edges() > 7) {
    util::Rng retry(rng());
    b = graph::erdos_renyi(6, 0.4, retry);
  }
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<double> q(6);
  for (auto& x : q) x = 0.3 + 0.5 * rng.uniform();
  const AccuInstance instance(g, std::vector<UserClass>(6), q,
                              std::vector<std::uint32_t>(6, 1),
                              BenefitModel::uniform(6, 2.0, 1.0));
  const auto worlds = enumerate_realizations(instance, 14);
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    const double adaptive = optimal_adaptive_value(instance, k, worlds);
    const double nonadaptive =
        optimal_nonadaptive_value(instance, k, worlds);
    EXPECT_GE(adaptive + 1e-9, nonadaptive) << "k=" << k;
    EXPECT_GE(nonadaptive, 0.0);
  }
}

TEST(ExactPolicyTest, OptimalBeatsEveryFixedScript) {
  const AccuInstance instance = path_instance();
  const auto worlds = enumerate_realizations(instance);
  const double opt = optimal_adaptive_value(instance, 2, worlds);
  const double greedy = exact_policy_value(
      instance, [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }, 2,
      worlds);
  EXPECT_GE(opt + 1e-12, greedy);
}

/// Theorem 1 on random enumerable instances: the exact adaptive greedy
/// achieves at least (1 − e^{−λ}) of the exact optimal adaptive value when
/// every user has a strict benefit gap.
class Theorem1Test : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Test, GreedyWithinBoundOfOptimal) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::erdos_renyi(6, 0.4, rng);
  while (b.num_edges() < 3 || b.num_edges() > 8) {
    util::Rng retry(rng());
    b = graph::erdos_renyi(6, 0.4, retry);
  }
  const Graph g = b.build();
  std::vector<UserClass> classes(6, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(6, 1);
  for (NodeId v = 0; v < 6; ++v) {
    if (g.degree(v) >= 2) {
      classes[v] = UserClass::kCautious;
      thresholds[v] = 2;
      break;
    }
  }
  // Keep the world count small: two free coins, everything else certain.
  std::vector<double> q(6, 1.0);
  std::uint32_t free_coins = 0;
  for (NodeId v = 0; v < 6 && free_coins < 2; ++v) {
    if (classes[v] == UserClass::kReckless) {
      q[v] = 0.3 + 0.4 * rng.uniform();
      ++free_coins;
    }
  }
  for (NodeId v = 0; v < 6; ++v) {
    if (classes[v] == UserClass::kCautious) q[v] = 0.0;
  }
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::paper_default(classes, 2.0, 9.0,
                                                          1.0));
  const auto worlds = enumerate_realizations(instance, 12);
  const double lambda = adaptive_submodular_ratio(instance, 12);
  ASSERT_GT(lambda, 0.0);  // Corollary 1 (strict gaps everywhere)

  for (const std::uint32_t k : {2u, 3u, 4u}) {
    const double opt = optimal_adaptive_value(instance, k, worlds);
    const double greedy = exact_policy_value(
        instance, [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }, k,
        worlds);
    EXPECT_LE(greedy, opt + 1e-9);
    EXPECT_GE(greedy + 1e-9, theorem1_ratio(lambda, k, k) * opt)
        << "k=" << k << " lambda=" << lambda;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test,
                         testing::Values(71u, 72u, 73u, 74u, 75u, 76u));

// Lemma 2 flavour: two different interleavings of the same request set give
// the same benefit when cautious users are requested only after their
// thresholds are met.
TEST(CommutativityTest, SensibleOrdersAgree) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  // Orders: (1,3,2,0) and (3,0,1,2) both reach θ(2)=2 before requesting 2.
  EXPECT_DOUBLE_EQ(set_benefit(instance, truth, {1, 3, 2, 0}),
                   set_benefit(instance, truth, {3, 0, 1, 2}));
}

}  // namespace
}  // namespace accu
