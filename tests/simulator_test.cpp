// Tests for the adaptive simulator: acceptance resolution for both user
// classes, budget accounting, trace bookkeeping (telescoping marginals),
// early stopping, and randomized cross-checks of the final benefit against
// the set-function reference.

#include <gtest/gtest.h>

#include <numeric>

#include "core/simulator.hpp"
#include "core/strategies/baselines.hpp"
#include "core/theory/set_benefit.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Scripted policy: requests a fixed sequence of nodes.
class ScriptedStrategy final : public Strategy {
 public:
  explicit ScriptedStrategy(std::vector<NodeId> script)
      : script_(std::move(script)) {}

  void reset(const AccuInstance&, util::Rng&) override { cursor_ = 0; }

  NodeId select(const AttackerView& view, util::Rng&) override {
    while (cursor_ < script_.size() && view.is_requested(script_[cursor_])) {
      ++cursor_;
    }
    return cursor_ < script_.size() ? script_[cursor_++] : kInvalidNode;
  }

  [[nodiscard]] std::string name() const override { return "Scripted"; }

 private:
  std::vector<NodeId> script_;
  std::size_t cursor_ = 0;
};

/// Path 0-1-2-3 where node 2 is cautious with θ=2; benefits 3/1.
AccuInstance path_instance() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  return AccuInstance(b.build(), classes, {1.0, 1.0, 0.0, 1.0}, {1, 1, 2, 1},
                      BenefitModel::uniform(4, 3.0, 1.0));
}

TEST(SimulatorTest, RecklessAcceptanceFollowsCoins) {
  const AccuInstance instance = path_instance();
  // Coins: 0 accepts, 1 rejects, 3 accepts.
  const Realization truth(std::vector<bool>(3, true),
                          {true, false, true, true});
  ScriptedStrategy strategy({0, 1, 3});
  util::Rng rng(1);
  const SimulationResult result = simulate(instance, truth, strategy, 3, rng);
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_TRUE(result.trace[0].accepted);
  EXPECT_FALSE(result.trace[1].accepted);
  EXPECT_TRUE(result.trace[2].accepted);
  EXPECT_EQ(result.num_accepted, 2u);
  EXPECT_EQ(result.friends, (std::vector<NodeId>{0, 3}));
}

TEST(SimulatorTest, CautiousAcceptanceIsThresholdDeterministic) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  util::Rng rng(2);
  {
    // Request 2 before any mutual friends: rejected.
    ScriptedStrategy early({2, 1, 3});
    const SimulationResult r = simulate(instance, truth, early, 3, rng);
    EXPECT_FALSE(r.trace[0].accepted);
    EXPECT_TRUE(r.trace[0].cautious_target);
    EXPECT_EQ(r.num_cautious_friends, 0u);
  }
  {
    // Befriend both neighbors (1 and 3) first: threshold 2 reached.
    ScriptedStrategy late({1, 3, 2});
    const SimulationResult r = simulate(instance, truth, late, 3, rng);
    EXPECT_TRUE(r.trace[2].accepted);
    EXPECT_EQ(r.num_cautious_friends, 1u);
  }
  {
    // Only one neighbor: still below threshold.
    ScriptedStrategy one({1, 2});
    const SimulationResult r = simulate(instance, truth, one, 2, rng);
    EXPECT_FALSE(r.trace[1].accepted);
  }
}

TEST(SimulatorTest, BudgetIsRespected) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  ScriptedStrategy strategy({0, 1, 2, 3});
  util::Rng rng(3);
  const SimulationResult result = simulate(instance, truth, strategy, 2, rng);
  EXPECT_EQ(result.trace.size(), 2u);
}

TEST(SimulatorTest, StopsWhenStrategyExhausted) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  ScriptedStrategy strategy({0});
  util::Rng rng(4);
  const SimulationResult result =
      simulate(instance, truth, strategy, 10, rng);
  EXPECT_EQ(result.trace.size(), 1u);
}

TEST(SimulatorTest, MarginalsTelescopeToTotal) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  ScriptedStrategy strategy({1, 3, 2, 0});
  util::Rng rng(5);
  const SimulationResult result =
      simulate(instance, truth, strategy, 4, rng);
  double sum = 0.0;
  for (const RequestRecord& r : result.trace) sum += r.marginal();
  EXPECT_DOUBLE_EQ(sum, result.total_benefit);
  // Consecutive records chain exactly.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].benefit_before,
                     result.trace[i - 1].benefit_after);
  }
}

TEST(SimulatorTest, KnownBenefitOnPath) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  // Friends 1 and 3 ⇒ FOF {0, 2}: benefit 3+3+1+1 = 8; then 2 accepts:
  // +3 −1 ⇒ 10; plus 0 upgrades from FOF to friend: +3 −1 ⇒ 12.
  ScriptedStrategy strategy({1, 3, 2, 0});
  util::Rng rng(6);
  const SimulationResult result =
      simulate(instance, truth, strategy, 4, rng);
  EXPECT_DOUBLE_EQ(result.total_benefit, 12.0);
  EXPECT_DOUBLE_EQ(result.trace[0].marginal(), 5.0);  // friend 1 + FOF 0,2
  EXPECT_DOUBLE_EQ(result.trace[1].marginal(), 3.0);  // friend 3, 2 already FOF
  EXPECT_DOUBLE_EQ(result.trace[2].marginal(), 2.0);  // upgrade cautious 2
  EXPECT_DOUBLE_EQ(result.trace[3].marginal(), 2.0);  // upgrade 0
}

TEST(SimulatorTest, ViewOutExposesFinalState) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  ScriptedStrategy strategy({1, 3});
  util::Rng rng(7);
  AttackerView view(instance);
  const SimulationResult result =
      simulate_with_view(instance, truth, strategy, 2, rng, view);
  EXPECT_TRUE(view.is_friend(1));
  EXPECT_TRUE(view.is_fof(2));
  EXPECT_DOUBLE_EQ(view.current_benefit(), result.total_benefit);
}

// Property: for any request order, the sequential simulation in which the
// cautious users are requested *after* the reckless ones yields exactly the
// set-function benefit of the requested set (the semantics Lemma 2 relies
// on); and every simulated benefit is within the set-function value of the
// same request set when cautious ordering already respects thresholds.
class SimulatorPropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorPropertyTest, SequentialMatchesSetSemanticsRecklessFirst) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::erdos_renyi(30, 0.15, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(30, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(30, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 0; v < 30 && cautious.size() < 3; ++v) {
    if (g.degree(v) < 2) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 1 + (v % 2);
    cautious.push_back(v);
  }
  std::vector<double> q(30);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::uniform(30, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);

  // Random subset, reckless first then cautious.
  std::vector<NodeId> requested;
  for (NodeId v = 0; v < 30; ++v) {
    if (rng.bernoulli(0.4)) requested.push_back(v);
  }
  std::stable_sort(requested.begin(), requested.end(),
                   [&](NodeId a2, NodeId b2) {
                     return !instance.is_cautious(a2) &&
                            instance.is_cautious(b2);
                   });
  ScriptedStrategy strategy(requested);
  util::Rng srng(GetParam() + 1000);
  const SimulationResult result = simulate(
      instance, truth, strategy,
      static_cast<std::uint32_t>(requested.size()), srng);
  EXPECT_NEAR(result.total_benefit, set_benefit(instance, truth, requested),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace accu
