// Tests for the clairvoyant oracle strategy, the Monte Carlo estimators,
// the observed-graph export, and the parallel experiment runner.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "core/strategies/oracle.hpp"
#include "core/theory/estimator.hpp"
#include "core/theory/exact.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

AccuInstance random_instance(std::uint64_t seed, NodeId n = 50) {
  util::Rng rng(seed);
  graph::GraphBuilder b = graph::barabasi_albert(n, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(n, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(n, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 5; v < n && cautious.size() < 4; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(n);
  for (auto& x : q) x = rng.uniform();
  return AccuInstance(g, classes, q, thresholds,
                      BenefitModel::paper_default(classes));
}

// ------------------------------------------------------------ oracle ----

TEST(ClairvoyantTest, NeverWastesARequest) {
  const AccuInstance instance = random_instance(1);
  util::Rng rng(2);
  const Realization truth = Realization::sample(instance, rng);
  ClairvoyantGreedyStrategy oracle(truth);
  util::Rng srng(3);
  const SimulationResult result =
      simulate(instance, truth, oracle, 20, srng);
  // As long as some accepting user remains, the oracle's pick accepts.
  for (const RequestRecord& r : result.trace) {
    if (r.marginal() > 0.0) EXPECT_TRUE(r.accepted);
  }
  EXPECT_GT(result.num_accepted, 0u);
}

TEST(ClairvoyantTest, DominatesAdaptivePoliciesPerRealization) {
  // Greedy-on-truth beats greedy-on-beliefs at every prefix in expectation;
  // check the totals across several paired runs.
  double oracle_total = 0.0, abm_total = 0.0;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const AccuInstance instance = random_instance(seed);
    util::Rng rng(seed * 7);
    const Realization truth = Realization::sample(instance, rng);
    ClairvoyantGreedyStrategy oracle(truth);
    AbmStrategy abm = make_classic_greedy();
    util::Rng r1(1), r2(1);
    oracle_total += simulate(instance, truth, oracle, 15, r1).total_benefit;
    abm_total += simulate(instance, truth, abm, 15, r2).total_benefit;
  }
  EXPECT_GE(oracle_total, abm_total);
}

TEST(ClairvoyantTest, RealizedGainMatchesSimulatedMarginal) {
  const AccuInstance instance = random_instance(20);
  util::Rng rng(21);
  const Realization truth = Realization::sample(instance, rng);
  ClairvoyantGreedyStrategy oracle(truth);
  util::Rng srng(22);
  AttackerView view(instance);
  const SimulationResult result =
      simulate_with_view(instance, truth, oracle, 10, srng, view);
  // Replay: each record's marginal equals realized_gain evaluated just
  // before the request.
  AttackerView replay(instance);
  oracle.reset(instance, srng);
  for (const RequestRecord& r : result.trace) {
    EXPECT_NEAR(oracle.realized_gain(replay, r.target), r.marginal(), 1e-9);
    if (r.accepted) {
      replay.record_acceptance(r.target, truth);
    } else {
      replay.record_rejection(r.target);
    }
  }
}

// --------------------------------------------------------- estimators ----

TEST(EstimatorTest, MarginalGainMatchesExactOnSmallInstance) {
  util::Rng rng(30);
  graph::GraphBuilder b = graph::erdos_renyi(7, 0.35, rng);
  while (b.num_edges() < 4 || b.num_edges() > 8) {
    util::Rng retry(rng());
    b = graph::erdos_renyi(7, 0.35, retry);
  }
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(7, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(7, 1);
  std::vector<double> q(7, 1.0);
  q[1] = 0.5;
  q[2] = 0.25;
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::uniform(7, 2.0, 1.0));
  const auto worlds = enumerate_realizations(instance, 12);
  AttackerView view(instance);
  util::Rng mc(31);
  for (NodeId u = 0; u < 4; ++u) {
    const double exact = exact_marginal_gain(view, u, worlds);
    const double sampled = sampled_marginal_gain(view, u, 40000, mc);
    EXPECT_NEAR(sampled, exact, 0.05 * (exact + 0.2)) << "node " << u;
  }
}

TEST(EstimatorTest, MarginalGainMatchesAbmSurrogateAtScale) {
  // Δ(u|ω) = q(u)·P_D(u) must hold on large instances too; the sampler is
  // the independent witness there.
  const AccuInstance instance = random_instance(40, 120);
  util::Rng rng(41);
  const Realization truth = Realization::sample(instance, rng);
  AttackerView view(instance);
  for (NodeId v = 0; v < 6; ++v) view.record_acceptance(v, truth);
  util::Rng mc(42);
  for (NodeId u = 10; u < 16; ++u) {
    if (view.is_requested(u)) continue;
    const double surrogate = AbmStrategy::effective_accept_prob(view, u) *
                             AbmStrategy::direct_gain(view, u);
    const double sampled = sampled_marginal_gain(view, u, 60000, mc);
    EXPECT_NEAR(sampled, surrogate, 0.05 * (surrogate + 0.2))
        << "node " << u;
  }
}

TEST(EstimatorTest, PolicyValueMatchesExactOnSmallInstance) {
  util::Rng rng(50);
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 0.5);
  const AccuInstance instance(b.build(), std::vector<UserClass>(4),
                              {0.5, 1.0, 0.5, 1.0},
                              std::vector<std::uint32_t>(4, 1),
                              BenefitModel::uniform(4, 2.0, 1.0));
  const auto worlds = enumerate_realizations(instance);
  const auto make = [] { return std::make_unique<AbmStrategy>(1.0, 0.0); };
  const double exact = exact_policy_value(instance, make, 2, worlds);
  util::Rng mc(51);
  const double sampled =
      sampled_policy_value(instance, make, 2, 30000, mc);
  EXPECT_NEAR(sampled, exact, 0.05 * exact);
}

// ------------------------------------------------------ observed graph ----

TEST(ObservedGraphTest, ContainsExactlyPresentObservedEdges) {
  const AccuInstance instance = random_instance(60);
  util::Rng rng(61);
  const Realization truth = Realization::sample(instance, rng);
  AttackerView view(instance);
  EXPECT_EQ(observed_graph(view).num_edges(), 0u);
  view.record_acceptance(0, truth);
  view.record_acceptance(1, truth);
  const Graph known = observed_graph(view);
  EXPECT_EQ(known.num_nodes(), instance.num_nodes());
  const Graph& g = instance.graph();
  std::size_t expected = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const bool present_known = view.edge_state(e) == EdgeState::kPresent;
    expected += present_known;
    const graph::EdgeEndpoints ep = g.endpoints(e);
    EXPECT_EQ(known.has_edge(ep.lo, ep.hi), present_known);
  }
  EXPECT_EQ(known.num_edges(), expected);
  EXPECT_EQ(view.num_observed_edges(),
            static_cast<std::size_t>(g.degree(0)) + g.degree(1) -
                (g.has_edge(0, 1) ? 1 : 0));
}

// ----------------------------------------------------- parallel runner ----

TEST(ParallelExperimentTest, ThreadCountDoesNotChangeResults) {
  const InstanceFactory factory = [](std::uint32_t sample,
                                     std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.06;
    config.num_cautious = 10;
    return datasets::make_dataset("facebook", config, rng);
  };
  const std::vector<StrategyFactory> strategies = {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
  ExperimentConfig config;
  config.budget = 15;
  config.samples = 2;
  config.runs = 4;
  config.seed = 99;
  config.threads = 1;
  const ExperimentResult sequential =
      run_experiment(factory, strategies, config);
  config.threads = 4;
  const ExperimentResult parallel =
      run_experiment(factory, strategies, config);
  for (const char* name : {"ABM", "Random"}) {
    EXPECT_DOUBLE_EQ(sequential.by_name(name).total_benefit().mean(),
                     parallel.by_name(name).total_benefit().mean());
    EXPECT_DOUBLE_EQ(sequential.by_name(name).total_benefit().max(),
                     parallel.by_name(name).total_benefit().max());
    for (std::size_t i = 0; i < config.budget; ++i) {
      EXPECT_DOUBLE_EQ(
          sequential.by_name(name).cumulative_benefit().at(i).mean(),
          parallel.by_name(name).cumulative_benefit().at(i).mean());
    }
  }
}

TEST(ParallelExperimentTest, HardwareThreadsOption) {
  const InstanceFactory factory = [](std::uint32_t, std::uint64_t seed) {
    util::Rng rng(seed);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 5;
    return datasets::make_dataset("facebook", config, rng);
  };
  const std::vector<StrategyFactory> strategies = {
      {"Random", [] { return std::make_unique<RandomStrategy>(); }}};
  ExperimentConfig config;
  config.budget = 10;
  config.samples = 1;
  config.runs = 2;
  config.threads = 0;  // auto
  const ExperimentResult result =
      run_experiment(factory, strategies, config);
  EXPECT_EQ(result.by_name("Random").total_benefit().count(), 2u);
}

}  // namespace
}  // namespace accu
