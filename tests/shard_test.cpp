// Tests for sharded sweep execution and the shard-merge path: N shard
// checkpoints (including empty shards, torn tails, and a shard SIGKILLed
// mid-run) must merge into aggregates bit-identical to the unsharded
// sequential sweep, mismatched shard files must be rejected, and
// TraceAggregator::merge must be exact for unequal series lengths and
// zero-count inputs.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"

namespace accu {
namespace {

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 8;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> two_strategies() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.budget = 20;
  config.samples = 2;
  config.runs = 3;
  config.seed = 31;
  config.faults = FaultConfig::uniform(0.2);
  config.retry = util::RetryPolicy::exponential_jitter(2);
  return config;
}

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

/// Exact equality of two aggregators — the merge guarantee is bit-identity
/// with the sequential accumulation, not closeness.
void expect_identical_aggregates(const TraceAggregator& x,
                                 const TraceAggregator& y) {
  EXPECT_EQ(x.total_benefit().count(), y.total_benefit().count());
  EXPECT_EQ(x.total_benefit().mean(), y.total_benefit().mean());
  EXPECT_EQ(x.total_benefit().variance(), y.total_benefit().variance());
  EXPECT_EQ(x.cautious_friends().mean(), y.cautious_friends().mean());
  EXPECT_EQ(x.accepted_requests().mean(), y.accepted_requests().mean());
  EXPECT_EQ(x.faulted_requests().mean(), y.faulted_requests().mean());
  EXPECT_EQ(x.retries().mean(), y.retries().mean());
  EXPECT_EQ(x.suspended_rounds().mean(), y.suspended_rounds().mean());
  EXPECT_EQ(x.abandoned_targets().mean(), y.abandoned_targets().mean());
  ASSERT_EQ(x.cumulative_benefit().length(), y.cumulative_benefit().length());
  for (std::size_t i = 0; i < x.cumulative_benefit().length(); ++i) {
    EXPECT_EQ(x.cumulative_benefit().at(i).count(),
              y.cumulative_benefit().at(i).count())
        << "index " << i;
    EXPECT_EQ(x.cumulative_benefit().at(i).mean(),
              y.cumulative_benefit().at(i).mean())
        << "index " << i;
    EXPECT_EQ(x.marginal().at(i).mean(), y.marginal().at(i).mean());
    EXPECT_EQ(x.marginal_cautious().at(i).mean(),
              y.marginal_cautious().at(i).mean());
    EXPECT_EQ(x.marginal_reckless().at(i).mean(),
              y.marginal_reckless().at(i).mean());
    EXPECT_EQ(x.cautious_fraction().at(i).mean(),
              y.cautious_fraction().at(i).mean());
  }
}

void expect_identical_results(const ExperimentResult& a,
                              const ExperimentResult& b) {
  ASSERT_EQ(a.strategy_names, b.strategy_names);
  for (std::size_t s = 0; s < a.aggregates.size(); ++s) {
    SCOPED_TRACE(a.strategy_names[s]);
    expect_identical_aggregates(a.aggregates[s], b.aggregates[s]);
  }
}

/// Runs the sweep split into `shard_count` shards (each with its own
/// checkpoint file) and returns the per-shard checkpoint paths.
std::vector<std::string> run_shards(const ExperimentConfig& plain,
                                    std::uint32_t shard_count,
                                    const std::string& tag) {
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ExperimentConfig shard = plain;
    shard.shard_index = i;
    shard.shard_count = shard_count;
    shard.checkpoint_path =
        temp_path(tag + "_s" + std::to_string(i) + ".txt");
    (void)run_experiment(tiny_factory(), two_strategies(), shard);
    paths.push_back(shard.checkpoint_path);
  }
  return paths;
}

// The tentpole property: for shard counts {1, 2, 3, 7}, running every shard
// separately and merging the checkpoints reproduces the unsharded
// sequential sweep exactly.  With a 2×3 grid, 7 shards means shard 6 owns
// no cells — an empty shard file must merge cleanly.
TEST(ShardTest, ShardedSweepsMergeBitIdenticallyToSequential) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult sequential =
      run_experiment(tiny_factory(), two_strategies(), plain);
  for (const std::uint32_t shard_count : {1u, 2u, 3u, 7u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
    const std::vector<std::string> paths = run_shards(
        plain, shard_count, "accu_shard_n" + std::to_string(shard_count));
    const ShardMergeOutcome merged = merge_shard_checkpoints(paths);
    EXPECT_EQ(merged.cells_merged,
              static_cast<std::size_t>(plain.samples) * plain.runs);
    EXPECT_EQ(merged.cells_missing, 0u);
    EXPECT_EQ(merged.duplicate_cells, 0u);
    expect_identical_results(sequential, merged.result);
    EXPECT_EQ(merged.config.seed, plain.seed);
    EXPECT_EQ(merged.config.budget, plain.budget);
  }
}

TEST(ShardTest, EveryShardOwnsADisjointCoveringSliceOfTheGrid) {
  const ExperimentConfig plain = base_config();
  const std::vector<std::string> paths = run_shards(plain, 3, "accu_cover");
  // Count `begin` blocks per file; together they tile the 6-cell grid.
  std::vector<bool> seen(static_cast<std::size_t>(plain.samples) * plain.runs,
                         false);
  for (const std::string& path : paths) {
    std::istringstream lines(read_file(path));
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("begin ", 0) != 0) continue;
      const std::size_t task = std::stoul(line.substr(6));
      ASSERT_LT(task, seen.size());
      EXPECT_FALSE(seen[task]) << "task " << task << " owned twice";
      seen[task] = true;
    }
  }
  for (std::size_t task = 0; task < seen.size(); ++task) {
    EXPECT_TRUE(seen[task]) << "task " << task << " owned by no shard";
  }
}

TEST(ShardTest, ShardIdentityIsRecordedAndMismatchedResumeIsRejected) {
  ExperimentConfig config = base_config();
  config.shard_index = 1;
  config.shard_count = 3;
  config.checkpoint_path = temp_path("accu_shard_identity.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_NE(read_file(config.checkpoint_path).find("\nshard 1 3\n"),
            std::string::npos);

  // Resuming the same file as a different shard — or unsharded — must be
  // rejected: the file's cells would silently stand in for cells the new
  // shard never owned.
  config.shard_index = 2;
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               IoError);
  config.shard_index = 0;
  config.shard_count = 1;
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               IoError);
}

TEST(ShardTest, InvalidShardConfigIsRejected) {
  ExperimentConfig config = base_config();
  config.shard_count = 0;
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               InvalidArgument);
  config.shard_count = 2;
  config.shard_index = 2;
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               InvalidArgument);
}

TEST(ShardTest, ParseShardSpecAcceptsValidAndRejectsMalformed) {
  EXPECT_EQ(parse_shard_spec("0/4"), (std::pair<std::uint32_t,
                                                std::uint32_t>{0, 4}));
  EXPECT_EQ(parse_shard_spec("2/3"), (std::pair<std::uint32_t,
                                                std::uint32_t>{2, 3}));
  for (const char* bad :
       {"", "3/3", "4/3", "a/b", "1/0", "1/2/3", "1/", "/2", "-1/2",
        "1/2x"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(parse_shard_spec(bad), InvalidArgument);
  }
}

// A shard file with a torn tail (killed mid-append) loses only its last
// block: resuming that shard re-runs the lost cell and the merged result
// is still bit-identical.
TEST(ShardTest, TornTailShardResumesAndMergesExactly) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult sequential =
      run_experiment(tiny_factory(), two_strategies(), plain);
  std::vector<std::string> paths = run_shards(plain, 3, "accu_torn");

  // Tear shard 1: keep its first block plus half a trace line of the next.
  const std::string full = read_file(paths[1]);
  const std::size_t first_end = full.find("\nend ");
  ASSERT_NE(first_end, std::string::npos);
  const std::size_t second_begin = full.find("begin ", first_end);
  ASSERT_NE(second_begin, std::string::npos);
  const std::size_t tear = full.find("\nt ", second_begin);
  ASSERT_NE(tear, std::string::npos);
  {
    std::ofstream os(paths[1], std::ios::trunc);
    os << full.substr(0, tear + 5);
  }

  // Merging the torn set is incomplete — and says so.
  const ShardMergeOutcome partial = merge_shard_checkpoints(paths);
  EXPECT_GT(partial.cells_missing, 0u);

  // Resume shard 1, then merge again: complete and bit-identical.
  ExperimentConfig shard = plain;
  shard.shard_index = 1;
  shard.shard_count = 3;
  shard.checkpoint_path = paths[1];
  (void)run_experiment(tiny_factory(), two_strategies(), shard);
  const ShardMergeOutcome merged = merge_shard_checkpoints(paths);
  EXPECT_EQ(merged.cells_missing, 0u);
  expect_identical_results(sequential, merged.result);
}

// The acceptance headline: split the sweep across 3 shards, SIGKILL one
// mid-run (no chance to flush), resume it, and merge — byte-for-byte the
// unsharded aggregates.
TEST(ShardTest, SigkilledShardResumesAndMergesBitIdentically) {
  const ExperimentConfig plain = base_config();
  const InstanceFactory factory = tiny_factory();
  const std::vector<StrategyFactory> roster = two_strategies();
  const ExperimentResult sequential =
      run_experiment(factory, roster, plain);

  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 3; ++i) {
    paths.push_back(temp_path("accu_kill_s" + std::to_string(i) + ".txt"));
  }
  for (const std::uint32_t i : {0u, 2u}) {
    ExperimentConfig shard = plain;
    shard.shard_index = i;
    shard.shard_count = 3;
    shard.checkpoint_path = paths[i];
    (void)run_experiment(factory, roster, shard);
  }

  // Shard 1 runs in a forked child that the parent kills without warning —
  // possibly mid-checkpoint-append.
  ExperimentConfig victim = plain;
  victim.shard_index = 1;
  victim.shard_count = 3;
  victim.checkpoint_path = paths[1];
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    // _exit (not exit): a SIGKILL leaves no cleanup anyway, and the
    // early-finish path must not flush the parent's stdio buffers.
    (void)run_experiment(factory, roster, victim);
    _exit(0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);

  // Resume the killed shard from whatever bytes survived, then merge.
  (void)run_experiment(factory, roster, victim);
  const ShardMergeOutcome merged = merge_shard_checkpoints(paths);
  EXPECT_EQ(merged.cells_missing, 0u);
  expect_identical_results(sequential, merged.result);
}

TEST(MergeTest, MergedCheckpointIsResumableUnsharded) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult sequential =
      run_experiment(tiny_factory(), two_strategies(), plain);
  const std::vector<std::string> paths = run_shards(plain, 3, "accu_resume");
  const std::string merged_path = temp_path("accu_resume_merged.txt");
  const ShardMergeOutcome merged =
      merge_shard_checkpoints(paths, merged_path);
  expect_identical_results(sequential, merged.result);

  // The merged file is a complete unsharded checkpoint: running against it
  // replays every cell from disk, still bit-identically.
  ExperimentConfig resume = plain;
  resume.checkpoint_path = merged_path;
  const ExperimentResult replayed =
      run_experiment(tiny_factory(), two_strategies(), resume);
  expect_identical_results(sequential, replayed);
}

TEST(MergeTest, MergeIsOrderIndependentAndDeduplicatesOverlap) {
  const ExperimentConfig plain = base_config();
  const std::vector<std::string> paths = run_shards(plain, 3, "accu_order");
  const std::string out_a = temp_path("accu_order_a.txt");
  const std::string out_b = temp_path("accu_order_b.txt");
  const ShardMergeOutcome a = merge_shard_checkpoints(paths, out_a);
  // Reversed order, plus shard 0 listed twice: same merged bytes, with the
  // overlap counted as duplicates rather than double-aggregated.
  const ShardMergeOutcome b = merge_shard_checkpoints(
      {paths[2], paths[1], paths[0], paths[0]}, out_b);
  EXPECT_GT(b.duplicate_cells, 0u);
  expect_identical_results(a.result, b.result);
  EXPECT_EQ(read_file(out_a), read_file(out_b));
}

TEST(MergeTest, MismatchedShardFilesAreRejected) {
  const ExperimentConfig plain = base_config();
  const std::vector<std::string> paths = run_shards(plain, 2, "accu_mm");
  ExperimentConfig other = plain;
  other.seed += 1;
  other.shard_count = 2;
  other.shard_index = 1;
  other.checkpoint_path = temp_path("accu_mm_alien.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), other);
  EXPECT_THROW(merge_shard_checkpoints({paths[0], other.checkpoint_path}),
               IoError);
}

TEST(MergeTest, MissingShardsAreCountedNotInvented) {
  const ExperimentConfig plain = base_config();
  const std::vector<std::string> paths = run_shards(plain, 3, "accu_miss");
  const ShardMergeOutcome merged =
      merge_shard_checkpoints({paths[0], paths[2]});
  const std::size_t grid =
      static_cast<std::size_t>(plain.samples) * plain.runs;
  EXPECT_EQ(merged.cells_merged + merged.cells_missing, grid);
  EXPECT_GT(merged.cells_missing, 0u);
  // Only the merged cells contribute samples.
  for (const TraceAggregator& agg : merged.result.aggregates) {
    EXPECT_EQ(agg.total_benefit().count(), merged.cells_merged);
  }
}

SimulationResult synthetic_result(std::size_t steps, double step_benefit) {
  SimulationResult r;
  double benefit = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    RequestRecord rec;
    rec.target = static_cast<NodeId>(i);
    rec.accepted = true;
    rec.cautious_target = i % 2 == 0;
    rec.benefit_before = benefit;
    benefit += step_benefit;
    rec.benefit_after = benefit;
    r.trace.push_back(rec);
  }
  r.total_benefit = benefit;
  r.num_accepted = static_cast<std::uint32_t>(steps);
  return r;
}

// merge() with unequal series lengths (shards aggregated under different
// budgets) must equal the sequential accumulation into one aggregator.
TEST(MergeTest, UnequalSeriesLengthsMatchSequentialAccumulation) {
  const SimulationResult short_run = synthetic_result(5, 2.0);
  const SimulationResult long_run = synthetic_result(9, 3.0);

  TraceAggregator sequential;
  sequential.add(short_run, 5);
  sequential.add(long_run, 9);

  TraceAggregator a, b;
  a.add(short_run, 5);
  b.add(long_run, 9);
  TraceAggregator merged_ab = a;
  merged_ab.merge(b);
  expect_identical_aggregates(sequential, merged_ab);

  // And in the other direction: the longer series absorbing the shorter.
  TraceAggregator merged_ba = b;
  merged_ba.merge(a);
  EXPECT_EQ(merged_ba.cumulative_benefit().length(), 9u);
  EXPECT_EQ(merged_ba.total_benefit().count(), 2u);
  EXPECT_EQ(merged_ba.total_benefit().mean(),
            sequential.total_benefit().mean());
  EXPECT_EQ(merged_ba.cumulative_benefit().at(7).count(),
            sequential.cumulative_benefit().at(7).count());
}

TEST(MergeTest, ZeroCountAggregatorsMergeAsIdentity) {
  TraceAggregator filled;
  filled.add(synthetic_result(4, 1.5), 4);
  const TraceAggregator reference = filled;

  TraceAggregator empty;
  filled.merge(empty);  // no-op
  expect_identical_aggregates(reference, filled);

  TraceAggregator absorber;
  absorber.merge(reference);  // empty absorbing non-empty
  expect_identical_aggregates(reference, absorber);

  TraceAggregator both;
  both.merge(empty);  // empty ∪ empty stays empty
  EXPECT_EQ(both.total_benefit().count(), 0u);
  EXPECT_EQ(both.cumulative_benefit().length(), 0u);
}

}  // namespace
}  // namespace accu
